// Data segmentation pipeline (Section 3.3): group similar objects into
// non-overlapping segments, each of which gets its own local model.
//
// The default strategy is the paper's PCA + mini-batch K-means; LSH and
// DBSCAN are available for the ablation that motivated that choice.
#ifndef SIMCARD_CLUSTER_SEGMENTATION_H_
#define SIMCARD_CLUSTER_SEGMENTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace simcard {

enum class SegmentationMethod { kPcaKMeans, kLsh, kDbscan };

const char* SegmentationMethodName(SegmentationMethod method);
Result<SegmentationMethod> ParseSegmentationMethod(const std::string& name);

/// \brief A partition of a dataset into segments.
///
/// Centroids live in the *original* feature space (segment member means), so
/// distances from a query to centroids — the paper's x_C feature — use the
/// dataset's own metric. `radius` is each segment's max member-to-centroid
/// distance, enabling the triangle-inequality bound mentioned in Sec 5.1.
struct Segmentation {
  std::vector<uint32_t> assignment;            ///< point -> segment
  std::vector<std::vector<uint32_t>> members;  ///< segment -> points
  Matrix centroids;                            ///< [num_segments, dim]
  std::vector<float> radius;                   ///< per-segment radius

  size_t num_segments() const { return members.size(); }

  /// Distances from `q` to every centroid under `metric` (the x_C feature).
  std::vector<float> CentroidDistances(const float* q, size_t dim,
                                       Metric metric) const;

  /// Segment whose centroid is nearest to `point` under `metric`; this is
  /// how incremental inserts are routed (Section 5.3).
  size_t NearestSegment(const float* point, size_t dim, Metric metric) const;

  /// Adds point `index` (data row) with features `point` to segment `seg`,
  /// updating the running centroid mean and radius.
  void AddPoint(size_t seg, uint32_t index, const float* point, size_t dim,
                Metric metric);

  /// Removes the trailing `n` points (indices >= assignment.size() - n)
  /// from their segments; used when the dataset is truncated (deletions,
  /// Section 5.3). Centroids/radii are left as-is — they are summaries that
  /// the subsequent fine-tune absorbs; returns the set of touched segments.
  std::vector<size_t> RemoveTrailingPoints(size_t n);

  /// Removes arbitrary points `rows` (ascending, unique) and remaps every
  /// surviving index by the same stable compaction as Dataset::EraseRows,
  /// so assignment/members stay aligned with the compacted dataset.
  /// Centroids/radii are left as-is (call RecomputeSummaries on the
  /// returned touched segments when the refresh wants exact summaries).
  std::vector<size_t> EraseRows(const std::vector<uint32_t>& rows);

  /// Recomputes `centroids` (member mean) and `radius` (max member-to-
  /// centroid distance) for the given segments from their current member
  /// lists — the centroid-recompute half of an incremental refresh, which
  /// undoes the drift that AddPoint's running mean and erased members leave
  /// behind. An emptied segment keeps its last centroid (it can still be
  /// routed to) with radius 0.
  void RecomputeSummaries(const Dataset& dataset,
                          const std::vector<size_t>& segments);

  void Serialize(Serializer* out) const;
  Status Deserialize(Deserializer* in);
};

/// \brief Options for SegmentData.
struct SegmentationOptions {
  size_t target_segments = 16;
  SegmentationMethod method = SegmentationMethod::kPcaKMeans;
  size_t pca_components = 8;
  uint64_t seed = 19;
  // DBSCAN-only: neighborhood radius as a fraction of the PCA-space data
  // spread (resolved internally).
  float dbscan_eps_fraction = 0.25f;
};

/// Partitions `dataset` into at most `target_segments` non-empty segments.
Result<Segmentation> SegmentData(const Dataset& dataset,
                                 const SegmentationOptions& options);

/// Mean silhouette-like cohesion score in [−1, 1] on a subsample: how much
/// closer points are to their own centroid than to the nearest other
/// centroid. Used by the segmentation ablation.
double SegmentationCohesion(const Dataset& dataset, const Segmentation& seg,
                            size_t sample_size, uint64_t seed);

}  // namespace simcard

#endif  // SIMCARD_CLUSTER_SEGMENTATION_H_
