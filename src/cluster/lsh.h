// Random-hyperplane LSH bucketing, the alternative segmentation strategy the
// paper compared against PCA+K-means (Section 3.3) and found inferior; kept
// here for the segmentation ablation bench.
#ifndef SIMCARD_CLUSTER_LSH_H_
#define SIMCARD_CLUSTER_LSH_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/matrix.h"

namespace simcard {

/// \brief Signed-projection LSH: hash(v) = sign bits of v * H.
struct LshModel {
  Matrix hyperplanes;  ///< [d, bits]

  /// Bucket id (bit pattern of the projections) for one vector.
  uint64_t Hash(const float* v) const;
};

/// \brief Options for LshSegment.
struct LshOptions {
  size_t bits = 6;             ///< 2^bits raw buckets before merging
  size_t target_segments = 16; ///< small buckets are merged down to this
  uint64_t seed = 13;
};

/// Buckets every row of `data` and greedily merges the smallest buckets
/// until at most `target_segments` remain. Returns a per-row segment id in
/// [0, num_segments).
Result<std::vector<uint32_t>> LshSegment(const Matrix& data,
                                         const LshOptions& options,
                                         size_t* num_segments);

}  // namespace simcard

#endif  // SIMCARD_CLUSTER_LSH_H_
