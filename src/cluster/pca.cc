#include "cluster/pca.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace simcard {
namespace {

// Gram-Schmidt orthonormalization of the columns of `m` (in place).
void OrthonormalizeColumns(Matrix* m) {
  const size_t d = m->rows();
  const size_t k = m->cols();
  for (size_t c = 0; c < k; ++c) {
    // Remove projections onto previous columns.
    for (size_t p = 0; p < c; ++p) {
      double dot = 0.0;
      for (size_t r = 0; r < d; ++r) {
        dot += static_cast<double>(m->at(r, c)) * m->at(r, p);
      }
      for (size_t r = 0; r < d; ++r) {
        m->at(r, c) -= static_cast<float>(dot) * m->at(r, p);
      }
    }
    double norm = 0.0;
    for (size_t r = 0; r < d; ++r) {
      norm += static_cast<double>(m->at(r, c)) * m->at(r, c);
    }
    norm = std::sqrt(norm);
    const float inv = norm > 1e-12 ? static_cast<float>(1.0 / norm) : 0.0f;
    for (size_t r = 0; r < d; ++r) m->at(r, c) *= inv;
  }
}

}  // namespace

Matrix PcaModel::Project(const Matrix& rows) const {
  Matrix centered = rows;
  const float* mu = mean.data();
  for (size_t r = 0; r < centered.rows(); ++r) {
    float* row = centered.Row(r);
    for (size_t c = 0; c < centered.cols(); ++c) row[c] -= mu[c];
  }
  return MatMul(centered, components);
}

void PcaModel::ProjectRow(const float* row, float* out) const {
  const size_t d = input_dim();
  const size_t k = output_dim();
  const float* mu = mean.data();
  for (size_t c = 0; c < k; ++c) out[c] = 0.0f;
  for (size_t r = 0; r < d; ++r) {
    const float v = row[r] - mu[r];
    if (v == 0.0f) continue;
    const float* comp_row = components.Row(r);
    for (size_t c = 0; c < k; ++c) out[c] += v * comp_row[c];
  }
}

Result<PcaModel> FitPca(const Matrix& data, const PcaOptions& options) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("FitPca: empty data");
  }
  const size_t d = data.cols();
  const size_t k = std::min(options.num_components, d);
  Rng rng(options.seed);

  // Subsample rows for the covariance estimate.
  Matrix sample;
  if (data.rows() > options.max_fit_rows) {
    auto idx = rng.SampleWithoutReplacement(data.rows(), options.max_fit_rows);
    sample = Matrix(idx.size(), d);
    for (size_t i = 0; i < idx.size(); ++i) sample.SetRow(i, data.Row(idx[i]));
  } else {
    sample = data;
  }
  const size_t n = sample.rows();

  PcaModel model;
  model.mean = Scale(SumRows(sample), 1.0f / static_cast<float>(n));
  const float* mu = model.mean.data();
  for (size_t r = 0; r < n; ++r) {
    float* row = sample.Row(r);
    for (size_t c = 0; c < d; ++c) row[c] -= mu[c];
  }

  // Covariance = X^T X / n.
  Matrix cov = Scale(MatMulTransposeA(sample, sample),
                     1.0f / static_cast<float>(n));

  // Subspace iteration for the top-k eigenvectors.
  Matrix q = Matrix::Gaussian(d, k, 1.0f, &rng);
  OrthonormalizeColumns(&q);
  for (size_t it = 0; it < options.power_iterations; ++it) {
    q = MatMul(cov, q);
    OrthonormalizeColumns(&q);
  }
  model.components = q;

  // Eigenvalue estimates: lambda_i = q_i^T C q_i.
  Matrix cq = MatMul(cov, q);
  model.explained_variance.resize(k);
  for (size_t c = 0; c < k; ++c) {
    double lambda = 0.0;
    for (size_t r = 0; r < d; ++r) {
      lambda += static_cast<double>(q.at(r, c)) * cq.at(r, c);
    }
    model.explained_variance[c] = static_cast<float>(lambda);
  }
  return model;
}

}  // namespace simcard
