#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stopwatch.h"
#include "dist/metric.h"
#include "obs/metrics.h"
#include "obs/training_observer.h"

namespace simcard {
namespace {

// K-means++ seeding on a subsample: pick each next center with probability
// proportional to squared distance from the nearest existing center.
Matrix KMeansPlusPlusInit(const Matrix& data, size_t k, Rng* rng) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t pool_size = std::min<size_t>(n, 2048 + 16 * k);
  auto pool = rng->SampleWithoutReplacement(n, pool_size);

  Matrix centers(k, d);
  std::vector<float> best_sq(pool.size(),
                             std::numeric_limits<float>::infinity());
  // First center: uniform.
  centers.SetRow(0, data.Row(pool[rng->NextBounded(pool.size())]));
  for (size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < pool.size(); ++i) {
      const float sq = L2Squared(data.Row(pool[i]), centers.Row(c - 1), d);
      best_sq[i] = std::min(best_sq[i], sq);
      total += best_sq[i];
    }
    if (total <= 0.0) {
      // Degenerate data: duplicate an arbitrary pool point.
      centers.SetRow(c, data.Row(pool[rng->NextBounded(pool.size())]));
      continue;
    }
    double target = rng->NextDouble() * total;
    size_t chosen = pool.size() - 1;
    for (size_t i = 0; i < pool.size(); ++i) {
      target -= best_sq[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers.SetRow(c, data.Row(pool[chosen]));
  }
  return centers;
}

}  // namespace

size_t NearestCentroid(const Matrix& centroids, const float* v) {
  size_t best = 0;
  float best_sq = std::numeric_limits<float>::infinity();
  for (size_t c = 0; c < centroids.rows(); ++c) {
    const float sq = L2Squared(centroids.Row(c), v, centroids.cols());
    if (sq < best_sq) {
      best_sq = sq;
      best = c;
    }
  }
  return best;
}

Result<KMeansResult> MiniBatchKMeans(const Matrix& data,
                                     const KMeansOptions& options) {
  if (data.rows() == 0) {
    return Status::InvalidArgument("MiniBatchKMeans: empty data");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("MiniBatchKMeans: k must be positive");
  }
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t k = std::min(options.k, n);
  Stopwatch watch;
  Rng rng(options.seed);

  KMeansResult result;
  result.centroids = KMeansPlusPlusInit(data, k, &rng);
  std::vector<uint64_t> counts(k, 0);

  // Mini-batch updates (Sculley-style per-center learning rates).
  const size_t batch = std::min(options.batch_size, n);
  for (size_t it = 0; it < options.iterations; ++it) {
    for (size_t b = 0; b < batch; ++b) {
      const size_t i = rng.NextBounded(n);
      const float* x = data.Row(i);
      const size_t c = NearestCentroid(result.centroids, x);
      counts[c] += 1;
      const float eta = 1.0f / static_cast<float>(counts[c]);
      float* center = result.centroids.Row(c);
      for (size_t j = 0; j < d; ++j) {
        center[j] += eta * (x[j] - center[j]);
      }
    }
  }

  // Final full assignment + inertia.
  result.assignment.resize(n);
  double inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const float* x = data.Row(i);
    const size_t c = NearestCentroid(result.centroids, x);
    result.assignment[i] = static_cast<uint32_t>(c);
    inertia += L2Squared(result.centroids.Row(c), x, d);
  }
  result.inertia = inertia / static_cast<double>(n);
  // The final inertia is the clustering's "loss"; reported as a one-point
  // training run so segmentation quality lands in run reports.
  obs::NotifyTrainEpoch("kmeans", options.iterations, result.inertia,
                        watch.ElapsedSeconds());
  if (obs::MetricsEnabled()) {
    obs::GetGauge("kmeans.inertia")->Set(result.inertia);
    obs::GetGauge("kmeans.seconds")->Set(watch.ElapsedSeconds());
  }
  return result;
}

}  // namespace simcard
