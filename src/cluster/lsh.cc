#include "cluster/lsh.h"

#include <algorithm>
#include <map>

#include "dist/metric.h"

namespace simcard {

uint64_t LshModel::Hash(const float* v) const {
  uint64_t code = 0;
  for (size_t b = 0; b < hyperplanes.cols(); ++b) {
    float acc = 0.0f;
    for (size_t r = 0; r < hyperplanes.rows(); ++r) {
      acc += v[r] * hyperplanes.at(r, b);
    }
    if (acc >= 0.0f) code |= uint64_t{1} << b;
  }
  return code;
}

Result<std::vector<uint32_t>> LshSegment(const Matrix& data,
                                         const LshOptions& options,
                                         size_t* num_segments) {
  if (data.rows() == 0) {
    return Status::InvalidArgument("LshSegment: empty data");
  }
  if (options.bits == 0 || options.bits > 20) {
    return Status::InvalidArgument("LshSegment: bits must be in [1,20]");
  }
  Rng rng(options.seed);
  LshModel model;
  model.hyperplanes = Matrix::Gaussian(data.cols(), options.bits, 1.0f, &rng);

  const size_t n = data.rows();
  std::vector<uint64_t> codes(n);
  std::map<uint64_t, size_t> bucket_sizes;
  for (size_t i = 0; i < n; ++i) {
    codes[i] = model.Hash(data.Row(i));
    bucket_sizes[codes[i]] += 1;
  }

  // Sort buckets by size descending; the largest `target_segments - 1`
  // buckets become their own segments, everything else merges into one
  // overflow segment. (LSH gives no control over bucket balance, which is
  // exactly why the paper rejects it; we keep the behavior observable.)
  std::vector<std::pair<size_t, uint64_t>> ordered;
  ordered.reserve(bucket_sizes.size());
  for (const auto& [code, size] : bucket_sizes) ordered.emplace_back(size, code);
  std::sort(ordered.rbegin(), ordered.rend());

  std::map<uint64_t, uint32_t> code_to_segment;
  const size_t own_buckets =
      std::min(ordered.size(), options.target_segments > 0
                                   ? options.target_segments - 1
                                   : size_t{0});
  for (size_t i = 0; i < own_buckets; ++i) {
    code_to_segment[ordered[i].second] = static_cast<uint32_t>(i);
  }
  const uint32_t overflow = static_cast<uint32_t>(own_buckets);
  size_t used = own_buckets;
  bool overflow_used = false;
  std::vector<uint32_t> assignment(n);
  for (size_t i = 0; i < n; ++i) {
    auto it = code_to_segment.find(codes[i]);
    if (it != code_to_segment.end()) {
      assignment[i] = it->second;
    } else {
      assignment[i] = overflow;
      overflow_used = true;
    }
  }
  if (overflow_used) ++used;
  if (num_segments != nullptr) *num_segments = used;
  return assignment;
}

}  // namespace simcard
