// Principal component analysis via subspace (orthogonal power) iteration.
//
// The paper's data segmentation reduces dimensionality with PCA before
// running batch K-means (Section 3.3, citing Ding & He). Fitting uses the
// covariance of a row subsample to stay cheap at high dimensions.
#ifndef SIMCARD_CLUSTER_PCA_H_
#define SIMCARD_CLUSTER_PCA_H_

#include "common/rng.h"
#include "common/status.h"
#include "tensor/matrix.h"

namespace simcard {

/// \brief Fitted PCA transform.
struct PcaModel {
  Matrix mean;        ///< [1, d]
  Matrix components;  ///< [d, k], orthonormal columns
  std::vector<float> explained_variance;  ///< per-component eigenvalue

  size_t input_dim() const { return components.rows(); }
  size_t output_dim() const { return components.cols(); }

  /// Projects a batch of rows into the k-dimensional PCA space.
  Matrix Project(const Matrix& rows) const;

  /// Projects one row; `out` must hold output_dim() floats.
  void ProjectRow(const float* row, float* out) const;
};

/// \brief Options for FitPca.
struct PcaOptions {
  size_t num_components = 8;
  size_t power_iterations = 30;
  size_t max_fit_rows = 4000;  ///< covariance is estimated on a subsample
  uint64_t seed = 7;
};

/// Fits PCA on `data`. `num_components` is clamped to the data dimension.
Result<PcaModel> FitPca(const Matrix& data, const PcaOptions& options);

}  // namespace simcard

#endif  // SIMCARD_CLUSTER_PCA_H_
