// Mini-batch K-means with K-means++ seeding (the paper's data-segmentation
// clustering, Section 3.3).
#ifndef SIMCARD_CLUSTER_KMEANS_H_
#define SIMCARD_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/matrix.h"

namespace simcard {

/// \brief K-means output: centroids (in the clustering space), a full
/// assignment, and the final inertia (mean squared distance to centroid).
struct KMeansResult {
  Matrix centroids;                  ///< [k, d]
  std::vector<uint32_t> assignment;  ///< point -> cluster
  double inertia = 0.0;
};

/// \brief Options for MiniBatchKMeans.
struct KMeansOptions {
  size_t k = 16;
  size_t batch_size = 512;
  size_t iterations = 60;
  uint64_t seed = 11;
};

/// Runs K-means++ seeding followed by mini-batch updates and a final full
/// assignment pass. Distances are Euclidean in the given space.
Result<KMeansResult> MiniBatchKMeans(const Matrix& data,
                                     const KMeansOptions& options);

/// Index of the centroid nearest (L2) to `v`.
size_t NearestCentroid(const Matrix& centroids, const float* v);

}  // namespace simcard

#endif  // SIMCARD_CLUSTER_KMEANS_H_
