#include "cluster/dbscan.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/rng.h"
#include "dist/metric.h"

namespace simcard {

Result<std::vector<uint32_t>> DbscanSegment(const Matrix& data,
                                            const DbscanOptions& options,
                                            size_t* num_segments) {
  if (data.rows() == 0) {
    return Status::InvalidArgument("DbscanSegment: empty data");
  }
  if (options.eps <= 0.0f) {
    return Status::InvalidArgument("DbscanSegment: eps must be positive");
  }
  const size_t n = data.rows();
  const size_t d = data.cols();
  Rng rng(options.seed);

  const size_t m = std::min(n, options.max_core_rows);
  auto sample = rng.SampleWithoutReplacement(n, m);

  // Pairwise neighborhoods within the sample (O(m^2) distances).
  const float eps_sq = options.eps * options.eps;
  std::vector<std::vector<uint32_t>> neighbors(m);
  for (size_t i = 0; i < m; ++i) {
    const float* xi = data.Row(sample[i]);
    for (size_t j = i + 1; j < m; ++j) {
      if (L2Squared(xi, data.Row(sample[j]), d) <= eps_sq) {
        neighbors[i].push_back(static_cast<uint32_t>(j));
        neighbors[j].push_back(static_cast<uint32_t>(i));
      }
    }
  }

  constexpr uint32_t kUnvisited = std::numeric_limits<uint32_t>::max();
  constexpr uint32_t kNoise = kUnvisited - 1;
  std::vector<uint32_t> sample_label(m, kUnvisited);
  uint32_t next_cluster = 0;
  for (size_t i = 0; i < m; ++i) {
    if (sample_label[i] != kUnvisited) continue;
    if (neighbors[i].size() + 1 < options.min_pts) {
      sample_label[i] = kNoise;
      continue;
    }
    const uint32_t cluster = next_cluster++;
    sample_label[i] = cluster;
    std::queue<uint32_t> frontier;
    for (uint32_t nb : neighbors[i]) frontier.push(nb);
    while (!frontier.empty()) {
      const uint32_t j = frontier.front();
      frontier.pop();
      if (sample_label[j] == kNoise) sample_label[j] = cluster;
      if (sample_label[j] != kUnvisited) continue;
      sample_label[j] = cluster;
      if (neighbors[j].size() + 1 >= options.min_pts) {
        for (uint32_t nb : neighbors[j]) frontier.push(nb);
      }
    }
  }

  // Degenerate outcome (all noise): one segment holding everything.
  if (next_cluster == 0) {
    if (num_segments != nullptr) *num_segments = 1;
    return std::vector<uint32_t>(n, 0);
  }

  // Collect clustered sample points for nearest-core extension.
  std::vector<size_t> anchors;       // row indices in `data`
  std::vector<uint32_t> anchor_lab;  // their cluster labels
  for (size_t i = 0; i < m; ++i) {
    if (sample_label[i] < kNoise) {
      anchors.push_back(sample[i]);
      anchor_lab.push_back(sample_label[i]);
    }
  }

  std::vector<uint32_t> assignment(n);
  for (size_t i = 0; i < n; ++i) {
    const float* x = data.Row(i);
    float best = std::numeric_limits<float>::infinity();
    uint32_t best_lab = 0;
    for (size_t a = 0; a < anchors.size(); ++a) {
      const float sq = L2Squared(x, data.Row(anchors[a]), d);
      if (sq < best) {
        best = sq;
        best_lab = anchor_lab[a];
      }
    }
    assignment[i] = best_lab;
  }
  if (num_segments != nullptr) *num_segments = next_cluster;
  return assignment;
}

}  // namespace simcard
