#include "cluster/segmentation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "cluster/lsh.h"
#include "cluster/pca.h"
#include "common/rng.h"
#include "data/delta_overlay.h"

namespace simcard {

const char* SegmentationMethodName(SegmentationMethod method) {
  switch (method) {
    case SegmentationMethod::kPcaKMeans:
      return "pca-kmeans";
    case SegmentationMethod::kLsh:
      return "lsh";
    case SegmentationMethod::kDbscan:
      return "dbscan";
  }
  return "?";
}

Result<SegmentationMethod> ParseSegmentationMethod(const std::string& name) {
  if (name == "pca-kmeans" || name == "kmeans") {
    return SegmentationMethod::kPcaKMeans;
  }
  if (name == "lsh") return SegmentationMethod::kLsh;
  if (name == "dbscan") return SegmentationMethod::kDbscan;
  return Status::InvalidArgument("unknown segmentation method: " + name);
}

std::vector<float> Segmentation::CentroidDistances(const float* q, size_t dim,
                                                   Metric metric) const {
  std::vector<float> out(num_segments());
  for (size_t s = 0; s < num_segments(); ++s) {
    out[s] = Distance(q, centroids.Row(s), dim, metric);
  }
  return out;
}

size_t Segmentation::NearestSegment(const float* point, size_t dim,
                                    Metric metric) const {
  size_t best = 0;
  float best_dist = std::numeric_limits<float>::infinity();
  for (size_t s = 0; s < num_segments(); ++s) {
    const float dist = Distance(point, centroids.Row(s), dim, metric);
    if (dist < best_dist) {
      best_dist = dist;
      best = s;
    }
  }
  return best;
}

void Segmentation::AddPoint(size_t seg, uint32_t index, const float* point,
                            size_t dim, Metric metric) {
  if (index >= assignment.size()) assignment.resize(index + 1);
  assignment[index] = static_cast<uint32_t>(seg);
  members[seg].push_back(index);
  // Running mean update of the centroid.
  const float eta = 1.0f / static_cast<float>(members[seg].size());
  float* center = centroids.Row(seg);
  for (size_t j = 0; j < dim; ++j) {
    center[j] += eta * (point[j] - center[j]);
  }
  radius[seg] = std::max(radius[seg], Distance(point, center, dim, metric));
}

std::vector<size_t> Segmentation::EraseRows(
    const std::vector<uint32_t>& rows) {
  if (rows.empty()) return {};
  const std::vector<uint32_t> remap = BuildEraseRemap(assignment.size(), rows);
  std::set<size_t> touched;
  for (uint32_t row : rows) {
    if (row < assignment.size()) touched.insert(assignment[row]);
  }
  for (auto& m : members) {
    size_t out = 0;
    for (uint32_t idx : m) {
      if (remap[idx] != kRemovedRow) m[out++] = remap[idx];
    }
    m.resize(out);
  }
  std::vector<uint32_t> compact(assignment.size() - rows.size());
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (remap[i] != kRemovedRow) compact[remap[i]] = assignment[i];
  }
  assignment = std::move(compact);
  return std::vector<size_t>(touched.begin(), touched.end());
}

void Segmentation::RecomputeSummaries(const Dataset& dataset,
                                      const std::vector<size_t>& segments) {
  const size_t dim = dataset.dim();
  for (size_t s : segments) {
    if (s >= members.size()) continue;
    radius[s] = 0.0f;
    if (members[s].empty()) continue;  // keep the last centroid, radius 0
    float* center = centroids.Row(s);
    for (size_t j = 0; j < dim; ++j) center[j] = 0.0f;
    for (uint32_t idx : members[s]) {
      const float* p = dataset.Point(idx);
      for (size_t j = 0; j < dim; ++j) center[j] += p[j];
    }
    const float inv = 1.0f / static_cast<float>(members[s].size());
    for (size_t j = 0; j < dim; ++j) center[j] *= inv;
    for (uint32_t idx : members[s]) {
      radius[s] = std::max(
          radius[s], Distance(dataset.Point(idx), center, dim,
                              dataset.metric()));
    }
  }
}

std::vector<size_t> Segmentation::RemoveTrailingPoints(size_t n) {
  n = std::min(n, assignment.size());
  const uint32_t first_removed =
      static_cast<uint32_t>(assignment.size() - n);
  std::set<size_t> touched;
  for (size_t i = first_removed; i < assignment.size(); ++i) {
    touched.insert(assignment[i]);
  }
  for (size_t s : touched) {
    auto& m = members[s];
    m.erase(std::remove_if(m.begin(), m.end(),
                           [first_removed](uint32_t idx) {
                             return idx >= first_removed;
                           }),
            m.end());
  }
  assignment.resize(first_removed);
  return std::vector<size_t>(touched.begin(), touched.end());
}

void Segmentation::Serialize(Serializer* out) const {
  std::vector<uint64_t> assignment64(assignment.begin(), assignment.end());
  out->WriteU64Vector(assignment64);
  centroids.Serialize(out);
  out->WriteFloatVector(radius);
}

Status Segmentation::Deserialize(Deserializer* in) {
  std::vector<uint64_t> assignment64;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64Vector(&assignment64));
  SIMCARD_RETURN_IF_ERROR(centroids.Deserialize(in));
  SIMCARD_RETURN_IF_ERROR(in->ReadFloatVector(&radius));
  if (radius.size() != centroids.rows()) {
    return Status::Internal("segmentation: radius/centroid count mismatch");
  }
  assignment.assign(assignment64.begin(), assignment64.end());
  members.assign(centroids.rows(), {});
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] >= members.size()) {
      return Status::Internal("segmentation: assignment out of range");
    }
    members[assignment[i]].push_back(static_cast<uint32_t>(i));
  }
  return Status::OK();
}

namespace {

// Builds members/centroids/radius from a raw assignment, dropping empty
// segments and remapping ids densely.
Segmentation Finalize(const Dataset& dataset, std::vector<uint32_t> assignment,
                      size_t raw_segments) {
  const size_t n = dataset.size();
  const size_t dim = dataset.dim();

  std::vector<uint32_t> remap(raw_segments,
                              std::numeric_limits<uint32_t>::max());
  std::vector<std::vector<uint32_t>> members;
  for (size_t i = 0; i < n; ++i) {
    uint32_t& slot = remap[assignment[i]];
    if (slot == std::numeric_limits<uint32_t>::max()) {
      slot = static_cast<uint32_t>(members.size());
      members.emplace_back();
    }
    assignment[i] = slot;
    members[slot].push_back(static_cast<uint32_t>(i));
  }

  Segmentation seg;
  seg.assignment = std::move(assignment);
  seg.centroids = Matrix(members.size(), dim);
  seg.radius.assign(members.size(), 0.0f);
  for (size_t s = 0; s < members.size(); ++s) {
    float* center = seg.centroids.Row(s);
    for (uint32_t idx : members[s]) {
      const float* p = dataset.Point(idx);
      for (size_t j = 0; j < dim; ++j) center[j] += p[j];
    }
    const float inv = 1.0f / static_cast<float>(members[s].size());
    for (size_t j = 0; j < dim; ++j) center[j] *= inv;
    for (uint32_t idx : members[s]) {
      seg.radius[s] = std::max(
          seg.radius[s],
          Distance(dataset.Point(idx), center, dim, dataset.metric()));
    }
  }
  seg.members = std::move(members);
  return seg;
}

}  // namespace

Result<Segmentation> SegmentData(const Dataset& dataset,
                                 const SegmentationOptions& options) {
  if (dataset.size() == 0) {
    return Status::InvalidArgument("SegmentData: empty dataset");
  }
  if (options.target_segments == 0) {
    return Status::InvalidArgument("SegmentData: target_segments must be > 0");
  }

  // One segment: trivial partition, no clustering needed.
  if (options.target_segments == 1) {
    return Finalize(dataset, std::vector<uint32_t>(dataset.size(), 0), 1);
  }

  // All methods cluster in a PCA-reduced space (Section 3.3).
  PcaOptions pca_opts;
  pca_opts.num_components = std::min(options.pca_components, dataset.dim());
  pca_opts.seed = options.seed;
  auto pca_or = FitPca(dataset.points(), pca_opts);
  if (!pca_or.ok()) return pca_or.status();
  Matrix reduced = pca_or.value().Project(dataset.points());

  switch (options.method) {
    case SegmentationMethod::kPcaKMeans: {
      KMeansOptions km;
      km.k = options.target_segments;
      km.seed = options.seed;
      auto km_or = MiniBatchKMeans(reduced, km);
      if (!km_or.ok()) return km_or.status();
      return Finalize(dataset, std::move(km_or.value().assignment),
                      km_or.value().centroids.rows());
    }
    case SegmentationMethod::kLsh: {
      LshOptions lsh;
      lsh.target_segments = options.target_segments;
      // Enough bits that raw buckets outnumber targets.
      lsh.bits = 1;
      while ((size_t{1} << lsh.bits) < options.target_segments * 4 &&
             lsh.bits < 16) {
        ++lsh.bits;
      }
      lsh.seed = options.seed;
      size_t num_segments = 0;
      auto lsh_or = LshSegment(reduced, lsh, &num_segments);
      if (!lsh_or.ok()) return lsh_or.status();
      return Finalize(dataset, std::move(lsh_or.value()), num_segments);
    }
    case SegmentationMethod::kDbscan: {
      // Resolve eps from the PCA-space spread: mean pairwise distance of a
      // small sample, scaled by the configured fraction.
      Rng rng(options.seed);
      const size_t probe = std::min<size_t>(reduced.rows(), 256);
      auto idx = rng.SampleWithoutReplacement(reduced.rows(), probe);
      double mean_dist = 0.0;
      size_t pairs = 0;
      for (size_t a = 0; a + 1 < idx.size(); a += 2) {
        mean_dist += std::sqrt(L2Squared(reduced.Row(idx[a]),
                                         reduced.Row(idx[a + 1]),
                                         reduced.cols()));
        ++pairs;
      }
      mean_dist = pairs > 0 ? mean_dist / pairs : 1.0;

      DbscanOptions db;
      db.eps = static_cast<float>(mean_dist * options.dbscan_eps_fraction);
      db.seed = options.seed;
      size_t num_segments = 0;
      auto db_or = DbscanSegment(reduced, db, &num_segments);
      if (!db_or.ok()) return db_or.status();
      return Finalize(dataset, std::move(db_or.value()), num_segments);
    }
  }
  return Status::Internal("unreachable segmentation method");
}

double SegmentationCohesion(const Dataset& dataset, const Segmentation& seg,
                            size_t sample_size, uint64_t seed) {
  Rng rng(seed);
  const size_t n = dataset.size();
  auto idx = rng.SampleWithoutReplacement(n, std::min(sample_size, n));
  if (seg.num_segments() < 2) return 0.0;
  double total = 0.0;
  for (size_t i : idx) {
    const float* p = dataset.Point(i);
    const size_t own = seg.assignment[i];
    const float a =
        Distance(p, seg.centroids.Row(own), dataset.dim(), dataset.metric());
    float b = std::numeric_limits<float>::infinity();
    for (size_t s = 0; s < seg.num_segments(); ++s) {
      if (s == own) continue;
      b = std::min(b, Distance(p, seg.centroids.Row(s), dataset.dim(),
                               dataset.metric()));
    }
    const float denom = std::max(a, b);
    total += denom > 0.0f ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(idx.size());
}

}  // namespace simcard
