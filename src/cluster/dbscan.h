// DBSCAN on a subsample with nearest-core extension, the second alternative
// segmentation strategy the paper compared against PCA+K-means (Section 3.3).
#ifndef SIMCARD_CLUSTER_DBSCAN_H_
#define SIMCARD_CLUSTER_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace simcard {

/// \brief Options for DbscanSegment.
struct DbscanOptions {
  float eps = 0.5f;       ///< neighborhood radius (L2 in the given space)
  size_t min_pts = 8;     ///< core-point density threshold
  size_t max_core_rows = 2500;  ///< DBSCAN runs on at most this many rows
  uint64_t seed = 17;
};

/// Clusters a row subsample with classic DBSCAN, then assigns every
/// remaining row (and noise) to the cluster of its nearest clustered sample.
/// Returns per-row segment ids in [0, *num_segments).
Result<std::vector<uint32_t>> DbscanSegment(const Matrix& data,
                                            const DbscanOptions& options,
                                            size_t* num_segments);

}  // namespace simcard

#endif  // SIMCARD_CLUSTER_DBSCAN_H_
