// Distance functions for similarity queries (Section 2 & 3.2 of the paper).
//
// All metrics are normalized so thresholds live on comparable scales:
//   - kL1, kL2: raw Minkowski distances over float vectors;
//   - kCosine: 1 - cos(u,v); for unit vectors this equals ||u-v||^2 / 2
//     (the identity the paper uses to decompose cosine over segments);
//   - kAngular: arccos(cos(u,v)) / pi, in [0,1];
//   - kHamming: (#mismatching coordinates) / d, in [0,1]. Jaccard over a
//     fixed universe is mapped onto this representation (Section 3.2).
//
// The paper's query-segmentation argument rests on these distances being
// computable from per-segment distances; MergeSegmentDistances implements
// the merge identities and is exercised by exact unit tests.
#ifndef SIMCARD_DIST_METRIC_H_
#define SIMCARD_DIST_METRIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace simcard {

enum class Metric {
  kL1,
  kL2,
  kCosine,
  kAngular,
  kHamming,
};

const char* MetricName(Metric metric);
Result<Metric> ParseMetric(const std::string& name);

/// Dot product of two length-d vectors.
float DotProduct(const float* a, const float* b, size_t d);

/// Squared Euclidean distance.
float L2Squared(const float* a, const float* b, size_t d);

/// Distance between two length-d vectors under `metric`.
float Distance(const float* a, const float* b, size_t d, Metric metric);

/// \brief All-pairs distances: out[i][j] = Distance(queries.Row(i),
/// points.Row(j), d, metric) as a [queries.rows() x points.rows()] matrix.
///
/// This is the batched kernel behind the x_D / x_C feature builders: it
/// tiles the query and point blocks for cache reuse and, for kCosine /
/// kAngular, hoists the per-row norms out of the pair loop. Every pair is
/// still evaluated with exactly the scalar expressions used by Distance()
/// (same accumulation order, same zero-norm branches), so each entry is
/// bitwise identical to the per-pair call.
Matrix BatchDistances(const Matrix& queries, const Matrix& points,
                      Metric metric);

/// In-place L2 normalization; leaves all-zero vectors untouched.
void NormalizeRow(float* v, size_t d);

/// \brief Merge per-segment distances into the whole-vector distance
/// (Section 3.2 identities). `seg_lens` gives each segment's width; required
/// for kHamming (weighted average) and ignored for kL1/kL2.
///
/// kCosine/kAngular cannot be merged from segment *distances* alone (they
/// need the per-segment partial dot products), so this helper accepts
/// per-segment partial dots for those metrics instead: pass
/// seg_dists[i] = dot(u_i, v_i) and unit-norm whole vectors.
float MergeSegmentDistances(Metric metric, const std::vector<float>& seg_dists,
                            const std::vector<size_t>& seg_lens);

/// \brief Bit-packed binary matrix for fast Hamming scans.
///
/// Ground-truth construction over Hamming datasets is ~30x faster through
/// 64-bit popcounts than through float compares; the float representation
/// is still what feeds the neural models.
class BitMatrix {
 public:
  BitMatrix() = default;

  /// Packs `m` by thresholding entries at 0.5.
  static BitMatrix FromMatrix(const Matrix& m);

  size_t rows() const { return rows_; }
  size_t dim() const { return dim_; }
  size_t words_per_row() const { return words_per_row_; }

  const uint64_t* Row(size_t r) const {
    return words_.data() + r * words_per_row_;
  }

  /// Packs one external float vector into the row layout of this matrix.
  std::vector<uint64_t> PackVector(const float* v) const;

  /// Raw Hamming distance (mismatch count) between row r and packed `q`.
  uint32_t HammingRaw(size_t r, const uint64_t* q) const;

  /// Normalized Hamming distance in [0,1].
  float HammingNormalized(size_t r, const uint64_t* q) const {
    return static_cast<float>(HammingRaw(r, q)) / static_cast<float>(dim_);
  }

 private:
  size_t rows_ = 0;
  size_t dim_ = 0;
  size_t words_per_row_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace simcard

#endif  // SIMCARD_DIST_METRIC_H_
