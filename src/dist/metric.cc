#include "dist/metric.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace simcard {

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL1:
      return "L1";
    case Metric::kL2:
      return "L2";
    case Metric::kCosine:
      return "Cosine";
    case Metric::kAngular:
      return "Angular";
    case Metric::kHamming:
      return "Hamming";
  }
  return "?";
}

Result<Metric> ParseMetric(const std::string& name) {
  if (name == "L1" || name == "l1") return Metric::kL1;
  if (name == "L2" || name == "l2" || name == "euclidean") return Metric::kL2;
  if (name == "Cosine" || name == "cosine") return Metric::kCosine;
  if (name == "Angular" || name == "angular") return Metric::kAngular;
  if (name == "Hamming" || name == "hamming") return Metric::kHamming;
  return Status::InvalidArgument("unknown metric: " + name);
}

float DotProduct(const float* a, const float* b, size_t d) {
  float acc = 0.0f;
  for (size_t i = 0; i < d; ++i) acc += a[i] * b[i];
  return acc;
}

float L2Squared(const float* a, const float* b, size_t d) {
  float acc = 0.0f;
  for (size_t i = 0; i < d; ++i) {
    const float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

float Distance(const float* a, const float* b, size_t d, Metric metric) {
  switch (metric) {
    case Metric::kL1: {
      float acc = 0.0f;
      for (size_t i = 0; i < d; ++i) acc += std::fabs(a[i] - b[i]);
      return acc;
    }
    case Metric::kL2:
      return std::sqrt(L2Squared(a, b, d));
    case Metric::kCosine: {
      const float dot = DotProduct(a, b, d);
      const float na = std::sqrt(DotProduct(a, a, d));
      const float nb = std::sqrt(DotProduct(b, b, d));
      if (na == 0.0f || nb == 0.0f) return 1.0f;
      return 1.0f - dot / (na * nb);
    }
    case Metric::kAngular: {
      const float dot = DotProduct(a, b, d);
      const float na = std::sqrt(DotProduct(a, a, d));
      const float nb = std::sqrt(DotProduct(b, b, d));
      float c = (na == 0.0f || nb == 0.0f) ? 0.0f : dot / (na * nb);
      c = std::min(1.0f, std::max(-1.0f, c));
      return std::acos(c) / static_cast<float>(M_PI);
    }
    case Metric::kHamming: {
      uint32_t mismatches = 0;
      for (size_t i = 0; i < d; ++i) {
        // Binary data is stored as 0.0/1.0 floats; compare as booleans.
        mismatches += (a[i] >= 0.5f) != (b[i] >= 0.5f);
      }
      return static_cast<float>(mismatches) / static_cast<float>(d);
    }
  }
  return 0.0f;
}

Matrix BatchDistances(const Matrix& queries, const Matrix& points,
                      Metric metric) {
  assert(queries.cols() == points.cols());
  const size_t d = queries.cols();
  const size_t nq = queries.rows();
  const size_t np = points.rows();
  Matrix out = Matrix::Uninit(nq, np);

  // Per-row norms are pair-invariant for the normalized metrics; computing
  // them once per row (with the same sqrt(DotProduct(v, v, d)) expression
  // Distance() uses) keeps the entries bitwise identical while removing two
  // thirds of the inner-loop work.
  std::vector<float> qnorm;
  std::vector<float> pnorm;
  if (metric == Metric::kCosine || metric == Metric::kAngular) {
    qnorm.resize(nq);
    for (size_t i = 0; i < nq; ++i) {
      qnorm[i] = std::sqrt(DotProduct(queries.Row(i), queries.Row(i), d));
    }
    pnorm.resize(np);
    for (size_t j = 0; j < np; ++j) {
      pnorm[j] = std::sqrt(DotProduct(points.Row(j), points.Row(j), d));
    }
  }

  // Block both loops so a tile of point rows stays cache-hot across a tile
  // of query rows. 32x32 float pairs at typical dims (<= 1k) fit in L2.
  constexpr size_t kBlock = 32;
  for (size_t ib = 0; ib < nq; ib += kBlock) {
    const size_t iend = std::min(nq, ib + kBlock);
    for (size_t jb = 0; jb < np; jb += kBlock) {
      const size_t jend = std::min(np, jb + kBlock);
      for (size_t i = ib; i < iend; ++i) {
        const float* q = queries.Row(i);
        float* dst = out.Row(i);
        for (size_t j = jb; j < jend; ++j) {
          const float* p = points.Row(j);
          switch (metric) {
            case Metric::kL1: {
              float acc = 0.0f;
              for (size_t c = 0; c < d; ++c) acc += std::fabs(q[c] - p[c]);
              dst[j] = acc;
              break;
            }
            case Metric::kL2:
              dst[j] = std::sqrt(L2Squared(q, p, d));
              break;
            case Metric::kCosine: {
              if (qnorm[i] == 0.0f || pnorm[j] == 0.0f) {
                dst[j] = 1.0f;
                break;
              }
              const float dot = DotProduct(q, p, d);
              dst[j] = 1.0f - dot / (qnorm[i] * pnorm[j]);
              break;
            }
            case Metric::kAngular: {
              float c = (qnorm[i] == 0.0f || pnorm[j] == 0.0f)
                            ? 0.0f
                            : DotProduct(q, p, d) / (qnorm[i] * pnorm[j]);
              c = std::min(1.0f, std::max(-1.0f, c));
              dst[j] = std::acos(c) / static_cast<float>(M_PI);
              break;
            }
            case Metric::kHamming: {
              uint32_t mismatches = 0;
              for (size_t c = 0; c < d; ++c) {
                mismatches += (q[c] >= 0.5f) != (p[c] >= 0.5f);
              }
              dst[j] = static_cast<float>(mismatches) / static_cast<float>(d);
              break;
            }
          }
        }
      }
    }
  }
  return out;
}

void NormalizeRow(float* v, size_t d) {
  float norm = std::sqrt(DotProduct(v, v, d));
  if (norm <= 0.0f) return;
  const float inv = 1.0f / norm;
  for (size_t i = 0; i < d; ++i) v[i] *= inv;
}

float MergeSegmentDistances(Metric metric, const std::vector<float>& seg_dists,
                            const std::vector<size_t>& seg_lens) {
  switch (metric) {
    case Metric::kL1: {
      float acc = 0.0f;
      for (float s : seg_dists) acc += s;
      return acc;
    }
    case Metric::kL2: {
      float acc = 0.0f;
      for (float s : seg_dists) acc += s * s;
      return std::sqrt(acc);
    }
    case Metric::kHamming: {
      assert(seg_lens.size() == seg_dists.size());
      float mismatches = 0.0f;
      size_t total = 0;
      for (size_t i = 0; i < seg_dists.size(); ++i) {
        mismatches += seg_dists[i] * static_cast<float>(seg_lens[i]);
        total += seg_lens[i];
      }
      return mismatches / static_cast<float>(total);
    }
    case Metric::kCosine: {
      // seg_dists holds per-segment partial dot products of unit vectors.
      float dot = 0.0f;
      for (float s : seg_dists) dot += s;
      return 1.0f - dot;
    }
    case Metric::kAngular: {
      float dot = 0.0f;
      for (float s : seg_dists) dot += s;
      dot = std::min(1.0f, std::max(-1.0f, dot));
      return std::acos(dot) / static_cast<float>(M_PI);
    }
  }
  return 0.0f;
}

BitMatrix BitMatrix::FromMatrix(const Matrix& m) {
  BitMatrix out;
  out.rows_ = m.rows();
  out.dim_ = m.cols();
  out.words_per_row_ = (m.cols() + 63) / 64;
  out.words_.assign(out.rows_ * out.words_per_row_, 0);
  for (size_t r = 0; r < out.rows_; ++r) {
    const float* src = m.Row(r);
    uint64_t* dst = out.words_.data() + r * out.words_per_row_;
    for (size_t c = 0; c < out.dim_; ++c) {
      if (src[c] >= 0.5f) dst[c >> 6] |= uint64_t{1} << (c & 63);
    }
  }
  return out;
}

std::vector<uint64_t> BitMatrix::PackVector(const float* v) const {
  std::vector<uint64_t> out(words_per_row_, 0);
  for (size_t c = 0; c < dim_; ++c) {
    if (v[c] >= 0.5f) out[c >> 6] |= uint64_t{1} << (c & 63);
  }
  return out;
}

uint32_t BitMatrix::HammingRaw(size_t r, const uint64_t* q) const {
  const uint64_t* row = Row(r);
  uint32_t acc = 0;
  for (size_t w = 0; w < words_per_row_; ++w) {
    acc += static_cast<uint32_t>(std::popcount(row[w] ^ q[w]));
  }
  return acc;
}

}  // namespace simcard
