// Exact cardinality ground truth.
//
// Label construction is the dominant offline cost in the paper (Exp-10:
// "the construction computes the distances between all pairs of datasets and
// queries"). We compute each query's distances to the whole dataset once and
// keep them sorted — overall and per data segment — after which the exact
// card(q, tau) for *any* tau is a binary search, and thresholds can be
// derived from target selectivities by rank lookup (how the paper picks its
// 10 thresholds per query).
#ifndef SIMCARD_INDEX_GROUND_TRUTH_H_
#define SIMCARD_INDEX_GROUND_TRUTH_H_

#include <vector>

#include "cluster/segmentation.h"
#include "data/dataset.h"

namespace simcard {

/// \brief Sorted distance lists for one query: whole dataset and, when a
/// segmentation was supplied, per segment.
struct QueryDistanceProfile {
  std::vector<float> sorted_all;                  ///< ascending
  std::vector<std::vector<float>> sorted_by_seg;  ///< may be empty

  /// Exact card(q, tau): number of objects with distance <= tau.
  size_t CountAt(float tau) const;

  /// Exact per-segment cardinality card^{[s]}(q, tau).
  size_t SegCountAt(size_t s, float tau) const;

  /// Smallest threshold whose cardinality is >= ceil(selectivity * n);
  /// clamps to the extremes. This inverts selectivity -> tau by rank.
  float TauForSelectivity(double selectivity) const;
};

/// \brief Brute-force (but bit-accelerated for Hamming) exact counter.
class GroundTruth {
 public:
  explicit GroundTruth(const Dataset* dataset);

  /// Writes all n distances from `q` into `out` (resized).
  void ComputeAllDistances(const float* q, std::vector<float>* out) const;

  /// Exact cardinality by a full scan.
  size_t Count(const float* q, float tau) const;

  /// Builds the sorted profile; includes per-segment lists when `seg` is
  /// non-null. Cost: one full scan + sorts.
  QueryDistanceProfile BuildProfile(const float* q,
                                    const Segmentation* seg) const;

  const Dataset& dataset() const { return *dataset_; }

 private:
  const Dataset* dataset_;  // borrowed; must outlive this object
};

}  // namespace simcard

#endif  // SIMCARD_INDEX_GROUND_TRUTH_H_
