#include "index/pivot_index.h"

#include <cmath>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace simcard {

Result<ExactPivotIndex> ExactPivotIndex::Build(const Dataset* dataset,
                                               const Options& options) {
  if (dataset == nullptr || dataset->size() == 0) {
    return Status::InvalidArgument("ExactPivotIndex: empty dataset");
  }
  if (options.num_pivots == 0) {
    return Status::InvalidArgument("ExactPivotIndex: need at least 1 pivot");
  }
  ExactPivotIndex index;
  index.dataset_ = dataset;
  Rng rng(options.seed);
  index.pivot_rows_ =
      rng.SampleWithoutReplacement(dataset->size(),
                                   std::min(options.num_pivots,
                                            dataset->size()));
  const size_t n = dataset->size();
  const size_t m = index.pivot_rows_.size();
  index.pivot_dists_.resize(m * n);
  float* table = index.pivot_dists_.data();
  for (size_t p = 0; p < m; ++p) {
    const float* pivot = dataset->Point(index.pivot_rows_[p]);
    ParallelFor(0, n, [&, p](size_t i) {
      table[p * n + i] = dataset->DistanceTo(pivot, i);
    });
  }
  return index;
}

size_t ExactPivotIndex::Count(const float* q, float tau) const {
  const size_t n = dataset_->size();
  const size_t m = pivot_rows_.size();
  // Distances from the query to every pivot.
  std::vector<float> qp(m);
  for (size_t p = 0; p < m; ++p) {
    qp[p] = Distance(q, dataset_->Point(pivot_rows_[p]), dataset_->dim(),
                     dataset_->metric());
  }
  // Conservative slack on both bounds: quantized metrics (normalized
  // Hamming = k/d) land exactly on threshold values, where float rounding
  // of |a/d - b/d| vs tau = t/d could otherwise flip a comparison and
  // wrongly prune a true match. Borderline points fall through to the
  // exact distance check, so exactness is preserved at negligible cost.
  constexpr float kBoundSlack = 1e-5f;
  size_t count = 0;
  size_t pruned = 0;
  for (size_t i = 0; i < n; ++i) {
    // Triangle-inequality bounds from every pivot:
    //   lower: |d(q,pivot) - d(pivot,i)|, upper: d(q,pivot) + d(pivot,i).
    bool exclude = false;
    bool include = false;
    for (size_t p = 0; p < m; ++p) {
      const float dpi = pivot_dists_[p * n + i];
      const float lower = std::fabs(qp[p] - dpi);
      if (lower > tau + kBoundSlack) {
        exclude = true;
        break;
      }
      const float upper = qp[p] + dpi;
      if (upper <= tau - kBoundSlack) {
        include = true;
        break;
      }
    }
    if (exclude) {
      ++pruned;
      continue;
    }
    if (include) {
      ++pruned;
      ++count;
      continue;
    }
    if (dataset_->DistanceTo(q, i) <= tau) ++count;
  }
  last_prune_fraction_ = static_cast<double>(pruned) / static_cast<double>(n);
  return count;
}

}  // namespace simcard
