#include "index/ground_truth.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/thread_pool.h"

namespace simcard {

size_t QueryDistanceProfile::CountAt(float tau) const {
  return static_cast<size_t>(
      std::upper_bound(sorted_all.begin(), sorted_all.end(), tau) -
      sorted_all.begin());
}

size_t QueryDistanceProfile::SegCountAt(size_t s, float tau) const {
  assert(s < sorted_by_seg.size());
  const auto& v = sorted_by_seg[s];
  return static_cast<size_t>(std::upper_bound(v.begin(), v.end(), tau) -
                             v.begin());
}

float QueryDistanceProfile::TauForSelectivity(double selectivity) const {
  if (sorted_all.empty()) return 0.0f;
  const size_t n = sorted_all.size();
  size_t rank = static_cast<size_t>(
      std::ceil(selectivity * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted_all[rank - 1];
}

GroundTruth::GroundTruth(const Dataset* dataset) : dataset_(dataset) {}

void GroundTruth::ComputeAllDistances(const float* q,
                                      std::vector<float>* out) const {
  const size_t n = dataset_->size();
  out->resize(n);
  float* dists = out->data();
  if (dataset_->metric() == Metric::kHamming) {
    const BitMatrix& bits = dataset_->bits();
    const auto packed = bits.PackVector(q);
    ParallelFor(0, n, [&](size_t i) {
      dists[i] = bits.HammingNormalized(i, packed.data());
    });
    return;
  }
  const size_t d = dataset_->dim();
  const Metric metric = dataset_->metric();
  ParallelFor(0, n, [&](size_t i) {
    dists[i] = Distance(q, dataset_->Point(i), d, metric);
  });
}

size_t GroundTruth::Count(const float* q, float tau) const {
  std::vector<float> dists;
  ComputeAllDistances(q, &dists);
  size_t count = 0;
  for (float dist : dists) count += dist <= tau;
  return count;
}

QueryDistanceProfile GroundTruth::BuildProfile(const float* q,
                                               const Segmentation* seg) const {
  QueryDistanceProfile profile;
  std::vector<float> dists;
  ComputeAllDistances(q, &dists);
  if (seg != nullptr) {
    profile.sorted_by_seg.resize(seg->num_segments());
    for (size_t s = 0; s < seg->num_segments(); ++s) {
      profile.sorted_by_seg[s].reserve(seg->members[s].size());
    }
    for (size_t i = 0; i < dists.size(); ++i) {
      profile.sorted_by_seg[seg->assignment[i]].push_back(dists[i]);
    }
    for (auto& v : profile.sorted_by_seg) std::sort(v.begin(), v.end());
  }
  profile.sorted_all = std::move(dists);
  std::sort(profile.sorted_all.begin(), profile.sorted_all.end());
  return profile;
}

}  // namespace simcard
