// Exact threshold-search counting with pivot pruning.
//
// Stand-in for SimSelect [44] in the paper's latency comparison (Table 6):
// an *exact* method whose cost grows with the dataset, against which the
// learned estimators' constant-time inference is contrasted. Pruning uses
// the triangle inequality |d(q,p) - d(pivot,p)| <= d(q,pivot) <= ..., valid
// for the metric distances used here (L1, L2, angular, Hamming).
#ifndef SIMCARD_INDEX_PIVOT_INDEX_H_
#define SIMCARD_INDEX_PIVOT_INDEX_H_

#include <vector>

#include "data/dataset.h"

namespace simcard {

/// \brief Pivot table over a dataset supporting exact Count(q, tau).
class ExactPivotIndex {
 public:
  /// \brief Options for Build.
  struct Options {
    size_t num_pivots = 8;
    uint64_t seed = 23;
  };

  /// Precomputes pivot-to-point distances (O(num_pivots * n) space/time).
  static Result<ExactPivotIndex> Build(const Dataset* dataset,
                                       const Options& options);

  /// Exact cardinality of the threshold query (q, tau).
  size_t Count(const float* q, float tau) const;

  /// Fraction of points whose distance computation was pruned on the last
  /// Count call (diagnostic for tests/benches).
  double last_prune_fraction() const { return last_prune_fraction_; }

  size_t num_pivots() const { return pivot_rows_.size(); }

 private:
  const Dataset* dataset_ = nullptr;  // borrowed
  std::vector<size_t> pivot_rows_;
  // pivot_dists_[p * n + i] = distance(pivot p, point i)
  std::vector<float> pivot_dists_;
  mutable double last_prune_fraction_ = 0.0;
};

}  // namespace simcard

#endif  // SIMCARD_INDEX_PIVOT_INDEX_H_
