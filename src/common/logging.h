// Minimal leveled logging to stderr.
//
// Usage:
//   SIMCARD_LOG(INFO) << "trained " << n << " local models";
// emits
//   [I 14:02:31.208 t0 gl_estimator.cc:171] trained 16 local models
// where "t0" is a compact per-process thread id (main thread is t0, worker
// threads number up in spawn order) and the timestamp is local wall-clock.
// The default level is kInfo; set SIMCARD_LOG_LEVEL=debug|info|warn|error in
// the environment, or call SetLogLevel(), to change it. Logging is
// synchronized so interleaved worker-thread messages stay line-atomic.
#ifndef SIMCARD_COMMON_LOGGING_H_
#define SIMCARD_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace simcard {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level (initialized once from the
/// SIMCARD_LOG_LEVEL environment variable).
LogLevel GetLogLevel();

namespace internal {

/// One in-flight log statement; flushes its buffer on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace simcard

#define SIMCARD_SEVERITY_DEBUG ::simcard::LogLevel::kDebug
#define SIMCARD_SEVERITY_INFO ::simcard::LogLevel::kInfo
#define SIMCARD_SEVERITY_WARN ::simcard::LogLevel::kWarn
#define SIMCARD_SEVERITY_ERROR ::simcard::LogLevel::kError

#define SIMCARD_LOG(severity)                                 \
  if (SIMCARD_SEVERITY_##severity >= ::simcard::GetLogLevel())\
  ::simcard::internal::LogMessage(SIMCARD_SEVERITY_##severity,\
                                  __FILE__, __LINE__)         \
      .stream()

#endif  // SIMCARD_COMMON_LOGGING_H_
