// Status / Result types for fallible operations.
//
// simcard follows the RocksDB convention of returning a Status object from
// operations that can fail for data-dependent reasons (bad configuration,
// malformed files, dimension mismatches discovered at runtime), and reserving
// assertions for programmer errors. Exceptions are not used.
#ifndef SIMCARD_COMMON_STATUS_H_
#define SIMCARD_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace simcard {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kIoError = 6,
  kUnimplemented = 7,
  kUnavailable = 8,        ///< transient overload; retry later (load shedding)
  kDeadlineExceeded = 9,   ///< the request's deadline passed before completion
};

/// Returns a short human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is empty in the common OK case).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Value-or-error result. Holds T when ok(), a Status otherwise.
///
/// Accessing value() on a failed result aborts in debug builds; callers are
/// expected to check ok() first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace simcard

/// Propagates a non-OK status to the caller.
#define SIMCARD_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::simcard::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // SIMCARD_COMMON_STATUS_H_
