#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace simcard {
namespace {

// SplitMix64, used to expand a single seed into the 256-bit xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat() {
  return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Debiased modulo via rejection sampling on the top of the range.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

int Rng::NextGeometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return static_cast<int>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::Fork() { return Rng(NextU64()); }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  if (k >= n) {
    Shuffle(&all);
    return all;
  }
  // Partial Fisher-Yates: the first k slots are a uniform sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace simcard
