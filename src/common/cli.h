// Tiny command-line flag parser used by the bench and example binaries.
//
// Supports "--name=value" and "--name value" forms plus bare "--flag" for
// booleans. Unknown flags are reported so typos in experiment sweeps fail
// loudly instead of silently running defaults.
#ifndef SIMCARD_COMMON_CLI_H_
#define SIMCARD_COMMON_CLI_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace simcard {

/// \brief Parsed command-line flags.
class CommandLine {
 public:
  /// Parses argv. `known_flags` lists every accepted flag name (without the
  /// leading dashes); an unknown flag yields InvalidArgument.
  static Result<CommandLine> Parse(int argc, char** argv,
                                   const std::vector<std::string>& known_flags);

  bool Has(const std::string& name) const;

  /// Accessors return `fallback` when the flag was not given.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  /// Splits a comma-separated flag value; returns `fallback` if absent.
  std::vector<std::string> GetStringList(
      const std::string& name, const std::vector<std::string>& fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace simcard

#endif  // SIMCARD_COMMON_CLI_H_
