// Deterministic fault injection for robustness tests.
//
// A fault *site* is a short dotted name compiled into the code path that can
// fail ("io.load", "gl.local_eval", ...). Tests — or an operator via the
// SIMCARD_FAULT_* environment knobs — arm a set of sites; each time an armed
// site is reached, a seeded per-site decision determines whether the fault
// fires. Decisions depend only on (seed, site, per-site hit count), so a
// failing run replays exactly.
//
// Cost when disarmed: one relaxed atomic load and a predicted branch per
// site. Building with -DSIMCARD_FAULT_INJECTION=OFF (which defines
// SIMCARD_NO_FAULT_INJECTION) compiles every site down to `false` so release
// hot paths carry no trace of the harness.
//
// Environment knobs (read once, at first use; the CLI also exposes --fault):
//   SIMCARD_FAULT_POINTS  comma-separated site names, or "*" for all sites
//   SIMCARD_FAULT_PROB    firing probability per hit (default 1.0)
//   SIMCARD_FAULT_SEED    decision seed (default 0)
//   SIMCARD_FAULT_MAX     stop firing after this many injections (default inf)
//   SIMCARD_FAULT_SKIP    let the first N armed hits pass before firing
#ifndef SIMCARD_COMMON_FAULT_H_
#define SIMCARD_COMMON_FAULT_H_

#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"

namespace simcard {
namespace fault {

/// \brief What to inject and when. See the file comment for semantics.
struct FaultConfig {
  /// Comma-separated site names; "*" arms every site; empty disarms.
  std::string sites;
  double probability = 1.0;
  uint64_t seed = 0;
  uint64_t max_injections = std::numeric_limits<uint64_t>::max();
  uint64_t skip_first = 0;
};

#ifndef SIMCARD_NO_FAULT_INJECTION

/// True when any site is armed (relaxed load; the disarmed fast path).
bool Enabled();

/// True when the fault at `site` fires for this hit. Always false while
/// disarmed. Thread-safe; increments the site's hit counter when armed.
bool ShouldFail(const char* site);

#else

constexpr bool Enabled() { return false; }
constexpr bool ShouldFail(const char* /*site*/) { return false; }

#endif  // SIMCARD_NO_FAULT_INJECTION

/// Arms the harness programmatically (tests). Resets hit/injection counts.
void Configure(const FaultConfig& config);

/// Parses "points=a,b;prob=0.5;seed=7;max=3;skip=1" (any subset, any order)
/// and arms the harness. The CLI's --fault flag routes here.
Status ConfigureFromSpec(const std::string& spec);

/// Disarms every site and resets counters.
void Disable();

/// Total faults fired since the last Configure/Disable.
uint64_t InjectionCount();

/// Convenience for injected failures: a Status tagged as injected so logs
/// and tests can tell synthetic faults from real ones.
Status InjectedError(const char* site);

}  // namespace fault
}  // namespace simcard

#endif  // SIMCARD_COMMON_FAULT_H_
