// Checksummed, versioned, sectioned container for persisted models ("v2"
// model format).
//
// Layout (all integers little-endian, written via Serializer):
//
//   magic            8 bytes  "SIMCKV2\n"
//   format_version   u32      currently 2
//   section_count    u32
//   payload_length   u64      total bytes of all section payloads
//   section table    per section: name (u64 len + bytes),
//                                 payload_len (u64), crc32 (u32)
//   header_crc       u32      CRC-32 of every byte above
//   payloads         section payloads, concatenated in table order
//
// Guarantees: any truncation, any bit flip — in the header, the table, or a
// payload — is detected before a single payload byte is interpreted (header
// CRC covers the table; per-section CRCs cover payloads). Readers locate
// sections by name, so new sections can be appended without breaking old
// readers and unknown sections are skipped (forward compatibility).
//
// Files that do not begin with the magic are not an error at Open-time
// detection level: callers probe with CheckedFileReader::LooksChecked and
// fall back to their legacy (v1, unchecksummed) parse for old files.
#ifndef SIMCARD_COMMON_CHECKED_FILE_H_
#define SIMCARD_COMMON_CHECKED_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace simcard {

/// \brief Accumulates named sections and writes the checked container.
class CheckedFileWriter {
 public:
  /// Returns the payload serializer for a new section. Pointers stay valid
  /// until the writer is destroyed; section order is preserved.
  Serializer* AddSection(const std::string& name);

  /// Assembles header + table + payloads and writes them atomically (via
  /// Serializer::SaveToFile's tmp+rename).
  Status Save(const std::string& path) const;

  /// The assembled container as bytes (for tests and in-memory use).
  std::vector<uint8_t> Assemble() const;

 private:
  // unique_ptr keeps AddSection's returned pointers stable across growth.
  std::vector<std::pair<std::string, std::unique_ptr<Serializer>>> sections_;
};

/// \brief Validated view over a checked container.
class CheckedFileReader {
 public:
  /// Section metadata; `offset` is the payload's byte offset in the file —
  /// exposed so corruption tests can target exact section boundaries.
  struct SectionInfo {
    std::string name;
    size_t offset = 0;
    size_t size = 0;
    uint32_t crc = 0;
  };

  /// True when `bytes` starts with the v2 magic (legacy-format probe).
  static bool LooksChecked(const std::vector<uint8_t>& bytes);

  /// Parses and validates the header and section table (magic, version,
  /// lengths, header CRC). Payload CRCs are checked per section on access.
  static Result<CheckedFileReader> FromBytes(std::vector<uint8_t> bytes);

  /// Reads `path` and parses it as a checked container.
  static Result<CheckedFileReader> Open(const std::string& path);

  const std::vector<SectionInfo>& sections() const { return sections_; }
  bool HasSection(const std::string& name) const;

  /// Validates the named section's CRC and returns a deserializer over its
  /// payload. NotFound for unknown names, IoError ("checksum mismatch") for
  /// corrupt payloads.
  Result<Deserializer> OpenSection(const std::string& name) const;

  /// Validates every section's CRC.
  Status VerifyAll() const;

 private:
  CheckedFileReader() = default;

  std::vector<uint8_t> bytes_;
  std::vector<SectionInfo> sections_;
};

}  // namespace simcard

#endif  // SIMCARD_COMMON_CHECKED_FILE_H_
