#include "common/serialize.h"

#include <cstdio>

#include "common/fault.h"

namespace simcard {

void Serializer::WriteRaw(const void* data, size_t size) {
  if (size == 0) return;
  const size_t old_size = bytes_.size();
  bytes_.resize(old_size + size);
  std::memcpy(bytes_.data() + old_size, data, size);
}

Status Serializer::SaveToFile(const std::string& path) const {
  // Write-to-temp + rename: a failed save (disk full, crash, injected
  // fault) leaves any existing file at `path` untouched.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + tmp);
  }
  size_t written = bytes_.empty()
                       ? 0
                       : std::fwrite(bytes_.data(), 1, bytes_.size(), f);
  if (fault::ShouldFail("io.save")) written = bytes_.size() + 1;  // short write
  int close_rc = std::fclose(f);
  if (written != bytes_.size() || close_rc != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("short write to: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " -> " + path);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  if (fault::ShouldFail("io.load")) {
    return fault::InjectedError("io.load");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("cannot stat: " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t read = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    return Status::IoError("short read from: " + path);
  }
  return bytes;
}

Result<Deserializer> Deserializer::FromFile(const std::string& path) {
  auto bytes_or = ReadFileBytes(path);
  if (!bytes_or.ok()) return bytes_or.status();
  return Deserializer(std::move(bytes_or).value());
}

Status Deserializer::ReadString(std::string* s) {
  uint64_t n = 0;
  SIMCARD_RETURN_IF_ERROR(ReadU64(&n));
  if (n > remaining()) {
    return Status::OutOfRange("string length " + std::to_string(n) +
                              " exceeds remaining buffer (" +
                              std::to_string(remaining()) + " bytes)");
  }
  if (fault::ShouldFail("deserialize.alloc")) {
    return fault::InjectedError("deserialize.alloc");
  }
  s->resize(n);
  if (n == 0) return Status::OK();
  return ReadRaw(s->data(), n);
}

Status Deserializer::ReadFloatVector(std::vector<float>* v) {
  uint64_t n = 0;
  SIMCARD_RETURN_IF_ERROR(ReadU64(&n));
  if (n > remaining() / sizeof(float)) {
    return Status::OutOfRange("float vector length " + std::to_string(n) +
                              " exceeds remaining buffer (" +
                              std::to_string(remaining()) + " bytes)");
  }
  if (fault::ShouldFail("deserialize.alloc")) {
    return fault::InjectedError("deserialize.alloc");
  }
  v->resize(n);
  if (n == 0) return Status::OK();
  return ReadRaw(v->data(), n * sizeof(float));
}

Status Deserializer::ReadU64Vector(std::vector<uint64_t>* v) {
  uint64_t n = 0;
  SIMCARD_RETURN_IF_ERROR(ReadU64(&n));
  if (n > remaining() / sizeof(uint64_t)) {
    return Status::OutOfRange("u64 vector length " + std::to_string(n) +
                              " exceeds remaining buffer (" +
                              std::to_string(remaining()) + " bytes)");
  }
  if (fault::ShouldFail("deserialize.alloc")) {
    return fault::InjectedError("deserialize.alloc");
  }
  v->resize(n);
  if (n == 0) return Status::OK();
  return ReadRaw(v->data(), n * sizeof(uint64_t));
}

}  // namespace simcard
