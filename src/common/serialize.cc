#include "common/serialize.h"

#include <cstdio>

namespace simcard {

void Serializer::WriteRaw(const void* data, size_t size) {
  if (size == 0) return;
  const size_t old_size = bytes_.size();
  bytes_.resize(old_size + size);
  std::memcpy(bytes_.data() + old_size, data, size);
}

Status Serializer::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  size_t written = bytes_.empty()
                       ? 0
                       : std::fwrite(bytes_.data(), 1, bytes_.size(), f);
  int close_rc = std::fclose(f);
  if (written != bytes_.size() || close_rc != 0) {
    return Status::IoError("short write to: " + path);
  }
  return Status::OK();
}

Result<Deserializer> Deserializer::FromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("cannot stat: " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t read = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    return Status::IoError("short read from: " + path);
  }
  return Deserializer(std::move(bytes));
}

Status Deserializer::ReadString(std::string* s) {
  uint64_t n = 0;
  SIMCARD_RETURN_IF_ERROR(ReadU64(&n));
  s->resize(n);
  if (n == 0) return Status::OK();
  return ReadRaw(s->data(), n);
}

Status Deserializer::ReadFloatVector(std::vector<float>* v) {
  uint64_t n = 0;
  SIMCARD_RETURN_IF_ERROR(ReadU64(&n));
  v->resize(n);
  if (n == 0) return Status::OK();
  return ReadRaw(v->data(), n * sizeof(float));
}

Status Deserializer::ReadU64Vector(std::vector<uint64_t>* v) {
  uint64_t n = 0;
  SIMCARD_RETURN_IF_ERROR(ReadU64(&n));
  v->resize(n);
  if (n == 0) return Status::OK();
  return ReadRaw(v->data(), n * sizeof(uint64_t));
}

}  // namespace simcard
