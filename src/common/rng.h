// Deterministic random number generation.
//
// Every stochastic component in simcard (data generators, K-means init,
// weight init, mini-batch shuffling, threshold sampling) draws from an Rng
// seeded explicitly by the caller, so experiments are reproducible bit-for-bit
// across runs. The generator is xoshiro256**, which is fast, has a 256-bit
// state, and supports cheap stream splitting via Fork().
#ifndef SIMCARD_COMMON_RNG_H_
#define SIMCARD_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace simcard {

/// \brief Seeded pseudo-random generator (xoshiro256**).
class Rng {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64 random bits.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [0, 1).
  float NextFloat();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box-Muller, cached pair).
  double NextGaussian();

  /// Bernoulli draw with success probability `p`.
  bool NextBernoulli(double p);

  /// Geometric draw: number of failures before the first success, with
  /// success probability `p` in (0, 1].
  int NextGeometric(double p);

  /// Derives an independent child generator; the parent stream advances by
  /// one draw. Useful for handing deterministic sub-streams to workers.
  Rng Fork();

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices uniformly from [0, n). If k >= n, returns
  /// all indices 0..n-1. Order of the result is random.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace simcard

#endif  // SIMCARD_COMMON_RNG_H_
