// Wall-clock timing helper used by the benchmark harnesses and the
// training-time experiments (Figure 14 / Table 6 of the paper).
#ifndef SIMCARD_COMMON_STOPWATCH_H_
#define SIMCARD_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace simcard {

/// \brief Monotonic stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart();

  /// Microseconds elapsed since construction or the last Restart().
  int64_t ElapsedMicros() const;

  /// Milliseconds elapsed (fractional).
  double ElapsedMillis() const;

  /// Seconds elapsed (fractional).
  double ElapsedSeconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace simcard

#endif  // SIMCARD_COMMON_STOPWATCH_H_
