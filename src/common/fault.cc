#include "common/fault.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

namespace simcard {
namespace fault {
namespace {

// splitmix64: cheap, well-mixed hash for the per-hit firing decision.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (unsigned char c : s) {
    h = (h ^ c) * 1099511628211ull;
  }
  return h;
}

struct State {
  std::mutex mu;
  FaultConfig config;
  bool match_all = false;
  std::vector<std::string> site_list;
  std::map<std::string, uint64_t> hits;  // armed hits per site
  uint64_t armed_hits = 0;               // across all armed sites
  uint64_t injected = 0;
};

State& GetState() {
  static State* state = new State();
  return *state;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    std::string item = csv.substr(start, comma - start);
    if (!item.empty()) out.push_back(std::move(item));
    start = comma + 1;
  }
  return out;
}

void ApplyLocked(State* state, const FaultConfig& config) {
  state->config = config;
  state->site_list = SplitList(config.sites);
  state->match_all = false;
  for (const auto& s : state->site_list) {
    if (s == "*") state->match_all = true;
  }
  state->hits.clear();
  state->armed_hits = 0;
  state->injected = 0;
  EnabledFlag().store(!state->site_list.empty(),
                      std::memory_order_relaxed);
}

// One-time import of the SIMCARD_FAULT_* environment knobs. Runs on the
// first ShouldFail so library users get env gating without an init call.
void InitFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* points = std::getenv("SIMCARD_FAULT_POINTS");
    if (points == nullptr || points[0] == '\0') return;
    FaultConfig config;
    config.sites = points;
    if (const char* v = std::getenv("SIMCARD_FAULT_PROB")) {
      config.probability = std::atof(v);
    }
    if (const char* v = std::getenv("SIMCARD_FAULT_SEED")) {
      config.seed = std::strtoull(v, nullptr, 10);
    }
    if (const char* v = std::getenv("SIMCARD_FAULT_MAX")) {
      config.max_injections = std::strtoull(v, nullptr, 10);
    }
    if (const char* v = std::getenv("SIMCARD_FAULT_SKIP")) {
      config.skip_first = std::strtoull(v, nullptr, 10);
    }
    State& state = GetState();
    std::lock_guard<std::mutex> lock(state.mu);
    ApplyLocked(&state, config);
  });
}

}  // namespace

#ifndef SIMCARD_NO_FAULT_INJECTION

bool Enabled() {
  InitFromEnvOnce();
  return EnabledFlag().load(std::memory_order_relaxed);
}

bool ShouldFail(const char* site) {
  if (!Enabled()) return false;
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  bool armed = state.match_all;
  if (!armed) {
    for (const auto& s : state.site_list) {
      if (s == site) {
        armed = true;
        break;
      }
    }
  }
  if (!armed) return false;
  const uint64_t hit = state.hits[site]++;
  if (state.armed_hits < state.config.skip_first) {
    ++state.armed_hits;
    return false;
  }
  ++state.armed_hits;
  if (state.injected >= state.config.max_injections) return false;
  // Deterministic per-hit decision from (seed, site, hit index).
  const uint64_t h = Mix64(state.config.seed ^ Mix64(HashString(site) + hit));
  const double roll =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  if (roll >= state.config.probability) return false;
  ++state.injected;
  return true;
}

#endif  // SIMCARD_NO_FAULT_INJECTION

void Configure(const FaultConfig& config) {
  InitFromEnvOnce();  // settle env init before overriding it
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  ApplyLocked(&state, config);
}

Status ConfigureFromSpec(const std::string& spec) {
  FaultConfig config;
  for (const std::string& part : [&spec] {
         std::vector<std::string> parts;
         size_t start = 0;
         while (start <= spec.size()) {
           size_t semi = spec.find(';', start);
           if (semi == std::string::npos) semi = spec.size();
           std::string item = spec.substr(start, semi - start);
           if (!item.empty()) parts.push_back(std::move(item));
           start = semi + 1;
         }
         return parts;
       }()) {
    const size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec entry needs key=value: " +
                                     part);
    }
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    if (key == "points" || key == "sites") {
      config.sites = value;
    } else if (key == "prob") {
      config.probability = std::atof(value.c_str());
    } else if (key == "seed") {
      config.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "max") {
      config.max_injections = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "skip") {
      config.skip_first = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      return Status::InvalidArgument("unknown fault spec key: " + key);
    }
  }
  if (config.sites.empty()) {
    return Status::InvalidArgument(
        "fault spec must name points=... (or sites=...)");
  }
  Configure(config);
  return Status::OK();
}

void Disable() {
  InitFromEnvOnce();
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  ApplyLocked(&state, FaultConfig{});
}

uint64_t InjectionCount() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.injected;
}

Status InjectedError(const char* site) {
  return Status::IoError(std::string("injected fault at ") + site);
}

}  // namespace fault
}  // namespace simcard
