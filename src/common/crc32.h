// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte ranges.
//
// Used by the checked model-file container (common/checked_file.h) to detect
// corruption in persisted models: every section payload and the file header
// carry a CRC that is validated before any byte is interpreted.
#ifndef SIMCARD_COMMON_CRC32_H_
#define SIMCARD_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace simcard {

/// CRC-32 of `size` bytes at `data`. `seed` chains incremental computation:
/// Crc32(b, n) == Crc32(b + k, n - k, Crc32(b, k)).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace simcard

#endif  // SIMCARD_COMMON_CRC32_H_
