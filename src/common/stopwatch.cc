#include "common/stopwatch.h"

namespace simcard {

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

int64_t Stopwatch::ElapsedMicros() const {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(now - start_)
      .count();
}

double Stopwatch::ElapsedMillis() const {
  return static_cast<double>(ElapsedMicros()) / 1000.0;
}

double Stopwatch::ElapsedSeconds() const {
  return static_cast<double>(ElapsedMicros()) / 1e6;
}

}  // namespace simcard
