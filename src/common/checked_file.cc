#include "common/checked_file.h"

#include <cstring>

#include "common/crc32.h"

namespace simcard {
namespace {

constexpr char kMagic[8] = {'S', 'I', 'M', 'C', 'K', 'V', '2', '\n'};
constexpr uint32_t kFormatVersion = 2;

}  // namespace

Serializer* CheckedFileWriter::AddSection(const std::string& name) {
  sections_.emplace_back(name, std::make_unique<Serializer>());
  return sections_.back().second.get();
}

std::vector<uint8_t> CheckedFileWriter::Assemble() const {
  Serializer header;
  header.WriteRawBytes(kMagic, sizeof(kMagic));
  header.WriteU32(kFormatVersion);
  header.WriteU32(static_cast<uint32_t>(sections_.size()));
  uint64_t payload_length = 0;
  for (const auto& [name, payload] : sections_) {
    payload_length += payload->bytes().size();
  }
  header.WriteU64(payload_length);
  for (const auto& [name, payload] : sections_) {
    header.WriteString(name);
    header.WriteU64(payload->bytes().size());
    header.WriteU32(
        Crc32(payload->bytes().data(), payload->bytes().size()));
  }
  header.WriteU32(Crc32(header.bytes().data(), header.bytes().size()));

  std::vector<uint8_t> out = header.bytes();
  out.reserve(out.size() + payload_length);
  for (const auto& [name, payload] : sections_) {
    out.insert(out.end(), payload->bytes().begin(), payload->bytes().end());
  }
  return out;
}

Status CheckedFileWriter::Save(const std::string& path) const {
  Serializer out;
  const std::vector<uint8_t> bytes = Assemble();
  out.WriteRawBytes(bytes.data(), bytes.size());
  return out.SaveToFile(path);
}

bool CheckedFileReader::LooksChecked(const std::vector<uint8_t>& bytes) {
  return bytes.size() >= sizeof(kMagic) &&
         std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0;
}

Result<CheckedFileReader> CheckedFileReader::FromBytes(
    std::vector<uint8_t> bytes) {
  if (!LooksChecked(bytes)) {
    return Status::InvalidArgument(
        "not a checked simcard container (bad magic)");
  }
  Deserializer in(bytes);  // copy: bytes_ keeps the original for payloads
  char magic[sizeof(kMagic)];
  SIMCARD_RETURN_IF_ERROR(in.ReadRawBytes(magic, sizeof(magic)));
  uint32_t version = 0;
  uint32_t section_count = 0;
  uint64_t payload_length = 0;
  SIMCARD_RETURN_IF_ERROR(in.ReadU32(&version));
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported checked-container version: " + std::to_string(version));
  }
  SIMCARD_RETURN_IF_ERROR(in.ReadU32(&section_count));
  SIMCARD_RETURN_IF_ERROR(in.ReadU64(&payload_length));

  CheckedFileReader reader;
  reader.sections_.reserve(section_count);
  uint64_t payload_seen = 0;
  for (uint32_t i = 0; i < section_count; ++i) {
    SectionInfo info;
    SIMCARD_RETURN_IF_ERROR(in.ReadString(&info.name));
    uint64_t size = 0;
    SIMCARD_RETURN_IF_ERROR(in.ReadU64(&size));
    SIMCARD_RETURN_IF_ERROR(in.ReadU32(&info.crc));
    info.size = size;
    payload_seen += size;
    reader.sections_.push_back(std::move(info));
  }
  if (payload_seen != payload_length) {
    return Status::IoError("checked container: section table sums to " +
                           std::to_string(payload_seen) +
                           " bytes but header declares " +
                           std::to_string(payload_length));
  }
  // The header CRC covers everything read so far; validate it before
  // trusting any of the table's offsets.
  const size_t header_end = in.offset();
  uint32_t header_crc = 0;
  SIMCARD_RETURN_IF_ERROR(in.ReadU32(&header_crc));
  if (Crc32(bytes.data(), header_end) != header_crc) {
    return Status::IoError("checked container: header checksum mismatch");
  }
  const size_t payload_start = in.offset();
  // Trailing bytes beyond the declared payloads are tolerated (future
  // writers may append data old readers don't know about); a file *shorter*
  // than the header promises is truncation.
  if (payload_length > bytes.size() - payload_start) {
    return Status::IoError(
        "checked container: truncated (header declares " +
        std::to_string(payload_length) + " payload bytes, " +
        std::to_string(bytes.size() - payload_start) + " present)");
  }
  size_t offset = payload_start;
  for (auto& info : reader.sections_) {
    info.offset = offset;
    offset += info.size;
  }
  reader.bytes_ = std::move(bytes);
  return reader;
}

Result<CheckedFileReader> CheckedFileReader::Open(const std::string& path) {
  auto bytes_or = ReadFileBytes(path);
  if (!bytes_or.ok()) return bytes_or.status();
  return FromBytes(std::move(bytes_or).value());
}

bool CheckedFileReader::HasSection(const std::string& name) const {
  for (const auto& info : sections_) {
    if (info.name == name) return true;
  }
  return false;
}

Result<Deserializer> CheckedFileReader::OpenSection(
    const std::string& name) const {
  for (const auto& info : sections_) {
    if (info.name != name) continue;
    if (Crc32(bytes_.data() + info.offset, info.size) != info.crc) {
      return Status::IoError("checked container: checksum mismatch in "
                             "section '" +
                             name + "'");
    }
    return Deserializer(std::vector<uint8_t>(
        bytes_.begin() + static_cast<ptrdiff_t>(info.offset),
        bytes_.begin() + static_cast<ptrdiff_t>(info.offset + info.size)));
  }
  return Status::NotFound("checked container: no section '" + name + "'");
}

Status CheckedFileReader::VerifyAll() const {
  for (const auto& info : sections_) {
    if (Crc32(bytes_.data() + info.offset, info.size) != info.crc) {
      return Status::IoError("checked container: checksum mismatch in "
                             "section '" +
                             info.name + "'");
    }
  }
  return Status::OK();
}

}  // namespace simcard
