// Fixed-size thread pool and a ParallelFor helper.
//
// Ground-truth label construction computes millions of high-dimensional
// distances (the paper notes this dominates offline cost; see Exp-10), so it
// is written against ParallelFor. On a single-core machine the pool degrades
// gracefully to sequential execution with no thread overhead.
#ifndef SIMCARD_COMMON_THREAD_POOL_H_
#define SIMCARD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace simcard {

/// \brief A fixed pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// Creates `num_threads` workers. `num_threads == 0` means "hardware
  /// concurrency", which may itself be 1.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Returns the process-wide shared pool (sized to hardware concurrency).
ThreadPool* GlobalThreadPool();

/// \brief Runs fn(i) for every i in [begin, end), splitting the range into
/// contiguous chunks across the global pool.
///
/// Executes inline when the range is small or only one worker exists. `fn`
/// must be safe to call concurrently for distinct i.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn,
                 size_t min_chunk = 256);

}  // namespace simcard

#endif  // SIMCARD_COMMON_THREAD_POOL_H_
