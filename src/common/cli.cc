#include "common/cli.h"

#include <algorithm>
#include <cstdlib>

namespace simcard {

Result<CommandLine> CommandLine::Parse(
    int argc, char** argv, const std::vector<std::string>& known_flags) {
  CommandLine cl;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      // Tolerate google-benchmark's own positional/flag arguments.
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    // google-benchmark flags all start with "benchmark_"; pass them through.
    if (name.rfind("benchmark", 0) == 0) continue;
    if (std::find(known_flags.begin(), known_flags.end(), name) ==
        known_flags.end()) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    cl.values_[name] = value;
  }
  return cl;
}

bool CommandLine::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CommandLine::GetString(const std::string& name,
                                   const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t CommandLine::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CommandLine::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool CommandLine::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CommandLine::GetStringList(
    const std::string& name, const std::vector<std::string>& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::string> out;
  std::string cur;
  for (char c : it->second) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace simcard
