// Binary (de)serialization for model checkpoints and datasets.
//
// The format is a flat little-endian byte stream; every simcard object that
// persists itself writes primitive fields through these helpers so model
// files are portable across runs. Sizes are written as uint64 so the format
// is independent of the host's size_t.
#ifndef SIMCARD_COMMON_SERIALIZE_H_
#define SIMCARD_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace simcard {

/// \brief Append-only binary buffer writer.
class Serializer {
 public:
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  void WriteFloatVector(const std::vector<float>& v) {
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(float));
  }

  void WriteU64Vector(const std::vector<uint64_t>& v) {
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(uint64_t));
  }

  /// Appends raw bytes with no length prefix (container formats that manage
  /// their own framing, e.g. common/checked_file.h).
  void WriteRawBytes(const void* data, size_t size) { WriteRaw(data, size); }

  const std::vector<uint8_t>& bytes() const { return bytes_; }

  /// Writes the accumulated bytes to `path`, replacing any existing file.
  ///
  /// Crash-safe: bytes go to `<path>.tmp` first and are renamed into place,
  /// so a failed or interrupted save never truncates an existing good file.
  Status SaveToFile(const std::string& path) const;

 private:
  // Out of line: GCC 12 at -O3 emits spurious array-bounds/stringop
  // warnings when vector growth + memcpy are inlined together.
  void WriteRaw(const void* data, size_t size);

  std::vector<uint8_t> bytes_;
};

/// Loads a whole file into memory.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

/// \brief Sequential reader over a byte buffer produced by Serializer.
///
/// Every Read* checks bounds and returns a Status instead of reading past
/// the end of the buffer.
class Deserializer {
 public:
  explicit Deserializer(std::vector<uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  /// Loads a whole file into a new Deserializer.
  static Result<Deserializer> FromFile(const std::string& path);

  Status ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadF32(float* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadF64(double* v) { return ReadRaw(v, sizeof(*v)); }

  /// Length-prefixed reads. The length field is untrusted input: it is
  /// validated against the remaining buffer *before* any allocation, so a
  /// corrupt length cannot trigger a multi-GB resize.
  Status ReadString(std::string* s);
  Status ReadFloatVector(std::vector<float>* v);
  Status ReadU64Vector(std::vector<uint64_t>* v);

  /// Reads raw bytes with no length prefix (see Serializer::WriteRawBytes).
  Status ReadRawBytes(void* out, size_t size) { return ReadRaw(out, size); }

  /// True when the whole buffer has been consumed.
  bool AtEnd() const { return offset_ == bytes_.size(); }

  /// Current read position / bytes left.
  size_t offset() const { return offset_; }
  size_t remaining() const { return bytes_.size() - offset_; }

 private:
  Status ReadRaw(void* out, size_t size) {
    // Compare against the remaining span (not offset_ + size, which can
    // wrap around for corrupt 64-bit sizes).
    if (size > bytes_.size() - offset_) {
      return Status::OutOfRange("deserializer read past end of buffer");
    }
    std::memcpy(out, bytes_.data() + offset_, size);
    offset_ += size;
    return Status::OK();
  }

  std::vector<uint8_t> bytes_;
  size_t offset_ = 0;
};

}  // namespace simcard

#endif  // SIMCARD_COMMON_SERIALIZE_H_
