#include "common/thread_pool.h"

#include <algorithm>

namespace simcard {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

namespace {
// True on threads owned by a pool; ParallelFor falls back to inline
// execution there to avoid self-deadlock on nested Wait().
thread_local bool t_is_pool_worker = false;
}  // namespace

void ThreadPool::WorkerLoop() {
  t_is_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool* GlobalThreadPool() {
  static ThreadPool pool;
  return &pool;
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn, size_t min_chunk) {
  if (begin >= end) return;
  ThreadPool* pool = GlobalThreadPool();
  const size_t n = end - begin;
  const size_t workers = pool->num_threads();
  if (workers <= 1 || n <= min_chunk || t_is_pool_worker) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const size_t chunks = std::min(workers * 4, (n + min_chunk - 1) / min_chunk);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + c * chunk_size;
    const size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    pool->Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  pool->Wait();
}

}  // namespace simcard
