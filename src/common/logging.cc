#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace simcard {
namespace {

LogLevel ParseLevelFromEnv() {
  const char* env = std::getenv("SIMCARD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<int>& GlobalLevel() {
  static std::atomic<int> level(static_cast<int>(ParseLevelFromEnv()));
  return level;
}

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

// Strips the directory part so log lines show "gl_estimator.cc:120".
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  GlobalLevel().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(GlobalLevel().load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::cerr << stream_.str();
  (void)level_;
}

}  // namespace internal
}  // namespace simcard
