#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <mutex>

namespace simcard {
namespace {

LogLevel ParseLevelFromEnv() {
  const char* env = std::getenv("SIMCARD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<int>& GlobalLevel() {
  static std::atomic<int> level(static_cast<int>(ParseLevelFromEnv()));
  return level;
}

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

// Strips the directory part so log lines show "gl_estimator.cc:120".
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

// Compact per-process thread ids (main thread = 0, workers in spawn order)
// instead of opaque pthread handles; far easier to eyeball in a log tail.
int ThreadId() {
  static std::atomic<int> next_id{0};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// "HH:MM:SS.mmm" wall-clock timestamp; date is omitted because a run never
// spans days and the shorter prefix keeps lines under terminal width.
void FormatTimestamp(char* buf, size_t buf_size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_buf{};
  localtime_r(&secs, &tm_buf);
  std::snprintf(buf, buf_size, "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(ms));
}

}  // namespace

void SetLogLevel(LogLevel level) {
  GlobalLevel().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(GlobalLevel().load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  char ts[16];
  FormatTimestamp(ts, sizeof(ts));
  stream_ << "[" << LevelTag(level) << " " << ts << " t" << ThreadId() << " "
          << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::cerr << stream_.str();
  (void)level_;
}

}  // namespace internal
}  // namespace simcard
