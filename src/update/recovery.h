// Crash recovery for the durable update subsystem.
//
// Durable layout under UpdateOptions::journal_dir:
//
//   MANIFEST            commit point: which epoch's files are authoritative
//   workload.bin        query objects + taus (written once at Start; labels
//                       and profiles are rebuilt by RelabelWorkload)
//   model-<E>.bin       GlEstimator checked container for epoch E
//   dataset-<E>.bin     the authoritative dataset at epoch E
//   journal-<E>.wal     every delta acknowledged while E was served
//
// The MANIFEST is a small CRC-tailed record written tmp+rename (the same
// atomic-save discipline as model files), so a crash anywhere leaves either
// the previous manifest or the new one — never a torn mix. Recovery =
// read MANIFEST, load that epoch's model/dataset, relabel the workload
// queries against it, replay the journal's longest valid prefix into a
// fresh DeltaBuffer, truncate any torn tail, resume serving at the
// manifest epoch via ModelRegistry::PublishAt.
//
// Why replay is loss-free: an Insert/Erase only returns OK after the
// record hit its epoch's journal, and the journal a manifest points at
// always contains every delta acknowledged since that manifest committed
// (mid-refresh deltas are re-journaled into the successor file BEFORE the
// successor manifest renames — see DeltaBuffer::RearmAfterRefresh's
// durable_commit hook). Replay is at-least-once: a delta drained by a
// refresh that crashed before its manifest commit is applied again.
//
// Metrics (simcard.update.recovery.*): attempts, successes,
// replayed_inserts, replayed_erases, truncated_tails, quarantined.
#ifndef SIMCARD_UPDATE_RECOVERY_H_
#define SIMCARD_UPDATE_RECOVERY_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace simcard {
namespace update {

/// \brief The committed-epoch record at <journal_dir>/MANIFEST.
struct DurableManifest {
  uint64_t epoch = 0;
  uint64_t base_rows = 0;  ///< dataset rows at the epoch boundary
  uint64_t dim = 0;
  std::string model_file;     ///< names relative to the journal dir
  std::string dataset_file;
  std::string workload_file;
  std::string journal_file;
};

/// Path helpers for the durable layout (all under `dir`).
std::string ManifestPath(const std::string& dir);
std::string ModelPath(const std::string& dir, uint64_t epoch);
std::string DatasetPath(const std::string& dir, uint64_t epoch);
std::string WorkloadPath(const std::string& dir);
std::string JournalPath(const std::string& dir, uint64_t epoch);

/// Creates `dir` (and parents) if missing.
Status EnsureDir(const std::string& dir);

/// Writes the manifest atomically (tmp+rename, CRC-tailed).
Status SaveManifest(const std::string& dir, const DurableManifest& manifest);

/// Reads and validates <dir>/MANIFEST. NotFound when no manifest was ever
/// committed (fresh directory); IoError on a corrupt one.
Result<DurableManifest> LoadManifest(const std::string& dir);

/// Renames epoch `epoch`'s model/dataset/journal files to
/// "<name>.quarantine" so partially-written artifacts of a failed refresh
/// never shadow a later attempt at the same epoch number. Best-effort
/// (missing files are fine); counts simcard.update.recovery.quarantined
/// per file moved.
void QuarantineEpochArtifacts(const std::string& dir, uint64_t epoch);

/// Deletes epoch `epoch`'s model/dataset/journal files (best-effort GC of
/// a superseded epoch after its successor's manifest committed).
void RemoveEpochArtifacts(const std::string& dir, uint64_t epoch);

}  // namespace update
}  // namespace simcard

#endif  // SIMCARD_UPDATE_RECOVERY_H_
