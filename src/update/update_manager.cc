#include "update/update_manager.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/fault.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/segment_health.h"
#include "obs/trace.h"
#include "update/recovery.h"

namespace simcard {
namespace update {

namespace {

// Simulated refresh failures: the durable save phase and the fine-tune
// phase (on top of the organic divergence path, train.nan_loss).
constexpr const char kRefreshIoSite[] = "update.refresh_io";
constexpr const char kRefreshFineTuneSite[] = "update.refresh_finetune";

// Refresh-path instrumentation, resolved once (registry pointers are
// stable) and gated on MetricsEnabled() at every recording site. The
// retry/failure/shed counters are resolved here too so the whole family
// registers together — reports carry zeros instead of omitting them.
struct UpdateMetrics {
  obs::Counter* inserts = obs::GetCounter("simcard.update.inserts");
  obs::Counter* erases = obs::GetCounter("simcard.update.erases");
  obs::Counter* refreshes = obs::GetCounter("simcard.update.refreshes");
  obs::Counter* segments_refreshed =
      obs::GetCounter("simcard.update.segments_refreshed");
  obs::Counter* segments_cloned =
      obs::GetCounter("simcard.update.segments_cloned");
  obs::Counter* epochs_published =
      obs::GetCounter("simcard.update.epochs_published");
  obs::Counter* full_resegs = obs::GetCounter("simcard.update.full_resegs");
  obs::Counter* refresh_failures =
      obs::GetCounter("simcard.update.refresh_failures");
  obs::Counter* delta_shed = obs::GetCounter("simcard.update.delta_shed");
  obs::Counter* retry_scheduled =
      obs::GetCounter("simcard.update.retry.scheduled");
  obs::Counter* retry_exhausted =
      obs::GetCounter("simcard.update.retry.exhausted");
  obs::Gauge* pending = obs::GetGauge("simcard.update.pending_deltas");
  obs::Gauge* degraded = obs::GetGauge("simcard.update.degraded");
  obs::Histogram* refresh_ms = obs::GetHistogram("simcard.update.refresh_ms");
  obs::Histogram* deltas_per_refresh = obs::GetHistogram(
      "simcard.update.deltas_per_refresh",
      obs::Histogram::ExponentialBuckets(1.0, 2.0, 16));
};

UpdateMetrics& Metrics() {
  static UpdateMetrics metrics;
  return metrics;
}

// Deep copy of a Dataset (not copyable directly: it owns a lazy bit-cache).
Dataset CopyDataset(const Dataset& ds) {
  return Dataset(ds.name(), ds.points(), ds.metric(), ds.tau_max());
}

}  // namespace

UpdateManager::UpdateManager(Dataset dataset, SearchWorkload workload,
                             serve::ModelRegistry* registry,
                             UpdateOptions options)
    : dataset_(std::move(dataset)),
      workload_(std::move(workload)),
      registry_(registry),
      options_(options),
      monitor_(options.drift) {
  buffer_.SetCapacity(options_.delta_capacity);
}

Status UpdateManager::Start(const GlEstimator& trained) {
  std::lock_guard<std::mutex> lock(refresh_mu_);
  if (trained.segmentation().assignment.size() != dataset_.size()) {
    return Status::InvalidArgument(
        "UpdateManager: estimator was not trained on this dataset epoch");
  }
  // Publish a CLONE so the caller's instance stays theirs to mutate; the
  // registry's copy is immutable from here on.
  auto clone = std::make_shared<GlEstimator>(trained.config());
  std::vector<uint8_t> bytes = trained.SaveToBytes();
  if (bytes.empty()) {
    return Status::FailedPrecondition(
        "UpdateManager: estimator not trained (clone failed)");
  }
  SIMCARD_RETURN_IF_ERROR(clone->LoadFromBytes(std::move(bytes)));

  const uint64_t epoch = registry_->epoch() + 1;
  std::unique_ptr<DeltaJournal> journal;
  if (durable()) {
    // Files first, manifest last: a crash anywhere during Start leaves
    // either no manifest (caller retrains from scratch) or a complete
    // epoch. Acks cannot happen before Start returns, so nothing
    // acknowledged can fall in the gap.
    const std::string& dir = options_.journal_dir;
    SIMCARD_RETURN_IF_ERROR(EnsureDir(dir));
    Serializer wl;
    SerializeQueries(workload_, &wl);
    SIMCARD_RETURN_IF_ERROR(wl.SaveToFile(WorkloadPath(dir)));
    SIMCARD_RETURN_IF_ERROR(PersistEpochArtifacts(epoch, *clone, dataset_));
    auto journal_or = DeltaJournal::Create(JournalPath(dir, epoch),
                                           dataset_.dim(), options_.journal);
    SIMCARD_RETURN_IF_ERROR(journal_or.status());
    journal = std::move(journal_or).value();
    SIMCARD_RETURN_IF_ERROR(
        journal->AppendEpochMark(epoch, dataset_.size()));
    SIMCARD_RETURN_IF_ERROR(journal->Sync());
    DurableManifest manifest;
    manifest.epoch = epoch;
    manifest.base_rows = dataset_.size();
    manifest.dim = dataset_.dim();
    manifest.model_file = "model-" + std::to_string(epoch) + ".bin";
    manifest.dataset_file = "dataset-" + std::to_string(epoch) + ".bin";
    manifest.workload_file = "workload.bin";
    manifest.journal_file = "journal-" + std::to_string(epoch) + ".wal";
    SIMCARD_RETURN_IF_ERROR(SaveManifest(dir, manifest));
    durable_epoch_ = epoch;
  }
  registry_->PublishAt(clone, epoch);
  journal_ = std::move(journal);
  buffer_.Rearm(clone->segmentation(), dataset_.size(), dataset_.dim(),
                dataset_.metric(), journal_.get());
  if (obs::MetricsEnabled()) {
    Metrics().epochs_published->Increment();
  }
  return Status::OK();
}

Status UpdateManager::Insert(std::span<const float> point) {
  if (needs_recovery_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "UpdateManager: durable commit failed; recover via RecoverFrom");
  }
  SIMCARD_RETURN_IF_ERROR(buffer_.Insert(point));
  if (obs::MetricsEnabled()) Metrics().inserts->Increment();
  UpdatePendingGauge();
  return Status::OK();
}

Status UpdateManager::Erase(uint32_t row) {
  if (needs_recovery_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "UpdateManager: durable commit failed; recover via RecoverFrom");
  }
  SIMCARD_RETURN_IF_ERROR(buffer_.Erase(row));
  if (obs::MetricsEnabled()) Metrics().erases->Increment();
  UpdatePendingGauge();
  return Status::OK();
}

void UpdateManager::UpdatePendingGauge() const {
  if (obs::MetricsEnabled()) {
    Metrics().pending->Set(static_cast<double>(buffer_.pending()));
  }
}

Result<RefreshOutcome> UpdateManager::Refresh() { return DoRefresh(false); }

Result<RefreshOutcome> UpdateManager::Tick() { return DoRefresh(true); }

void UpdateManager::SetAccuracySource(const obs::QErrorTracker* tracker) {
  std::lock_guard<std::mutex> lock(refresh_mu_);
  accuracy_ = tracker;
}

bool UpdateManager::degraded() const {
  std::lock_guard<std::mutex> lock(refresh_mu_);
  return degraded_;
}

size_t UpdateManager::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(refresh_mu_);
  return consecutive_failures_;
}

uint64_t UpdateManager::durable_epoch() const {
  std::lock_guard<std::mutex> lock(refresh_mu_);
  return durable_epoch_;
}

Result<RefreshOutcome> UpdateManager::DoRefresh(bool only_if_due) {
  std::lock_guard<std::mutex> lock(refresh_mu_);
  if (needs_recovery_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "UpdateManager: durable commit failed; recover via RecoverFrom");
  }
  // Observed per-segment accuracy (the serving layer's ReportActual
  // windows) joins the delta count as a refresh trigger: query drift can
  // degrade a segment's model without a single pending delta.
  std::vector<obs::ObservedSegmentAccuracy> observed;
  if (accuracy_ != nullptr && options_.drift.stale_observed_qerror > 0.0) {
    observed = accuracy_->PerSegment();
  }
  const bool accuracy_stale = [&] {
    for (const obs::ObservedSegmentAccuracy& acc : observed) {
      if (acc.reports >= options_.drift.min_observed_reports &&
          acc.qerror_p90 >= options_.drift.stale_observed_qerror) {
        return true;
      }
    }
    return false;
  }();
  if (only_if_due) {
    // Circuit: degraded managers stop auto-refreshing (explicit Refresh()
    // still probes and heals); backed-off managers wait out their window.
    if (degraded_) return RefreshOutcome{};
    if (next_retry_ != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() < next_retry_) {
      return RefreshOutcome{};
    }
    const bool deltas_due =
        options_.refresh_delta_threshold > 0 &&
        buffer_.pending() >= options_.refresh_delta_threshold;
    if (!deltas_due && !accuracy_stale) return RefreshOutcome{};
  }
  const serve::ModelSnapshot current = registry_->Current();
  if (current.estimator == nullptr) {
    return Status::FailedPrecondition("UpdateManager: Start() first");
  }
  DeltaSnapshot snap = buffer_.Drain();
  UpdatePendingGauge();
  const size_t pending = snap.overlay.pending();
  if (pending == 0 && !accuracy_stale) return RefreshOutcome{};

  obs::TraceSpan span("update.refresh");
  Stopwatch watch;
  const DriftReport report = monitor_.Assess(
      current.estimator->segmentation(), dataset_, snap,
      std::span<const obs::ObservedSegmentAccuracy>(observed));
  if (obs::MetricsEnabled()) {
    auto& health = obs::SegmentHealthRegistry::Default();
    for (const SegmentDrift& d : report.segments) {
      health.SetDriftScore(d.segment, d.delta_fraction, d.centroid_shift,
                           d.stale);
    }
  }
  ++refresh_count_;
  const uint64_t refresh_seed = options_.seed + 9973 * refresh_count_;
  const uint64_t next_epoch = current.epoch + 1;

  Result<RefreshOutcome> out_or =
      (report.escalate_full_reseg && options_.allow_full_reseg)
          ? FullResegRefresh(current.estimator, next_epoch, snap,
                             refresh_seed)
          : IncrementalRefresh(current.estimator, next_epoch, snap, report,
                               refresh_seed);
  if (!out_or.ok()) {
    OnRefreshFailure(std::move(snap));
    return out_or.status();
  }
  OnRefreshSuccess();
  RefreshOutcome outcome = std::move(out_or).value();
  outcome.refresh_ms = watch.ElapsedMillis();
  UpdatePendingGauge();
  if (obs::MetricsEnabled()) {
    UpdateMetrics& m = Metrics();
    m.refreshes->Increment();
    m.epochs_published->Increment();
    m.segments_refreshed->Add(
        static_cast<int64_t>(outcome.segments_refreshed));
    m.segments_cloned->Add(static_cast<int64_t>(outcome.segments_cloned));
    if (outcome.full_reseg) m.full_resegs->Increment();
    m.refresh_ms->Record(outcome.refresh_ms);
    m.deltas_per_refresh->Record(static_cast<double>(pending));
  }
  return outcome;
}

void UpdateManager::OnRefreshFailure(DeltaSnapshot snap) {
  // Nothing the refresh touched was committed (it worked on copies), so
  // restaging the drained snapshot restores exactly the pre-refresh state:
  // every acknowledged delta is pending again. A manager that instead
  // failed mid-commit is quarantined via needs_recovery_ before reaching
  // here and keeps the snapshot out of the buffer (the journal still has
  // it — recovery replays).
  if (!needs_recovery_.load(std::memory_order_relaxed)) {
    buffer_.Restage(std::move(snap));
  }
  UpdatePendingGauge();
  ++consecutive_failures_;
  const bool metrics = obs::MetricsEnabled();
  if (metrics) Metrics().refresh_failures->Increment();
  // Exponential backoff with deterministic jitter: the n-th consecutive
  // failure waits base*2^(n-1) ms (clamped), scaled by [0.5, 1.5).
  double backoff_ms =
      options_.refresh_backoff_base_ms *
      std::pow(2.0, static_cast<double>(consecutive_failures_ - 1));
  backoff_ms = std::min(backoff_ms, options_.refresh_backoff_max_ms);
  Rng jitter(options_.seed ^ (0x9E3779B97F4A7C15ULL *
                              static_cast<uint64_t>(consecutive_failures_)));
  backoff_ms *= 0.5 + jitter.NextDouble();
  next_retry_ = std::chrono::steady_clock::now() +
                std::chrono::microseconds(
                    static_cast<int64_t>(backoff_ms * 1000.0));
  if (consecutive_failures_ > options_.refresh_retry_budget) {
    if (!degraded_ && metrics) Metrics().retry_exhausted->Increment();
    degraded_ = true;
    obs::SegmentHealthRegistry::Default().SetUpdateDegraded(true);
    if (metrics) Metrics().degraded->Set(1.0);
  } else if (metrics) {
    Metrics().retry_scheduled->Increment();
  }
}

void UpdateManager::OnRefreshSuccess() {
  consecutive_failures_ = 0;
  next_retry_ = std::chrono::steady_clock::time_point{};
  if (degraded_) {
    degraded_ = false;
    obs::SegmentHealthRegistry::Default().SetUpdateDegraded(false);
    if (obs::MetricsEnabled()) Metrics().degraded->Set(0.0);
  }
}

Status UpdateManager::PersistEpochArtifacts(uint64_t epoch,
                                            const GlEstimator& model,
                                            const Dataset& dataset) const {
  if (fault::ShouldFail(kRefreshIoSite)) {
    return fault::InjectedError(kRefreshIoSite);
  }
  Serializer ds;
  dataset.Serialize(&ds);
  SIMCARD_RETURN_IF_ERROR(
      ds.SaveToFile(DatasetPath(options_.journal_dir, epoch)));
  SIMCARD_RETURN_IF_ERROR(
      model.SaveToFile(ModelPath(options_.journal_dir, epoch)));
  return Status::OK();
}

Status UpdateManager::CommitRefresh(std::shared_ptr<GlEstimator> next,
                                    Dataset new_dataset,
                                    SearchWorkload new_workload,
                                    uint64_t next_epoch,
                                    const std::vector<uint32_t>& remap,
                                    RefreshOutcome* outcome) {
  const std::string& dir = options_.journal_dir;
  std::unique_ptr<DeltaJournal> new_journal;
  if (durable()) {
    // Fallible persistence first, while everything in memory is still the
    // old epoch: a failure here aborts the refresh cleanly (the caller
    // restages the drained snapshot) and quarantines the partial files.
    Status persisted = PersistEpochArtifacts(next_epoch, *next, new_dataset);
    if (persisted.ok()) {
      auto journal_or = DeltaJournal::Create(JournalPath(dir, next_epoch),
                                             new_dataset.dim(),
                                             options_.journal);
      if (journal_or.ok()) {
        new_journal = std::move(journal_or).value();
        persisted = new_journal->AppendEpochMark(next_epoch,
                                                 new_dataset.size());
        if (persisted.ok()) persisted = new_journal->Sync();
      } else {
        persisted = journal_or.status();
      }
    }
    if (!persisted.ok()) {
      QuarantineEpochArtifacts(dir, next_epoch);
      return persisted;
    }
  }

  // Point of no return: infallible in-memory swaps, then the manifest
  // rename inside the buffer's critical section (see RearmAfterRefresh's
  // durable_commit contract — it makes the journal handoff atomic against
  // concurrent acks).
  dataset_ = std::move(new_dataset);
  workload_ = std::move(new_workload);
  const uint64_t old_epoch = durable_epoch_;
  std::function<Status()> commit;
  if (durable()) {
    commit = [this, next_epoch] {
      DurableManifest manifest;
      manifest.epoch = next_epoch;
      manifest.base_rows = dataset_.size();
      manifest.dim = dataset_.dim();
      manifest.model_file = "model-" + std::to_string(next_epoch) + ".bin";
      manifest.dataset_file =
          "dataset-" + std::to_string(next_epoch) + ".bin";
      manifest.workload_file = "workload.bin";
      manifest.journal_file =
          "journal-" + std::to_string(next_epoch) + ".wal";
      return SaveManifest(options_.journal_dir, manifest);
    };
  }
  const Status rearmed = buffer_.RearmAfterRefresh(
      next->segmentation(), dataset_.size(), dataset_.dim(),
      dataset_.metric(), remap, new_journal.get(), commit);
  if (!rearmed.ok()) {
    // Disk (old manifest) and memory (new dataset, rearmed buffer) now
    // disagree. Served traffic continues on the old model; everything
    // acknowledged sits in the old journal, so RecoverFrom restores a
    // consistent old-epoch state with zero loss. Until then this manager
    // refuses new work.
    buffer_.AttachJournal(nullptr);  // new_journal dies with this frame
    needs_recovery_.store(true, std::memory_order_relaxed);
    obs::SegmentHealthRegistry::Default().SetUpdateDegraded(true);
    if (obs::MetricsEnabled()) Metrics().degraded->Set(1.0);
    QuarantineEpochArtifacts(dir, next_epoch);
    return rearmed;
  }
  journal_ = std::move(new_journal);  // closes the old epoch's journal
  if (durable()) durable_epoch_ = next_epoch;
  outcome->epoch = registry_->PublishAt(std::move(next), next_epoch);
  if (durable() && old_epoch != 0 && old_epoch != next_epoch) {
    RemoveEpochArtifacts(dir, old_epoch);
  }
  return Status::OK();
}

Result<RefreshOutcome> UpdateManager::IncrementalRefresh(
    const std::shared_ptr<const GlEstimator>& current, uint64_t next_epoch,
    const DeltaSnapshot& snap, const DriftReport& report,
    uint64_t refresh_seed) {
  RefreshOutcome outcome;
  outcome.refreshed = true;
  outcome.applied_inserts = snap.overlay.num_inserts();
  outcome.applied_erases = snap.overlay.num_erases();
  outcome.stale_segments = report.stale_segments;

  // Build the successor entirely off to the side — clone of the model AND
  // working copies of the dataset/workload — so a failure at any fallible
  // step below leaves the served epoch byte-identical and the drained
  // snapshot restageable. Readers keep answering from `current` until the
  // single Publish in CommitRefresh.
  auto clone = std::make_shared<GlEstimator>(current->config());
  std::vector<uint8_t> bytes = current->SaveToBytes();
  if (bytes.empty()) {
    return Status::Internal("UpdateManager: published model failed to clone");
  }
  SIMCARD_RETURN_IF_ERROR(clone->LoadFromBytes(std::move(bytes)));
  Dataset new_dataset = CopyDataset(dataset_);
  SearchWorkload new_workload = workload_;

  std::vector<size_t> touched;
  const std::vector<uint32_t> sorted = snap.overlay.SortedErases();
  const std::vector<uint32_t> remap =
      BuildEraseRemap(new_dataset.size(), sorted);
  if (!sorted.empty()) {
    new_dataset.EraseRows(sorted);
    SIMCARD_RETURN_IF_ERROR(clone->EraseRows(new_dataset, sorted, &touched,
                                             /*recompute_summaries=*/true));
  }
  if (snap.overlay.num_inserts() > 0) {
    const size_t first_new = new_dataset.size();
    new_dataset.Append(snap.overlay.InsertMatrix());
    std::vector<uint32_t> new_rows(snap.overlay.num_inserts());
    for (size_t i = 0; i < new_rows.size(); ++i) {
      new_rows[i] = static_cast<uint32_t>(first_new + i);
    }
    SIMCARD_RETURN_IF_ERROR(clone->RouteInserts(new_dataset, new_rows,
                                                &touched));
  }
  // Membership changed in every touched segment: re-sample fallbacks and
  // refresh the |D^[i]| clamps before anything answers from them.
  clone->RebuildFallbacks(new_dataset, touched, refresh_seed);

  // Relabel (x_q, x_tau, x_C) examples against the updated dataset, then
  // fine-tune only what the monitor flagged stale; the rest of the local
  // models ride along as byte-identical clones. An accuracy-only refresh
  // (zero deltas, observed q-error crossed the threshold) leaves the data
  // and therefore the labels untouched — skip straight to the fine-tune.
  if (snap.overlay.pending() > 0) {
    SIMCARD_RETURN_IF_ERROR(
        RelabelWorkload(new_dataset, &clone->segmentation(), &new_workload));
  }
  if (fault::ShouldFail(kRefreshFineTuneSite)) {
    return fault::InjectedError(kRefreshFineTuneSite);
  }
  SIMCARD_RETURN_IF_ERROR(clone->FineTuneSegments(new_workload,
                                                  report.stale_segments,
                                                  refresh_seed,
                                                  options_.fine_tune_epochs));
  SIMCARD_RETURN_IF_ERROR(clone->FineTuneGlobal(new_workload,
                                                refresh_seed + 29,
                                                options_.fine_tune_epochs));

  outcome.segments_refreshed = report.stale_segments.size();
  outcome.segments_cloned =
      clone->num_local_models() - outcome.segments_refreshed;
  SIMCARD_RETURN_IF_ERROR(CommitRefresh(std::move(clone),
                                        std::move(new_dataset),
                                        std::move(new_workload), next_epoch,
                                        remap, &outcome));
  return outcome;
}

Result<RefreshOutcome> UpdateManager::FullResegRefresh(
    const std::shared_ptr<const GlEstimator>& current, uint64_t next_epoch,
    const DeltaSnapshot& snap, uint64_t refresh_seed) {
  RefreshOutcome outcome;
  outcome.refreshed = true;
  outcome.full_reseg = true;
  outcome.applied_inserts = snap.overlay.num_inserts();
  outcome.applied_erases = snap.overlay.num_erases();

  Dataset new_dataset = CopyDataset(dataset_);
  SearchWorkload new_workload = workload_;
  auto app_or = snap.overlay.ApplyTo(&new_dataset);
  if (!app_or.ok()) return app_or.status();

  // Drift exceeded the ceiling: the old partition no longer describes the
  // data, so redo PCA + K-means and train a fresh estimator on it.
  SegmentationOptions sopts = options_.reseg;
  if (sopts.target_segments == 0) {
    sopts.target_segments = current->segmentation().num_segments();
  }
  sopts.seed = refresh_seed + 5;
  auto seg_or = SegmentData(new_dataset, sopts);
  if (!seg_or.ok()) return seg_or.status();
  const Segmentation seg = std::move(seg_or).value();
  SIMCARD_RETURN_IF_ERROR(RelabelWorkload(new_dataset, &seg, &new_workload));

  if (fault::ShouldFail(kRefreshFineTuneSite)) {
    return fault::InjectedError(kRefreshFineTuneSite);
  }
  auto fresh = std::make_shared<GlEstimator>(current->config());
  TrainContext ctx;
  ctx.dataset = &new_dataset;
  ctx.workload = &new_workload;
  ctx.segmentation = &seg;
  ctx.seed = refresh_seed;
  SIMCARD_RETURN_IF_ERROR(fresh->Train(ctx));

  outcome.segments_refreshed = fresh->num_local_models();
  SIMCARD_RETURN_IF_ERROR(CommitRefresh(std::move(fresh),
                                        std::move(new_dataset),
                                        std::move(new_workload), next_epoch,
                                        app_or.value().remap, &outcome));
  return outcome;
}

}  // namespace update
}  // namespace simcard
