#include "update/update_manager.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/segment_health.h"
#include "obs/trace.h"

namespace simcard {
namespace update {

namespace {

// Refresh-path instrumentation, resolved once (registry pointers are
// stable) and gated on MetricsEnabled() at every recording site.
struct UpdateMetrics {
  obs::Counter* inserts = obs::GetCounter("simcard.update.inserts");
  obs::Counter* erases = obs::GetCounter("simcard.update.erases");
  obs::Counter* refreshes = obs::GetCounter("simcard.update.refreshes");
  obs::Counter* segments_refreshed =
      obs::GetCounter("simcard.update.segments_refreshed");
  obs::Counter* segments_cloned =
      obs::GetCounter("simcard.update.segments_cloned");
  obs::Counter* epochs_published =
      obs::GetCounter("simcard.update.epochs_published");
  obs::Counter* full_resegs = obs::GetCounter("simcard.update.full_resegs");
  obs::Gauge* pending = obs::GetGauge("simcard.update.pending_deltas");
  obs::Histogram* refresh_ms = obs::GetHistogram("simcard.update.refresh_ms");
  obs::Histogram* deltas_per_refresh = obs::GetHistogram(
      "simcard.update.deltas_per_refresh",
      obs::Histogram::ExponentialBuckets(1.0, 2.0, 16));
};

UpdateMetrics& Metrics() {
  static UpdateMetrics metrics;
  return metrics;
}

}  // namespace

UpdateManager::UpdateManager(Dataset dataset, SearchWorkload workload,
                             serve::ModelRegistry* registry,
                             UpdateOptions options)
    : dataset_(std::move(dataset)),
      workload_(std::move(workload)),
      registry_(registry),
      options_(options),
      monitor_(options.drift) {}

Status UpdateManager::Start(const GlEstimator& trained) {
  std::lock_guard<std::mutex> lock(refresh_mu_);
  if (trained.segmentation().assignment.size() != dataset_.size()) {
    return Status::InvalidArgument(
        "UpdateManager: estimator was not trained on this dataset epoch");
  }
  // Publish a CLONE so the caller's instance stays theirs to mutate; the
  // registry's copy is immutable from here on.
  auto clone = std::make_shared<GlEstimator>(trained.config());
  std::vector<uint8_t> bytes = trained.SaveToBytes();
  if (bytes.empty()) {
    return Status::FailedPrecondition(
        "UpdateManager: estimator not trained (clone failed)");
  }
  SIMCARD_RETURN_IF_ERROR(clone->LoadFromBytes(std::move(bytes)));
  registry_->Publish(clone);
  buffer_.Rearm(clone->segmentation(), dataset_.size(), dataset_.dim(),
                dataset_.metric());
  if (obs::MetricsEnabled()) {
    Metrics().epochs_published->Increment();
  }
  return Status::OK();
}

Status UpdateManager::Insert(std::span<const float> point) {
  SIMCARD_RETURN_IF_ERROR(buffer_.Insert(point));
  if (obs::MetricsEnabled()) Metrics().inserts->Increment();
  UpdatePendingGauge();
  return Status::OK();
}

Status UpdateManager::Erase(uint32_t row) {
  SIMCARD_RETURN_IF_ERROR(buffer_.Erase(row));
  if (obs::MetricsEnabled()) Metrics().erases->Increment();
  UpdatePendingGauge();
  return Status::OK();
}

void UpdateManager::UpdatePendingGauge() const {
  if (obs::MetricsEnabled()) {
    Metrics().pending->Set(static_cast<double>(buffer_.pending()));
  }
}

Result<RefreshOutcome> UpdateManager::Refresh() { return DoRefresh(false); }

Result<RefreshOutcome> UpdateManager::Tick() { return DoRefresh(true); }

void UpdateManager::SetAccuracySource(const obs::QErrorTracker* tracker) {
  std::lock_guard<std::mutex> lock(refresh_mu_);
  accuracy_ = tracker;
}

Result<RefreshOutcome> UpdateManager::DoRefresh(bool only_if_due) {
  std::lock_guard<std::mutex> lock(refresh_mu_);
  // Observed per-segment accuracy (the serving layer's ReportActual
  // windows) joins the delta count as a refresh trigger: query drift can
  // degrade a segment's model without a single pending delta.
  std::vector<obs::ObservedSegmentAccuracy> observed;
  if (accuracy_ != nullptr && options_.drift.stale_observed_qerror > 0.0) {
    observed = accuracy_->PerSegment();
  }
  const bool accuracy_stale = [&] {
    for (const obs::ObservedSegmentAccuracy& acc : observed) {
      if (acc.reports >= options_.drift.min_observed_reports &&
          acc.qerror_p90 >= options_.drift.stale_observed_qerror) {
        return true;
      }
    }
    return false;
  }();
  if (only_if_due) {
    const bool deltas_due =
        options_.refresh_delta_threshold > 0 &&
        buffer_.pending() >= options_.refresh_delta_threshold;
    if (!deltas_due && !accuracy_stale) return RefreshOutcome{};
  }
  const serve::ModelSnapshot current = registry_->Current();
  if (current.estimator == nullptr) {
    return Status::FailedPrecondition("UpdateManager: Start() first");
  }
  DeltaSnapshot snap = buffer_.Drain();
  UpdatePendingGauge();
  const size_t pending = snap.overlay.pending();
  if (pending == 0 && !accuracy_stale) return RefreshOutcome{};

  obs::TraceSpan span("update.refresh");
  Stopwatch watch;
  const DriftReport report = monitor_.Assess(
      current.estimator->segmentation(), dataset_, snap,
      std::span<const obs::ObservedSegmentAccuracy>(observed));
  if (obs::MetricsEnabled()) {
    auto& health = obs::SegmentHealthRegistry::Default();
    for (const SegmentDrift& d : report.segments) {
      health.SetDriftScore(d.segment, d.delta_fraction, d.centroid_shift,
                           d.stale);
    }
  }
  ++refresh_count_;
  const uint64_t refresh_seed = options_.seed + 9973 * refresh_count_;

  Result<RefreshOutcome> out_or =
      (report.escalate_full_reseg && options_.allow_full_reseg)
          ? FullResegRefresh(current.estimator, std::move(snap), refresh_seed)
          : IncrementalRefresh(current.estimator, std::move(snap), report,
                               refresh_seed);
  if (!out_or.ok()) return out_or.status();
  RefreshOutcome outcome = std::move(out_or).value();
  outcome.refresh_ms = watch.ElapsedMillis();
  UpdatePendingGauge();
  if (obs::MetricsEnabled()) {
    UpdateMetrics& m = Metrics();
    m.refreshes->Increment();
    m.epochs_published->Increment();
    m.segments_refreshed->Add(
        static_cast<int64_t>(outcome.segments_refreshed));
    m.segments_cloned->Add(static_cast<int64_t>(outcome.segments_cloned));
    if (outcome.full_reseg) m.full_resegs->Increment();
    m.refresh_ms->Record(outcome.refresh_ms);
    m.deltas_per_refresh->Record(static_cast<double>(pending));
  }
  return outcome;
}

Result<RefreshOutcome> UpdateManager::IncrementalRefresh(
    const std::shared_ptr<const GlEstimator>& current, DeltaSnapshot snap,
    const DriftReport& report, uint64_t refresh_seed) {
  RefreshOutcome outcome;
  outcome.refreshed = true;
  outcome.applied_inserts = snap.overlay.num_inserts();
  outcome.applied_erases = snap.overlay.num_erases();
  outcome.stale_segments = report.stale_segments;

  // Build the successor entirely off to the side: readers keep answering
  // from `current` until the single Publish below.
  auto clone = std::make_shared<GlEstimator>(current->config());
  std::vector<uint8_t> bytes = current->SaveToBytes();
  if (bytes.empty()) {
    return Status::Internal("UpdateManager: published model failed to clone");
  }
  SIMCARD_RETURN_IF_ERROR(clone->LoadFromBytes(std::move(bytes)));

  std::vector<size_t> touched;
  const std::vector<uint32_t> sorted = snap.overlay.SortedErases();
  const std::vector<uint32_t> remap =
      BuildEraseRemap(dataset_.size(), sorted);
  if (!sorted.empty()) {
    dataset_.EraseRows(sorted);
    SIMCARD_RETURN_IF_ERROR(clone->EraseRows(dataset_, sorted, &touched,
                                             /*recompute_summaries=*/true));
  }
  if (snap.overlay.num_inserts() > 0) {
    const size_t first_new = dataset_.size();
    dataset_.Append(snap.overlay.InsertMatrix());
    std::vector<uint32_t> new_rows(snap.overlay.num_inserts());
    for (size_t i = 0; i < new_rows.size(); ++i) {
      new_rows[i] = static_cast<uint32_t>(first_new + i);
    }
    SIMCARD_RETURN_IF_ERROR(clone->RouteInserts(dataset_, new_rows,
                                                &touched));
  }
  // Membership changed in every touched segment: re-sample fallbacks and
  // refresh the |D^[i]| clamps before anything answers from them.
  clone->RebuildFallbacks(dataset_, touched, refresh_seed);

  // Relabel (x_q, x_tau, x_C) examples against the updated dataset, then
  // fine-tune only what the monitor flagged stale; the rest of the local
  // models ride along as byte-identical clones. An accuracy-only refresh
  // (zero deltas, observed q-error crossed the threshold) leaves the data
  // and therefore the labels untouched — skip straight to the fine-tune.
  if (snap.overlay.pending() > 0) {
    SIMCARD_RETURN_IF_ERROR(
        RelabelWorkload(dataset_, &clone->segmentation(), &workload_));
  }
  SIMCARD_RETURN_IF_ERROR(clone->FineTuneSegments(workload_,
                                                  report.stale_segments,
                                                  refresh_seed,
                                                  options_.fine_tune_epochs));
  SIMCARD_RETURN_IF_ERROR(clone->FineTuneGlobal(workload_, refresh_seed + 29,
                                                options_.fine_tune_epochs));

  outcome.segments_refreshed = report.stale_segments.size();
  outcome.segments_cloned =
      clone->num_local_models() - outcome.segments_refreshed;
  outcome.epoch = registry_->Publish(clone);
  buffer_.RearmAfterRefresh(clone->segmentation(), dataset_.size(),
                            dataset_.dim(), dataset_.metric(), remap);
  return outcome;
}

Result<RefreshOutcome> UpdateManager::FullResegRefresh(
    const std::shared_ptr<const GlEstimator>& current, DeltaSnapshot snap,
    uint64_t refresh_seed) {
  RefreshOutcome outcome;
  outcome.refreshed = true;
  outcome.full_reseg = true;
  outcome.applied_inserts = snap.overlay.num_inserts();
  outcome.applied_erases = snap.overlay.num_erases();

  auto app_or = snap.overlay.ApplyTo(&dataset_);
  if (!app_or.ok()) return app_or.status();

  // Drift exceeded the ceiling: the old partition no longer describes the
  // data, so redo PCA + K-means and train a fresh estimator on it.
  SegmentationOptions sopts = options_.reseg;
  if (sopts.target_segments == 0) {
    sopts.target_segments = current->segmentation().num_segments();
  }
  sopts.seed = refresh_seed + 5;
  auto seg_or = SegmentData(dataset_, sopts);
  if (!seg_or.ok()) return seg_or.status();
  const Segmentation seg = std::move(seg_or).value();
  SIMCARD_RETURN_IF_ERROR(RelabelWorkload(dataset_, &seg, &workload_));

  auto fresh = std::make_shared<GlEstimator>(current->config());
  TrainContext ctx;
  ctx.dataset = &dataset_;
  ctx.workload = &workload_;
  ctx.segmentation = &seg;
  ctx.seed = refresh_seed;
  SIMCARD_RETURN_IF_ERROR(fresh->Train(ctx));

  outcome.segments_refreshed = fresh->num_local_models();
  outcome.epoch = registry_->Publish(fresh);
  buffer_.RearmAfterRefresh(fresh->segmentation(), dataset_.size(),
                            dataset_.dim(), dataset_.metric(),
                            app_or.value().remap);
  return outcome;
}

}  // namespace update
}  // namespace simcard
