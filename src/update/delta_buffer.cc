#include "update/delta_buffer.h"

#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "obs/segment_health.h"
#include "update/delta_journal.h"

namespace simcard {
namespace update {
namespace {

// Mirrors one segment's pending-delta count into the health registry so
// telemetry sees the backlog without taking the buffer's lock.
void PublishBacklog(size_t seg, const std::vector<size_t>& per_segment) {
  if (!obs::MetricsEnabled() || seg >= per_segment.size()) return;
  obs::SegmentHealthRegistry::Default().SetDeltaBacklog(seg,
                                                        per_segment[seg]);
}

}  // namespace

void DeltaBuffer::ResetLocked(const Segmentation& seg, size_t base_rows,
                              size_t dim, Metric metric) {
  centroids_ = seg.centroids;
  assignment_ = seg.assignment;
  // AddPoint's resize can leave the routing copy short of the dataset (rows
  // appended but never routed); pad with segment 0 so Erase stays total.
  if (assignment_.size() < base_rows) assignment_.resize(base_rows, 0);
  metric_ = metric;
  dim_ = dim;
  overlay_ = DeltaOverlay(base_rows, dim);
  per_segment_.assign(seg.num_segments(), 0);
  insert_segments_.clear();
  armed_ = true;
}

void DeltaBuffer::Rearm(const Segmentation& seg, size_t base_rows, size_t dim,
                        Metric metric, DeltaJournal* journal) {
  std::lock_guard<std::mutex> lock(mu_);
  ResetLocked(seg, base_rows, dim, metric);
  journal_ = journal;
}

Status DeltaBuffer::RearmAfterRefresh(
    const Segmentation& seg, size_t base_rows, size_t dim, Metric metric,
    const std::vector<uint32_t>& remap, DeltaJournal* journal,
    const std::function<Status()>& durable_commit) {
  std::lock_guard<std::mutex> lock(mu_);
  const DeltaOverlay carried = std::move(overlay_);
  ResetLocked(seg, base_rows, dim, metric);
  journal_ = journal;
  Status journal_status;
  // Inserts staged mid-refresh carry over unchanged (they are new vectors,
  // not epoch-bound) but re-route against the refreshed centroids. Staging
  // cannot fail here — the vectors already passed validation once. They
  // re-journal into the new epoch's file so the old file can be retired.
  for (size_t i = 0; i < carried.num_inserts(); ++i) {
    const std::span<const float> point(carried.InsertRow(i), carried.dim());
    const Status st = InsertLocked(point);
    (void)st;
    if (journal_ != nullptr && journal_status.ok()) {
      journal_status = journal_->AppendInsert(point);
    }
  }
  // Erases named rows of the previous epoch: translate through the
  // refresh's compaction remap. A row the refresh already removed has
  // nothing left to erase — drop it. Survivors re-journal translated.
  size_t dropped = 0;
  for (uint32_t row : carried.SortedErases()) {
    const uint32_t moved = row < remap.size() ? remap[row] : kRemovedRow;
    if (moved == kRemovedRow || !overlay_.StageErase(moved).ok()) {
      ++dropped;
      continue;
    }
    const size_t seg = moved < assignment_.size() ? assignment_[moved] : 0;
    if (seg < per_segment_.size()) ++per_segment_[seg];
    if (journal_ != nullptr && journal_status.ok()) {
      journal_status = journal_->AppendErase(moved);
    }
  }
  if (dropped > 0) {
    dropped_erases_ += dropped;
    if (obs::MetricsEnabled()) {
      obs::GetCounter("simcard.update.dropped_erases")
          ->Add(static_cast<int64_t>(dropped));
    }
  }
  if (journal_ != nullptr && journal_status.ok()) {
    journal_status = journal_->Sync();
  }
  if (durable_commit && journal_status.ok()) {
    journal_status = durable_commit();
  }
  return journal_status;
}

void DeltaBuffer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
}

void DeltaBuffer::AttachJournal(DeltaJournal* journal) {
  std::lock_guard<std::mutex> lock(mu_);
  journal_ = journal;
}

Status DeltaBuffer::Insert(std::span<const float> point) {
  std::lock_guard<std::mutex> lock(mu_);
  SIMCARD_RETURN_IF_ERROR(CheckCapacityLocked());
  SIMCARD_RETURN_IF_ERROR(InsertLocked(point));
  if (journal_ != nullptr) {
    if (Status st = journal_->AppendInsert(point); !st.ok()) {
      // The caller sees an error, so there is no ack: the delta must not
      // survive in the overlay or the next refresh would apply a mutation
      // that was neither acknowledged nor made durable.
      overlay_.UnstageLastInsert();
      const size_t seg = insert_segments_.back();
      insert_segments_.pop_back();
      if (seg < per_segment_.size()) --per_segment_[seg];
      PublishBacklog(seg, per_segment_);
      return st;
    }
  }
  return Status::OK();
}

Status DeltaBuffer::InsertLocked(std::span<const float> point) {
  if (!armed_) {
    return Status::FailedPrecondition("DeltaBuffer: not armed");
  }
  SIMCARD_RETURN_IF_ERROR(overlay_.StageInsert(point));
  const size_t seg = NearestSegmentLocked(point.data());
  if (seg < per_segment_.size()) ++per_segment_[seg];
  insert_segments_.push_back(seg);
  PublishBacklog(seg, per_segment_);
  return Status::OK();
}

Status DeltaBuffer::Erase(uint32_t row) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_) {
    return Status::FailedPrecondition("DeltaBuffer: not armed");
  }
  SIMCARD_RETURN_IF_ERROR(CheckCapacityLocked());
  SIMCARD_RETURN_IF_ERROR(overlay_.StageErase(row));
  const size_t seg = row < assignment_.size() ? assignment_[row] : 0;
  if (seg < per_segment_.size()) ++per_segment_[seg];
  PublishBacklog(seg, per_segment_);
  if (journal_ != nullptr) {
    if (Status st = journal_->AppendErase(row); !st.ok()) {
      // No ack, so roll the staged erase back out (see Insert above).
      overlay_.UnstageLastErase();
      if (seg < per_segment_.size()) --per_segment_[seg];
      PublishBacklog(seg, per_segment_);
      return st;
    }
  }
  return Status::OK();
}

Status DeltaBuffer::CheckCapacityLocked() {
  if (capacity_ == 0 || overlay_.pending() < capacity_) return Status::OK();
  ++shed_;
  if (obs::MetricsEnabled()) {
    obs::GetCounter("simcard.update.delta_shed")->Increment();
  }
  return Status::Unavailable(
      "DeltaBuffer at capacity (" + std::to_string(capacity_) +
      " staged deltas); retry after the next refresh");
}

size_t DeltaBuffer::NearestSegmentLocked(const float* point) const {
  size_t best = 0;
  float best_dist = std::numeric_limits<float>::infinity();
  for (size_t s = 0; s < centroids_.rows(); ++s) {
    const float dist = Distance(point, centroids_.Row(s), dim_, metric_);
    if (dist < best_dist) {
      best_dist = dist;
      best = s;
    }
  }
  return best;
}

DeltaSnapshot DeltaBuffer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  DeltaSnapshot snap;
  snap.overlay = std::move(overlay_);
  snap.per_segment = std::move(per_segment_);
  snap.insert_segments = std::move(insert_segments_);
  // Stay armed against the same epoch: ingestion continues while the
  // refresh runs, and RearmAfterRefresh translates what accumulates.
  overlay_ = DeltaOverlay(snap.overlay.base_rows(), dim_);
  per_segment_.assign(snap.per_segment.size(), 0);
  insert_segments_.clear();
  // The drained deltas are the refresh's problem now; telemetry's backlog
  // view resets with the buffer.
  if (obs::MetricsEnabled()) {
    auto& health = obs::SegmentHealthRegistry::Default();
    for (size_t s = 0; s < snap.per_segment.size(); ++s) {
      if (snap.per_segment[s] > 0) health.SetDeltaBacklog(s, 0);
    }
  }
  return snap;
}

void DeltaBuffer::Restage(DeltaSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  // Deltas staged since the Drain() go behind the restaged generation so
  // insert order (and therefore insert_segments alignment) is preserved.
  DeltaOverlay newer = std::move(overlay_);
  overlay_ = std::move(snapshot.overlay);
  per_segment_ = std::move(snapshot.per_segment);
  if (per_segment_.empty()) per_segment_.assign(centroids_.rows(), 0);
  insert_segments_ = std::move(snapshot.insert_segments);
  for (size_t i = 0; i < newer.num_inserts(); ++i) {
    const Status st = InsertLocked(
        std::span<const float>(newer.InsertRow(i), newer.dim()));
    (void)st;  // already validated when first staged
  }
  for (uint32_t row : newer.SortedErases()) {
    // A duplicate (row erased in both generations) collapses silently: the
    // restaged erase already covers it.
    if (!overlay_.StageErase(row).ok()) continue;
    const size_t seg = row < assignment_.size() ? assignment_[row] : 0;
    if (seg < per_segment_.size()) ++per_segment_[seg];
  }
  if (obs::MetricsEnabled()) {
    auto& health = obs::SegmentHealthRegistry::Default();
    for (size_t s = 0; s < per_segment_.size(); ++s) {
      if (per_segment_[s] > 0) health.SetDeltaBacklog(s, per_segment_[s]);
    }
  }
}

size_t DeltaBuffer::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overlay_.pending();
}

uint64_t DeltaBuffer::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

std::vector<size_t> DeltaBuffer::PerSegmentDeltas() const {
  std::lock_guard<std::mutex> lock(mu_);
  return per_segment_;
}

uint64_t DeltaBuffer::dropped_erases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_erases_;
}

bool DeltaBuffer::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return armed_;
}

size_t DeltaBuffer::base_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overlay_.base_rows();
}

}  // namespace update
}  // namespace simcard
