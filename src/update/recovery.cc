#include "update/recovery.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/crc32.h"
#include "common/serialize.h"
#include "obs/metrics.h"
#include "obs/segment_health.h"
#include "update/delta_journal.h"
#include "update/update_manager.h"

namespace simcard {
namespace update {
namespace {

constexpr char kManifestMagic[8] = {'S', 'I', 'M', 'C', 'M', 'A', 'N', '1'};
constexpr uint32_t kManifestVersion = 1;

struct RecoveryMetrics {
  obs::Counter* attempts = obs::GetCounter("simcard.update.recovery.attempts");
  obs::Counter* successes =
      obs::GetCounter("simcard.update.recovery.successes");
  obs::Counter* replayed_inserts =
      obs::GetCounter("simcard.update.recovery.replayed_inserts");
  obs::Counter* replayed_erases =
      obs::GetCounter("simcard.update.recovery.replayed_erases");
  obs::Counter* truncated_tails =
      obs::GetCounter("simcard.update.recovery.truncated_tails");
  obs::Counter* quarantined =
      obs::GetCounter("simcard.update.recovery.quarantined");
  static RecoveryMetrics& Get() {
    static RecoveryMetrics m;
    return m;
  }
};

std::string EpochFile(const std::string& stem, uint64_t epoch,
                      const std::string& ext) {
  return stem + "-" + std::to_string(epoch) + ext;
}

void QuarantineFile(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return;
  if (std::rename(path.c_str(), (path + ".quarantine").c_str()) == 0) {
    if (obs::MetricsEnabled()) RecoveryMetrics::Get().quarantined->Increment();
  }
}

}  // namespace

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

std::string ModelPath(const std::string& dir, uint64_t epoch) {
  return dir + "/" + EpochFile("model", epoch, ".bin");
}

std::string DatasetPath(const std::string& dir, uint64_t epoch) {
  return dir + "/" + EpochFile("dataset", epoch, ".bin");
}

std::string WorkloadPath(const std::string& dir) {
  return dir + "/workload.bin";
}

std::string JournalPath(const std::string& dir, uint64_t epoch) {
  return dir + "/" + EpochFile("journal", epoch, ".wal");
}

Status EnsureDir(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty durable dir");
  // mkdir -p: create each prefix, tolerating already-exists.
  for (size_t pos = 1; pos <= dir.size(); ++pos) {
    if (pos != dir.size() && dir[pos] != '/') continue;
    const std::string prefix = dir.substr(0, pos);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("mkdir " + prefix + ": " +
                             std::string(std::strerror(errno)));
    }
  }
  return Status::OK();
}

Status SaveManifest(const std::string& dir, const DurableManifest& manifest) {
  Serializer body;
  body.WriteRawBytes(kManifestMagic, sizeof(kManifestMagic));
  body.WriteU32(kManifestVersion);
  body.WriteU64(manifest.epoch);
  body.WriteU64(manifest.base_rows);
  body.WriteU64(manifest.dim);
  body.WriteString(manifest.model_file);
  body.WriteString(manifest.dataset_file);
  body.WriteString(manifest.workload_file);
  body.WriteString(manifest.journal_file);
  Serializer out;
  out.WriteRawBytes(body.bytes().data(), body.bytes().size());
  out.WriteU32(Crc32(body.bytes().data(), body.bytes().size()));
  return out.SaveToFile(ManifestPath(dir));
}

Result<DurableManifest> LoadManifest(const std::string& dir) {
  const std::string path = ManifestPath(dir);
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound("no manifest at " + path);
  }
  auto bytes_or = ReadFileBytes(path);
  SIMCARD_RETURN_IF_ERROR(bytes_or.status());
  std::vector<uint8_t> bytes = std::move(bytes_or).value();
  if (bytes.size() < sizeof(kManifestMagic) + 4 + 4 ||
      std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::IoError("manifest magic mismatch: " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (Crc32(bytes.data(), bytes.size() - 4) != stored_crc) {
    return Status::IoError("manifest CRC mismatch: " + path);
  }
  bytes.resize(bytes.size() - 4);
  Deserializer in(std::move(bytes));
  uint8_t magic[sizeof(kManifestMagic)];
  SIMCARD_RETURN_IF_ERROR(in.ReadRawBytes(magic, sizeof(magic)));
  uint32_t version = 0;
  SIMCARD_RETURN_IF_ERROR(in.ReadU32(&version));
  if (version != kManifestVersion) {
    return Status::IoError("unsupported manifest version " +
                           std::to_string(version));
  }
  DurableManifest m;
  SIMCARD_RETURN_IF_ERROR(in.ReadU64(&m.epoch));
  SIMCARD_RETURN_IF_ERROR(in.ReadU64(&m.base_rows));
  SIMCARD_RETURN_IF_ERROR(in.ReadU64(&m.dim));
  SIMCARD_RETURN_IF_ERROR(in.ReadString(&m.model_file));
  SIMCARD_RETURN_IF_ERROR(in.ReadString(&m.dataset_file));
  SIMCARD_RETURN_IF_ERROR(in.ReadString(&m.workload_file));
  SIMCARD_RETURN_IF_ERROR(in.ReadString(&m.journal_file));
  return m;
}

void QuarantineEpochArtifacts(const std::string& dir, uint64_t epoch) {
  QuarantineFile(ModelPath(dir, epoch));
  QuarantineFile(DatasetPath(dir, epoch));
  QuarantineFile(JournalPath(dir, epoch));
}

void RemoveEpochArtifacts(const std::string& dir, uint64_t epoch) {
  std::remove(ModelPath(dir, epoch).c_str());
  std::remove(DatasetPath(dir, epoch).c_str());
  std::remove(JournalPath(dir, epoch).c_str());
}

Result<std::unique_ptr<UpdateManager>> UpdateManager::RecoverFrom(
    serve::ModelRegistry* registry, UpdateOptions options,
    const GlEstimatorConfig* config) {
  if (options.journal_dir.empty()) {
    return Status::InvalidArgument(
        "RecoverFrom: options.journal_dir must name the durable directory");
  }
  if (obs::MetricsEnabled()) RecoveryMetrics::Get().attempts->Increment();
  const std::string& dir = options.journal_dir;

  auto manifest_or = LoadManifest(dir);
  SIMCARD_RETURN_IF_ERROR(manifest_or.status());
  const DurableManifest manifest = std::move(manifest_or).value();

  // Authoritative dataset at the manifest epoch.
  auto ds_in_or = Deserializer::FromFile(dir + "/" + manifest.dataset_file);
  SIMCARD_RETURN_IF_ERROR(ds_in_or.status());
  Deserializer ds_in = std::move(ds_in_or).value();
  auto dataset_or = Dataset::Deserialize(&ds_in);
  SIMCARD_RETURN_IF_ERROR(dataset_or.status());
  Dataset dataset = std::move(dataset_or).value();
  if (dataset.size() != manifest.base_rows || dataset.dim() != manifest.dim) {
    return Status::IoError("recovered dataset shape disagrees with manifest");
  }

  // Model: the checked container detects truncation/corruption itself.
  auto model = std::make_shared<GlEstimator>(
      config != nullptr ? *config : GlEstimatorConfig::GlCnn());
  SIMCARD_RETURN_IF_ERROR(
      model->LoadFromFile(dir + "/" + manifest.model_file));
  if (model->segmentation().assignment.size() != dataset.size()) {
    return Status::IoError(
        "recovered model segmentation disagrees with dataset epoch");
  }

  // Workload: queries + taus persist; labels and profiles are derived, so
  // rebuild them against the recovered dataset/segmentation.
  auto wl_in_or = Deserializer::FromFile(dir + "/" + manifest.workload_file);
  SIMCARD_RETURN_IF_ERROR(wl_in_or.status());
  Deserializer wl_in = std::move(wl_in_or).value();
  auto workload_or = DeserializeQueries(&wl_in);
  SIMCARD_RETURN_IF_ERROR(workload_or.status());
  SearchWorkload workload = std::move(workload_or).value();
  SIMCARD_RETURN_IF_ERROR(
      RelabelWorkload(dataset, &model->segmentation(), &workload));

  // Journal: longest valid prefix re-stages; the torn tail (if any) is
  // truncated off when the file re-opens for append.
  const std::string journal_path = dir + "/" + manifest.journal_file;
  auto replay_or = DeltaJournal::Replay(journal_path);
  SIMCARD_RETURN_IF_ERROR(replay_or.status());
  const DeltaJournal::ReplayResult replay = std::move(replay_or).value();
  if (replay.tail_truncated && obs::MetricsEnabled()) {
    RecoveryMetrics::Get().truncated_tails->Increment();
  }

  auto manager = std::unique_ptr<UpdateManager>(new UpdateManager(
      std::move(dataset), std::move(workload), registry, options));
  // Serve the recovered epoch before accepting deltas; PublishAt keeps the
  // durable epoch sequence monotone across the restart.
  registry->PublishAt(model, manifest.epoch);
  manager->durable_epoch_ = manifest.epoch;

  // Re-stage the journaled deltas journal-free (they are already durable),
  // then attach the re-opened journal for new acks. The capacity bound is
  // lifted for the replay (the constructor installed it): every journaled
  // delta was acknowledged before the crash, so it must re-stage even when
  // the journal holds more than options.delta_capacity records.
  manager->buffer_.SetCapacity(0);
  manager->buffer_.Rearm(model->segmentation(), manager->dataset_.size(),
                         manager->dataset_.dim(), manager->dataset_.metric(),
                         /*journal=*/nullptr);
  uint64_t inserts = 0;
  uint64_t erases = 0;
  for (const JournalRecord& rec : replay.records) {
    switch (rec.type) {
      case JournalRecordType::kEpochMark:
        if (rec.epoch != manifest.epoch ||
            rec.base_rows != manifest.base_rows) {
          return Status::IoError(
              "journal epoch mark disagrees with manifest");
        }
        break;
      case JournalRecordType::kInsert: {
        SIMCARD_RETURN_IF_ERROR(manager->buffer_.Insert(
            std::span<const float>(rec.point.data(), rec.point.size())));
        ++inserts;
        break;
      }
      case JournalRecordType::kErase: {
        // At-least-once journaling can hold a duplicate erase (carried
        // deltas re-journal translated rows); the first staging wins.
        const Status st = manager->buffer_.Erase(rec.row);
        if (st.ok()) ++erases;
        break;
      }
    }
  }
  auto journal_or = DeltaJournal::OpenForAppend(
      journal_path, manifest.dim, replay.valid_bytes, options.journal);
  SIMCARD_RETURN_IF_ERROR(journal_or.status());
  manager->journal_ = std::move(journal_or).value();
  manager->buffer_.AttachJournal(manager->journal_.get());
  // The capacity bound applies to NEW ingestion only — every replayed
  // delta was acknowledged before the crash and must re-stage.
  manager->buffer_.SetCapacity(options.delta_capacity);

  // A recovered manager starts healthy: the degraded state that may have
  // preceded the crash is cleared by the successful recovery.
  obs::SegmentHealthRegistry::Default().SetUpdateDegraded(false);
  if (obs::MetricsEnabled()) {
    RecoveryMetrics::Get().successes->Increment();
    RecoveryMetrics::Get().replayed_inserts->Add(
        static_cast<int64_t>(inserts));
    RecoveryMetrics::Get().replayed_erases->Add(static_cast<int64_t>(erases));
    obs::GetGauge("simcard.update.degraded")->Set(0.0);
  }
  return manager;
}

}  // namespace update
}  // namespace simcard
