#include "update/drift_monitor.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace simcard {
namespace update {

namespace {

// Accumulated deltas for one segment while scanning a snapshot.
struct PendingDeltas {
  size_t inserts = 0;
  size_t erases = 0;
  std::vector<float> sum;  // Σ inserted - Σ erased, lazily sized
};

}  // namespace

DriftReport DriftMonitor::Assess(const Segmentation& seg,
                                 const Dataset& dataset,
                                 const DeltaSnapshot& snap) const {
  return Assess(seg, dataset, snap, {});
}

DriftReport DriftMonitor::Assess(
    const Segmentation& seg, const Dataset& dataset,
    const DeltaSnapshot& snap,
    std::span<const obs::ObservedSegmentAccuracy> observed) const {
  const size_t dim = dataset.dim();
  DriftReport report;

  std::map<size_t, PendingDeltas> by_segment;
  for (size_t i = 0; i < snap.overlay.num_inserts(); ++i) {
    const size_t s = i < snap.insert_segments.size() ? snap.insert_segments[i]
                                                     : 0;
    PendingDeltas& d = by_segment[s];
    ++d.inserts;
    if (d.sum.empty()) d.sum.assign(dim, 0.0f);
    const float* p = snap.overlay.InsertRow(i);
    for (size_t j = 0; j < dim; ++j) d.sum[j] += p[j];
  }
  for (uint32_t row : snap.overlay.SortedErases()) {
    if (row >= dataset.size() || row >= seg.assignment.size()) continue;
    PendingDeltas& d = by_segment[seg.assignment[row]];
    ++d.erases;
    if (d.sum.empty()) d.sum.assign(dim, 0.0f);
    const float* p = dataset.Point(row);
    for (size_t j = 0; j < dim; ++j) d.sum[j] -= p[j];
  }

  // Observed-accuracy staleness: the serving layer's windowed q-error per
  // evaluated segment. A degraded segment may have zero pending deltas
  // (query drift rather than data drift), so trusted entries get a
  // deltas-free row in the report.
  std::map<size_t, double> observed_p90;
  if (thresholds_.stale_observed_qerror > 0.0) {
    for (const obs::ObservedSegmentAccuracy& acc : observed) {
      if (acc.reports < thresholds_.min_observed_reports) continue;
      if (acc.segment >= seg.num_segments()) continue;
      observed_p90[acc.segment] = acc.qerror_p90;
      by_segment[acc.segment];  // ensure a (possibly zero-delta) entry
    }
  }

  for (const auto& [s, d] : by_segment) {
    SegmentDrift drift;
    drift.segment = s;
    drift.size = s < seg.members.size() ? seg.members[s].size() : 0;
    drift.inserts = d.inserts;
    drift.erases = d.erases;
    const double denom = std::max<double>(1.0, drift.size);
    drift.delta_fraction = (d.inserts + d.erases) / denom;
    drift.card_shift =
        std::abs(static_cast<double>(d.inserts) -
                 static_cast<double>(d.erases)) /
        denom;

    // Predicted centroid after the batch, by the same mean arithmetic the
    // apply path uses: (size*c + Σins - Σdel) / (size + ins - del).
    if (s < seg.num_segments() && !d.sum.empty()) {
      const double new_count = static_cast<double>(drift.size) +
                               static_cast<double>(d.inserts) -
                               static_cast<double>(d.erases);
      if (new_count >= 1.0) {
        const float* c = seg.centroids.Row(s);
        std::vector<float> moved(dim);
        for (size_t j = 0; j < dim; ++j) {
          moved[j] = static_cast<float>(
              (static_cast<double>(drift.size) * c[j] + d.sum[j]) /
              new_count);
        }
        const float dist =
            Distance(moved.data(), c, dim, dataset.metric());
        const float radius = s < seg.radius.size() ? seg.radius[s] : 0.0f;
        drift.centroid_shift = dist / std::max(radius, 1e-3f);
      } else {
        // The batch empties the segment: maximal drift by definition.
        drift.centroid_shift = 1.0;
      }
    }

    if (const auto it = observed_p90.find(s); it != observed_p90.end()) {
      drift.observed_qerror = it->second;
    }
    // A pure-accuracy entry has zero deltas, so only the observed input
    // can flag it; a delta-bearing entry may be flagged by either signal.
    const bool delta_stale =
        (d.inserts + d.erases) > 0 &&
        (drift.delta_fraction >= thresholds_.stale_delta_fraction ||
         drift.centroid_shift >= thresholds_.stale_centroid_shift);
    const bool accuracy_stale =
        thresholds_.stale_observed_qerror > 0.0 &&
        drift.observed_qerror >= thresholds_.stale_observed_qerror;
    drift.stale = delta_stale || accuracy_stale;
    if (drift.stale) report.stale_segments.push_back(s);
    report.segments.push_back(drift);
  }

  report.total_delta_fraction =
      static_cast<double>(snap.overlay.pending()) /
      std::max<double>(1.0, dataset.size());
  report.escalate_full_reseg =
      report.total_delta_fraction >= thresholds_.full_reseg_fraction;
  return report;
}

}  // namespace update
}  // namespace simcard
