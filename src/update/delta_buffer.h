// Thread-safe delta ingestion for the online-update subsystem.
//
// Writers Insert/Erase vectors while the serving layer keeps answering from
// the published model (Section 5.3). Each delta is routed to its nearest
// segment centroid at ingestion time — against a copy of the published
// segmentation taken at Rearm() — so the drift monitor can attribute
// pending deltas to segments without touching the live estimator.
//
// Epoch discipline: erases name rows of the dataset epoch the buffer is
// armed against. A refresh Drain()s the staged overlay, applies it, and
// calls RearmAfterRefresh() with the compaction remap; deltas that arrived
// mid-refresh are translated to the new epoch (erases of rows the refresh
// itself removed are dropped and counted).
#ifndef SIMCARD_UPDATE_DELTA_BUFFER_H_
#define SIMCARD_UPDATE_DELTA_BUFFER_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "cluster/segmentation.h"
#include "data/delta_overlay.h"

namespace simcard {
namespace update {

/// \brief One refresh's worth of drained deltas, with routing.
struct DeltaSnapshot {
  DeltaOverlay overlay;
  /// Routed delta count (inserts + erases) per segment of the armed epoch.
  std::vector<size_t> per_segment;
  /// Staged-insert i -> segment it was routed to.
  std::vector<size_t> insert_segments;
};

/// \brief Mutex-guarded staging buffer with nearest-centroid routing.
///
/// Thread-safe: any number of concurrent Insert/Erase/pending callers, plus
/// one refresher calling Drain/Rearm*. Ingestion never blocks on model
/// work — the critical section is one routing scan plus a vector append.
class DeltaBuffer {
 public:
  DeltaBuffer() = default;
  DeltaBuffer(const DeltaBuffer&) = delete;
  DeltaBuffer& operator=(const DeltaBuffer&) = delete;

  /// Arms ingestion against a published segmentation of a `base_rows`-row
  /// dataset, discarding any staged deltas (first arm / full retrain).
  void Rearm(const Segmentation& seg, size_t base_rows, size_t dim,
             Metric metric);

  /// Re-arms after a refresh: deltas staged since the Drain() are carried
  /// over — inserts re-routed against the new centroids, erases translated
  /// through `remap` (old row -> new row; erases of rows the refresh
  /// removed are dropped and counted in dropped_erases()).
  void RearmAfterRefresh(const Segmentation& seg, size_t base_rows,
                         size_t dim, Metric metric,
                         const std::vector<uint32_t>& remap);

  /// Stages one inserted vector (dim() finite floats) and routes it to its
  /// nearest segment centroid. FailedPrecondition before the first Rearm.
  Status Insert(std::span<const float> point);

  /// Stages the erase of base row `row` of the armed epoch.
  Status Erase(uint32_t row);

  /// Moves the staged deltas out for a refresh; the buffer stays armed
  /// against the same epoch so ingestion continues during the refresh.
  DeltaSnapshot Drain();

  size_t pending() const;
  std::vector<size_t> PerSegmentDeltas() const;
  /// Erases invalidated because a refresh removed their target row first.
  uint64_t dropped_erases() const;
  bool armed() const;
  size_t base_rows() const;

 private:
  /// Routing + bookkeeping shared by Insert and the rearm carry-over path;
  /// mu_ must be held.
  Status InsertLocked(std::span<const float> point);
  void ResetLocked(const Segmentation& seg, size_t base_rows, size_t dim,
                   Metric metric);
  size_t NearestSegmentLocked(const float* point) const;

  mutable std::mutex mu_;
  bool armed_ = false;
  Matrix centroids_;                  // routing copy of the armed epoch
  std::vector<uint32_t> assignment_;  // base row -> segment (routing copy)
  Metric metric_ = Metric::kL2;
  size_t dim_ = 0;
  DeltaOverlay overlay_;
  std::vector<size_t> per_segment_;
  std::vector<size_t> insert_segments_;
  uint64_t dropped_erases_ = 0;
};

}  // namespace update
}  // namespace simcard

#endif  // SIMCARD_UPDATE_DELTA_BUFFER_H_
