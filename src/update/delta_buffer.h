// Thread-safe delta ingestion for the online-update subsystem.
//
// Writers Insert/Erase vectors while the serving layer keeps answering from
// the published model (Section 5.3). Each delta is routed to its nearest
// segment centroid at ingestion time — against a copy of the published
// segmentation taken at Rearm() — so the drift monitor can attribute
// pending deltas to segments without touching the live estimator.
//
// Epoch discipline: erases name rows of the dataset epoch the buffer is
// armed against. A refresh Drain()s the staged overlay, applies it, and
// calls RearmAfterRefresh() with the compaction remap; deltas that arrived
// mid-refresh are translated to the new epoch (erases of rows the refresh
// itself removed are dropped and counted).
#ifndef SIMCARD_UPDATE_DELTA_BUFFER_H_
#define SIMCARD_UPDATE_DELTA_BUFFER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "cluster/segmentation.h"
#include "data/delta_overlay.h"

namespace simcard {
namespace update {

class DeltaJournal;

/// \brief One refresh's worth of drained deltas, with routing.
struct DeltaSnapshot {
  DeltaOverlay overlay;
  /// Routed delta count (inserts + erases) per segment of the armed epoch.
  std::vector<size_t> per_segment;
  /// Staged-insert i -> segment it was routed to.
  std::vector<size_t> insert_segments;
};

/// \brief Mutex-guarded staging buffer with nearest-centroid routing.
///
/// Thread-safe: any number of concurrent Insert/Erase/pending callers, plus
/// one refresher calling Drain/Rearm*. Ingestion never blocks on model
/// work — the critical section is one routing scan plus a vector append.
class DeltaBuffer {
 public:
  DeltaBuffer() = default;
  DeltaBuffer(const DeltaBuffer&) = delete;
  DeltaBuffer& operator=(const DeltaBuffer&) = delete;

  /// Arms ingestion against a published segmentation of a `base_rows`-row
  /// dataset, discarding any staged deltas (first arm / full retrain).
  /// `journal`, when non-null, becomes the durability sink: every
  /// acknowledged Insert/Erase is appended to it before the ack (non-owning;
  /// the caller keeps it alive until the next Rearm*).
  void Rearm(const Segmentation& seg, size_t base_rows, size_t dim,
             Metric metric, DeltaJournal* journal = nullptr);

  /// Re-arms after a refresh: deltas staged since the Drain() are carried
  /// over — inserts re-routed against the new centroids, erases translated
  /// through `remap` (old row -> new row; erases of rows the refresh
  /// removed are dropped and counted in dropped_erases()). `journal` (the
  /// NEW epoch's journal) replaces the previous sink, and the carried
  /// deltas are re-journaled into it in translated form so the old epoch's
  /// file can be retired.
  ///
  /// `durable_commit` (when set) runs INSIDE the buffer's critical section
  /// after the carried deltas are re-journaled and synced — the manager
  /// passes the manifest rename here, which makes the journal switch
  /// atomic against concurrent acks: every ack lands either in the old
  /// journal while the old manifest is committed, or in the new journal
  /// after the new one is. Returns the first re-journaling or commit
  /// error, with the carried deltas staged in memory regardless.
  Status RearmAfterRefresh(const Segmentation& seg, size_t base_rows,
                           size_t dim, Metric metric,
                           const std::vector<uint32_t>& remap,
                           DeltaJournal* journal = nullptr,
                           const std::function<Status()>& durable_commit = {});

  /// Caps staged deltas: Insert/Erase past the cap shed with kUnavailable
  /// (counter simcard.update.delta_shed). 0 = unbounded (the default).
  void SetCapacity(size_t capacity);

  /// Attaches/replaces the durability sink without touching staged state.
  /// Recovery uses this: replayed deltas are already in the journal, so
  /// they stage journal-free and the re-opened journal attaches after.
  void AttachJournal(DeltaJournal* journal);

  /// Stages one inserted vector (dim() finite floats), routes it to its
  /// nearest segment centroid, and journals it when a sink is attached.
  /// FailedPrecondition before the first Rearm; kUnavailable at capacity.
  /// A journal-append failure is returned (the caller must not treat the
  /// delta as durable) but the delta stays staged: at-least-once, never
  /// silently dropped.
  Status Insert(std::span<const float> point);

  /// Stages the erase of base row `row` of the armed epoch. Same capacity
  /// and journaling contract as Insert.
  Status Erase(uint32_t row);

  /// Moves the staged deltas out for a refresh; the buffer stays armed
  /// against the same epoch so ingestion continues during the refresh.
  DeltaSnapshot Drain();

  /// Puts a Drain()ed snapshot back after a failed refresh: the restaged
  /// deltas are merged ahead of anything staged since the drain, so no
  /// acknowledged delta is lost when the refresh could not apply them.
  /// Duplicate erases (same row staged again post-drain) collapse. The
  /// journal is untouched — both generations are already in the current
  /// epoch's file.
  void Restage(DeltaSnapshot snapshot);

  size_t pending() const;
  /// Inserts/erases shed by the capacity bound over the buffer's lifetime.
  uint64_t shed() const;
  std::vector<size_t> PerSegmentDeltas() const;
  /// Erases invalidated because a refresh removed their target row first.
  uint64_t dropped_erases() const;
  bool armed() const;
  size_t base_rows() const;

 private:
  /// Routing + bookkeeping shared by Insert and the rearm carry-over path;
  /// mu_ must be held.
  Status InsertLocked(std::span<const float> point);
  /// kUnavailable (and one shed tick) when the capacity bound is hit.
  Status CheckCapacityLocked();
  void ResetLocked(const Segmentation& seg, size_t base_rows, size_t dim,
                   Metric metric);
  size_t NearestSegmentLocked(const float* point) const;

  mutable std::mutex mu_;
  bool armed_ = false;
  Matrix centroids_;                  // routing copy of the armed epoch
  std::vector<uint32_t> assignment_;  // base row -> segment (routing copy)
  Metric metric_ = Metric::kL2;
  size_t dim_ = 0;
  DeltaOverlay overlay_;
  std::vector<size_t> per_segment_;
  std::vector<size_t> insert_segments_;
  uint64_t dropped_erases_ = 0;
  size_t capacity_ = 0;  // 0 = unbounded
  uint64_t shed_ = 0;
  DeltaJournal* journal_ = nullptr;  // non-owning durability sink
};

}  // namespace update
}  // namespace simcard

#endif  // SIMCARD_UPDATE_DELTA_BUFFER_H_
