// Refresh orchestration for the online-update subsystem (Section 5.3).
//
// The manager owns the authoritative dataset + workload, ingests deltas
// through a DeltaBuffer, and on trigger (delta-count threshold via Tick(),
// or an explicit Refresh()) produces a refreshed estimator OFF TO THE SIDE
// and publishes it through serve::ModelRegistry — the same zero-downtime
// epoch hot-swap the serving layer already uses for retrains. Readers never
// see a half-updated model; ingestion stays open during a refresh and is
// re-armed against the new epoch afterwards.
//
// Refresh paths, chosen by the DriftMonitor:
//   incremental — clone the published estimator (SaveToBytes/LoadFromBytes),
//     apply erases + route inserts on the clone's segmentation, rebuild the
//     touched segments' SegmentFallback samples and |D^[i]| clamps, relabel
//     the workload, fine-tune ONLY the stale local models plus a short
//     global fine-tune, publish;
//   full re-segmentation — when total churn crosses the hard ceiling, redo
//     PCA + K-means on the updated dataset and train a fresh estimator.
//
// Durability (UpdateOptions::journal_dir non-empty): every acknowledged
// Insert/Erase is appended to an epoch-scoped write-ahead journal before
// the ack, each published epoch persists its model + dataset + journal
// behind an atomically-renamed manifest, and RecoverFrom (recovery.cc)
// rebuilds a serving manager from those files after a crash with zero
// acknowledged-delta loss. A refresh that fails leaves the served epoch
// and the staged deltas untouched (the drained snapshot is restaged) and
// Tick reschedules it with exponential backoff + jitter; exhausting the
// retry budget trips a degraded state (simcard.update.degraded gauge +
// SegmentHealthRegistry::update_degraded) that an explicit Refresh() or
// recovery heals.
//
// Observability (gated on obs::MetricsEnabled()):
//   counters   simcard.update.inserts, .erases, .refreshes,
//              .segments_refreshed, .segments_cloned, .epochs_published,
//              .full_resegs, .dropped_erases, .refresh_failures,
//              .delta_shed, .retry.scheduled, .retry.exhausted
//   gauges     simcard.update.pending_deltas, simcard.update.degraded
//   histograms simcard.update.refresh_ms, simcard.update.deltas_per_refresh
//   (plus simcard.update.journal.* in delta_journal.cc and
//    simcard.update.recovery.* in recovery.cc)
#ifndef SIMCARD_UPDATE_UPDATE_MANAGER_H_
#define SIMCARD_UPDATE_UPDATE_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/gl_estimator.h"
#include "serve/model_registry.h"
#include "update/delta_buffer.h"
#include "update/delta_journal.h"
#include "update/drift_monitor.h"
#include "workload/queries.h"

namespace simcard {
namespace update {

/// \brief Refresh policy knobs.
struct UpdateOptions {
  /// Tick() refreshes once pending deltas reach this count (0 disables the
  /// threshold trigger; Refresh() always works).
  size_t refresh_delta_threshold = 0;
  /// Fine-tune epochs for stale local models and the global model.
  size_t fine_tune_epochs = 3;
  /// Base seed for refresh RNG streams (fallback re-sampling, fine-tunes);
  /// each refresh derives its own stream so repeated refreshes differ
  /// deterministically.
  uint64_t seed = 104729;
  DriftThresholds drift;
  /// Allow escalation to a full re-segmentation + retrain.
  bool allow_full_reseg = true;
  /// Segmentation options for the escalation path. target_segments == 0
  /// (the default here, overriding SegmentationOptions' own 16) keeps the
  /// published estimator's segment count.
  SegmentationOptions reseg{.target_segments = 0};

  /// Durability root: non-empty enables the write-ahead delta journal and
  /// epoch manifests under this directory (created if missing). Empty (the
  /// default) keeps the PR 5 in-memory-only behavior.
  std::string journal_dir;
  /// Journal group-commit / fsync knobs (only read when journal_dir set).
  JournalOptions journal;
  /// DeltaBuffer capacity: Insert/Erase past this many staged deltas shed
  /// with kUnavailable. 0 = unbounded.
  size_t delta_capacity = 0;
  /// Consecutive Tick-refresh failures tolerated before the manager trips
  /// degraded (auto-refresh stops; explicit Refresh() still works and
  /// heals). 0 = degrade on the first failure.
  size_t refresh_retry_budget = 3;
  /// Exponential backoff between Tick retry attempts: the n-th consecutive
  /// failure schedules the next attempt base*2^(n-1) ms out (clamped to
  /// max), jittered by a deterministic factor in [0.5, 1.5).
  double refresh_backoff_base_ms = 200.0;
  double refresh_backoff_max_ms = 10000.0;
};

/// \brief What one Refresh()/Tick() did.
struct RefreshOutcome {
  bool refreshed = false;  ///< false: nothing pending (or threshold not met)
  bool full_reseg = false;
  uint64_t epoch = 0;  ///< registry epoch of the published model
  size_t applied_inserts = 0;
  size_t applied_erases = 0;
  std::vector<size_t> stale_segments;
  size_t segments_refreshed = 0;  ///< locals fine-tuned
  size_t segments_cloned = 0;     ///< locals carried over untouched
  double refresh_ms = 0.0;
};

/// \brief Owns the mutable dataset/workload and drives refreshes.
///
/// Thread-safe: Insert/Erase/pending from any thread; Refresh/Tick from
/// any thread (serialized internally — a second caller waits). dataset()
/// and workload() are only stable while no refresh is in flight; they are
/// meant for single-threaded benchmarking and tests.
class UpdateManager {
 public:
  /// `registry` must outlive the manager.
  UpdateManager(Dataset dataset, SearchWorkload workload,
                serve::ModelRegistry* registry, UpdateOptions options);

  /// Publishes a clone of `trained` as the first served epoch and arms
  /// delta ingestion against it. The estimator must have been trained on
  /// (a segmentation of) the manager's dataset. With journal_dir set, also
  /// persists the epoch's model/dataset/workload, opens its journal, and
  /// commits the first manifest.
  Status Start(const GlEstimator& trained);

  /// Rebuilds a serving manager from the last committed manifest under
  /// `options.journal_dir` (which RecoverFrom forces non-empty): loads the
  /// manifest's model + dataset + workload queries, relabels the workload,
  /// publishes at the recovered epoch through `registry`, replays the
  /// journal's valid prefix into a fresh DeltaBuffer (any torn tail is
  /// truncated off), and re-opens the journal for append. Every delta
  /// acknowledged before the crash is pending again afterwards.
  /// `config` supplies the estimator's behavioral knobs (fine-tune
  /// options; the geometry is embedded in the model file) — nullptr uses
  /// GlEstimatorConfig::GlCnn() like the CLI. Implemented in recovery.cc.
  static Result<std::unique_ptr<UpdateManager>> RecoverFrom(
      serve::ModelRegistry* registry, UpdateOptions options,
      const GlEstimatorConfig* config = nullptr);

  /// Stages one inserted vector (copied; dim() finite floats).
  Status Insert(std::span<const float> point);

  /// Stages the erase of row `row` of the currently armed dataset epoch.
  Status Erase(uint32_t row);

  /// Drains pending deltas and refreshes now (no-op outcome when nothing
  /// is pending).
  Result<RefreshOutcome> Refresh();

  /// Threshold trigger: refreshes only when pending deltas have reached
  /// UpdateOptions::refresh_delta_threshold, or when the observed-accuracy
  /// input (SetAccuracySource + DriftThresholds::stale_observed_qerror)
  /// flags a segment stale. Call periodically (or after ingestion bursts);
  /// returns refreshed = false when not due.
  Result<RefreshOutcome> Tick();

  /// \brief Wires the serving layer's online Q-error windows (see
  /// serve::EstimationService::accuracy()) into drift assessment.
  ///
  /// With DriftThresholds::stale_observed_qerror > 0, a segment whose
  /// windowed q-error p90 crosses the threshold is fine-tuned on the next
  /// refresh even when it has zero pending deltas — observed accuracy
  /// degradation (query drift) triggers repair the same way data drift
  /// does. `tracker` must outlive the manager; nullptr disconnects.
  void SetAccuracySource(const obs::QErrorTracker* tracker);

  size_t pending() const { return buffer_.pending(); }
  const DeltaBuffer& buffer() const { return buffer_; }
  const DriftMonitor& monitor() const { return monitor_; }

  /// True once consecutive Tick-refresh failures exhausted the retry
  /// budget: Tick no-ops until an explicit Refresh() succeeds.
  bool degraded() const;
  size_t consecutive_failures() const;
  /// True after a failure inside the durable-commit window left disk and
  /// memory out of step: the manager refuses further work and must be
  /// replaced via RecoverFrom (recovery replays the still-committed old
  /// manifest; nothing acknowledged is lost).
  bool needs_recovery() const { return needs_recovery_.load(); }
  /// Epoch of the last committed manifest (0 when not durable).
  uint64_t durable_epoch() const;

  /// The authoritative post-apply dataset/workload. Only stable while no
  /// refresh is in flight.
  const Dataset& dataset() const { return dataset_; }
  const SearchWorkload& workload() const { return workload_; }

 private:
  Result<RefreshOutcome> DoRefresh(bool only_if_due);
  Result<RefreshOutcome> IncrementalRefresh(
      const std::shared_ptr<const GlEstimator>& current, uint64_t next_epoch,
      const DeltaSnapshot& snap, const DriftReport& report,
      uint64_t refresh_seed);
  Result<RefreshOutcome> FullResegRefresh(
      const std::shared_ptr<const GlEstimator>& current, uint64_t next_epoch,
      const DeltaSnapshot& snap, uint64_t refresh_seed);
  /// Applies `snap` + fine-tunes onto working copies, persists the new
  /// epoch's artifacts, swaps them in, and commits the manifest under the
  /// buffer lock. Shared tail of both refresh paths.
  Status CommitRefresh(std::shared_ptr<GlEstimator> next, Dataset new_dataset,
                       SearchWorkload new_workload, uint64_t next_epoch,
                       const std::vector<uint32_t>& remap,
                       RefreshOutcome* outcome);
  /// Saves epoch `epoch`'s dataset + model files (fault: update.refresh_io).
  Status PersistEpochArtifacts(uint64_t epoch, const GlEstimator& model,
                               const Dataset& dataset) const;
  /// Records a refresh failure: restages the snapshot, bumps the failure
  /// counters, and schedules the Tick backoff window.
  void OnRefreshFailure(DeltaSnapshot snap);
  void OnRefreshSuccess();
  bool durable() const { return !options_.journal_dir.empty(); }
  void UpdatePendingGauge() const;

  Dataset dataset_;
  SearchWorkload workload_;
  serve::ModelRegistry* registry_;
  UpdateOptions options_;
  DeltaBuffer buffer_;
  DriftMonitor monitor_;
  const obs::QErrorTracker* accuracy_ = nullptr;  // guarded by refresh_mu_

  /// Serializes refreshes; dataset_/workload_ only mutate under this.
  mutable std::mutex refresh_mu_;
  uint64_t refresh_count_ = 0;  // guarded by refresh_mu_

  // Durability state, guarded by refresh_mu_ (except needs_recovery_,
  // which ingestion reads without the lock).
  std::unique_ptr<DeltaJournal> journal_;
  uint64_t durable_epoch_ = 0;
  std::atomic<bool> needs_recovery_{false};

  // Retry/backoff state, guarded by refresh_mu_.
  size_t consecutive_failures_ = 0;
  bool degraded_ = false;
  std::chrono::steady_clock::time_point next_retry_{};
};

}  // namespace update
}  // namespace simcard

#endif  // SIMCARD_UPDATE_UPDATE_MANAGER_H_
