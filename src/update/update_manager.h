// Refresh orchestration for the online-update subsystem (Section 5.3).
//
// The manager owns the authoritative dataset + workload, ingests deltas
// through a DeltaBuffer, and on trigger (delta-count threshold via Tick(),
// or an explicit Refresh()) produces a refreshed estimator OFF TO THE SIDE
// and publishes it through serve::ModelRegistry — the same zero-downtime
// epoch hot-swap the serving layer already uses for retrains. Readers never
// see a half-updated model; ingestion stays open during a refresh and is
// re-armed against the new epoch afterwards.
//
// Refresh paths, chosen by the DriftMonitor:
//   incremental — clone the published estimator (SaveToBytes/LoadFromBytes),
//     apply erases + route inserts on the clone's segmentation, rebuild the
//     touched segments' SegmentFallback samples and |D^[i]| clamps, relabel
//     the workload, fine-tune ONLY the stale local models plus a short
//     global fine-tune, publish;
//   full re-segmentation — when total churn crosses the hard ceiling, redo
//     PCA + K-means on the updated dataset and train a fresh estimator.
//
// Observability (gated on obs::MetricsEnabled()):
//   counters   simcard.update.inserts, .erases, .refreshes,
//              .segments_refreshed, .segments_cloned, .epochs_published,
//              .full_resegs, .dropped_erases
//   gauge      simcard.update.pending_deltas
//   histograms simcard.update.refresh_ms, simcard.update.deltas_per_refresh
#ifndef SIMCARD_UPDATE_UPDATE_MANAGER_H_
#define SIMCARD_UPDATE_UPDATE_MANAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/gl_estimator.h"
#include "serve/model_registry.h"
#include "update/delta_buffer.h"
#include "update/drift_monitor.h"
#include "workload/queries.h"

namespace simcard {
namespace update {

/// \brief Refresh policy knobs.
struct UpdateOptions {
  /// Tick() refreshes once pending deltas reach this count (0 disables the
  /// threshold trigger; Refresh() always works).
  size_t refresh_delta_threshold = 0;
  /// Fine-tune epochs for stale local models and the global model.
  size_t fine_tune_epochs = 3;
  /// Base seed for refresh RNG streams (fallback re-sampling, fine-tunes);
  /// each refresh derives its own stream so repeated refreshes differ
  /// deterministically.
  uint64_t seed = 104729;
  DriftThresholds drift;
  /// Allow escalation to a full re-segmentation + retrain.
  bool allow_full_reseg = true;
  /// Segmentation options for the escalation path. target_segments == 0
  /// (the default here, overriding SegmentationOptions' own 16) keeps the
  /// published estimator's segment count.
  SegmentationOptions reseg{.target_segments = 0};
};

/// \brief What one Refresh()/Tick() did.
struct RefreshOutcome {
  bool refreshed = false;  ///< false: nothing pending (or threshold not met)
  bool full_reseg = false;
  uint64_t epoch = 0;  ///< registry epoch of the published model
  size_t applied_inserts = 0;
  size_t applied_erases = 0;
  std::vector<size_t> stale_segments;
  size_t segments_refreshed = 0;  ///< locals fine-tuned
  size_t segments_cloned = 0;     ///< locals carried over untouched
  double refresh_ms = 0.0;
};

/// \brief Owns the mutable dataset/workload and drives refreshes.
///
/// Thread-safe: Insert/Erase/pending from any thread; Refresh/Tick from
/// any thread (serialized internally — a second caller waits). dataset()
/// and workload() are only stable while no refresh is in flight; they are
/// meant for single-threaded benchmarking and tests.
class UpdateManager {
 public:
  /// `registry` must outlive the manager.
  UpdateManager(Dataset dataset, SearchWorkload workload,
                serve::ModelRegistry* registry, UpdateOptions options);

  /// Publishes a clone of `trained` as the first served epoch and arms
  /// delta ingestion against it. The estimator must have been trained on
  /// (a segmentation of) the manager's dataset.
  Status Start(const GlEstimator& trained);

  /// Stages one inserted vector (copied; dim() finite floats).
  Status Insert(std::span<const float> point);

  /// Stages the erase of row `row` of the currently armed dataset epoch.
  Status Erase(uint32_t row);

  /// Drains pending deltas and refreshes now (no-op outcome when nothing
  /// is pending).
  Result<RefreshOutcome> Refresh();

  /// Threshold trigger: refreshes only when pending deltas have reached
  /// UpdateOptions::refresh_delta_threshold, or when the observed-accuracy
  /// input (SetAccuracySource + DriftThresholds::stale_observed_qerror)
  /// flags a segment stale. Call periodically (or after ingestion bursts);
  /// returns refreshed = false when not due.
  Result<RefreshOutcome> Tick();

  /// \brief Wires the serving layer's online Q-error windows (see
  /// serve::EstimationService::accuracy()) into drift assessment.
  ///
  /// With DriftThresholds::stale_observed_qerror > 0, a segment whose
  /// windowed q-error p90 crosses the threshold is fine-tuned on the next
  /// refresh even when it has zero pending deltas — observed accuracy
  /// degradation (query drift) triggers repair the same way data drift
  /// does. `tracker` must outlive the manager; nullptr disconnects.
  void SetAccuracySource(const obs::QErrorTracker* tracker);

  size_t pending() const { return buffer_.pending(); }
  const DeltaBuffer& buffer() const { return buffer_; }
  const DriftMonitor& monitor() const { return monitor_; }

  /// The authoritative post-apply dataset/workload. Only stable while no
  /// refresh is in flight.
  const Dataset& dataset() const { return dataset_; }
  const SearchWorkload& workload() const { return workload_; }

 private:
  Result<RefreshOutcome> DoRefresh(bool only_if_due);
  Result<RefreshOutcome> IncrementalRefresh(
      const std::shared_ptr<const GlEstimator>& current, DeltaSnapshot snap,
      const DriftReport& report, uint64_t refresh_seed);
  Result<RefreshOutcome> FullResegRefresh(
      const std::shared_ptr<const GlEstimator>& current, DeltaSnapshot snap,
      uint64_t refresh_seed);
  void UpdatePendingGauge() const;

  Dataset dataset_;
  SearchWorkload workload_;
  serve::ModelRegistry* registry_;
  UpdateOptions options_;
  DeltaBuffer buffer_;
  DriftMonitor monitor_;
  const obs::QErrorTracker* accuracy_ = nullptr;  // guarded by refresh_mu_

  /// Serializes refreshes; dataset_/workload_ only mutate under this.
  std::mutex refresh_mu_;
  uint64_t refresh_count_ = 0;  // guarded by refresh_mu_
};

}  // namespace update
}  // namespace simcard

#endif  // SIMCARD_UPDATE_UPDATE_MANAGER_H_
