// Per-segment staleness assessment for the online-update subsystem.
//
// A refresh should fine-tune only the segments whose pending deltas
// actually moved their data distribution (Section 5.3 fine-tunes affected
// local models; Exp-11 shows full retrains are rarely worth their cost).
// The monitor turns one drained DeltaSnapshot into per-segment drift stats
// and a verdict: which segments are stale enough to fine-tune, and whether
// total churn crossed the ceiling where only a full re-segmentation (PCA +
// K-means redo) restores routing quality.
#ifndef SIMCARD_UPDATE_DRIFT_MONITOR_H_
#define SIMCARD_UPDATE_DRIFT_MONITOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/segmentation.h"
#include "data/dataset.h"
#include "obs/qerror_tracker.h"
#include "update/delta_buffer.h"

namespace simcard {
namespace update {

/// \brief Staleness thresholds, all as fractions.
struct DriftThresholds {
  /// A segment is stale when its (inserts + erases) / size reaches this.
  double stale_delta_fraction = 0.05;
  /// ... or when its predicted centroid displacement reaches this fraction
  /// of the segment radius.
  double stale_centroid_shift = 0.25;
  /// Escalate to a full re-segmentation when total deltas reach this
  /// fraction of the dataset.
  double full_reseg_fraction = 0.5;

  /// Observed-accuracy staleness (fed by the serving layer's ReportActual
  /// Q-error windows): a segment whose windowed q-error p90 reaches this
  /// value is stale even with zero pending deltas — the live workload says
  /// its local model has degraded. 0 disables the input.
  double stale_observed_qerror = 0.0;
  /// Minimum reports in a segment's window before its q-error is trusted.
  size_t min_observed_reports = 16;
};

/// \brief One segment's drift stats for a pending delta batch.
struct SegmentDrift {
  size_t segment = 0;
  size_t size = 0;     ///< members before applying the deltas
  size_t inserts = 0;
  size_t erases = 0;
  double delta_fraction = 0.0;  ///< (inserts + erases) / max(1, size)
  /// Predicted centroid displacement after applying the deltas, in units
  /// of the segment radius (running-mean simulation; see DriftMonitor).
  double centroid_shift = 0.0;
  /// Net cardinality-shift estimate: |inserts - erases| / max(1, size) —
  /// how far the segment's population clamp |D^[i]| will move.
  double card_shift = 0.0;
  /// Windowed q-error p90 observed for this segment (0 when no accuracy
  /// input was provided or the window is under min_observed_reports).
  double observed_qerror = 0.0;
  bool stale = false;
};

/// \brief The monitor's verdict on one drained snapshot.
struct DriftReport {
  /// One entry per segment *with pending deltas or trusted observed
  /// q-error*, ascending by segment id.
  std::vector<SegmentDrift> segments;
  /// Segment ids flagged stale, ascending (a subset of `segments`).
  std::vector<size_t> stale_segments;
  double total_delta_fraction = 0.0;  ///< pending / max(1, dataset rows)
  bool escalate_full_reseg = false;
};

/// \brief Stateless assessor: thresholds in, verdict out.
class DriftMonitor {
 public:
  explicit DriftMonitor(DriftThresholds thresholds = {})
      : thresholds_(thresholds) {}

  /// Assesses `snap` against the segmentation it was routed with.
  /// `dataset` must be the PRE-apply epoch (erased rows are looked up to
  /// simulate their removal from the centroid mean).
  DriftReport Assess(const Segmentation& seg, const Dataset& dataset,
                     const DeltaSnapshot& snap) const;

  /// Same, with the serving layer's observed per-segment accuracy as an
  /// additional staleness input. A segment whose windowed q-error p90
  /// reaches stale_observed_qerror (with at least min_observed_reports
  /// reports) is stale even when it has no pending deltas; such segments
  /// get a deltas-free SegmentDrift entry so the report stays one-row-per-
  /// segment. No-op when stale_observed_qerror is 0 or `observed` is empty.
  DriftReport Assess(const Segmentation& seg, const Dataset& dataset,
                     const DeltaSnapshot& snap,
                     std::span<const obs::ObservedSegmentAccuracy> observed)
      const;

  const DriftThresholds& thresholds() const { return thresholds_; }

 private:
  DriftThresholds thresholds_;
};

}  // namespace update
}  // namespace simcard

#endif  // SIMCARD_UPDATE_DRIFT_MONITOR_H_
