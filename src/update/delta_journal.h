// Write-ahead delta journal for the online-update subsystem.
//
// Every acknowledged Insert/Erase is framed, CRC-checked, and appended to an
// epoch-scoped journal file BEFORE the caller's Status turns OK, so a
// process crash between ingestion and the next refresh loses nothing the
// caller was told succeeded. One journal file covers exactly one published
// epoch: it opens with an epoch-boundary marker, accumulates that epoch's
// deltas, and is retired when a refresh publishes the successor epoch
// (deltas staged mid-refresh are re-journaled, already translated, into the
// successor's file by DeltaBuffer::RearmAfterRefresh).
//
// File layout (all integers little-endian via common/serialize.h):
//
//   magic     8 bytes  "SIMCJNL1"
//   version   u32      currently 1
//   dim       u64      width of insert payloads (0 until the epoch mark)
//   records   framed, back to back:
//     payload_len  u32
//     payload_crc  u32   CRC-32 of the payload bytes (common/crc32)
//     payload      payload_len bytes:
//       type u32 (JournalRecordType), then per type:
//         kEpochMark: epoch u64, base_rows u64
//         kInsert:    dim f32s (raw, no length prefix — dim is in the header)
//         kErase:     row u32
//
// Torn-write discipline: records become visible atomically or not at all.
// Replay() walks frames until the first one that does not fully parse — a
// short header, a length past end-of-file, a CRC mismatch, or an unknown
// type — and reports everything before it as the longest valid prefix; the
// invalid tail's byte count is reported so recovery can truncate it off
// before re-opening the file for append.
//
// Durability: every Append* issues the write(2) immediately (a process
// crash never loses an acknowledged record — the bytes are in the page
// cache), and fsync(2) runs every `group_commit` records so a power loss
// can lose at most one commit group. group_commit = 1 is fsync-per-record;
// fsync = false trusts the page cache entirely (bench mode).
//
// Fault site: update.journal_io fails the append/sync paths.
//
// Metrics (gated on obs::MetricsEnabled()):
//   counters  simcard.update.journal.appends, .syncs, .bytes,
//             .append_failures
#ifndef SIMCARD_UPDATE_DELTA_JOURNAL_H_
#define SIMCARD_UPDATE_DELTA_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace simcard {
namespace update {

/// \brief Journal durability knobs.
struct JournalOptions {
  /// Records per fsync batch: 1 = fsync every record, N = group commit of
  /// N (plus an unconditional fsync on Sync()/close).
  size_t group_commit = 16;
  /// false = never fsync (page-cache durability only; survives process
  /// crash, not power loss). Benchmarks' "journal off the fsync path" mode.
  bool fsync = true;
};

enum class JournalRecordType : uint32_t {
  kEpochMark = 1,
  kInsert = 2,
  kErase = 3,
};

/// \brief One replayed record (fields valid per `type`).
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kEpochMark;
  uint64_t epoch = 0;        ///< kEpochMark
  uint64_t base_rows = 0;    ///< kEpochMark
  std::vector<float> point;  ///< kInsert
  uint32_t row = 0;          ///< kErase
};

/// \brief Append-only, CRC-framed delta journal for one epoch.
///
/// Not synchronized: DeltaBuffer appends under its own mutex, and the
/// UpdateManager swaps journals only inside that same critical section.
class DeltaJournal {
 public:
  ~DeltaJournal();
  DeltaJournal(const DeltaJournal&) = delete;
  DeltaJournal& operator=(const DeltaJournal&) = delete;

  /// Creates (truncating any existing file) a journal whose inserts carry
  /// `dim` floats, and writes the header.
  static Result<std::unique_ptr<DeltaJournal>> Create(
      const std::string& path, size_t dim, const JournalOptions& options);

  /// Re-opens an existing journal for append after a Replay() pass.
  /// `valid_bytes` (Replay's longest valid prefix) truncates any torn or
  /// corrupt tail off the file first, so new records never append after
  /// garbage.
  static Result<std::unique_ptr<DeltaJournal>> OpenForAppend(
      const std::string& path, size_t dim, uint64_t valid_bytes,
      const JournalOptions& options);

  /// Appends an epoch-boundary marker (the first record of every journal).
  Status AppendEpochMark(uint64_t epoch, uint64_t base_rows);

  /// Appends one inserted vector (must hold exactly dim() floats).
  Status AppendInsert(std::span<const float> point);

  /// Appends the erase of base row `row`.
  Status AppendErase(uint32_t row);

  /// Flushes and (when options.fsync) fsyncs everything appended so far.
  Status Sync();

  size_t dim() const { return dim_; }
  const std::string& path() const { return path_; }
  /// Bytes of journal written so far (header + all appended frames).
  uint64_t offset() const { return offset_; }
  /// Appends since the last fsync (0 right after Sync()).
  size_t unsynced_records() const { return unsynced_records_; }

  /// \brief What Replay() recovered.
  struct ReplayResult {
    std::vector<JournalRecord> records;  ///< longest valid prefix, in order
    uint64_t valid_bytes = 0;   ///< header + every fully-valid frame
    uint64_t discarded_bytes = 0;  ///< torn/corrupt tail past valid_bytes
    bool tail_truncated = false;   ///< discarded_bytes > 0
  };

  /// Reads `path` and returns every record of the longest valid prefix.
  /// A torn or corrupt tail is never an error — it is measured and
  /// excluded; only a missing/unreadable file or a bad header fails.
  static Result<ReplayResult> Replay(const std::string& path);

 private:
  DeltaJournal(std::string path, size_t dim, JournalOptions options);

  Status AppendFrame(const std::vector<uint8_t>& payload);
  Status FsyncNow();

  std::string path_;
  size_t dim_ = 0;
  JournalOptions options_;
  int fd_ = -1;
  uint64_t offset_ = 0;
  size_t unsynced_records_ = 0;
};

}  // namespace update
}  // namespace simcard

#endif  // SIMCARD_UPDATE_DELTA_JOURNAL_H_
