#include "update/delta_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/serialize.h"
#include "obs/metrics.h"

namespace simcard {
namespace update {
namespace {

constexpr char kMagic[8] = {'S', 'I', 'M', 'C', 'J', 'N', 'L', '1'};
constexpr uint32_t kVersion = 1;
// magic + version u32 + dim u64.
constexpr uint64_t kHeaderBytes = sizeof(kMagic) + 4 + 8;
// payload_len u32 + payload_crc u32.
constexpr uint64_t kFrameHeaderBytes = 8;
// Frames carry at most a kInsert payload: type + dim floats. Anything larger
// in a length field is corruption, rejected before allocation.
constexpr uint64_t kMaxPayloadBytes = 64ull * 1024 * 1024;

constexpr const char kFaultSite[] = "update.journal_io";

struct JournalMetrics {
  obs::Counter* appends = obs::GetCounter("simcard.update.journal.appends");
  obs::Counter* syncs = obs::GetCounter("simcard.update.journal.syncs");
  obs::Counter* bytes = obs::GetCounter("simcard.update.journal.bytes");
  obs::Counter* append_failures =
      obs::GetCounter("simcard.update.journal.append_failures");
  obs::Counter* replays = obs::GetCounter("simcard.update.journal.replays");
  obs::Counter* replayed_records =
      obs::GetCounter("simcard.update.journal.replayed_records");
  obs::Counter* discarded_bytes =
      obs::GetCounter("simcard.update.journal.discarded_bytes");
  static JournalMetrics& Get() {
    static JournalMetrics m;
    return m;
  }
};

Status WriteFully(int fd, const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("journal write failed: " +
                             std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

DeltaJournal::DeltaJournal(std::string path, size_t dim, JournalOptions options)
    : path_(std::move(path)), dim_(dim), options_(options) {
  if (options_.group_commit == 0) options_.group_commit = 1;
}

DeltaJournal::~DeltaJournal() {
  if (fd_ >= 0) {
    // Best-effort final flush; errors on teardown have no caller to reach.
    if (options_.fsync && unsynced_records_ > 0) ::fsync(fd_);
    ::close(fd_);
  }
}

Result<std::unique_ptr<DeltaJournal>> DeltaJournal::Create(
    const std::string& path, size_t dim, const JournalOptions& options) {
  if (fault::ShouldFail(kFaultSite)) return fault::InjectedError(kFaultSite);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create journal " + path + ": " +
                           std::string(std::strerror(errno)));
  }
  std::unique_ptr<DeltaJournal> journal(
      new DeltaJournal(path, dim, options));
  journal->fd_ = fd;

  Serializer header;
  header.WriteRawBytes(kMagic, sizeof(kMagic));
  header.WriteU32(kVersion);
  header.WriteU64(dim);
  SIMCARD_RETURN_IF_ERROR(
      WriteFully(fd, header.bytes().data(), header.bytes().size()));
  journal->offset_ = header.bytes().size();
  return journal;
}

Result<std::unique_ptr<DeltaJournal>> DeltaJournal::OpenForAppend(
    const std::string& path, size_t dim, uint64_t valid_bytes,
    const JournalOptions& options) {
  if (fault::ShouldFail(kFaultSite)) return fault::InjectedError(kFaultSite);
  if (valid_bytes < kHeaderBytes) {
    return Status::InvalidArgument(
        "journal valid prefix shorter than its header");
  }
  // Drop any torn/corrupt tail so appends resume right after the last good
  // frame instead of burying garbage mid-file.
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Status::IoError("cannot truncate journal tail of " + path + ": " +
                           std::string(std::strerror(errno)));
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("cannot reopen journal " + path + ": " +
                           std::string(std::strerror(errno)));
  }
  std::unique_ptr<DeltaJournal> journal(
      new DeltaJournal(path, dim, options));
  journal->fd_ = fd;
  journal->offset_ = valid_bytes;
  return journal;
}

Status DeltaJournal::AppendFrame(const std::vector<uint8_t>& payload) {
  if (fd_ < 0) return Status::Internal("journal is closed");
  if (fault::ShouldFail(kFaultSite)) {
    JournalMetrics::Get().append_failures->Increment();
    return fault::InjectedError(kFaultSite);
  }
  Serializer frame;
  frame.WriteU32(static_cast<uint32_t>(payload.size()));
  frame.WriteU32(Crc32(payload.data(), payload.size()));
  frame.WriteRawBytes(payload.data(), payload.size());
  Status s = WriteFully(fd_, frame.bytes().data(), frame.bytes().size());
  if (!s.ok()) {
    JournalMetrics::Get().append_failures->Increment();
    return s;
  }
  offset_ += frame.bytes().size();
  ++unsynced_records_;
  if (obs::MetricsEnabled()) {
    JournalMetrics::Get().appends->Increment();
    JournalMetrics::Get().bytes->Add(
        static_cast<int64_t>(frame.bytes().size()));
  }
  if (options_.fsync && unsynced_records_ >= options_.group_commit) {
    return FsyncNow();
  }
  return Status::OK();
}

Status DeltaJournal::FsyncNow() {
  if (::fsync(fd_) != 0) {
    return Status::IoError("journal fsync failed: " +
                           std::string(std::strerror(errno)));
  }
  unsynced_records_ = 0;
  if (obs::MetricsEnabled()) JournalMetrics::Get().syncs->Increment();
  return Status::OK();
}

Status DeltaJournal::AppendEpochMark(uint64_t epoch, uint64_t base_rows) {
  Serializer payload;
  payload.WriteU32(static_cast<uint32_t>(JournalRecordType::kEpochMark));
  payload.WriteU64(epoch);
  payload.WriteU64(base_rows);
  return AppendFrame(payload.bytes());
}

Status DeltaJournal::AppendInsert(std::span<const float> point) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("journal insert dim mismatch");
  }
  Serializer payload;
  payload.WriteU32(static_cast<uint32_t>(JournalRecordType::kInsert));
  payload.WriteRawBytes(point.data(), point.size() * sizeof(float));
  return AppendFrame(payload.bytes());
}

Status DeltaJournal::AppendErase(uint32_t row) {
  Serializer payload;
  payload.WriteU32(static_cast<uint32_t>(JournalRecordType::kErase));
  payload.WriteU32(row);
  return AppendFrame(payload.bytes());
}

Status DeltaJournal::Sync() {
  if (fd_ < 0) return Status::Internal("journal is closed");
  if (fault::ShouldFail(kFaultSite)) return fault::InjectedError(kFaultSite);
  if (!options_.fsync || unsynced_records_ == 0) return Status::OK();
  return FsyncNow();
}

Result<DeltaJournal::ReplayResult> DeltaJournal::Replay(
    const std::string& path) {
  auto bytes_or = ReadFileBytes(path);
  SIMCARD_RETURN_IF_ERROR(bytes_or.status());
  const std::vector<uint8_t>& bytes = bytes_or.value();
  if (bytes.size() < kHeaderBytes) {
    return Status::IoError("journal shorter than its header: " + path);
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("journal magic mismatch: " + path);
  }
  uint32_t version = 0;
  uint64_t dim = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  std::memcpy(&dim, bytes.data() + sizeof(kMagic) + 4, sizeof(dim));
  if (version != kVersion) {
    return Status::IoError("unsupported journal version " +
                              std::to_string(version));
  }

  ReplayResult result;
  result.valid_bytes = kHeaderBytes;
  uint64_t pos = kHeaderBytes;
  // Walk frames until the first one that does not fully parse; everything
  // before it is the longest valid prefix.
  while (pos + kFrameHeaderBytes <= bytes.size()) {
    uint32_t payload_len = 0;
    uint32_t payload_crc = 0;
    std::memcpy(&payload_len, bytes.data() + pos, sizeof(payload_len));
    std::memcpy(&payload_crc, bytes.data() + pos + 4, sizeof(payload_crc));
    if (payload_len > kMaxPayloadBytes) break;
    uint64_t frame_end = pos + kFrameHeaderBytes + payload_len;
    if (frame_end > bytes.size()) break;  // torn tail
    const uint8_t* payload = bytes.data() + pos + kFrameHeaderBytes;
    if (Crc32(payload, payload_len) != payload_crc) break;
    if (payload_len < 4) break;

    JournalRecord record;
    uint32_t type = 0;
    std::memcpy(&type, payload, sizeof(type));
    bool parsed = false;
    switch (static_cast<JournalRecordType>(type)) {
      case JournalRecordType::kEpochMark:
        if (payload_len == 4 + 8 + 8) {
          record.type = JournalRecordType::kEpochMark;
          std::memcpy(&record.epoch, payload + 4, 8);
          std::memcpy(&record.base_rows, payload + 12, 8);
          parsed = true;
        }
        break;
      case JournalRecordType::kInsert:
        if (payload_len == 4 + dim * sizeof(float)) {
          record.type = JournalRecordType::kInsert;
          record.point.resize(dim);
          std::memcpy(record.point.data(), payload + 4, dim * sizeof(float));
          parsed = true;
        }
        break;
      case JournalRecordType::kErase:
        if (payload_len == 4 + 4) {
          record.type = JournalRecordType::kErase;
          std::memcpy(&record.row, payload + 4, 4);
          parsed = true;
        }
        break;
      default:
        break;
    }
    if (!parsed) break;
    result.records.push_back(std::move(record));
    pos = frame_end;
    result.valid_bytes = pos;
  }
  result.discarded_bytes = bytes.size() - result.valid_bytes;
  result.tail_truncated = result.discarded_bytes > 0;
  if (obs::MetricsEnabled()) {
    JournalMetrics::Get().replays->Increment();
    JournalMetrics::Get().replayed_records->Add(
        static_cast<int64_t>(result.records.size()));
    JournalMetrics::Get().discarded_bytes->Add(
        static_cast<int64_t>(result.discarded_bytes));
  }
  return result;
}

}  // namespace update
}  // namespace simcard
