#include "core/segment_fallback.h"

#include <algorithm>
#include <cmath>

namespace simcard {

SegmentFallback SegmentFallback::FromSegment(
    const Dataset& dataset, const std::vector<uint32_t>& members,
    size_t max_samples, Rng* rng) {
  SegmentFallback out;
  out.segment_size = members.size();
  const size_t dim = dataset.dim();
  if (members.empty() || dim == 0) return out;

  // Partial Fisher-Yates over a copy of the member list: the first
  // `n_keep` entries are a uniform sample without replacement.
  std::vector<uint32_t> pool = members;
  const size_t n_keep = std::min(max_samples, pool.size());
  for (size_t i = 0; i < n_keep; ++i) {
    const size_t j = i + rng->NextBounded(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  out.samples.reserve(n_keep * dim);
  for (size_t i = 0; i < n_keep; ++i) {
    const float* p = dataset.Point(pool[i]);
    out.samples.insert(out.samples.end(), p, p + dim);
  }
  return out;
}

double SegmentFallback::Estimate(const float* query, float tau, size_t dim,
                                 Metric metric) const {
  const size_t n = SampleCount(dim);
  if (n == 0) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (Distance(query, samples.data() + i * dim, dim, metric) <= tau) {
      ++hits;
    }
  }
  return static_cast<double>(hits) * static_cast<double>(segment_size) /
         static_cast<double>(n);
}

void SegmentFallback::Serialize(Serializer* out) const {
  out->WriteU64(segment_size);
  out->WriteFloatVector(samples);
}

Status SegmentFallback::Deserialize(Deserializer* in) {
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&segment_size));
  SIMCARD_RETURN_IF_ERROR(in->ReadFloatVector(&samples));
  return Status::OK();
}

}  // namespace simcard
