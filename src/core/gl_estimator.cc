#include "core/gl_estimator.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simcard {

GlEstimatorConfig GlEstimatorConfig::LocalPlus() {
  GlEstimatorConfig c;
  c.name = "Local+";
  c.use_cnn_query_tower = true;
  c.use_global_model = false;
  c.auto_tune = true;
  return c;
}

GlEstimatorConfig GlEstimatorConfig::GlMlp() {
  GlEstimatorConfig c;
  c.name = "GL-MLP";
  c.use_cnn_query_tower = false;
  c.use_global_model = true;
  c.auto_tune = false;
  return c;
}

GlEstimatorConfig GlEstimatorConfig::GlCnn() {
  GlEstimatorConfig c;
  c.name = "GL-CNN";
  c.use_cnn_query_tower = true;
  c.use_global_model = true;
  c.auto_tune = false;
  return c;
}

GlEstimatorConfig GlEstimatorConfig::GlPlus() {
  GlEstimatorConfig c;
  c.name = "GL+";
  c.use_cnn_query_tower = true;
  c.use_global_model = true;
  c.auto_tune = true;
  return c;
}

CardModelConfig GlEstimator::LocalConfig() const {
  CardModelConfig config;
  config.query_dim = dim_;
  config.use_cnn_query_tower = config_.use_cnn_query_tower;
  config.qes = tuned_qes_;
  config.mlp_hidden = config_.mlp_hidden;
  config.query_embed = config_.query_embed;
  config.tau_hidden = config_.tau_hidden;
  config.tau_embed = config_.tau_embed;
  config.aux_dim = segmentation_.num_segments();
  config.aux_hidden = config_.aux_hidden;
  config.head_hidden = config_.head_hidden;
  return config;
}

Status GlEstimator::Train(const TrainContext& ctx) {
  if (ctx.dataset == nullptr || ctx.workload == nullptr) {
    return Status::InvalidArgument("GlEstimator: dataset/workload required");
  }
  if (ctx.segmentation == nullptr) {
    return Status::InvalidArgument(
        "GlEstimator: a segmentation is required (Table 2: all GL-family "
        "methods use data segmentation)");
  }
  obs::TraceSpan train_span("gl.train");
  Stopwatch watch;
  segmentation_ = *ctx.segmentation;  // own a mutable copy
  metric_ = ctx.dataset->metric();
  dim_ = ctx.dataset->dim();
  tuned_qes_ = config_.qes;

  const Matrix& queries = ctx.workload->train_queries;
  const Matrix xc =
      BuildCentroidDistanceFeatures(queries, segmentation_, metric_);
  const size_t n_seg = segmentation_.num_segments();

  // Algorithm 3: tune the QES geometry. By default one tuning run on the
  // densest segment's samples is shared by all local models (single-core
  // budget); tune_per_segment restores the paper's per-segment runs.
  if (config_.auto_tune && config_.use_cnn_query_tower &&
      !config_.tune_per_segment) {
    size_t densest = 0;
    for (size_t s = 1; s < n_seg; ++s) {
      if (segmentation_.members[s].size() >
          segmentation_.members[densest].size()) {
        densest = s;
      }
    }
    Rng rng(ctx.seed);
    auto samples = FlattenSegment(ctx.workload->train, densest,
                                  config_.zero_keep_prob, &rng);
    CardModelConfig base = LocalConfig();
    TunerOptions tuner_opts = config_.tuner;
    tuner_opts.seed = ctx.seed + 17;
    auto tuned_or = GreedyTuneQes(queries, &xc, samples, base, tuner_opts);
    if (tuned_or.ok()) {
      tuned_qes_ = tuned_or.value().config;
      SIMCARD_LOG(DEBUG) << Name() << ": tuned " << tuned_qes_.ToString();
    }
  }

  // Phase 1 (Algorithm 1 per segment): local regression models.
  locals_.clear();
  locals_.reserve(n_seg);
  {
    obs::TraceSpan locals_span("gl.train.locals");
    for (size_t s = 0; s < n_seg; ++s) {
      if (config_.auto_tune && config_.use_cnn_query_tower &&
          config_.tune_per_segment) {
        Rng rng(ctx.seed + s);
        auto samples = FlattenSegment(ctx.workload->train, s,
                                      config_.zero_keep_prob, &rng);
        if (samples.size() >= 10) {
          TunerOptions tuner_opts = config_.tuner;
          tuner_opts.seed = ctx.seed + 17 + s;
          auto tuned_or =
              GreedyTuneQes(queries, &xc, samples, LocalConfig(), tuner_opts);
          if (tuned_or.ok()) tuned_qes_ = tuned_or.value().config;
        }
      }
      Rng rng(ctx.seed + 31 * s + 1);
      CardModelConfig config = LocalConfig();
      auto local_or = LocalModel::Build(s, config, &rng);
      if (!local_or.ok()) return local_or.status();
      locals_.push_back(std::move(local_or.value()));
      locals_.back()->set_max_card(
          static_cast<double>(segmentation_.members[s].size()));
      CardTrainOptions train_opts = config_.local_train;
      train_opts.seed = ctx.seed + 101 * s;
      locals_.back()->Train(queries, xc, ctx.workload->train,
                            config_.zero_keep_prob, train_opts);
    }
  }

  // Phase 2 (Algorithm 2): the global discriminative model.
  global_.reset();
  if (config_.use_global_model) {
    GlobalModelConfig gconfig;
    gconfig.query_dim = dim_;
    gconfig.num_segments = n_seg;
    gconfig.use_cnn_query_tower =
        config_.use_cnn_query_tower && config_.global_use_cnn_query_tower;
    gconfig.qes = config_.qes;  // default geometry, not the tuned one
    gconfig.mlp_hidden = config_.mlp_hidden;
    gconfig.query_embed = config_.query_embed;
    gconfig.tau_hidden = config_.tau_hidden;
    gconfig.tau_embed = config_.tau_embed;
    gconfig.aux_hidden = config_.aux_hidden;
    gconfig.head_hidden = config_.head_hidden;
    gconfig.sigma = config_.sigma;
    Rng rng(ctx.seed + 997);
    auto global_or = GlobalModel::Build(gconfig, &rng);
    if (!global_or.ok()) return global_or.status();
    global_ = std::move(global_or.value());

    obs::TraceSpan global_span("gl.train.global");
    GlobalLabels labels = BuildGlobalLabels(ctx.workload->train, n_seg);
    GlobalTrainOptions gopts = config_.global_train;
    gopts.use_penalty = config_.use_penalty;
    gopts.seed = ctx.seed + 499;
    TrainGlobalModel(global_.get(), queries, xc, labels, gopts);
  }

  set_training_seconds(watch.ElapsedSeconds());
  if (obs::MetricsEnabled()) {
    obs::GetGauge("gl.train_seconds")->Set(training_seconds());
    obs::GetGauge("gl.num_segments")->Set(static_cast<double>(n_seg));
  }
  return Status::OK();
}

namespace {

// Per-query instrumentation for the GL estimation path. Metric objects are
// resolved once and cached (registry pointers are stable); every recording
// site is gated on the per-query `enabled` flag so a disabled run pays one
// relaxed atomic load and branch.
struct GlQueryMetrics {
  obs::Counter* queries = obs::GetCounter("gl.queries");
  obs::Counter* evaluated = obs::GetCounter("gl.segments_evaluated");
  obs::Counter* pruned = obs::GetCounter("gl.segments_pruned");
  obs::Counter* triangle_excluded = obs::GetCounter("gl.triangle_excluded");
  obs::Counter* triangle_forced = obs::GetCounter("gl.triangle_forced");
  obs::Histogram* global_prob = obs::GetHistogram(
      "gl.global_prob", obs::Histogram::LinearBuckets(0.05, 0.05, 20));
  obs::Histogram* selected_hist = obs::GetHistogram(
      "gl.selected_segments", obs::Histogram::LinearBuckets(1.0, 1.0, 64));
  obs::Histogram* features_us = obs::GetHistogram("gl.latency.features_us");
  obs::Histogram* global_us = obs::GetHistogram("gl.latency.global_us");
  obs::Histogram* locals_us = obs::GetHistogram("gl.latency.locals_us");
  obs::Histogram* total_us = obs::GetHistogram("gl.latency.total_us");
};

GlQueryMetrics& QueryMetrics() {
  static GlQueryMetrics metrics;
  return metrics;
}

}  // namespace

std::vector<std::pair<size_t, double>> GlEstimator::EstimatePerSegment(
    const float* query, float tau) {
  const bool enabled = obs::MetricsEnabled();
  GlQueryMetrics& m = QueryMetrics();
  Stopwatch total;
  Stopwatch phase;
  std::vector<float> xc =
      segmentation_.CentroidDistances(query, dim_, metric_);
  if (enabled) m.features_us->Record(phase.ElapsedMicros());
  std::vector<size_t> selected;
  if (global_ != nullptr) {
    if (enabled) phase.Restart();
    const std::vector<float> probs = global_->Probabilities(query, tau,
                                                            xc.data());
    selected = global_->SelectSegments(probs);
    if (enabled) {
      m.global_us->Record(phase.ElapsedMicros());
      for (float p : probs) m.global_prob->Record(p);
    }
    if (config_.use_triangle_guards) {
      // Exclusion: |d(q,p) - d(q,c)| <= d(c,p) <= radius for all members p,
      // so xc[s] > tau + radius[s] proves the segment holds no match.
      std::vector<char> keep(locals_.size(), 0);
      for (size_t s : selected) {
        keep[s] = xc[s] <= tau + segmentation_.radius[s];
        if (enabled && keep[s] == 0) m.triangle_excluded->Increment();
      }
      // Inclusion: a centroid within tau strongly indicates matches; back-
      // stop a global-model miss.
      for (size_t s = 0; s < locals_.size(); ++s) {
        if (xc[s] <= tau) {
          if (enabled && keep[s] == 0) m.triangle_forced->Increment();
          keep[s] = 1;
        }
      }
      selected.clear();
      for (size_t s = 0; s < locals_.size(); ++s) {
        if (keep[s]) selected.push_back(s);
      }
    }
  } else {
    selected.resize(locals_.size());
    for (size_t s = 0; s < locals_.size(); ++s) selected[s] = s;
  }
  if (enabled) phase.Restart();
  std::vector<std::pair<size_t, double>> out;
  out.reserve(selected.size());
  for (size_t s : selected) {
    out.emplace_back(s, locals_[s]->Estimate(query, tau, xc.data()));
  }
  if (enabled) {
    m.locals_us->Record(phase.ElapsedMicros());
    m.total_us->Record(total.ElapsedMicros());
    m.queries->Increment();
    m.evaluated->Add(static_cast<int64_t>(selected.size()));
    m.pruned->Add(static_cast<int64_t>(locals_.size() - selected.size()));
    m.selected_hist->Record(static_cast<double>(selected.size()));
  }
  return out;
}

double GlEstimator::EstimateSearch(const float* query, float tau) {
  double total = 0.0;
  for (const auto& [seg, est] : EstimatePerSegment(query, tau)) {
    total += est;
  }
  return total;
}

size_t GlEstimator::ModelSizeBytes() const {
  size_t scalars = 0;
  for (const auto& local : locals_) {
    scalars += const_cast<LocalModel*>(local.get())->NumScalars();
  }
  if (global_ != nullptr) scalars += global_->NumScalars();
  // Centroids are part of the deployed model (x_C needs them).
  scalars += segmentation_.centroids.size();
  return scalars * sizeof(float);
}

double GlEstimator::MissingRate(const SearchWorkload& workload) {
  if (global_ == nullptr) return 0.0;
  double missing = 0.0;
  size_t counted = 0;
  for (const auto& lq : workload.test) {
    const float* q = workload.test_queries.Row(lq.row);
    for (const auto& t : lq.thresholds) {
      if (t.card <= 0.0f || t.seg_cards.empty()) continue;
      std::vector<float> xc = segmentation_.CentroidDistances(q, dim_, metric_);
      auto selected = global_->SelectSegments(
          global_->Probabilities(q, t.tau, xc.data()));
      std::set<size_t> chosen(selected.begin(), selected.end());
      double missed = 0.0;
      for (size_t s = 0; s < t.seg_cards.size(); ++s) {
        if (chosen.count(s) == 0) missed += t.seg_cards[s];
      }
      missing += missed / t.card;
      ++counted;
    }
  }
  return counted > 0 ? missing / static_cast<double>(counted) : 0.0;
}

double GlEstimator::MeanSelectedSegments(const SearchWorkload& workload) {
  if (global_ == nullptr) return static_cast<double>(locals_.size());
  double total = 0.0;
  size_t counted = 0;
  for (const auto& lq : workload.test) {
    const float* q = workload.test_queries.Row(lq.row);
    for (const auto& t : lq.thresholds) {
      std::vector<float> xc = segmentation_.CentroidDistances(q, dim_, metric_);
      total += static_cast<double>(
          global_->SelectSegments(global_->Probabilities(q, t.tau, xc.data()))
              .size());
      ++counted;
    }
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

Status GlEstimator::ApplyDeletions(const Dataset& dataset,
                                   SearchWorkload* workload,
                                   size_t num_removed, uint64_t seed,
                                   size_t fine_tune_epochs) {
  if (locals_.empty()) {
    return Status::FailedPrecondition("ApplyDeletions: estimator not trained");
  }
  if (workload == nullptr) {
    return Status::InvalidArgument("ApplyDeletions: workload required");
  }
  if (dataset.size() + num_removed != segmentation_.assignment.size()) {
    return Status::InvalidArgument(
        "ApplyDeletions: dataset must already be truncated by num_removed");
  }
  const std::vector<size_t> touched =
      segmentation_.RemoveTrailingPoints(num_removed);
  for (size_t s : touched) {
    locals_[s]->set_max_card(
        static_cast<double>(segmentation_.members[s].size()));
  }
  SIMCARD_RETURN_IF_ERROR(RelabelWorkload(dataset, &segmentation_, workload));

  const Matrix& queries = workload->train_queries;
  const Matrix xc =
      BuildCentroidDistanceFeatures(queries, segmentation_, metric_);
  for (size_t s : touched) {
    CardTrainOptions opts = config_.local_train;
    opts.seed = seed + 41 * s + 3;
    locals_[s]->FineTune(queries, xc, workload->train,
                         config_.zero_keep_prob, opts, fine_tune_epochs);
  }
  if (global_ != nullptr) {
    GlobalLabels labels =
        BuildGlobalLabels(workload->train, segmentation_.num_segments());
    GlobalTrainOptions gopts = config_.global_train;
    gopts.use_penalty = config_.use_penalty;
    gopts.epochs = fine_tune_epochs;
    gopts.seed = seed + 43;
    TrainGlobalModel(global_.get(), queries, xc, labels, gopts);
  }
  return Status::OK();
}

Status GlEstimator::SaveToFile(const std::string& path) const {
  if (locals_.empty()) {
    return Status::FailedPrecondition("SaveToFile: estimator not trained");
  }
  Serializer out;
  out.WriteString("simcard.gl.v1");
  out.WriteU32(static_cast<uint32_t>(metric_));
  out.WriteU64(dim_);
  segmentation_.Serialize(&out);
  tuned_qes_.Serialize(&out);
  out.WriteU64(locals_.size());
  for (const auto& local : locals_) local->Save(&out);
  out.WriteU32(global_ != nullptr ? 1 : 0);
  if (global_ != nullptr) global_->SaveWithConfig(&out);
  return out.SaveToFile(path);
}

Status GlEstimator::LoadFromFile(const std::string& path) {
  auto in_or = Deserializer::FromFile(path);
  if (!in_or.ok()) return in_or.status();
  Deserializer in = std::move(in_or).value();
  std::string magic;
  SIMCARD_RETURN_IF_ERROR(in.ReadString(&magic));
  if (magic != "simcard.gl.v1") {
    return Status::InvalidArgument("not a simcard GL model file: " + path);
  }
  uint32_t metric = 0;
  uint64_t dim = 0;
  SIMCARD_RETURN_IF_ERROR(in.ReadU32(&metric));
  SIMCARD_RETURN_IF_ERROR(in.ReadU64(&dim));
  metric_ = static_cast<Metric>(metric);
  dim_ = dim;
  SIMCARD_RETURN_IF_ERROR(segmentation_.Deserialize(&in));
  SIMCARD_RETURN_IF_ERROR(tuned_qes_.Deserialize(&in));
  uint64_t n_locals = 0;
  SIMCARD_RETURN_IF_ERROR(in.ReadU64(&n_locals));
  locals_.clear();
  locals_.reserve(n_locals);
  for (uint64_t s = 0; s < n_locals; ++s) {
    auto local_or = LocalModel::Load(&in);
    if (!local_or.ok()) return local_or.status();
    locals_.push_back(std::move(local_or.value()));
  }
  uint32_t has_global = 0;
  SIMCARD_RETURN_IF_ERROR(in.ReadU32(&has_global));
  global_.reset();
  if (has_global != 0) {
    auto global_or = GlobalModel::LoadWithConfig(&in);
    if (!global_or.ok()) return global_or.status();
    global_ = std::move(global_or.value());
  }
  return Status::OK();
}

Status GlEstimator::ApplyUpdates(const Dataset& dataset,
                                 SearchWorkload* workload,
                                 const std::vector<uint32_t>& new_rows,
                                 uint64_t seed, size_t fine_tune_epochs) {
  if (locals_.empty()) {
    return Status::FailedPrecondition("ApplyUpdates: estimator not trained");
  }
  if (workload == nullptr) {
    return Status::InvalidArgument("ApplyUpdates: workload required");
  }
  for (uint32_t row : new_rows) {
    if (row >= dataset.size()) {
      return Status::InvalidArgument(
          "ApplyUpdates: new_rows must index appended dataset rows");
    }
  }

  // Step 1 (Section 5.3): route each inserted point to its nearest segment.
  std::set<size_t> touched;
  for (uint32_t row : new_rows) {
    const float* p = dataset.Point(row);
    const size_t seg = segmentation_.NearestSegment(p, dim_, metric_);
    segmentation_.AddPoint(seg, row, p, dim_, metric_);
    touched.insert(seg);
    // Keep the clamp consistent with the grown segment.
    locals_[seg]->set_max_card(
        static_cast<double>(segmentation_.members[seg].size()));
  }

  // Step 2: refresh query labels against the grown dataset.
  SIMCARD_RETURN_IF_ERROR(RelabelWorkload(dataset, &segmentation_, workload));

  // Step 3: fine-tune the affected local models and the global model.
  const Matrix& queries = workload->train_queries;
  const Matrix xc =
      BuildCentroidDistanceFeatures(queries, segmentation_, metric_);
  for (size_t s : touched) {
    CardTrainOptions opts = config_.local_train;
    opts.seed = seed + 13 * s + 7;
    locals_[s]->FineTune(queries, xc, workload->train,
                         config_.zero_keep_prob, opts, fine_tune_epochs);
  }
  if (global_ != nullptr) {
    GlobalLabels labels =
        BuildGlobalLabels(workload->train, segmentation_.num_segments());
    GlobalTrainOptions gopts = config_.global_train;
    gopts.use_penalty = config_.use_penalty;
    gopts.epochs = fine_tune_epochs;
    gopts.seed = seed + 29;
    TrainGlobalModel(global_.get(), queries, xc, labels, gopts);
  }
  return Status::OK();
}

}  // namespace simcard
