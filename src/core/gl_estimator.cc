#include "core/gl_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/checked_file.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/features.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/segment_health.h"
#include "obs/trace.h"

namespace simcard {

GlEstimatorConfig GlEstimatorConfig::LocalPlus() {
  GlEstimatorConfig c;
  c.name = "Local+";
  c.use_cnn_query_tower = true;
  c.use_global_model = false;
  c.auto_tune = true;
  return c;
}

GlEstimatorConfig GlEstimatorConfig::GlMlp() {
  GlEstimatorConfig c;
  c.name = "GL-MLP";
  c.use_cnn_query_tower = false;
  c.use_global_model = true;
  c.auto_tune = false;
  return c;
}

GlEstimatorConfig GlEstimatorConfig::GlCnn() {
  GlEstimatorConfig c;
  c.name = "GL-CNN";
  c.use_cnn_query_tower = true;
  c.use_global_model = true;
  c.auto_tune = false;
  return c;
}

GlEstimatorConfig GlEstimatorConfig::GlPlus() {
  GlEstimatorConfig c;
  c.name = "GL+";
  c.use_cnn_query_tower = true;
  c.use_global_model = true;
  c.auto_tune = true;
  return c;
}

CardModelConfig GlEstimator::LocalConfig() const {
  CardModelConfig config;
  config.query_dim = dim_;
  config.use_cnn_query_tower = config_.use_cnn_query_tower;
  config.qes = tuned_qes_;
  config.mlp_hidden = config_.mlp_hidden;
  config.query_embed = config_.query_embed;
  config.tau_hidden = config_.tau_hidden;
  config.tau_embed = config_.tau_embed;
  config.aux_dim = segmentation_.num_segments();
  config.aux_hidden = config_.aux_hidden;
  config.head_hidden = config_.head_hidden;
  return config;
}

Status GlEstimator::Train(const TrainContext& ctx) {
  if (ctx.dataset == nullptr || ctx.workload == nullptr) {
    return Status::InvalidArgument("GlEstimator: dataset/workload required");
  }
  if (ctx.segmentation == nullptr) {
    return Status::InvalidArgument(
        "GlEstimator: a segmentation is required (Table 2: all GL-family "
        "methods use data segmentation)");
  }
  obs::TraceSpan train_span("gl.train");
  Stopwatch watch;
  segmentation_ = *ctx.segmentation;  // own a mutable copy
  metric_ = ctx.dataset->metric();
  dim_ = ctx.dataset->dim();
  tuned_qes_ = config_.qes;

  const Matrix& queries = ctx.workload->train_queries;
  const Matrix xc =
      BuildCentroidDistanceFeatures(queries, segmentation_, metric_);
  const size_t n_seg = segmentation_.num_segments();

  // Algorithm 3: tune the QES geometry. By default one tuning run on the
  // densest segment's samples is shared by all local models (single-core
  // budget); tune_per_segment restores the paper's per-segment runs.
  if (config_.auto_tune && config_.use_cnn_query_tower &&
      !config_.tune_per_segment) {
    size_t densest = 0;
    for (size_t s = 1; s < n_seg; ++s) {
      if (segmentation_.members[s].size() >
          segmentation_.members[densest].size()) {
        densest = s;
      }
    }
    Rng rng(ctx.seed);
    auto samples = FlattenSegment(ctx.workload->train, densest,
                                  config_.zero_keep_prob, &rng);
    CardModelConfig base = LocalConfig();
    TunerOptions tuner_opts = config_.tuner;
    tuner_opts.seed = ctx.seed + 17;
    auto tuned_or = GreedyTuneQes(queries, &xc, samples, base, tuner_opts);
    if (tuned_or.ok()) {
      tuned_qes_ = tuned_or.value().config;
      SIMCARD_LOG(DEBUG) << Name() << ": tuned " << tuned_qes_.ToString();
    }
  }

  // Phase 1 (Algorithm 1 per segment): local regression models.
  locals_.clear();
  locals_.reserve(n_seg);
  {
    obs::TraceSpan locals_span("gl.train.locals");
    for (size_t s = 0; s < n_seg; ++s) {
      if (config_.auto_tune && config_.use_cnn_query_tower &&
          config_.tune_per_segment) {
        Rng rng(ctx.seed + s);
        auto samples = FlattenSegment(ctx.workload->train, s,
                                      config_.zero_keep_prob, &rng);
        if (samples.size() >= 10) {
          TunerOptions tuner_opts = config_.tuner;
          tuner_opts.seed = ctx.seed + 17 + s;
          auto tuned_or =
              GreedyTuneQes(queries, &xc, samples, LocalConfig(), tuner_opts);
          if (tuned_or.ok()) tuned_qes_ = tuned_or.value().config;
        }
      }
      Rng rng(ctx.seed + 31 * s + 1);
      CardModelConfig config = LocalConfig();
      auto local_or = LocalModel::Build(s, config, &rng);
      if (!local_or.ok()) return local_or.status();
      locals_.push_back(std::move(local_or.value()));
      locals_.back()->set_max_card(
          static_cast<double>(segmentation_.members[s].size()));
      CardTrainOptions train_opts = config_.local_train;
      train_opts.seed = ctx.seed + 101 * s;
      auto loss_or = locals_.back()->Train(queries, xc, ctx.workload->train,
                                           config_.zero_keep_prob, train_opts);
      if (!loss_or.ok()) return loss_or.status();
    }
  }

  // Retain a small member sample per segment so inference can degrade to a
  // sampling estimate when a local model is quarantined or non-finite.
  fallbacks_.clear();
  fallbacks_.reserve(n_seg);
  {
    Rng fb_rng(ctx.seed + 7919);
    for (size_t s = 0; s < n_seg; ++s) {
      fallbacks_.push_back(SegmentFallback::FromSegment(
          *ctx.dataset, segmentation_.members[s],
          SegmentFallback::kDefaultSamples, &fb_rng));
    }
  }

  // Phase 2 (Algorithm 2): the global discriminative model.
  global_.reset();
  if (config_.use_global_model) {
    GlobalModelConfig gconfig;
    gconfig.query_dim = dim_;
    gconfig.num_segments = n_seg;
    gconfig.use_cnn_query_tower =
        config_.use_cnn_query_tower && config_.global_use_cnn_query_tower;
    gconfig.qes = config_.qes;  // default geometry, not the tuned one
    gconfig.mlp_hidden = config_.mlp_hidden;
    gconfig.query_embed = config_.query_embed;
    gconfig.tau_hidden = config_.tau_hidden;
    gconfig.tau_embed = config_.tau_embed;
    gconfig.aux_hidden = config_.aux_hidden;
    gconfig.head_hidden = config_.head_hidden;
    gconfig.sigma = config_.sigma;
    Rng rng(ctx.seed + 997);
    auto global_or = GlobalModel::Build(gconfig, &rng);
    if (!global_or.ok()) return global_or.status();
    global_ = std::move(global_or.value());

    obs::TraceSpan global_span("gl.train.global");
    GlobalLabels labels = BuildGlobalLabels(ctx.workload->train, n_seg);
    GlobalTrainOptions gopts = config_.global_train;
    gopts.use_penalty = config_.use_penalty;
    gopts.seed = ctx.seed + 499;
    auto gloss_or = TrainGlobalModel(global_.get(), queries, xc, labels, gopts);
    if (!gloss_or.ok()) return gloss_or.status();
  }

  set_training_seconds(watch.ElapsedSeconds());
  if (obs::MetricsEnabled()) {
    obs::GetGauge("gl.train_seconds")->Set(training_seconds());
    obs::GetGauge("gl.num_segments")->Set(static_cast<double>(n_seg));
  }
  return Status::OK();
}

namespace {

// Per-query instrumentation for the GL estimation path. Metric objects are
// resolved once and cached (registry pointers are stable); every recording
// site is gated on the per-query `enabled` flag so a disabled run pays one
// relaxed atomic load and branch.
struct GlQueryMetrics {
  obs::Counter* queries = obs::GetCounter("gl.queries");
  obs::Counter* evaluated = obs::GetCounter("gl.segments_evaluated");
  obs::Counter* pruned = obs::GetCounter("gl.segments_pruned");
  obs::Counter* triangle_excluded = obs::GetCounter("gl.triangle_excluded");
  obs::Counter* triangle_forced = obs::GetCounter("gl.triangle_forced");
  obs::Histogram* global_prob = obs::GetHistogram(
      "gl.global_prob", obs::Histogram::LinearBuckets(0.05, 0.05, 20));
  obs::Histogram* selected_hist = obs::GetHistogram(
      "gl.selected_segments", obs::Histogram::LinearBuckets(1.0, 1.0, 64));
  obs::Histogram* features_us = obs::GetHistogram("gl.latency.features_us");
  obs::Histogram* global_us = obs::GetHistogram("gl.latency.global_us");
  obs::Histogram* locals_us = obs::GetHistogram("gl.latency.locals_us");
  obs::Histogram* total_us = obs::GetHistogram("gl.latency.total_us");
  // Batch-path phase timings are recorded per *batch* (the per-query
  // gl.latency.* histograms stay single-path only so their distributions
  // keep meaning "one query's cost").
  obs::Histogram* batch_rows = obs::GetHistogram(
      "gl.batch.rows", obs::Histogram::LinearBuckets(1.0, 1.0, 64));
  obs::Histogram* batch_features_us =
      obs::GetHistogram("gl.batch.features_us");
  obs::Histogram* batch_global_us = obs::GetHistogram("gl.batch.global_us");
  obs::Histogram* batch_locals_us = obs::GetHistogram("gl.batch.locals_us");
  obs::Histogram* batch_total_us = obs::GetHistogram("gl.batch.total_us");
  // Degradation events, labeled by reason (see DESIGN.md, failure model).
  obs::Counter* fb_invalid_query = obs::GetCounter("simcard.fallback.invalid_query");
  obs::Counter* fb_invalid_tau = obs::GetCounter("simcard.fallback.invalid_tau");
  obs::Counter* fb_local_missing = obs::GetCounter("simcard.fallback.local_missing");
  obs::Counter* fb_local_nonfinite =
      obs::GetCounter("simcard.fallback.local_nonfinite");
  obs::Counter* fb_clamped = obs::GetCounter("simcard.fallback.clamped");
};

GlQueryMetrics& QueryMetrics() {
  static GlQueryMetrics metrics;
  return metrics;
}

// How one selected segment was answered; drives the probe/trace/health
// bookkeeping shared by the single and batch eval loops.
enum class SegOutcome {
  kLocal,     // local model produced the answer
  kFallback,  // sampling fallback (quarantined slot or non-finite local)
  kBreaker,   // policy (circuit breaker) diverted to the fallback
};

// Records one (segment, outcome): per-segment health registry (when
// metrics are on), the request probe, and — when the probe carries an
// active TraceContext — a per-segment trace instant parented under the
// request's eval span. Static-literal event names keep this path
// allocation-free.
void NoteSegmentOutcome(EstimateProbe* probe, bool metrics_enabled, size_t s,
                        SegOutcome outcome) {
  const bool used_fallback = outcome != SegOutcome::kLocal;
  if (metrics_enabled) {
    obs::SegmentHealthRegistry::Default().RecordEval(s, used_fallback);
  }
  if (probe == nullptr) return;
  probe->NoteSegment(static_cast<uint32_t>(s), used_fallback);
  obs::TraceContext* trace = probe->trace;
  if (trace == nullptr || !trace->active()) return;
  const char* name = "gl.segment";
  switch (outcome) {
    case SegOutcome::kLocal:
      break;
    case SegOutcome::kFallback:
      name = "gl.segment.fallback";
      trace->AddFlag(obs::kTraceFallback);
      break;
    case SegOutcome::kBreaker:
      name = "gl.segment.breaker";
      trace->AddFlag(obs::kTraceFallback | obs::kTraceBreakerShortCircuit);
      break;
  }
  trace->RecordInstant(name, probe->trace_parent, "segment",
                       static_cast<double>(s));
}

bool VectorIsFinite(const float* v, size_t dim) {
  for (size_t i = 0; i < dim; ++i) {
    if (!std::isfinite(v[i])) return false;
  }
  return true;
}

// Merges `extra` into the caller's touched-segment list, keeping it
// ascending and unique (callers chain RouteInserts / EraseRows and want one
// combined set).
void MergeTouched(const std::set<size_t>& extra, std::vector<size_t>* out) {
  if (out == nullptr) return;
  std::set<size_t> merged(out->begin(), out->end());
  merged.insert(extra.begin(), extra.end());
  out->assign(merged.begin(), merged.end());
}

// Restores the exact per-segment member lists from a "members" section.
// Validated against the already-loaded segmentation; on any mismatch the
// segmentation keeps its assignment-derived lists and the caller decides
// whether that is fatal (kStrict) or a degradation (kDegraded).
Status RestoreExactMembers(Deserializer* in, Segmentation* seg) {
  uint64_t n = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&n));
  if (n != seg->members.size()) {
    return Status::Internal("members: segment count mismatch");
  }
  std::vector<std::vector<uint32_t>> lists(n);
  for (uint64_t s = 0; s < n; ++s) {
    std::vector<uint64_t> m64;
    SIMCARD_RETURN_IF_ERROR(in->ReadU64Vector(&m64));
    lists[s].reserve(m64.size());
    for (uint64_t idx : m64) {
      if (idx >= seg->assignment.size()) {
        return Status::Internal("members: index out of range");
      }
      lists[s].push_back(static_cast<uint32_t>(idx));
    }
  }
  seg->members = std::move(lists);
  return Status::OK();
}

}  // namespace

double GlEstimator::FallbackEstimate(size_t s, const float* query,
                                     float tau) const {
  if (s >= fallbacks_.size()) return 0.0;
  return fallbacks_[s].Estimate(query, tau, dim_, metric_);
}

size_t GlEstimator::num_quarantined_locals() const {
  size_t n = 0;
  for (const auto& local : locals_) {
    if (local == nullptr) ++n;
  }
  return n;
}

void GlEstimator::SelectWithGuards(const float* probs, const float* xc,
                                   float tau, SelectScratch* scratch,
                                   std::vector<size_t>* selected_out,
                                   std::vector<char>* forced_out) const {
  const bool enabled = obs::MetricsEnabled();
  GlQueryMetrics& m = QueryMetrics();
  const size_t n_seg = locals_.size();
  std::vector<size_t>& selected = *selected_out;
  global_->SelectSegmentsInto(std::span<const float>(probs, n_seg),
                              &selected);
  std::vector<char>& forced = scratch->forced;
  forced.assign(n_seg, 0);
  if (config_.use_triangle_guards) {
    // Exclusion: |d(q,p) - d(q,c)| <= d(c,p) <= radius for all members p,
    // so xc[s] > tau + radius[s] proves the segment holds no match.
    std::vector<char>& keep = scratch->keep;
    keep.assign(n_seg, 0);
    for (size_t s : selected) {
      keep[s] = xc[s] <= tau + segmentation_.radius[s];
      if (enabled && keep[s] == 0) m.triangle_excluded->Increment();
    }
    // Inclusion: a centroid within tau strongly indicates matches; back-
    // stop a global-model miss.
    for (size_t s = 0; s < n_seg; ++s) {
      if (xc[s] <= tau) {
        if (keep[s] == 0) {
          forced[s] = 1;
          if (enabled) m.triangle_forced->Increment();
        }
        keep[s] = 1;
      }
    }
    selected.clear();
    for (size_t s = 0; s < n_seg; ++s) {
      if (keep[s]) selected.push_back(s);
    }
  }
  // The forced flags come back parallel to the selected list; callers that
  // only need the segment set (the batch path) pass null and skip the copy.
  if (forced_out != nullptr) {
    forced_out->clear();
    forced_out->reserve(selected.size());
    for (size_t s : selected) forced_out->push_back(forced[s]);
  }
}

std::vector<SegmentEstimate> GlEstimator::EstimatePerSegment(
    const float* query, float tau, SegmentEvalPolicy* policy,
    EstimateProbe* probe) const {
  const bool enabled = obs::MetricsEnabled();
  GlQueryMetrics& m = QueryMetrics();
  Stopwatch total;
  Stopwatch phase;
  // An estimator must never turn a malformed query into NaN arithmetic: a
  // non-finite query vector or threshold has no meaningful cardinality, so
  // answer 0 (the only estimate valid for every dataset) and record why.
  if (query == nullptr || !VectorIsFinite(query, dim_)) {
    if (enabled) m.fb_invalid_query->Increment();
    return {};
  }
  if (!std::isfinite(tau) || tau < 0.0f) {
    if (enabled) m.fb_invalid_tau->Increment();
    return {};
  }
  std::vector<float> xc =
      segmentation_.CentroidDistances(query, dim_, metric_);
  if (enabled) m.features_us->Record(phase.ElapsedMicros());
  std::vector<size_t> selected;
  std::vector<char> forced;
  if (global_ != nullptr) {
    if (enabled) phase.Restart();
    const std::vector<float> probs = global_->Probabilities(query, tau,
                                                            xc.data());
    if (enabled) {
      m.global_us->Record(phase.ElapsedMicros());
      for (float p : probs) m.global_prob->Record(p);
    }
    SelectScratch scratch;
    SelectWithGuards(probs.data(), xc.data(), tau, &scratch, &selected,
                     &forced);
  } else {
    selected.resize(locals_.size());
    for (size_t s = 0; s < locals_.size(); ++s) selected[s] = s;
    forced.assign(locals_.size(), 0);
  }
  if (enabled) phase.Restart();
  std::vector<SegmentEstimate> out;
  out.reserve(selected.size());
  for (size_t i = 0; i < selected.size(); ++i) {
    const size_t s = selected[i];
    SegmentEstimate se;
    se.segment = s;
    se.forced = forced[i] != 0;
    if (probe != nullptr && se.forced) probe->NoteForced();
    if (locals_[s] == nullptr) {
      // Quarantined by a degraded load: the sampling fallback answers.
      se.estimate = FallbackEstimate(s, query, tau);
      se.used_fallback = true;
      if (enabled) m.fb_local_missing->Increment();
      NoteSegmentOutcome(probe, enabled, s, SegOutcome::kFallback);
    } else if (policy != nullptr && policy->ForceFallback(s)) {
      // The caller's policy (e.g. an open circuit breaker) short-circuits
      // this segment to the fallback without touching the local model.
      se.estimate = FallbackEstimate(s, query, tau);
      se.used_fallback = true;
      NoteSegmentOutcome(probe, enabled, s, SegOutcome::kBreaker);
    } else {
      double est = locals_[s]->Estimate(query, tau, xc.data());
      if (fault::ShouldFail("gl.local_eval")) {
        est = std::numeric_limits<double>::quiet_NaN();
      }
      const bool ok = std::isfinite(est) && est >= 0.0;
      if (policy != nullptr) policy->OnLocalResult(s, ok);
      if (!ok) {
        est = FallbackEstimate(s, query, tau);
        se.used_fallback = true;
        if (enabled) m.fb_local_nonfinite->Increment();
      }
      se.estimate = est;
      NoteSegmentOutcome(probe, enabled, s,
                         ok ? SegOutcome::kLocal : SegOutcome::kFallback);
    }
    out.push_back(se);
  }
  if (enabled) {
    m.locals_us->Record(phase.ElapsedMicros());
    m.total_us->Record(total.ElapsedMicros());
    m.queries->Increment();
    m.evaluated->Add(static_cast<int64_t>(selected.size()));
    m.pruned->Add(static_cast<int64_t>(locals_.size() - selected.size()));
    m.selected_hist->Record(static_cast<double>(selected.size()));
  }
  return out;
}

double GlEstimator::Estimate(const EstimateRequest& request) {
  return static_cast<const GlEstimator*>(this)->Estimate(request);
}

double GlEstimator::Estimate(const EstimateRequest& request) const {
  // A sized span must match the trained dimensionality; the legacy shims
  // pass an empty span (length unknown, trusted for dim_ floats).
  if (!request.query.empty() && request.query.size() != dim_) {
    if (obs::MetricsEnabled()) QueryMetrics().fb_invalid_query->Increment();
    return 0.0;
  }
  double total = 0.0;
  for (const SegmentEstimate& se :
       EstimatePerSegment(request.query.data(), request.tau,
                          request.options.policy, request.options.probe)) {
    total += se.estimate;
  }
  // A cardinality is a count over the dataset: clamp to [0, |D|] so no
  // degradation path can surface an impossible answer.
  const double dataset_size =
      static_cast<double>(segmentation_.assignment.size());
  if (!std::isfinite(total) || total < 0.0) {
    if (obs::MetricsEnabled()) QueryMetrics().fb_clamped->Increment();
    return 0.0;
  }
  if (total > dataset_size) {
    if (obs::MetricsEnabled()) QueryMetrics().fb_clamped->Increment();
    return dataset_size;
  }
  return total;
}

std::vector<double> GlEstimator::EstimateBatch(
    const BatchEstimateRequest& request) {
  if (request.queries == nullptr) return {};
  return EstimateSearchBatch(*request.queries, request.taus,
                             request.options.policy);
}

std::vector<double> GlEstimator::EstimateSearchBatch(
    const Matrix& queries, std::span<const float> taus,
    SegmentEvalPolicy* policy,
    std::span<EstimateProbe* const> probes) const {
  const bool enabled = obs::MetricsEnabled();
  // `probes` is indexed by original row; packed index i maps back through
  // valid[i]. Short spans and null entries mean "no probe for that row".
  auto probe_for = [&](size_t packed_i, const std::vector<size_t>& valid)
      -> EstimateProbe* {
    const size_t r = valid[packed_i];
    return r < probes.size() ? probes[r] : nullptr;
  };
  GlQueryMetrics& m = QueryMetrics();
  const size_t batch = queries.rows();
  std::vector<double> out(batch, 0.0);
  if (batch == 0) return out;
  Stopwatch total;
  Stopwatch phase;
  if (enabled) m.batch_rows->Record(static_cast<double>(batch));

  // Per-row validation mirrors the single-query path: malformed rows answer
  // 0 (with the same fallback counters) and drop out of the packed batch.
  std::vector<size_t> valid;
  valid.reserve(batch);
  for (size_t r = 0; r < batch; ++r) {
    if (queries.cols() != dim_ || !VectorIsFinite(queries.Row(r), dim_)) {
      if (enabled) m.fb_invalid_query->Increment();
      continue;
    }
    const float tau = r < taus.size()
                          ? taus[r]
                          : std::numeric_limits<float>::quiet_NaN();
    if (!std::isfinite(tau) || tau < 0.0f) {
      if (enabled) m.fb_invalid_tau->Increment();
      continue;
    }
    valid.push_back(r);
  }
  if (valid.empty()) return out;
  const size_t nv = valid.size();
  const size_t n_seg = locals_.size();

  // One x_C feature build for the whole batch (BatchDistances kernel). The
  // common all-rows-valid batch runs on the caller's matrix directly; only
  // a batch with rejected rows pays for a packed copy. valid[i] == i when
  // nothing was rejected, so vq->Row(i) is the right row either way, and
  // taus[valid[i]] is row i's threshold in both cases.
  Matrix packed;
  const Matrix* vq = &queries;
  if (nv != batch) {
    packed = Matrix::Uninit(nv, dim_);
    for (size_t i = 0; i < nv; ++i) packed.SetRow(i, queries.Row(valid[i]));
    vq = &packed;
  }
  const Matrix xc =
      BuildCentroidDistanceFeatures(*vq, segmentation_, metric_);
  if (enabled) m.batch_features_us->Record(phase.ElapsedMicros());

  // One global forward for the whole batch; routing is thresholded row by
  // row through the same SelectWithGuards as the single-query path, so the
  // per-query pruning decisions are identical. Each row's segment set is
  // scattered straight into the per-segment row lists (the inverted
  // routing): segments are walked in ascending order downstream, and each
  // row was admitted to its segments in ascending order here, so every
  // row's contributions accumulate in ascending-segment order — the same
  // summation order as the single-query path, which is what keeps the
  // final totals bitwise identical.
  std::vector<std::vector<size_t>> rows_for_seg(n_seg);
  std::vector<uint32_t> sel_count(nv, 0);
  if (enabled) phase.Restart();
  if (global_ != nullptr) {
    Matrix vtau = Matrix::Uninit(nv, 1);
    for (size_t i = 0; i < nv; ++i) vtau.at(i, 0) = taus[valid[i]];
    const Matrix probs = global_->ApplyBatch(*vq, vtau, xc);
    SelectScratch scratch;
    std::vector<size_t> selected_row;
    std::vector<char> forced_row;
    for (size_t i = 0; i < nv; ++i) {
      const float* src = probs.Row(i);
      if (enabled) {
        for (size_t s = 0; s < n_seg; ++s) m.global_prob->Record(src[s]);
      }
      // Forced-include flags are only materialized when this row has a
      // probe to receive them; probe-less batches keep the cheaper call.
      EstimateProbe* probe = probe_for(i, valid);
      SelectWithGuards(src, xc.Row(i), taus[valid[i]], &scratch,
                       &selected_row, probe != nullptr ? &forced_row : nullptr);
      sel_count[i] = static_cast<uint32_t>(selected_row.size());
      if (probe != nullptr) {
        for (char f : forced_row) {
          if (f) probe->NoteForced();
        }
      }
      for (size_t s : selected_row) rows_for_seg[s].push_back(i);
    }
  } else {
    for (size_t s = 0; s < n_seg; ++s) {
      rows_for_seg[s].resize(nv);
      for (size_t i = 0; i < nv; ++i) rows_for_seg[s][i] = i;
    }
    for (size_t i = 0; i < nv; ++i) sel_count[i] = static_cast<uint32_t>(n_seg);
  }
  if (enabled) m.batch_global_us->Record(phase.ElapsedMicros());

  if (enabled) phase.Restart();
  std::vector<double> sums(nv, 0.0);
  std::vector<size_t> eval_rows;
  for (size_t s = 0; s < n_seg; ++s) {
    const std::vector<size_t>& rows = rows_for_seg[s];
    if (rows.empty()) continue;
    if (locals_[s] == nullptr) {
      // Quarantined by a degraded load: the sampling fallback answers.
      for (size_t i : rows) {
        sums[i] += FallbackEstimate(s, vq->Row(i), taus[valid[i]]);
        if (enabled) m.fb_local_missing->Increment();
        NoteSegmentOutcome(probe_for(i, valid), enabled, s,
                           SegOutcome::kFallback);
      }
      continue;
    }
    // The policy is consulted once per (row, segment) pair, matching the
    // single path's call count; rows it diverts answer from the fallback.
    eval_rows.clear();
    for (size_t i : rows) {
      if (policy != nullptr && policy->ForceFallback(s)) {
        sums[i] += FallbackEstimate(s, vq->Row(i), taus[valid[i]]);
        NoteSegmentOutcome(probe_for(i, valid), enabled, s,
                           SegOutcome::kBreaker);
      } else {
        eval_rows.push_back(i);
      }
    }
    if (eval_rows.empty()) continue;
    Matrix sq = Matrix::Uninit(eval_rows.size(), dim_);
    Matrix stau = Matrix::Uninit(eval_rows.size(), 1);
    Matrix sxc = Matrix::Uninit(eval_rows.size(), xc.cols());
    for (size_t j = 0; j < eval_rows.size(); ++j) {
      const size_t i = eval_rows[j];
      sq.SetRow(j, vq->Row(i));
      stau.at(j, 0) = taus[valid[i]];
      sxc.SetRow(j, xc.Row(i));
    }
    const std::vector<double> ests = locals_[s]->EstimateBatch(sq, stau, sxc);
    for (size_t j = 0; j < eval_rows.size(); ++j) {
      const size_t i = eval_rows[j];
      double est = ests[j];
      if (fault::ShouldFail("gl.local_eval")) {
        est = std::numeric_limits<double>::quiet_NaN();
      }
      const bool ok = std::isfinite(est) && est >= 0.0;
      if (policy != nullptr) policy->OnLocalResult(s, ok);
      if (!ok) {
        est = FallbackEstimate(s, vq->Row(i), taus[valid[i]]);
        if (enabled) m.fb_local_nonfinite->Increment();
      }
      NoteSegmentOutcome(probe_for(i, valid), enabled, s,
                         ok ? SegOutcome::kLocal : SegOutcome::kFallback);
      sums[i] += est;
    }
  }
  if (enabled) m.batch_locals_us->Record(phase.ElapsedMicros());

  // Per-row clamp to [0, |D|] plus the per-query counters, identical to
  // the single-query path.
  const double dataset_size =
      static_cast<double>(segmentation_.assignment.size());
  for (size_t i = 0; i < nv; ++i) {
    double v = sums[i];
    if (!std::isfinite(v) || v < 0.0) {
      if (enabled) m.fb_clamped->Increment();
      v = 0.0;
    } else if (v > dataset_size) {
      if (enabled) m.fb_clamped->Increment();
      v = dataset_size;
    }
    out[valid[i]] = v;
    if (enabled) {
      m.queries->Increment();
      m.evaluated->Add(static_cast<int64_t>(sel_count[i]));
      m.pruned->Add(static_cast<int64_t>(n_seg - sel_count[i]));
      m.selected_hist->Record(static_cast<double>(sel_count[i]));
    }
  }
  if (enabled) m.batch_total_us->Record(total.ElapsedMicros());
  return out;
}

size_t GlEstimator::ModelSizeBytes() const {
  size_t scalars = 0;
  for (const auto& local : locals_) {
    if (local == nullptr) continue;  // quarantined by a degraded load
    scalars += local->NumScalars();
  }
  if (global_ != nullptr) scalars += global_->NumScalars();
  // Centroids are part of the deployed model (x_C needs them), as are the
  // retained fallback samples.
  scalars += segmentation_.centroids.size();
  for (const auto& fb : fallbacks_) scalars += fb.samples.size();
  return scalars * sizeof(float);
}

double GlEstimator::MissingRate(const SearchWorkload& workload) const {
  if (global_ == nullptr) return 0.0;
  double missing = 0.0;
  size_t counted = 0;
  for (const auto& lq : workload.test) {
    const float* q = workload.test_queries.Row(lq.row);
    for (const auto& t : lq.thresholds) {
      if (t.card <= 0.0f || t.seg_cards.empty()) continue;
      std::vector<float> xc = segmentation_.CentroidDistances(q, dim_, metric_);
      auto selected = global_->SelectSegments(
          global_->Probabilities(q, t.tau, xc.data()));
      std::set<size_t> chosen(selected.begin(), selected.end());
      double missed = 0.0;
      for (size_t s = 0; s < t.seg_cards.size(); ++s) {
        if (chosen.count(s) == 0) missed += t.seg_cards[s];
      }
      missing += missed / t.card;
      ++counted;
    }
  }
  return counted > 0 ? missing / static_cast<double>(counted) : 0.0;
}

double GlEstimator::MeanSelectedSegments(
    const SearchWorkload& workload) const {
  if (global_ == nullptr) return static_cast<double>(locals_.size());
  double total = 0.0;
  size_t counted = 0;
  for (const auto& lq : workload.test) {
    const float* q = workload.test_queries.Row(lq.row);
    for (const auto& t : lq.thresholds) {
      std::vector<float> xc = segmentation_.CentroidDistances(q, dim_, metric_);
      total += static_cast<double>(
          global_->SelectSegments(global_->Probabilities(q, t.tau, xc.data()))
              .size());
      ++counted;
    }
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

Status GlEstimator::ApplyDeletions(const Dataset& dataset,
                                   SearchWorkload* workload,
                                   size_t num_removed, uint64_t seed,
                                   size_t fine_tune_epochs) {
  if (locals_.empty()) {
    return Status::FailedPrecondition("ApplyDeletions: estimator not trained");
  }
  if (workload == nullptr) {
    return Status::InvalidArgument("ApplyDeletions: workload required");
  }
  if (dataset.size() + num_removed != segmentation_.assignment.size()) {
    return Status::InvalidArgument(
        "ApplyDeletions: dataset must already be truncated by num_removed");
  }
  const std::vector<size_t> touched =
      segmentation_.RemoveTrailingPoints(num_removed);
  RebuildFallbacks(dataset, touched, seed);
  SIMCARD_RETURN_IF_ERROR(RelabelWorkload(dataset, &segmentation_, workload));

  const Matrix xc = BuildCentroidDistanceFeatures(workload->train_queries,
                                                  segmentation_, metric_);
  SIMCARD_RETURN_IF_ERROR(FineTuneLocalsSeeded(*workload, xc, touched, seed,
                                               41, 3, fine_tune_epochs));
  return FineTuneGlobalWithFeatures(*workload, xc, seed + 43,
                                    fine_tune_epochs);
}

Status GlEstimator::RouteInserts(const Dataset& dataset,
                                 const std::vector<uint32_t>& new_rows,
                                 std::vector<size_t>* touched) {
  if (locals_.empty()) {
    return Status::FailedPrecondition("RouteInserts: estimator not trained");
  }
  for (uint32_t row : new_rows) {
    if (row >= dataset.size()) {
      return Status::InvalidArgument(
          "RouteInserts: new_rows must index appended dataset rows");
    }
  }
  std::set<size_t> t;
  for (uint32_t row : new_rows) {
    const float* p = dataset.Point(row);
    const size_t seg = segmentation_.NearestSegment(p, dim_, metric_);
    segmentation_.AddPoint(seg, row, p, dim_, metric_);
    t.insert(seg);
    if (locals_[seg] == nullptr) continue;  // quarantined; fallback only
    // Keep the clamp consistent with the grown segment.
    locals_[seg]->set_max_card(
        static_cast<double>(segmentation_.members[seg].size()));
  }
  MergeTouched(t, touched);
  return Status::OK();
}

Status GlEstimator::EraseRows(const Dataset& dataset,
                              const std::vector<uint32_t>& rows,
                              std::vector<size_t>* touched,
                              bool recompute_summaries) {
  if (locals_.empty()) {
    return Status::FailedPrecondition("EraseRows: estimator not trained");
  }
  if (rows.empty()) return Status::OK();
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    if (rows[i] >= rows[i + 1]) {
      return Status::InvalidArgument(
          "EraseRows: rows must be ascending and unique");
    }
  }
  if (dataset.size() + rows.size() != segmentation_.assignment.size() ||
      rows.back() >= segmentation_.assignment.size()) {
    return Status::InvalidArgument(
        "EraseRows: dataset must already be compacted by exactly these rows");
  }
  const std::vector<size_t> t = segmentation_.EraseRows(rows);
  if (recompute_summaries) segmentation_.RecomputeSummaries(dataset, t);
  for (size_t s : t) {
    if (locals_[s] == nullptr) continue;
    locals_[s]->set_max_card(
        static_cast<double>(segmentation_.members[s].size()));
  }
  MergeTouched(std::set<size_t>(t.begin(), t.end()), touched);
  return Status::OK();
}

void GlEstimator::RebuildFallbacks(const Dataset& dataset,
                                   const std::vector<size_t>& segments,
                                   uint64_t seed) {
  if (fallbacks_.size() < locals_.size()) fallbacks_.resize(locals_.size());
  Rng fb_rng(seed + 7919);
  for (size_t s : segments) {
    if (s >= fallbacks_.size()) continue;
    fallbacks_[s] = SegmentFallback::FromSegment(
        dataset, segmentation_.members[s], SegmentFallback::kDefaultSamples,
        &fb_rng);
    if (s >= locals_.size() || locals_[s] == nullptr) continue;
    locals_[s]->set_max_card(
        static_cast<double>(segmentation_.members[s].size()));
  }
}

Status GlEstimator::FineTuneLocalsSeeded(const SearchWorkload& workload,
                                         const Matrix& xc,
                                         const std::vector<size_t>& segments,
                                         uint64_t base_seed, uint64_t mul,
                                         uint64_t add, size_t epochs) {
  const Matrix& queries = workload.train_queries;
  for (size_t s : segments) {
    if (s >= locals_.size() || locals_[s] == nullptr) continue;
    CardTrainOptions opts = config_.local_train;
    opts.seed = base_seed + mul * s + add;
    auto ft_or = locals_[s]->FineTune(queries, xc, workload.train,
                                      config_.zero_keep_prob, opts, epochs);
    if (!ft_or.ok()) return ft_or.status();
  }
  return Status::OK();
}

Status GlEstimator::FineTuneGlobalWithFeatures(const SearchWorkload& workload,
                                               const Matrix& xc, uint64_t seed,
                                               size_t epochs) {
  if (global_ == nullptr) return Status::OK();
  GlobalLabels labels =
      BuildGlobalLabels(workload.train, segmentation_.num_segments());
  GlobalTrainOptions gopts = config_.global_train;
  gopts.use_penalty = config_.use_penalty;
  gopts.epochs = epochs;
  gopts.seed = seed;
  auto gloss_or = TrainGlobalModel(global_.get(), workload.train_queries, xc,
                                   labels, gopts);
  if (!gloss_or.ok()) return gloss_or.status();
  return Status::OK();
}

Status GlEstimator::FineTuneSegments(const SearchWorkload& workload,
                                     const std::vector<size_t>& segments,
                                     uint64_t seed, size_t epochs) {
  if (locals_.empty()) {
    return Status::FailedPrecondition(
        "FineTuneSegments: estimator not trained");
  }
  const Matrix xc = BuildCentroidDistanceFeatures(workload.train_queries,
                                                  segmentation_, metric_);
  return FineTuneLocalsSeeded(workload, xc, segments, seed, 13, 7, epochs);
}

Status GlEstimator::FineTuneGlobal(const SearchWorkload& workload,
                                   uint64_t seed, size_t epochs) {
  if (global_ == nullptr) return Status::OK();
  const Matrix xc = BuildCentroidDistanceFeatures(workload.train_queries,
                                                  segmentation_, metric_);
  return FineTuneGlobalWithFeatures(workload, xc, seed, epochs);
}

Status GlEstimator::WriteCheckedSections(CheckedFileWriter* writer_ptr) const {
  if (locals_.empty()) {
    return Status::FailedPrecondition("SaveToFile: estimator not trained");
  }
  CheckedFileWriter& writer = *writer_ptr;
  Serializer* meta = writer.AddSection("meta");
  meta->WriteU32(static_cast<uint32_t>(metric_));
  meta->WriteU64(dim_);
  meta->WriteU64(locals_.size());
  meta->WriteU32(global_ != nullptr ? 1 : 0);
  segmentation_.Serialize(writer.AddSection("segmentation"));
  {
    // The segmentation section only carries `assignment`; deriving member
    // lists from it loses their ORDER (which seeds fallback re-sampling)
    // and mis-files rows that AddPoint's resize zero-filled but never
    // routed. Persisting the exact lists makes a snapshot taken mid-refresh
    // round-trip bit-for-bit.
    Serializer* mem = writer.AddSection("members");
    mem->WriteU64(segmentation_.members.size());
    for (const auto& m : segmentation_.members) {
      mem->WriteU64Vector(std::vector<uint64_t>(m.begin(), m.end()));
    }
  }
  tuned_qes_.Serialize(writer.AddSection("qes"));
  {
    Serializer* fb = writer.AddSection("fallback");
    fb->WriteU64(fallbacks_.size());
    for (const auto& fallback : fallbacks_) fallback.Serialize(fb);
  }
  for (size_t s = 0; s < locals_.size(); ++s) {
    Serializer* out = writer.AddSection("local." + std::to_string(s));
    // A quarantined slot round-trips as "absent" so a degraded model can
    // still be re-saved.
    out->WriteU32(locals_[s] != nullptr ? 1 : 0);
    if (locals_[s] != nullptr) locals_[s]->Save(out);
  }
  if (global_ != nullptr) {
    global_->SaveWithConfig(writer.AddSection("global"));
  }
  return Status::OK();
}

Status GlEstimator::SaveToFile(const std::string& path) const {
  CheckedFileWriter writer;
  SIMCARD_RETURN_IF_ERROR(WriteCheckedSections(&writer));
  return writer.Save(path);
}

std::vector<uint8_t> GlEstimator::SaveToBytes() const {
  CheckedFileWriter writer;
  if (!WriteCheckedSections(&writer).ok()) return {};
  return writer.Assemble();
}

Status GlEstimator::LoadFromBytes(std::vector<uint8_t> bytes, LoadMode mode) {
  if (!CheckedFileReader::LooksChecked(bytes)) {
    return Status::InvalidArgument(
        "LoadFromBytes: not a checked simcard container");
  }
  return LoadChecked(std::move(bytes), mode);
}

Status GlEstimator::LoadLegacyV1(Deserializer* in, const std::string& path) {
  std::string magic;
  SIMCARD_RETURN_IF_ERROR(in->ReadString(&magic));
  if (magic != "simcard.gl.v1") {
    return Status::InvalidArgument("not a simcard GL model file: " + path);
  }
  uint32_t metric = 0;
  uint64_t dim = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU32(&metric));
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&dim));
  metric_ = static_cast<Metric>(metric);
  dim_ = dim;
  SIMCARD_RETURN_IF_ERROR(segmentation_.Deserialize(in));
  SIMCARD_RETURN_IF_ERROR(tuned_qes_.Deserialize(in));
  uint64_t n_locals = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&n_locals));
  locals_.clear();
  locals_.reserve(n_locals);
  for (uint64_t s = 0; s < n_locals; ++s) {
    auto local_or = LocalModel::Load(in);
    if (!local_or.ok()) return local_or.status();
    locals_.push_back(std::move(local_or.value()));
  }
  uint32_t has_global = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU32(&has_global));
  global_.reset();
  if (has_global != 0) {
    auto global_or = GlobalModel::LoadWithConfig(in);
    if (!global_or.ok()) return global_or.status();
    global_ = std::move(global_or.value());
  }
  // v1 files carry no retained samples: a quarantine-free load needs none,
  // and any later degradation answers 0 for the affected segment (the same
  // as an untrained local model). Segment sizes still bound estimates.
  fallbacks_.assign(locals_.size(), SegmentFallback{});
  for (size_t s = 0; s < locals_.size() && s < segmentation_.members.size();
       ++s) {
    fallbacks_[s].segment_size = segmentation_.members[s].size();
  }
  return Status::OK();
}

Status GlEstimator::LoadChecked(std::vector<uint8_t> bytes, LoadMode mode) {
  auto reader_or = CheckedFileReader::FromBytes(std::move(bytes));
  if (!reader_or.ok()) return reader_or.status();
  const CheckedFileReader reader = std::move(reader_or).value();

  // Structural sections are required intact in both modes: without them
  // there is no segmentation to route queries or bound estimates with.
  auto meta_or = reader.OpenSection("meta");
  if (!meta_or.ok()) return meta_or.status();
  Deserializer meta = std::move(meta_or).value();
  uint32_t metric = 0;
  uint64_t dim = 0;
  uint64_t n_locals = 0;
  uint32_t has_global = 0;
  SIMCARD_RETURN_IF_ERROR(meta.ReadU32(&metric));
  SIMCARD_RETURN_IF_ERROR(meta.ReadU64(&dim));
  SIMCARD_RETURN_IF_ERROR(meta.ReadU64(&n_locals));
  SIMCARD_RETURN_IF_ERROR(meta.ReadU32(&has_global));
  metric_ = static_cast<Metric>(metric);
  dim_ = dim;

  auto seg_or = reader.OpenSection("segmentation");
  if (!seg_or.ok()) return seg_or.status();
  Deserializer seg = std::move(seg_or).value();
  SIMCARD_RETURN_IF_ERROR(segmentation_.Deserialize(&seg));
  // Exact member lists, when present (files written before the section
  // existed keep the assignment-derived lists). Corruption fails a strict
  // load; a degraded load keeps the derived lists — routing still works,
  // only fallback re-sampling order is lost.
  if (reader.HasSection("members")) {
    auto mem_or = reader.OpenSection("members");
    Status st = mem_or.status();
    if (mem_or.ok()) {
      Deserializer mem = std::move(mem_or).value();
      st = RestoreExactMembers(&mem, &segmentation_);
    }
    if (!st.ok()) {
      if (mode == LoadMode::kStrict) return st;
      SIMCARD_LOG(WARN) << "degraded load: exact member lists unavailable, "
                        << "keeping assignment-derived lists ("
                        << st.ToString() << ")";
    }
  }
  auto qes_or = reader.OpenSection("qes");
  if (!qes_or.ok()) return qes_or.status();
  Deserializer qes = std::move(qes_or).value();
  SIMCARD_RETURN_IF_ERROR(tuned_qes_.Deserialize(&qes));

  fallbacks_.clear();
  {
    auto fb_or = reader.OpenSection("fallback");
    if (!fb_or.ok() && mode == LoadMode::kStrict) return fb_or.status();
    if (fb_or.ok()) {
      Deserializer fb = std::move(fb_or).value();
      uint64_t n_fb = 0;
      SIMCARD_RETURN_IF_ERROR(fb.ReadU64(&n_fb));
      fallbacks_.reserve(n_fb);
      for (uint64_t i = 0; i < n_fb; ++i) {
        SegmentFallback fallback;
        SIMCARD_RETURN_IF_ERROR(fallback.Deserialize(&fb));
        fallbacks_.push_back(std::move(fallback));
      }
    } else {
      SIMCARD_LOG(WARN) << "degraded load: fallback samples unavailable ("
                        << fb_or.status().ToString() << ")";
    }
  }
  if (fallbacks_.size() < n_locals) fallbacks_.resize(n_locals);

  locals_.clear();
  locals_.reserve(n_locals);
  size_t quarantined = 0;
  for (uint64_t s = 0; s < n_locals; ++s) {
    const std::string name = "local." + std::to_string(s);
    auto section_or = reader.OpenSection(name);
    Status st = section_or.status();
    if (section_or.ok()) {
      Deserializer in = std::move(section_or).value();
      uint32_t present = 0;
      st = in.ReadU32(&present);
      if (st.ok() && present == 0) {
        locals_.push_back(nullptr);  // saved as absent; not corruption
        continue;
      }
      if (st.ok()) {
        auto local_or = LocalModel::Load(&in);
        st = local_or.status();
        if (st.ok()) {
          locals_.push_back(std::move(local_or).value());
          continue;
        }
      }
    }
    if (mode == LoadMode::kStrict) return st;
    SIMCARD_LOG(WARN) << "degraded load: quarantining " << name << " ("
                      << st.ToString() << ")";
    locals_.push_back(nullptr);
    ++quarantined;
  }
  if (obs::MetricsEnabled() && quarantined > 0) {
    obs::GetCounter("simcard.load.quarantined")
        ->Add(static_cast<int64_t>(quarantined));
  }

  global_.reset();
  if (has_global != 0) {
    auto section_or = reader.OpenSection("global");
    Status st = section_or.status();
    if (section_or.ok()) {
      Deserializer in = std::move(section_or).value();
      auto global_or = GlobalModel::LoadWithConfig(&in);
      st = global_or.status();
      if (st.ok()) global_ = std::move(global_or).value();
    }
    if (global_ == nullptr) {
      if (mode == LoadMode::kStrict) return st;
      // Without a router every local model is evaluated — slower, but the
      // estimate quality only depends on the locals.
      SIMCARD_LOG(WARN) << "degraded load: global model unavailable, "
                        << "evaluating all segments (" << st.ToString()
                        << ")";
    }
  }
  return Status::OK();
}

Status GlEstimator::LoadFromFile(const std::string& path, LoadMode mode) {
  auto bytes_or = ReadFileBytes(path);
  if (!bytes_or.ok()) return bytes_or.status();
  std::vector<uint8_t> bytes = std::move(bytes_or).value();
  if (CheckedFileReader::LooksChecked(bytes)) {
    return LoadChecked(std::move(bytes), mode);
  }
  // Pre-checksum (v1) files: best-effort structural validation only.
  Deserializer in(std::move(bytes));
  return LoadLegacyV1(&in, path);
}

Status GlEstimator::ApplyUpdates(const Dataset& dataset,
                                 SearchWorkload* workload,
                                 const std::vector<uint32_t>& new_rows,
                                 uint64_t seed, size_t fine_tune_epochs) {
  if (locals_.empty()) {
    return Status::FailedPrecondition("ApplyUpdates: estimator not trained");
  }
  if (workload == nullptr) {
    return Status::InvalidArgument("ApplyUpdates: workload required");
  }

  // Step 1 (Section 5.3): route each inserted point to its nearest segment.
  std::vector<size_t> touched;
  SIMCARD_RETURN_IF_ERROR(RouteInserts(dataset, new_rows, &touched));
  RebuildFallbacks(dataset, touched, seed);

  // Step 2: refresh query labels against the grown dataset.
  SIMCARD_RETURN_IF_ERROR(RelabelWorkload(dataset, &segmentation_, workload));

  // Step 3: fine-tune the affected local models and the global model.
  const Matrix xc = BuildCentroidDistanceFeatures(workload->train_queries,
                                                  segmentation_, metric_);
  SIMCARD_RETURN_IF_ERROR(FineTuneLocalsSeeded(*workload, xc, touched, seed,
                                               13, 7, fine_tune_epochs));
  return FineTuneGlobalWithFeatures(*workload, xc, seed + 29,
                                    fine_tune_epochs);
}

}  // namespace simcard
