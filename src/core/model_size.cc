#include "core/model_size.h"

#include <algorithm>
#include <cmath>

namespace simcard {

double BytesToMb(size_t bytes) {
  return static_cast<double>(bytes) / 1e6;
}

size_t SampleModelBytes(const Dataset& dataset, double fraction) {
  const double rows = std::ceil(fraction * static_cast<double>(dataset.size()));
  return static_cast<size_t>(rows) * dataset.dim() * sizeof(float);
}

size_t SampleRowsForBytes(const Dataset& dataset, size_t target_bytes) {
  const size_t row_bytes = dataset.dim() * sizeof(float);
  const size_t rows = std::max<size_t>(1, target_bytes / row_bytes);
  return std::min(rows, dataset.size());
}

}  // namespace simcard
