// Per-segment sampling fallback for degraded inference.
//
// A handful of member vectors is retained per segment at train time. When a
// segment's local model cannot answer — quarantined at load (checksum
// failure), never trained, or emitting a non-finite value — the estimator
// falls back to the classic sampling estimate on the retained members:
//
//   card^[i](q, tau) ~= |{s in S_i : d(q, s) <= tau}| * |D_i| / |S_i|
//
// which is crude but always finite and bounded by the segment population,
// so one broken local model degrades the sum instead of poisoning it.
#ifndef SIMCARD_CORE_SEGMENT_FALLBACK_H_
#define SIMCARD_CORE_SEGMENT_FALLBACK_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "data/dataset.h"
#include "dist/metric.h"

namespace simcard {

/// \brief Retained member samples for one segment.
struct SegmentFallback {
  std::vector<float> samples;  ///< flattened [sample_count, dim]
  uint64_t segment_size = 0;   ///< population the samples represent

  /// Default number of retained members per segment.
  static constexpr size_t kDefaultSamples = 32;

  size_t SampleCount(size_t dim) const {
    return dim == 0 ? 0 : samples.size() / dim;
  }

  /// Retains up to `max_samples` members of the segment, sampled without
  /// replacement.
  static SegmentFallback FromSegment(const Dataset& dataset,
                                     const std::vector<uint32_t>& members,
                                     size_t max_samples, Rng* rng);

  /// Scaled in-threshold sample count (see file comment); 0 when no samples
  /// were retained (an empty segment truly has cardinality 0; a legacy v1
  /// model file carries no samples and degrades to 0 like an untrained
  /// local model would).
  double Estimate(const float* query, float tau, size_t dim,
                  Metric metric) const;

  void Serialize(Serializer* out) const;
  Status Deserialize(Deserializer* in);
};

}  // namespace simcard

#endif  // SIMCARD_CORE_SEGMENT_FALLBACK_H_
