// Global discriminative model G (Section 3.3, Figure 5, Algorithm 2).
//
// Given (x_q, x_tau, x_C) — query vector, threshold, and distances from the
// query to every segment centroid — G outputs one probability per data
// segment that the segment contains at least one object within tau of the
// query. Local models are evaluated only for segments whose probability
// exceeds sigma.
//
// The logits are monotone in tau by the same construction as CardModel (a
// positive-weight tau path plus all-positive output weights acts as the
// paper's "learnable threshold before the Sigmoid activator"). Training uses
// the cardinality-weighted BCE loss whose (1+eps) penalty keeps segments
// with large cardinalities from being missed (Exp-6 / Figure 9).
#ifndef SIMCARD_CORE_GLOBAL_MODEL_H_
#define SIMCARD_CORE_GLOBAL_MODEL_H_

#include <memory>
#include <span>

#include "core/qes.h"
#include "core/train_watchdog.h"
#include "nn/monotone_head.h"
#include "nn/sequential.h"
#include "workload/labels.h"

namespace simcard {

/// \brief Architecture of the global model.
struct GlobalModelConfig {
  size_t query_dim = 0;
  size_t num_segments = 0;  ///< x_C width and output width

  bool use_cnn_query_tower = false;
  QesConfig qes;
  size_t mlp_hidden = 64;
  size_t query_embed = 32;

  size_t tau_hidden = 16;
  size_t tau_embed = 8;
  size_t aux_hidden = 32;
  size_t head_hidden = 64;

  float sigma = 0.5f;  ///< segment-selection probability threshold

  void Serialize(Serializer* out) const;
  Status Deserialize(Deserializer* in);
};

/// \brief The assembled global model.
class GlobalModel {
 public:
  static Result<std::unique_ptr<GlobalModel>> Build(
      const GlobalModelConfig& config, Rng* rng);

  /// Pre-sigmoid segment scores, [B, num_segments].
  Matrix ForwardLogits(const Matrix& xq, const Matrix& xtau,
                       const Matrix& xc);

  /// Backprop for the last ForwardLogits; `grad` is [B, num_segments].
  void Backward(const Matrix& grad);

  /// Stateless inference twin of ForwardLogits (nn::Layer::Apply path): no
  /// cached activations, safe for concurrent callers sharing one model.
  Matrix ApplyLogits(const Matrix& xq, const Matrix& xtau,
                     const Matrix& xc) const;

  /// Per-segment selection probabilities for one query. Runs on the
  /// stateless Apply path, so it is const and thread-safe.
  std::vector<float> Probabilities(const float* query, float tau,
                                   const float* xc) const;

  /// Batch twin of Probabilities: one ApplyLogits over all rows, sigmoid
  /// per element, returned as [B, num_segments]. Row i matches
  /// Probabilities(xq.Row(i), xtau.at(i,0), xc.Row(i)) bitwise (all layers
  /// are row-independent).
  Matrix ApplyBatch(const Matrix& xq, const Matrix& xtau,
                    const Matrix& xc) const;

  /// Indices of segments whose probability exceeds sigma. Never empty: when
  /// nothing clears sigma the single most probable segment is returned, so
  /// the estimator cannot return an unconditionally-zero estimate.
  std::vector<size_t> SelectSegments(const std::vector<float>& probs) const;

  /// Allocation-free SelectSegments: clears and refills `out` (capacity is
  /// reused), so per-row selection in the batch path costs no heap traffic.
  void SelectSegmentsInto(std::span<const float> probs,
                          std::vector<size_t>* out) const;

  std::vector<nn::Parameter*> Parameters();
  std::vector<const nn::Parameter*> Parameters() const;
  size_t NumScalars() const;

  /// Input standardization (see CardModel::SetInputNormalization): tau gets
  /// a positive-scale affine transform (monotonicity preserved), x_C is
  /// z-scored per column. Fitted by TrainGlobalModel.
  void SetInputNormalization(float tau_shift, float tau_scale,
                             std::vector<float> xc_shift,
                             std::vector<float> xc_scale);

  float sigma() const { return config_.sigma; }
  const GlobalModelConfig& config() const { return config_; }

  void Serialize(Serializer* out) const;
  Status Deserialize(Deserializer* in);

  /// Self-describing persistence (config + weights).
  void SaveWithConfig(Serializer* out) const;
  static Result<std::unique_ptr<GlobalModel>> LoadWithConfig(
      Deserializer* in);

 private:
  GlobalModel() = default;

  Matrix NormalizeTau(const Matrix& xtau) const;
  Matrix NormalizeXc(const Matrix& xc) const;

  GlobalModelConfig config_;
  std::unique_ptr<nn::Sequential> query_tower_;  // E4
  std::unique_ptr<nn::Sequential> tau_tower_;    // E5
  std::unique_ptr<nn::Sequential> aux_tower_;    // E6
  std::unique_ptr<nn::MonotoneHead> head_;      // G's output module
  size_t query_embed_dim_ = 0;
  size_t tau_embed_dim_ = 0;
  size_t aux_embed_dim_ = 0;
  float tau_shift_ = 0.0f;
  float tau_scale_ = 1.0f;
  std::vector<float> xc_shift_;
  std::vector<float> xc_scale_;
};

/// \brief Options for TrainGlobalModel (Algorithm 2).
struct GlobalTrainOptions {
  size_t epochs = 40;
  size_t batch_size = 64;
  float lr = 2e-3f;
  bool use_penalty = true;  ///< the Exp-6 ablation switch
  double grad_clip_norm = 5.0;
  uint64_t seed = 43;
  double min_improvement = 0.003;
  size_t patience = 6;
  /// Observability tag for per-epoch loss reporting (see CardTrainOptions).
  std::string observer_tag = "global";
  /// Divergence watchdog policy (see core/train_watchdog.h).
  WatchdogOptions watchdog;
};

/// Trains on the flattened global labels; `xc_features` is the per-query
/// x_C matrix ([num_queries, num_segments]). Returns the final epoch loss.
/// Fails (descriptive Status, model rolled back to its last good
/// checkpoint) when the divergence watchdog exhausts its retries.
Result<double> TrainGlobalModel(GlobalModel* model, const Matrix& queries,
                                const Matrix& xc_features,
                                const GlobalLabels& labels,
                                const GlobalTrainOptions& options);

}  // namespace simcard

#endif  // SIMCARD_CORE_GLOBAL_MODEL_H_
