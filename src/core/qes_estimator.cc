#include "core/qes_estimator.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "core/features.h"
#include "data/sampling.h"

namespace simcard {

FlatCardEstimatorConfig FlatCardEstimatorConfig::Qes() {
  FlatCardEstimatorConfig c;
  c.name = "QES";
  c.use_cnn_query_tower = true;
  return c;
}

FlatCardEstimatorConfig FlatCardEstimatorConfig::Mlp() {
  FlatCardEstimatorConfig c;
  c.name = "MLP";
  c.use_cnn_query_tower = false;
  return c;
}

Status FlatCardEstimator::Train(const TrainContext& ctx) {
  if (ctx.dataset == nullptr || ctx.workload == nullptr) {
    return Status::InvalidArgument(
        "FlatCardEstimator: dataset/workload required");
  }
  Stopwatch watch;
  metric_ = ctx.dataset->metric();
  max_card_ = static_cast<double>(ctx.dataset->size());

  // Retain k data samples; their distances to the query are x_D.
  Rng rng(ctx.seed);
  const size_t k = std::min(config_.num_samples, ctx.dataset->size());
  samples_ = GatherRows(ctx.dataset->points(),
                        SampleIndices(*ctx.dataset, k, &rng));

  const Matrix& queries = ctx.workload->train_queries;
  const Matrix xd = BuildSampleDistanceFeatures(queries, samples_, metric_);
  auto flat = FlattenSearch(ctx.workload->train);

  CardModelConfig config;
  config.query_dim = ctx.dataset->dim();
  config.use_cnn_query_tower = config_.use_cnn_query_tower;
  config.qes = config_.qes;
  config.mlp_hidden = config_.mlp_hidden;
  config.query_embed = config_.query_embed;
  config.tau_hidden = config_.tau_hidden;
  config.tau_embed = config_.tau_embed;
  config.aux_dim = k;
  config.aux_hidden = config_.aux_hidden;
  config.head_hidden = config_.head_hidden;

  if (config_.auto_tune && config_.use_cnn_query_tower) {
    TunerOptions tuner_opts = config_.tuner;
    tuner_opts.seed = ctx.seed + 3;
    auto tuned_or = GreedyTuneQes(queries, &xd, flat, config, tuner_opts);
    if (tuned_or.ok()) config.qes = tuned_or.value().config;
  }

  Rng model_rng(ctx.seed + 1);
  auto model_or = CardModel::Build(config, &model_rng);
  if (!model_or.ok()) return model_or.status();
  model_ = std::move(model_or.value());

  CardTrainOptions train_opts = config_.train;
  train_opts.seed = ctx.seed + 2;
  auto loss_or =
      TrainCardModel(model_.get(), queries, &xd, std::move(flat), train_opts);
  if (!loss_or.ok()) return loss_or.status();
  set_training_seconds(watch.ElapsedSeconds());
  return Status::OK();
}

double FlatCardEstimator::Estimate(const EstimateRequest& request) {
  const float* query = request.query.data();
  const auto xd = SampleDistanceRow(query, samples_, metric_);
  const double est = model_->EstimateCard(query, request.tau, xd.data());
  // No query can match more objects than the dataset holds.
  return std::min(est, max_card_);
}

size_t FlatCardEstimator::ModelSizeBytes() const {
  const size_t scalars =
      const_cast<CardModel*>(model_.get())->NumScalars() + samples_.size();
  return scalars * sizeof(float);
}

}  // namespace simcard
