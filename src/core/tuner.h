// Greedy hyperparameter tuning for the QES query-embedding network
// (Section 5.2, Algorithm 3).
//
// The search space is the per-layer tuple
//   Theta = {theta_ch, theta_ker, theta_stri, theta_pad, theta_pker,
//            theta_op},
// grown layer by layer: starting from the best of a few cold-start
// configurations, coordinates of the newest layer are updated one at a time
// (coordinate descent) until the validation error stops improving by 2%,
// then another layer is appended, until that also stops helping. Trials run
// on small train/validation subsamples, exactly as Algorithm 3 samples
// S_train and S_validate.
#ifndef SIMCARD_CORE_TUNER_H_
#define SIMCARD_CORE_TUNER_H_

#include "core/card_model.h"

namespace simcard {

/// \brief Budget/behavior knobs for GreedyTuneQes.
struct TunerOptions {
  size_t train_subsample = 600;   ///< Algorithm 3's S_train (paper: 1000)
  size_t val_subsample = 150;     ///< Algorithm 3's S_validate (paper: 200)
  size_t trial_epochs = 10;       ///< epochs per trial fit
  size_t max_layers = 3;          ///< cap on appended merge layers
  size_t cold_start_configs = 3;  ///< random initial configurations
  double improve_threshold = 0.02;  ///< Algorithm 3's 2% stopping rule
  size_t max_trials = 40;         ///< hard budget on trial fits
  uint64_t seed = 47;
};

/// \brief Outcome of a tuning run.
struct TunerResult {
  QesConfig config;
  double validation_error = 0.0;  ///< mean Q-error on S_validate
  size_t trials = 0;              ///< trial fits performed
};

/// Tunes the QES merge-layer stack for the given training distribution.
/// `base` supplies everything but the QES geometry (tau/aux/head sizes and
/// aux width); `aux` may be null when base.aux_dim == 0.
Result<TunerResult> GreedyTuneQes(const Matrix& queries, const Matrix* aux,
                                  const std::vector<SampleRef>& samples,
                                  const CardModelConfig& base,
                                  const TunerOptions& options);

}  // namespace simcard

#endif  // SIMCARD_CORE_TUNER_H_
