#include "core/tuner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simcard {
namespace {

// Discrete search ranges ("the range of hyperparameters", Section 5.2).
const size_t kChannelRange[] = {4, 8, 16};
const size_t kKernelRange[] = {2, 3, 4};
const size_t kStrideRange[] = {1, 2};
const size_t kPadRange[] = {0, 1};
const size_t kPoolKernelRange[] = {1, 2, 3};
const nn::PoolOp kPoolOpRange[] = {nn::PoolOp::kMax, nn::PoolOp::kAvg,
                                   nn::PoolOp::kSum};

template <typename T, size_t N>
T PickRandom(const T (&range)[N], Rng* rng) {
  return range[rng->NextBounded(N)];
}

ConvLayerSpec RandomLayer(Rng* rng) {
  ConvLayerSpec spec;
  spec.channels = PickRandom(kChannelRange, rng);
  spec.kernel = PickRandom(kKernelRange, rng);
  spec.stride = PickRandom(kStrideRange, rng);
  spec.pad = PickRandom(kPadRange, rng);
  spec.pool_kernel = PickRandom(kPoolKernelRange, rng);
  spec.pool_op = PickRandom(kPoolOpRange, rng);
  return spec;
}

/// Runs one trial: short fit on the train subsample, mean Q-error on the
/// validation subsample.
class TrialRunner {
 public:
  TrialRunner(const Matrix& queries, const Matrix* aux,
              std::vector<SampleRef> train, std::vector<SampleRef> val,
              const CardModelConfig& base, const TunerOptions& options)
      : queries_(queries),
        aux_(aux),
        train_(std::move(train)),
        val_(std::move(val)),
        base_(base),
        options_(options) {}

  double Evaluate(const QesConfig& qes, uint64_t seed) {
    ++trials_;
    CardModelConfig config = base_;
    config.use_cnn_query_tower = true;
    config.qes = qes;
    Rng rng(seed);
    auto model_or = CardModel::Build(config, &rng);
    if (!model_or.ok()) return std::numeric_limits<double>::infinity();
    CardModel* model = model_or.value().get();

    CardTrainOptions train_opts;
    train_opts.epochs = options_.trial_epochs;
    train_opts.seed = seed + 1;
    auto loss_or = TrainCardModel(model, queries_, aux_, train_, train_opts);
    // A diverged trial is a failed configuration, not a failed tuner run.
    if (!loss_or.ok()) return std::numeric_limits<double>::infinity();

    // Geometric-mean Q-error: robust to the single-sample blowups that
    // dominate an arithmetic mean on a ~150-sample validation split.
    double log_total = 0.0;
    for (const SampleRef& s : val_) {
      const float* aux_row = aux_ != nullptr ? aux_->Row(s.query_row) : nullptr;
      const double est =
          model->EstimateCard(queries_.Row(s.query_row), s.tau, aux_row);
      log_total += std::log(QError(est, s.card));
    }
    const double val_error =
        val_.empty() ? 0.0
                     : std::exp(log_total / static_cast<double>(val_.size()));
    if (obs::MetricsEnabled()) {
      obs::GetCounter("tuner.trials")->Increment();
      obs::GetTimeSeries("tuner.val_qerror")
          ->Append(static_cast<double>(trials_), val_error);
    }
    return val_error;
  }

  size_t trials() const { return trials_; }
  bool BudgetExhausted() const { return trials_ >= options_.max_trials; }

 private:
  const Matrix& queries_;
  const Matrix* aux_;
  std::vector<SampleRef> train_;
  std::vector<SampleRef> val_;
  CardModelConfig base_;
  TunerOptions options_;
  size_t trials_ = 0;
};

}  // namespace

Result<TunerResult> GreedyTuneQes(const Matrix& queries, const Matrix* aux,
                                  const std::vector<SampleRef>& samples,
                                  const CardModelConfig& base,
                                  const TunerOptions& options) {
  if (samples.size() < 10) {
    return Status::InvalidArgument("GreedyTuneQes: too few samples to tune");
  }
  obs::TraceSpan tune_span("tuner.greedy_tune");
  Rng rng(options.seed);

  // Algorithm 3 lines 1-2: disjoint train/validate subsamples.
  std::vector<SampleRef> shuffled = samples;
  rng.Shuffle(&shuffled);
  const size_t n_train = std::min(options.train_subsample,
                                  shuffled.size() * 4 / 5);
  const size_t n_val =
      std::min(options.val_subsample, shuffled.size() - n_train);
  std::vector<SampleRef> s_train(shuffled.begin(), shuffled.begin() + n_train);
  std::vector<SampleRef> s_val(shuffled.begin() + n_train,
                               shuffled.begin() + n_train + n_val);
  TrialRunner runner(queries, aux, std::move(s_train), std::move(s_val), base,
                     options);

  // All trials share one weight-init/shuffle seed so configuration
  // comparisons are not dominated by initialization variance.
  const uint64_t trial_seed = rng.NextU64();

  // Cold start (lines 3-6): the caller's base configuration plus a few
  // random segment-layer widths without merge layers. Seeding the search
  // with the base config guarantees tuning never returns something worse
  // than the untuned default on the validation split.
  QesConfig best_config = base.qes;
  double best_error = runner.Evaluate(best_config, trial_seed);
  for (size_t c = 0; c < options.cold_start_configs; ++c) {
    QesConfig candidate = base.qes;
    candidate.merge_layers.clear();
    candidate.seg_channels = PickRandom(kChannelRange, &rng);
    const double err = runner.Evaluate(candidate, trial_seed);
    if (err < best_error) {
      best_error = err;
      best_config = candidate;
    }
  }

  // Outer loop (lines 7-13): keep appending tuned layers while the
  // validation error drops by at least improve_threshold.
  while (best_config.merge_layers.size() < options.max_layers &&
         !runner.BudgetExhausted()) {
    QesConfig grown = best_config;
    grown.merge_layers.push_back(RandomLayer(&rng));
    ConvLayerSpec& layer = grown.merge_layers.back();
    double grown_error = runner.Evaluate(grown, trial_seed);

    // Inner loop (lines 9-11): coordinate descent over the 6
    // hyperparameters of the new layer.
    bool improved = true;
    while (improved && !runner.BudgetExhausted()) {
      improved = false;
      auto try_update = [&](auto& field, const auto& range) {
        for (auto value : range) {
          if (value == field || runner.BudgetExhausted()) continue;
          auto saved = field;
          field = value;
          const double err = runner.Evaluate(grown, trial_seed);
          if (err < grown_error * (1.0 - options.improve_threshold)) {
            grown_error = err;
            improved = true;
          } else {
            field = saved;
          }
        }
      };
      try_update(layer.channels, kChannelRange);
      try_update(layer.kernel, kKernelRange);
      try_update(layer.stride, kStrideRange);
      try_update(layer.pad, kPadRange);
      try_update(layer.pool_kernel, kPoolKernelRange);
      try_update(layer.pool_op, kPoolOpRange);
    }

    if (grown_error < best_error * (1.0 - options.improve_threshold)) {
      best_error = grown_error;
      best_config = grown;
    } else {
      break;  // appending this layer did not help enough
    }
  }

  SIMCARD_LOG(DEBUG) << "tuner: " << best_config.ToString() << " val-qerr="
                     << best_error << " trials=" << runner.trials();
  TunerResult result;
  result.config = best_config;
  result.validation_error = best_error;
  result.trials = runner.trials();
  return result;
}

}  // namespace simcard
