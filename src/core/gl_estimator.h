// The global-local estimator family (Sections 3.3 & 5, Table 2 rows 2-5).
//
//   Local+  — data segmentation, no global model (every local model is
//             evaluated), auto-tuned CNN query towers;
//   GL-MLP  — global-local, MLP query towers (no query segmentation);
//   GL-CNN  — global-local, QES CNN query towers, fixed hyperparameters;
//   GL+     — GL-CNN plus Algorithm 3's greedy hyperparameter tuning.
//
// One class covers all four via GlEstimatorConfig presets. The estimator
// owns a mutable copy of the segmentation so incremental updates (Section
// 5.3) can reroute points and fine-tune models without touching the
// caller's segmentation.
#ifndef SIMCARD_CORE_GL_ESTIMATOR_H_
#define SIMCARD_CORE_GL_ESTIMATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/global_model.h"
#include "core/local_model.h"
#include "core/segment_fallback.h"
#include "core/tuner.h"

namespace simcard {

class CheckedFileWriter;

/// \brief Configuration selecting a member of the GL family.
struct GlEstimatorConfig {
  std::string name = "GL+";
  bool use_cnn_query_tower = true;  ///< false -> GL-MLP
  bool use_global_model = true;     ///< false -> Local+
  /// Query-tower type of the *global* model; follows the local towers by
  /// default (Table 2's Embed column). The global model always uses the
  /// DEFAULT QES geometry rather than Algorithm 3's tuned one: the tuner
  /// optimizes per-segment regression error, which is the wrong objective
  /// for the routing task.
  bool global_use_cnn_query_tower = true;
  bool auto_tune = false;           ///< true  -> GL+ (and Local+)
  bool use_penalty = true;          ///< Exp-6 ablation switch
  float sigma = 0.5f;               ///< global selection threshold
  /// Triangle-inequality routing guards (Section 5.1 motivates the bound
  /// "distance upper bound between a query and a data object in a data
  /// segment ... using triangle inequality on the distance of the query to
  /// the centroid, and this segment's radius"):
  ///   - exclude a selected segment when xc[s] > tau + radius[s] (it
  ///     provably contains no match — removes false-positive inclusions);
  ///   - force-include a segment when xc[s] <= tau (its centroid itself is
  ///     within the threshold — backstops global-model misses).
  bool use_triangle_guards = true;

  /// When true (default, as in the paper) Algorithm 3 runs per segment;
  /// when false it runs once on the densest segment and the tuned geometry
  /// is shared by all local models — a cheaper variant used at tiny scale.
  bool tune_per_segment = true;

  QesConfig qes;            ///< base CNN geometry (before tuning)
  size_t mlp_hidden = 64;   ///< MLP tower width (GL-MLP)
  size_t query_embed = 32;
  size_t tau_hidden = 16;
  size_t tau_embed = 8;
  size_t aux_hidden = 24;
  size_t head_hidden = 48;

  double zero_keep_prob = 0.15;  ///< zero-card sample retention per segment
  CardTrainOptions local_train;
  GlobalTrainOptions global_train;
  TunerOptions tuner;

  /// Preset factories matching the paper's method names.
  static GlEstimatorConfig LocalPlus();
  static GlEstimatorConfig GlMlp();
  static GlEstimatorConfig GlCnn();
  static GlEstimatorConfig GlPlus();
};

/// \brief One segment's contribution to an estimate, with provenance.
///
/// Returned by EstimatePerSegment for the evaluated (selected) segments
/// only. `used_fallback` is true when the answer came from the retained
/// sampling fallback (quarantined model, policy override, or a non-finite
/// local result); `forced` is true when the segment entered the selection
/// through the triangle-inequality force-include rather than the global
/// model's routing.
struct SegmentEstimate {
  size_t segment = 0;
  double estimate = 0.0;
  bool used_fallback = false;
  bool forced = false;
};

/// \brief Global-local cardinality estimator.
///
/// Inference (Estimate / EstimateSearchBatch / EstimatePerSegment /
/// FallbackEstimate) is const and runs on the stateless nn Apply path, so
/// any number of threads may share one trained instance; see src/serve/ for
/// the serving layer built on that guarantee. Train / ApplyUpdates /
/// ApplyDeletions / LoadFromFile mutate the estimator and must be
/// externally serialized against concurrent readers (the serve layer clones
/// via SaveToBytes / LoadFromBytes and swaps whole snapshots instead).
class GlEstimator : public Estimator {
 public:
  explicit GlEstimator(GlEstimatorConfig config)
      : config_(std::move(config)) {}

  std::string Name() const override { return config_.name; }
  Status Train(const TrainContext& ctx) override;
  double Estimate(const EstimateRequest& request) override;
  std::vector<double> EstimateBatch(
      const BatchEstimateRequest& request) override;
  size_t ModelSizeBytes() const override;

  /// Const inference entry point: identical to the Estimator override.
  double Estimate(const EstimateRequest& request) const;

  /// \brief Batch-of-queries inference: one centroid-feature build and one
  /// global forward for the whole batch, then one local forward per
  /// *segment* covering every query routed to it, instead of one forward
  /// per (query, segment).
  ///
  /// Row i of `queries` pairs with `taus[i]`. Per-query routing decisions
  /// (global-model thresholding, triangle guards, validation failures) are
  /// identical to the single-query path, and in the default (non-SIMD)
  /// build each returned estimate is bitwise equal to
  /// Estimate(EstimateRequest{queries.Row(i), taus[i]}) — see DESIGN.md §11
  /// and tests/core/batch_parity_test.cc. A stateful `policy` is the one
  /// exception: its hooks fire in segment-major order here versus
  /// query-major order in the single path, so order-sensitive policies
  /// (e.g. a tripping circuit breaker) may diverge across the two.
  ///
  /// `probes`, when non-empty, is indexed by ORIGINAL row (probes[i] pairs
  /// with queries.Row(i)); null entries and short spans are fine. Each
  /// row's probe receives the same per-segment provenance (and trace
  /// events) the single-query path would produce for that row.
  std::vector<double> EstimateSearchBatch(
      const Matrix& queries, std::span<const float> taus,
      SegmentEvalPolicy* policy = nullptr,
      std::span<EstimateProbe* const> probes = {}) const;

  /// Deprecated: build an EstimateRequest and call Estimate instead.
  double EstimateSearch(const float* query, float tau,
                        SegmentEvalPolicy* policy = nullptr) const {
    EstimateRequest request{
        std::span<const float>(query, static_cast<size_t>(0)), tau, {}};
    request.options.policy = policy;
    return Estimate(request);
  }

  /// Per-segment estimates for the selected segments only; used by tests
  /// and the join estimator. `probe`, when non-null, collects per-segment
  /// provenance (and publishes trace events when its TraceContext is set).
  std::vector<SegmentEstimate> EstimatePerSegment(
      const float* query, float tau, SegmentEvalPolicy* policy = nullptr,
      EstimateProbe* probe = nullptr) const;

  /// Fraction of the true cardinality that falls in segments the global
  /// model did NOT select, averaged over all test samples with nonzero
  /// cardinality (the Figure 9 "missing rate"). Requires per-segment labels
  /// in the workload.
  double MissingRate(const SearchWorkload& workload) const;

  /// Average number of local models evaluated per test sample.
  double MeanSelectedSegments(const SearchWorkload& workload) const;

  /// \brief Incremental update (Section 5.3).
  ///
  /// `new_rows` index rows already appended to `dataset`. Each is routed to
  /// its nearest segment (updating this estimator's own segmentation copy),
  /// then `workload` is relabeled against the grown dataset and the
  /// affected local models plus the global model are fine-tuned for
  /// `fine_tune_epochs`.
  Status ApplyUpdates(const Dataset& dataset, SearchWorkload* workload,
                      const std::vector<uint32_t>& new_rows, uint64_t seed,
                      size_t fine_tune_epochs = 3);

  /// \name Incremental-refresh building blocks (Section 5.3)
  ///
  /// ApplyUpdates / ApplyDeletions are single-shot conveniences composed
  /// from these pieces; update::UpdateManager drives them individually
  /// against a cloned snapshot (route/erase -> rebuild fallbacks -> relabel
  /// -> fine-tune only the stale segments -> publish). All of them mutate
  /// the estimator and must be serialized against concurrent readers.
  ///@{

  /// Routes rows already appended to `dataset` to their nearest segment
  /// centroids (updating the owned segmentation's running means/radii and
  /// the routed segments' population clamps). Appends the touched segment
  /// ids, ascending and unique, to `touched`.
  Status RouteInserts(const Dataset& dataset,
                      const std::vector<uint32_t>& new_rows,
                      std::vector<size_t>* touched);

  /// Drops `rows` (ascending, unique; already compacted out of `dataset`)
  /// from the owned segmentation, updating clamps, and — unlike the
  /// trailing-deletion path, which leaves summaries for the fine-tune to
  /// absorb — recomputes the touched segments' centroids and radii when
  /// `recompute_summaries` is set, so routing quality survives large
  /// deletes. Appends touched segment ids, ascending and unique.
  Status EraseRows(const Dataset& dataset, const std::vector<uint32_t>& rows,
                   std::vector<size_t>* touched,
                   bool recompute_summaries = true);

  /// Re-samples the retained SegmentFallback members and refreshes the
  /// population clamp |D^[i]| for the given segments — required after any
  /// membership change, or the degradation path answers from vectors that
  /// may no longer exist in the dataset.
  void RebuildFallbacks(const Dataset& dataset,
                        const std::vector<size_t>& segments, uint64_t seed);

  /// Fine-tunes the given segments' local models for `epochs` on the
  /// (already relabeled) workload. Quarantined slots are skipped.
  Status FineTuneSegments(const SearchWorkload& workload,
                          const std::vector<size_t>& segments, uint64_t seed,
                          size_t epochs);

  /// Short global-model fine-tune on relabeled (x_q, x_tau, x_C) examples;
  /// a no-op Status::OK for Local+ (no global model).
  Status FineTuneGlobal(const SearchWorkload& workload, uint64_t seed,
                        size_t epochs);
  ///@}

  /// \brief Incremental deletion (Section 5.3): the caller has already
  /// Truncate()d the trailing `num_removed` rows off `dataset`; the removed
  /// points are dropped from their segments, labels are refreshed, and the
  /// touched local models plus the global model are fine-tuned.
  Status ApplyDeletions(const Dataset& dataset, SearchWorkload* workload,
                        size_t num_removed, uint64_t seed,
                        size_t fine_tune_epochs = 3);

  /// \brief Persists the trained estimator (segmentation + every model,
  /// self-describing) so inference can resume in a fresh process.
  ///
  /// The query-tower geometry — including per-segment tuned configs — is
  /// embedded in the file; LoadFromFile needs only a GlEstimatorConfig for
  /// the behavioral knobs (sigma, zero_keep_prob, training options for
  /// later fine-tunes).
  ///
  /// Files are written in the checked v2 container format (see
  /// common/checked_file.h): versioned header plus a CRC-32 per section, so
  /// truncation and bit flips are detected instead of deserialized. Legacy
  /// v1 ("simcard.gl.v1") files are still read.
  Status SaveToFile(const std::string& path) const;

  /// How LoadFromFile treats a file whose structural sections (header,
  /// meta, segmentation, qes) are intact but whose model sections fail
  /// their checksum.
  enum class LoadMode {
    kStrict,    ///< any corrupt section fails the load (default)
    kDegraded,  ///< corrupt local models are quarantined (inference uses
                ///< the per-segment sampling fallback); a corrupt global
                ///< model degrades to evaluating every segment
  };

  Status LoadFromFile(const std::string& path,
                      LoadMode mode = LoadMode::kStrict);

  /// The checked v2 container as bytes — SaveToFile without the filesystem.
  /// With LoadFromBytes this clones a trained estimator in memory, which is
  /// how the serve layer builds a mutable snapshot off to the side while
  /// readers keep using the published one.
  std::vector<uint8_t> SaveToBytes() const;

  /// Restores an estimator from SaveToBytes output (checked v2 only).
  Status LoadFromBytes(std::vector<uint8_t> bytes,
                       LoadMode mode = LoadMode::kStrict);

  const Segmentation& segmentation() const { return segmentation_; }
  GlobalModel* global_model() { return global_.get(); }
  const GlobalModel* global_model() const { return global_.get(); }
  size_t num_local_models() const { return locals_.size(); }
  LocalModel* local_model(size_t i) { return locals_[i].get(); }
  const LocalModel* local_model(size_t i) const { return locals_[i].get(); }
  /// The retained sampling fallback for segment `i` (parallel to locals).
  const SegmentFallback& segment_fallback(size_t i) const {
    return fallbacks_[i];
  }
  size_t dim() const { return dim_; }
  Metric metric() const { return metric_; }
  const GlEstimatorConfig& config() const { return config_; }
  const QesConfig& tuned_qes() const { return tuned_qes_; }

  /// Number of local models quarantined by the last degraded load.
  size_t num_quarantined_locals() const;

 private:
  CardModelConfig LocalConfig() const;
  /// Reusable buffers for SelectWithGuards: the batch path routes many rows
  /// back to back, so the per-segment guard masks live in caller scratch
  /// instead of being reallocated per row.
  struct SelectScratch {
    std::vector<char> keep;
    std::vector<char> forced;
  };
  /// Routing shared by the single-query and batch paths: thresholds the
  /// global probabilities (`probs` holds one value per segment), applies
  /// the triangle guards, and fills the evaluated segment set (ascending)
  /// with a parallel forced-include flag (`forced_out` may be null when the
  /// caller does not need the flags). Keeping one implementation is what
  /// guarantees identical per-query pruning decisions across the two paths.
  void SelectWithGuards(const float* probs, const float* xc, float tau,
                        SelectScratch* scratch,
                        std::vector<size_t>* selected_out,
                        std::vector<char>* forced_out) const;
  Status LoadLegacyV1(Deserializer* in, const std::string& path);
  Status LoadChecked(std::vector<uint8_t> bytes, LoadMode mode);
  /// Fine-tunes `segments` (ascending) with per-segment seed
  /// `base_seed + mul*s + add` — the one implementation behind
  /// ApplyUpdates (13s+7), ApplyDeletions (41s+3), and FineTuneSegments,
  /// so each path keeps its historical RNG stream bitwise.
  Status FineTuneLocalsSeeded(const SearchWorkload& workload, const Matrix& xc,
                              const std::vector<size_t>& segments,
                              uint64_t base_seed, uint64_t mul, uint64_t add,
                              size_t epochs);
  /// Global fine-tune against precomputed centroid features.
  Status FineTuneGlobalWithFeatures(const SearchWorkload& workload,
                                    const Matrix& xc, uint64_t seed,
                                    size_t epochs);
  /// Writes every section of the checked v2 container into `writer`.
  Status WriteCheckedSections(CheckedFileWriter* writer) const;
  /// Sampling-fallback estimate for segment `s` (0 when no samples).
  double FallbackEstimate(size_t s, const float* query, float tau) const;

  GlEstimatorConfig config_;
  Segmentation segmentation_;  // owned mutable copy
  Metric metric_ = Metric::kL2;
  size_t dim_ = 0;
  QesConfig tuned_qes_;
  // A slot is null when a degraded load quarantined that segment's model;
  // inference then answers from fallbacks_[s].
  std::vector<std::unique_ptr<LocalModel>> locals_;
  std::vector<SegmentFallback> fallbacks_;  // parallel to locals_
  std::unique_ptr<GlobalModel> global_;  // null for Local+
};

}  // namespace simcard

#endif  // SIMCARD_CORE_GL_ESTIMATOR_H_
