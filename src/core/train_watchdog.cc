#include "core/train_watchdog.h"

#include <cmath>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/training_observer.h"

namespace simcard {

DivergenceWatchdog::DivergenceWatchdog(const WatchdogOptions& options,
                                       std::vector<nn::Parameter*> params,
                                       std::string tag)
    : options_(options),
      params_(std::move(params)),
      tag_(std::move(tag)) {
  if (options_.enabled) {
    checkpoint_ = nn::SnapshotParameters(params_);
  }
}

bool DivergenceWatchdog::IsDivergent(double loss) const {
  if (!std::isfinite(loss)) return true;
  // The +1 floor keeps near-zero best losses from flagging ordinary noise.
  return has_best_ && loss > options_.explode_factor * (best_loss_ + 1.0);
}

DivergenceWatchdog::Verdict DivergenceWatchdog::Observe(size_t epoch,
                                                        double loss,
                                                        float* lr) {
  if (!options_.enabled) return Verdict::kOk;
  if (!IsDivergent(loss)) {
    if (!has_best_ || loss < best_loss_) {
      best_loss_ = loss;
      has_best_ = true;
    }
    checkpoint_ = nn::SnapshotParameters(params_);
    return Verdict::kOk;
  }
  last_bad_loss_ = loss;
  last_bad_epoch_ = epoch;
  nn::RestoreParameters(checkpoint_, params_);
  if (retries_ >= options_.max_retries) {
    if (obs::MetricsEnabled()) {
      obs::GetCounter("simcard.watchdog.retries_exhausted")->Increment();
    }
    return Verdict::kExhausted;
  }
  ++retries_;
  *lr *= 0.5f;
  SIMCARD_LOG(WARN) << "watchdog[" << tag_ << "]: epoch " << epoch
                    << " loss " << loss << " diverged; rolled back, retry "
                    << retries_ << "/" << options_.max_retries
                    << " at lr " << *lr;
  obs::NotifyDivergence(tag_, epoch, loss, retries_, *lr);
  return Verdict::kRolledBack;
}

Status DivergenceWatchdog::ExhaustedStatus() const {
  return Status::Internal(
      "training diverged (tag '" + tag_ + "'): epoch " +
      std::to_string(last_bad_epoch_) + " loss " +
      std::to_string(last_bad_loss_) + " after " +
      std::to_string(retries_) +
      " rollback retries with halved learning rates; model restored to last "
      "good checkpoint");
}

}  // namespace simcard
