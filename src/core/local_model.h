// Local regression model for one data segment (Section 3.3, Figure 5).
//
// Under the global-local framework each segment D^[i] gets its own small
// CardModel whose aux input is x_C — the query's distances to *all* segment
// centroids — rather than the basic model's sample-distance vector x_D (the
// paper removes x_D here because "the distance distribution in each data
// segment can be easily learned by the other layers faster").
#ifndef SIMCARD_CORE_LOCAL_MODEL_H_
#define SIMCARD_CORE_LOCAL_MODEL_H_

#include <algorithm>
#include <memory>

#include "core/card_model.h"

namespace simcard {

/// \brief One segment's estimator: card^[i](q, tau).
class LocalModel {
 public:
  /// Builds the underlying CardModel. `config.aux_dim` must equal the
  /// number of segments (x_C width).
  static Result<std::unique_ptr<LocalModel>> Build(size_t segment_index,
                                                   const CardModelConfig& config,
                                                   Rng* rng);

  /// Trains on this segment's flattened samples. Zero-cardinality samples
  /// are subsampled at `zero_keep_prob` so the model still learns to emit
  /// ~0 for mis-routed queries without being swamped by zeros. Returns the
  /// final epoch loss; fails when the divergence watchdog gives up (the
  /// model is left untrained so Estimate degrades to 0 instead of noise).
  Result<double> Train(const Matrix& queries, const Matrix& xc_features,
                       const std::vector<LabeledQuery>& labeled,
                       double zero_keep_prob,
                       const CardTrainOptions& options);

  /// Additional gradient steps on fresh samples (incremental updates,
  /// Section 5.3).
  Result<double> FineTune(const Matrix& queries, const Matrix& xc_features,
                          const std::vector<LabeledQuery>& labeled,
                          double zero_keep_prob, CardTrainOptions options,
                          size_t epochs);

  /// Estimated cardinality of (q, tau) on this segment, clamped to the
  /// segment's population (a segment cannot contain more matches than
  /// members — this bound also caps out-of-distribution blow-ups). A model
  /// that never saw a training sample answers 0: no training query matched
  /// its segment, and an untrained network would emit noise.
  double Estimate(const float* query, float tau, const float* xc_row) const {
    if (!trained_) return 0.0;
    const double est = model_->EstimateCard(query, tau, xc_row);
    return max_card_ > 0.0 ? std::min(est, max_card_) : est;
  }

  /// Batch twin of Estimate: row i answers Estimate(xq.Row(i), xtau.at(i,0),
  /// xc.Row(i)) bitwise — same untrained-zero and population-clamp
  /// semantics, one CardModel forward for all rows.
  std::vector<double> EstimateBatch(const Matrix& xq, const Matrix& xtau,
                                    const Matrix& xc) const {
    if (!trained_) return std::vector<double>(xq.rows(), 0.0);
    std::vector<double> out = model_->ApplyBatch(xq, xtau, xc);
    if (max_card_ > 0.0) {
      for (double& est : out) est = std::min(est, max_card_);
    }
    return out;
  }

  /// Sets the clamp to the segment's member count.
  void set_max_card(double max_card) { max_card_ = max_card; }

  size_t segment_index() const { return segment_index_; }
  CardModel* model() { return model_.get(); }
  const CardModel* model() const { return model_.get(); }
  size_t NumScalars() const { return model_->NumScalars(); }

  /// Self-describing persistence (segment metadata + model config + weights).
  void Save(Serializer* out) const;
  static Result<std::unique_ptr<LocalModel>> Load(Deserializer* in);

 private:
  LocalModel() = default;

  size_t segment_index_ = 0;
  double max_card_ = 0.0;
  bool trained_ = false;
  std::unique_ptr<CardModel> model_;
};

}  // namespace simcard

#endif  // SIMCARD_CORE_LOCAL_MODEL_H_
