// Query-embedding segmentation (QES) tower builder — the paper's E1 as a
// CNN (Section 3.2, Figures 3/4/7).
//
// The first convolution has kernel == stride == segment width, so one shared
// filter bank maps every query segment to a channel vector (the learned
// per-segment distance-density function f()); the following convolutions and
// poolings merge neighboring segment distributions (the learned combine
// function g()); a final linear layer produces the query embedding z_q.
//
// Every geometry knob here is a tunable hyperparameter of Section 5.2
// (theta_ch, theta_ker, theta_stri, theta_pad, theta_pker, theta_op) and is
// what Algorithm 3's greedy tuner searches over.
#ifndef SIMCARD_CORE_QES_H_
#define SIMCARD_CORE_QES_H_

#include <memory>
#include <string>

#include "nn/pool1d.h"
#include "nn/sequential.h"

namespace simcard {

/// \brief Hyperparameters of one merge layer (conv + optional pooling).
struct ConvLayerSpec {
  size_t channels = 8;     ///< theta_ch
  size_t kernel = 2;       ///< theta_ker
  size_t stride = 1;       ///< theta_stri
  size_t pad = 0;          ///< theta_pad
  size_t pool_kernel = 1;  ///< theta_pker; 1 disables pooling
  nn::PoolOp pool_op = nn::PoolOp::kAvg;  ///< theta_op

  std::string ToString() const;
};

/// \brief Full configuration of the QES query tower.
struct QesConfig {
  size_t num_segments = 8;   ///< query segments (first-layer windows)
  size_t seg_channels = 8;   ///< first-layer filter count
  std::vector<ConvLayerSpec> merge_layers;
  size_t embed_dim = 32;     ///< z_q width

  /// Reasonable default: two merge layers with average pooling.
  static QesConfig Default(size_t query_dim);

  std::string ToString() const;

  void Serialize(Serializer* out) const;
  Status Deserialize(Deserializer* in);
};

/// Builds the tower. Infeasible merge layers (kernel exceeding the remaining
/// signal) are skipped rather than failing, so the greedy tuner can probe
/// aggressive geometries safely; at least the segment layer and the final
/// projection always exist. Returns the tower; `*embed_dim` gets z_q's width.
Result<std::unique_ptr<nn::Sequential>> BuildQesTower(size_t query_dim,
                                                      const QesConfig& config,
                                                      Rng* rng,
                                                      size_t* embed_dim);

}  // namespace simcard

#endif  // SIMCARD_CORE_QES_H_
