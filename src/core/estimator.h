// Common interface implemented by every cardinality estimator (the paper's
// methods 1-13 in Table 2 plus the non-learned baselines).
#ifndef SIMCARD_CORE_ESTIMATOR_H_
#define SIMCARD_CORE_ESTIMATOR_H_

#include <string>
#include <vector>

#include "cluster/segmentation.h"
#include "data/dataset.h"
#include "workload/queries.h"

namespace simcard {

/// \brief Everything an estimator may use during training.
///
/// All pointers are borrowed and must outlive the estimator. `segmentation`
/// is null for methods that do not segment data.
struct TrainContext {
  const Dataset* dataset = nullptr;
  const SearchWorkload* workload = nullptr;
  const Segmentation* segmentation = nullptr;
  uint64_t seed = 51;
};

/// \brief A similarity-query cardinality estimator.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Display name matching the paper's Table 2 labels, e.g. "GL+".
  virtual std::string Name() const = 0;

  /// Fits the estimator. Must be called before any Estimate*.
  virtual Status Train(const TrainContext& ctx) = 0;

  /// Estimated card(q, tau, D). Non-const because implementations reuse
  /// internal forward-pass buffers.
  virtual double EstimateSearch(const float* query, float tau) = 0;

  /// Estimated card(Q, tau, D) for the multiset of rows of `queries`
  /// selected by `rows`. The default sums per-query search estimates; join
  /// models override with batch (sum-pooled) evaluation.
  virtual double EstimateJoin(const Matrix& queries,
                              const std::vector<uint32_t>& rows, float tau);

  /// Serialized model size in bytes (Table 5). For sampling baselines this
  /// is the retained sample; for learned models, float32 weights.
  virtual size_t ModelSizeBytes() const = 0;

  /// Wall-clock seconds of the last Train call (Figure 14).
  double training_seconds() const { return training_seconds_; }

 protected:
  void set_training_seconds(double s) { training_seconds_ = s; }

 private:
  double training_seconds_ = 0.0;
};

/// \brief Finds the smallest threshold in [lo, hi] whose estimated
/// cardinality reaches `target`, by binary search on tau.
///
/// Sound because simcard estimators are monotone non-decreasing in tau (the
/// paper's third desired property, Section 2) — this is the classic
/// downstream use of that property: "return roughly K similar objects"
/// without knowing the right radius up front. If even `hi` falls short of
/// `target`, returns `hi`.
float InvertCardinality(Estimator* estimator, const float* query,
                        double target, float lo, float hi,
                        int iterations = 32);

}  // namespace simcard

#endif  // SIMCARD_CORE_ESTIMATOR_H_
