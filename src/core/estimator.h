// Common interface implemented by every cardinality estimator (the paper's
// methods 1-13 in Table 2 plus the non-learned baselines).
//
// Since PR 4 the estimation surface is request-based: callers build an
// EstimateRequest (or a BatchEstimateRequest for batch-of-queries
// inference) and pass it to Estimate / EstimateBatch. The old
// `EstimateSearch(const float*, float)` overloads survive as thin
// deprecated shims so out-of-tree callers keep compiling; in-tree code must
// use the request types (enforced by scripts/check_api_deprecations.sh).
#ifndef SIMCARD_CORE_ESTIMATOR_H_
#define SIMCARD_CORE_ESTIMATOR_H_

#include <span>
#include <string>
#include <vector>

#include "cluster/segmentation.h"
#include "data/dataset.h"
#include "workload/queries.h"

namespace simcard {

namespace obs {
class TraceContext;  // obs/request_trace.h; core stays decoupled from obs
}  // namespace obs

/// \brief Everything an estimator may use during training.
///
/// All pointers are borrowed and must outlive the estimator. `segmentation`
/// is null for methods that do not segment data.
struct TrainContext {
  const Dataset* dataset = nullptr;
  const SearchWorkload* workload = nullptr;
  const Segmentation* segmentation = nullptr;
  uint64_t seed = 51;
};

/// \brief Per-segment evaluation hook for serving layers.
///
/// Segmented estimators (the GL family) consult the policy before
/// evaluating a segment's local model and report each outcome afterwards,
/// which lets a caller (e.g. the serve layer's circuit breaker) route
/// persistently-failing segments to the sampling fallback without the
/// estimator itself holding mutable per-request state — the estimator stays
/// const and shareable. Implementations own their thread-safety; the
/// estimator only calls the hooks from the thread running the estimate.
class SegmentEvalPolicy {
 public:
  virtual ~SegmentEvalPolicy() = default;

  /// Return true to skip segment `s`'s local model and answer from the
  /// retained sampling fallback instead.
  virtual bool ForceFallback(size_t s) = 0;

  /// Called after each local-model evaluation; `ok` is false when the model
  /// produced a non-finite or negative estimate (which the estimator then
  /// replaces with the fallback answer).
  virtual void OnLocalResult(size_t s, bool ok) = 0;
};

/// \brief Per-request evaluation probe filled in by segmented estimators.
///
/// Fixed-size and allocation-free so the serving layer can hang one off
/// every request without touching the heap. Collects which segments
/// contributed to the estimate (capped at kMaxSegments; `evaluated` keeps
/// the true count) and, when `trace` is set, lets the estimator publish
/// per-segment trace events parented under `trace_parent`.
struct EstimateProbe {
  static constexpr size_t kMaxSegments = 16;

  obs::TraceContext* trace = nullptr;  ///< optional; borrowed
  uint32_t trace_parent = 0;  ///< span id per-segment events hang under

  uint32_t segments[kMaxSegments] = {};  ///< first `stored` evaluated ids
  uint16_t stored = 0;
  uint16_t evaluated = 0;          ///< total segments evaluated (uncapped)
  uint16_t fallback_segments = 0;  ///< answered by the sampling fallback
  uint16_t forced_segments = 0;    ///< triangle-guard force-includes

  void NoteSegment(uint32_t s, bool used_fallback) {
    ++evaluated;
    if (used_fallback) ++fallback_segments;
    if (stored < kMaxSegments) segments[stored++] = s;
  }
  void NoteForced() { ++forced_segments; }
};

/// \brief Knobs that ride along with a request.
///
/// `policy` is honored by segmented estimators and ignored by flat ones;
/// `deadline_ms` is consumed by the serving layer (direct calls ignore it —
/// an estimator never preempts itself); `probe`, when non-null, is filled
/// with per-segment provenance by segmented estimators and left untouched
/// by flat ones.
struct EstimateOptions {
  SegmentEvalPolicy* policy = nullptr;
  double deadline_ms = 0.0;  ///< 0 = use the server's default deadline
  EstimateProbe* probe = nullptr;
};

/// \brief One search-cardinality question: card(query, tau, D).
///
/// `query` must hold the estimator's dim() floats. An empty span with a
/// non-null data() pointer is the legacy-shim encoding ("length unknown,
/// trust the pointer for dim() floats"); implementations validate the size
/// only when it is nonzero.
struct EstimateRequest {
  std::span<const float> query;
  float tau = 0.0f;
  EstimateOptions options;
};

/// \brief A batch of search-cardinality questions sharing one options set.
///
/// Row i of `*queries` pairs with `taus[i]`; `taus.size()` must equal
/// `queries->rows()`. The matrix is borrowed for the duration of the call.
struct BatchEstimateRequest {
  const Matrix* queries = nullptr;
  std::span<const float> taus;
  EstimateOptions options;
};

/// \brief A similarity-query cardinality estimator.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Display name matching the paper's Table 2 labels, e.g. "GL+".
  virtual std::string Name() const = 0;

  /// Fits the estimator. Must be called before any Estimate*.
  virtual Status Train(const TrainContext& ctx) = 0;

  /// Estimated card(q, tau, D). Non-const because implementations reuse
  /// internal forward-pass buffers.
  virtual double Estimate(const EstimateRequest& request) = 0;

  /// Estimated card(q_i, tau_i, D) for every row of the batch. The default
  /// loops Estimate per row; batch-native estimators (GlEstimator) override
  /// with one forward pass per segment and guarantee bitwise-identical
  /// per-row answers in the default (non-SIMD) build.
  virtual std::vector<double> EstimateBatch(
      const BatchEstimateRequest& request);

  /// Estimated card(Q, tau, D) for the multiset of rows of `queries`
  /// selected by `rows`. The default sums per-query search estimates; join
  /// models override with batch (sum-pooled) evaluation.
  virtual double EstimateJoin(const Matrix& queries,
                              const std::vector<uint32_t>& rows, float tau);

  /// Serialized model size in bytes (Table 5). For sampling baselines this
  /// is the retained sample; for learned models, float32 weights.
  virtual size_t ModelSizeBytes() const = 0;

  /// Deprecated: build an EstimateRequest and call Estimate instead. Kept
  /// as a non-virtual shim for out-of-tree callers; the span it forwards is
  /// empty (length unknown), so implementations trust the pointer for
  /// dim() floats exactly as the old signature did.
  double EstimateSearch(const float* query, float tau) {
    return Estimate(EstimateRequest{
        std::span<const float>(query, static_cast<size_t>(0)), tau, {}});
  }

  /// Wall-clock seconds of the last Train call (Figure 14).
  double training_seconds() const { return training_seconds_; }

 protected:
  void set_training_seconds(double s) { training_seconds_ = s; }

 private:
  double training_seconds_ = 0.0;
};

/// \brief Finds the smallest threshold in [lo, hi] whose estimated
/// cardinality reaches `target`, by binary search on tau.
///
/// Sound because simcard estimators are monotone non-decreasing in tau (the
/// paper's third desired property, Section 2) — this is the classic
/// downstream use of that property: "return roughly K similar objects"
/// without knowing the right radius up front. If even `hi` falls short of
/// `target`, returns `hi`.
float InvertCardinality(Estimator* estimator, const float* query,
                        double target, float lo, float hi,
                        int iterations = 32);

}  // namespace simcard

#endif  // SIMCARD_CORE_ESTIMATOR_H_
