#include "core/local_model.h"

namespace simcard {

Result<std::unique_ptr<LocalModel>> LocalModel::Build(
    size_t segment_index, const CardModelConfig& config, Rng* rng) {
  auto model_or = CardModel::Build(config, rng);
  if (!model_or.ok()) return model_or.status();
  auto local = std::unique_ptr<LocalModel>(new LocalModel());
  local->segment_index_ = segment_index;
  local->model_ = std::move(model_or.value());
  return local;
}

void LocalModel::Save(Serializer* out) const {
  out->WriteU64(segment_index_);
  out->WriteF64(max_card_);
  out->WriteU32(trained_ ? 1 : 0);
  model_->SaveWithConfig(out);
}

Result<std::unique_ptr<LocalModel>> LocalModel::Load(Deserializer* in) {
  auto local = std::unique_ptr<LocalModel>(new LocalModel());
  uint64_t seg = 0;
  uint32_t trained = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&seg));
  SIMCARD_RETURN_IF_ERROR(in->ReadF64(&local->max_card_));
  SIMCARD_RETURN_IF_ERROR(in->ReadU32(&trained));
  local->segment_index_ = seg;
  local->trained_ = trained != 0;
  auto model_or = CardModel::LoadWithConfig(in);
  if (!model_or.ok()) return model_or.status();
  local->model_ = std::move(model_or.value());
  return local;
}

Result<double> LocalModel::Train(const Matrix& queries,
                                 const Matrix& xc_features,
                                 const std::vector<LabeledQuery>& labeled,
                                 double zero_keep_prob,
                                 const CardTrainOptions& options) {
  Rng rng(options.seed + segment_index_);
  auto samples =
      FlattenSegment(labeled, segment_index_, zero_keep_prob, &rng);
  if (samples.empty()) {
    // Segment never matched any training query; Estimate() answers 0 until
    // an update brings real samples.
    trained_ = false;
    return 0.0;
  }
  trained_ = true;
  CardTrainOptions opts = options;
  opts.seed = options.seed + 1000 + segment_index_;
  if (opts.observer_tag.empty()) {
    opts.observer_tag = "local." + std::to_string(segment_index_);
  }
  auto loss_or = TrainCardModel(model_.get(), queries, &xc_features,
                                std::move(samples), opts);
  if (!loss_or.ok()) trained_ = false;  // degrade to 0, don't serve noise
  return loss_or;
}

Result<double> LocalModel::FineTune(const Matrix& queries,
                                    const Matrix& xc_features,
                                    const std::vector<LabeledQuery>& labeled,
                                    double zero_keep_prob,
                                    CardTrainOptions options, size_t epochs) {
  Rng rng(options.seed + 7777 + segment_index_);
  auto samples =
      FlattenSegment(labeled, segment_index_, zero_keep_prob, &rng);
  if (samples.empty()) return 0.0;
  if (options.observer_tag.empty()) {
    options.observer_tag = "local." + std::to_string(segment_index_) + ".ft";
  }
  if (!trained_) {
    // First real samples for this segment: do a normal (anchored) fit.
    options.epochs = std::max(options.epochs, epochs);
    options.seed += 9000 + segment_index_;
    auto loss_or = TrainCardModel(model_.get(), queries, &xc_features,
                                  std::move(samples), options);
    trained_ = loss_or.ok();
    return loss_or;
  }
  options.epochs = epochs;
  options.seed += 9000 + segment_index_;
  options.reset_output_bias = false;  // keep the learned anchor
  return TrainCardModel(model_.get(), queries, &xc_features,
                        std::move(samples), options);
}

}  // namespace simcard
