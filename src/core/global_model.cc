#include "core/global_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>

#include "common/fault.h"
#include "common/stopwatch.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "nn/positive_linear.h"
#include "obs/training_observer.h"
#include "tensor/ops.h"

namespace simcard {

void GlobalModelConfig::Serialize(Serializer* out) const {
  out->WriteU64(query_dim);
  out->WriteU64(num_segments);
  out->WriteU32(use_cnn_query_tower ? 1 : 0);
  qes.Serialize(out);
  out->WriteU64(mlp_hidden);
  out->WriteU64(query_embed);
  out->WriteU64(tau_hidden);
  out->WriteU64(tau_embed);
  out->WriteU64(aux_hidden);
  out->WriteU64(head_hidden);
  out->WriteF32(sigma);
}

Status GlobalModelConfig::Deserialize(Deserializer* in) {
  uint64_t v = 0;
  uint32_t flag = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  query_dim = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  num_segments = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU32(&flag));
  use_cnn_query_tower = flag != 0;
  SIMCARD_RETURN_IF_ERROR(qes.Deserialize(in));
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  mlp_hidden = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  query_embed = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  tau_hidden = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  tau_embed = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  aux_hidden = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  head_hidden = v;
  return in->ReadF32(&sigma);
}

Result<std::unique_ptr<GlobalModel>> GlobalModel::Build(
    const GlobalModelConfig& config, Rng* rng) {
  if (config.query_dim == 0 || config.num_segments == 0) {
    return Status::InvalidArgument(
        "GlobalModel: query_dim and num_segments must be positive");
  }
  auto model = std::unique_ptr<GlobalModel>(new GlobalModel());
  model->config_ = config;

  if (config.use_cnn_query_tower) {
    auto tower_or = BuildQesTower(config.query_dim, config.qes, rng,
                                  &model->query_embed_dim_);
    if (!tower_or.ok()) return tower_or.status();
    model->query_tower_ = std::move(tower_or.value());
  } else {
    model->query_embed_dim_ = config.query_embed;
    auto tower = std::make_unique<nn::Sequential>();
    tower->Emplace<nn::Linear>(config.query_dim, config.mlp_hidden, rng);
    tower->Emplace<nn::Relu>();
    tower->Emplace<nn::Linear>(config.mlp_hidden, config.query_embed, rng);
    tower->Emplace<nn::Relu>();
    model->query_tower_ = std::move(tower);
  }

  model->tau_embed_dim_ = config.tau_embed;
  {
    // Staggered first-layer biases: hinge basis over the standardized tau
    // range (see card_model.cc's BuildTauTower).
    auto tower = std::make_unique<nn::Sequential>();
    auto* first = tower->Emplace<nn::PositiveLinear>(1, config.tau_hidden, rng);
    first->InitBiasUniform(-2.0f, 2.0f, rng);
    tower->Emplace<nn::Relu>();
    tower->Emplace<nn::PositiveLinear>(config.tau_hidden, config.tau_embed,
                                       rng);
    tower->Emplace<nn::Relu>();
    model->tau_tower_ = std::move(tower);
  }

  model->aux_embed_dim_ = config.aux_hidden;
  {
    auto tower = std::make_unique<nn::Sequential>();
    tower->Emplace<nn::Linear>(config.num_segments, config.aux_hidden, rng);
    tower->Emplace<nn::Relu>();
    tower->Emplace<nn::Linear>(config.aux_hidden, config.aux_hidden, rng);
    tower->Emplace<nn::Relu>();
    model->aux_tower_ = std::move(tower);
  }

  const size_t concat = model->query_embed_dim_ + model->tau_embed_dim_ +
                        model->aux_embed_dim_;
  // Two-branch head: logits are non-decreasing in tau through the monotone
  // branch (the learnable pre-sigmoid threshold of Section 5.1) while the
  // free branch discriminates segments from (z_q, z_C) without constraint.
  model->head_ = std::make_unique<nn::MonotoneHead>(
      concat,
      /*tau_begin=*/model->query_embed_dim_,
      /*tau_end=*/model->query_embed_dim_ + model->tau_embed_dim_,
      /*mono_hidden=*/std::max<size_t>(8, config.head_hidden / 4),
      /*free_hidden=*/config.head_hidden, /*out_dim=*/config.num_segments,
      rng);
  return model;
}

Matrix GlobalModel::NormalizeTau(const Matrix& xtau) const {
  Matrix out = xtau;
  float* d = out.data();
  for (size_t i = 0; i < out.size(); ++i) {
    d[i] = (d[i] - tau_shift_) / tau_scale_;
  }
  return out;
}

Matrix GlobalModel::NormalizeXc(const Matrix& xc) const {
  if (xc_shift_.empty()) return xc;
  assert(xc.cols() == xc_shift_.size());
  Matrix out = xc;
  for (size_t r = 0; r < out.rows(); ++r) {
    float* row = out.Row(r);
    for (size_t c = 0; c < out.cols(); ++c) {
      row[c] = (row[c] - xc_shift_[c]) / xc_scale_[c];
    }
  }
  return out;
}

void GlobalModel::SetInputNormalization(float tau_shift, float tau_scale,
                                        std::vector<float> xc_shift,
                                        std::vector<float> xc_scale) {
  tau_shift_ = tau_shift;
  tau_scale_ = tau_scale > 1e-12f ? tau_scale : 1.0f;
  xc_shift_ = std::move(xc_shift);
  xc_scale_ = std::move(xc_scale);
  for (auto& s : xc_scale_) {
    if (s <= 1e-12f) s = 1.0f;
  }
}

Matrix GlobalModel::ForwardLogits(const Matrix& xq, const Matrix& xtau,
                                  const Matrix& xc) {
  assert(xq.rows() == xtau.rows() && xq.rows() == xc.rows());
  std::vector<Matrix> parts;
  parts.push_back(query_tower_->Forward(xq));
  parts.push_back(tau_tower_->Forward(NormalizeTau(xtau)));
  parts.push_back(aux_tower_->Forward(NormalizeXc(xc)));
  return head_->Forward(ConcatCols(parts));
}

Matrix GlobalModel::ApplyLogits(const Matrix& xq, const Matrix& xtau,
                                const Matrix& xc) const {
  assert(xq.rows() == xtau.rows() && xq.rows() == xc.rows());
  std::vector<Matrix> parts;
  parts.push_back(query_tower_->Apply(xq));
  parts.push_back(tau_tower_->Apply(NormalizeTau(xtau)));
  parts.push_back(aux_tower_->Apply(NormalizeXc(xc)));
  return head_->Apply(ConcatCols(parts));
}

void GlobalModel::Backward(const Matrix& grad) {
  Matrix gh = head_->Backward(grad);
  size_t offset = 0;
  query_tower_->Backward(gh.SliceCols(offset, offset + query_embed_dim_));
  offset += query_embed_dim_;
  tau_tower_->Backward(gh.SliceCols(offset, offset + tau_embed_dim_));
  offset += tau_embed_dim_;
  aux_tower_->Backward(gh.SliceCols(offset, offset + aux_embed_dim_));
}

std::vector<float> GlobalModel::Probabilities(const float* query, float tau,
                                              const float* xc) const {
  Matrix xq(1, config_.query_dim);
  xq.SetRow(0, query);
  Matrix xt(1, 1);
  xt.at(0, 0) = tau;
  Matrix xcm(1, config_.num_segments);
  xcm.SetRow(0, xc);
  Matrix logits = ApplyLogits(xq, xt, xcm);
  std::vector<float> probs(config_.num_segments);
  for (size_t s = 0; s < probs.size(); ++s) {
    probs[s] = nn::SigmoidScalar(logits.at(0, s));
  }
  return probs;
}

Matrix GlobalModel::ApplyBatch(const Matrix& xq, const Matrix& xtau,
                               const Matrix& xc) const {
  Matrix probs = ApplyLogits(xq, xtau, xc);
  float* d = probs.data();
  for (size_t i = 0; i < probs.size(); ++i) d[i] = nn::SigmoidScalar(d[i]);
  return probs;
}

std::vector<size_t> GlobalModel::SelectSegments(
    const std::vector<float>& probs) const {
  std::vector<size_t> selected;
  SelectSegmentsInto(std::span<const float>(probs.data(), probs.size()),
                     &selected);
  return selected;
}

void GlobalModel::SelectSegmentsInto(std::span<const float> probs,
                                     std::vector<size_t>* out) const {
  out->clear();
  for (size_t s = 0; s < probs.size(); ++s) {
    if (probs[s] > config_.sigma) out->push_back(s);
  }
  if (out->empty() && !probs.empty()) {
    out->push_back(static_cast<size_t>(
        std::max_element(probs.begin(), probs.end()) - probs.begin()));
  }
}

std::vector<nn::Parameter*> GlobalModel::Parameters() {
  std::vector<nn::Parameter*> out = query_tower_->Parameters();
  for (nn::Layer* layer : {static_cast<nn::Layer*>(tau_tower_.get()),
                           static_cast<nn::Layer*>(aux_tower_.get()),
                           static_cast<nn::Layer*>(head_.get())}) {
    auto ps = layer->Parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

std::vector<const nn::Parameter*> GlobalModel::Parameters() const {
  std::vector<const nn::Parameter*> out =
      static_cast<const nn::Layer*>(query_tower_.get())->Parameters();
  for (const nn::Layer* layer :
       {static_cast<const nn::Layer*>(tau_tower_.get()),
        static_cast<const nn::Layer*>(aux_tower_.get()),
        static_cast<const nn::Layer*>(head_.get())}) {
    auto ps = layer->Parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

size_t GlobalModel::NumScalars() const {
  return nn::CountScalars(Parameters());
}

void GlobalModel::Serialize(Serializer* out) const {
  out->WriteF32(tau_shift_);
  out->WriteF32(tau_scale_);
  out->WriteFloatVector(xc_shift_);
  out->WriteFloatVector(xc_scale_);
  query_tower_->Serialize(out);
  tau_tower_->Serialize(out);
  aux_tower_->Serialize(out);
  head_->Serialize(out);
}

Status GlobalModel::Deserialize(Deserializer* in) {
  SIMCARD_RETURN_IF_ERROR(in->ReadF32(&tau_shift_));
  SIMCARD_RETURN_IF_ERROR(in->ReadF32(&tau_scale_));
  SIMCARD_RETURN_IF_ERROR(in->ReadFloatVector(&xc_shift_));
  SIMCARD_RETURN_IF_ERROR(in->ReadFloatVector(&xc_scale_));
  SIMCARD_RETURN_IF_ERROR(query_tower_->Deserialize(in));
  SIMCARD_RETURN_IF_ERROR(tau_tower_->Deserialize(in));
  SIMCARD_RETURN_IF_ERROR(aux_tower_->Deserialize(in));
  return head_->Deserialize(in);
}

void GlobalModel::SaveWithConfig(Serializer* out) const {
  config_.Serialize(out);
  Serialize(out);
}

Result<std::unique_ptr<GlobalModel>> GlobalModel::LoadWithConfig(
    Deserializer* in) {
  GlobalModelConfig config;
  SIMCARD_RETURN_IF_ERROR(config.Deserialize(in));
  Rng rng(0);  // weights are overwritten immediately
  auto model_or = Build(config, &rng);
  if (!model_or.ok()) return model_or.status();
  SIMCARD_RETURN_IF_ERROR(model_or.value()->Deserialize(in));
  return model_or;
}

Result<double> TrainGlobalModel(GlobalModel* model, const Matrix& queries,
                                const Matrix& xc_features,
                                const GlobalLabels& labels,
                                const GlobalTrainOptions& options) {
  const size_t total = labels.samples.size();
  if (total == 0) return 0.0;
  Rng rng(options.seed);

  // Fit input standardization (see header).
  {
    double tau_mean = 0.0;
    double tau_sq = 0.0;
    for (const auto& s : labels.samples) {
      tau_mean += s.tau;
      tau_sq += static_cast<double>(s.tau) * s.tau;
    }
    tau_mean /= static_cast<double>(total);
    const double tau_var = std::max(
        0.0, tau_sq / static_cast<double>(total) - tau_mean * tau_mean);
    const size_t cols = xc_features.cols();
    std::vector<float> shift(cols, 0.0f);
    std::vector<float> scale(cols, 1.0f);
    std::vector<double> mean(cols, 0.0);
    std::vector<double> sq(cols, 0.0);
    for (size_t r = 0; r < xc_features.rows(); ++r) {
      const float* row = xc_features.Row(r);
      for (size_t c = 0; c < cols; ++c) {
        mean[c] += row[c];
        sq[c] += static_cast<double>(row[c]) * row[c];
      }
    }
    for (size_t c = 0; c < cols; ++c) {
      mean[c] /= static_cast<double>(xc_features.rows());
      const double var =
          std::max(0.0, sq[c] / static_cast<double>(xc_features.rows()) -
                            mean[c] * mean[c]);
      shift[c] = static_cast<float>(mean[c]);
      scale[c] = static_cast<float>(std::sqrt(var));
    }
    model->SetInputNormalization(static_cast<float>(tau_mean),
                                 static_cast<float>(std::sqrt(tau_var)),
                                 std::move(shift), std::move(scale));
  }

  float lr = options.lr;
  auto opt = std::make_unique<nn::Adam>(model->Parameters(), lr);
  nn::WeightedBceLoss loss;
  const size_t n_seg = labels.labels.cols();
  DivergenceWatchdog watchdog(options.watchdog, model->Parameters(),
                              options.observer_tag.empty()
                                  ? std::string("global")
                                  : options.observer_tag);

  std::vector<size_t> order(total);
  for (size_t i = 0; i < total; ++i) order[i] = i;

  Stopwatch total_watch;
  Stopwatch epoch_watch;
  double best = std::numeric_limits<double>::infinity();
  size_t stall = 0;
  size_t epochs_run = 0;
  double last_good_loss = 0.0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    epoch_watch.Restart();
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t first = 0; first < total; first += options.batch_size) {
      const size_t count = std::min(options.batch_size, total - first);
      Matrix xq(count, queries.cols());
      Matrix xtau(count, 1);
      Matrix xc(count, xc_features.cols());
      Matrix target(count, n_seg);
      Matrix penalty(count, n_seg);
      for (size_t i = 0; i < count; ++i) {
        const size_t idx = order[first + i];
        const SampleRef& s = labels.samples[idx];
        xq.SetRow(i, queries.Row(s.query_row));
        xtau.at(i, 0) = s.tau;
        xc.SetRow(i, xc_features.Row(s.query_row));
        target.SetRow(i, labels.labels.Row(idx));
        if (options.use_penalty) {
          penalty.SetRow(i, labels.penalty.Row(idx));
        }
      }
      opt->ZeroGrad();
      Matrix logits = model->ForwardLogits(xq, xtau, xc);
      Matrix grad;
      epoch_loss += loss.Compute(logits, target, penalty, &grad);
      model->Backward(grad);
      opt->ClipGradNorm(options.grad_clip_norm);
      opt->Step();
      ++batches;
    }
    epoch_loss /= static_cast<double>(std::max<size_t>(1, batches));
    if (fault::ShouldFail("train.nan_loss")) {
      epoch_loss = std::numeric_limits<double>::quiet_NaN();
    }
    switch (watchdog.Observe(epoch, epoch_loss, &lr)) {
      case DivergenceWatchdog::Verdict::kOk:
        break;
      case DivergenceWatchdog::Verdict::kRolledBack:
        opt = std::make_unique<nn::Adam>(model->Parameters(), lr);
        continue;
      case DivergenceWatchdog::Verdict::kExhausted:
        obs::NotifyTrainEnd(options.observer_tag, epochs_run, last_good_loss,
                            total_watch.ElapsedSeconds());
        return watchdog.ExhaustedStatus();
    }
    last_good_loss = epoch_loss;
    epochs_run = epoch + 1;
    obs::NotifyTrainEpoch(options.observer_tag, epoch, epoch_loss,
                          epoch_watch.ElapsedSeconds());
    if (epoch_loss < best * (1.0 - options.min_improvement)) {
      best = epoch_loss;
      stall = 0;
    } else if (++stall >= options.patience) {
      break;
    }
  }
  obs::NotifyTrainEnd(options.observer_tag, epochs_run, last_good_loss,
                      total_watch.ElapsedSeconds());
  return last_good_loss;
}

}  // namespace simcard
