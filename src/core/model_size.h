// Model-size accounting helpers (Table 5).
#ifndef SIMCARD_CORE_MODEL_SIZE_H_
#define SIMCARD_CORE_MODEL_SIZE_H_

#include <cstddef>

#include "data/dataset.h"

namespace simcard {

/// Bytes -> megabytes (10^6, as the paper's table reads).
double BytesToMb(size_t bytes);

/// Size in bytes of retaining `fraction` of the dataset as float32 rows —
/// the "model" of a sampling baseline.
size_t SampleModelBytes(const Dataset& dataset, double fraction);

/// Number of sample rows whose retained bytes best match `target_bytes`
/// (used to configure "Sampling (equal)" against a learned model's size).
size_t SampleRowsForBytes(const Dataset& dataset, size_t target_bytes);

}  // namespace simcard

#endif  // SIMCARD_CORE_MODEL_SIZE_H_
