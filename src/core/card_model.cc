#include "core/card_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>

#include "common/fault.h"
#include "common/stopwatch.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "nn/positive_linear.h"
#include "obs/training_observer.h"
#include "tensor/ops.h"

namespace simcard {
namespace {

constexpr float kLogCardLo = -10.0f;
constexpr float kLogCardHi = 25.0f;

std::unique_ptr<nn::Sequential> BuildMlpTower(size_t in_dim, size_t hidden,
                                              size_t out_dim, Rng* rng) {
  auto tower = std::make_unique<nn::Sequential>();
  tower->Emplace<nn::Linear>(in_dim, hidden, rng);
  tower->Emplace<nn::Relu>();
  tower->Emplace<nn::Linear>(hidden, out_dim, rng);
  tower->Emplace<nn::Relu>();
  return tower;
}

// The paper's E2/E5: one-hidden-layer MLP with all-positive weights so the
// embedding is monotone in tau. Biases of the first layer are staggered over
// the standardized tau range so the ReLU units form a hinge basis (zero
// biases would leave every unit dead for below-average thresholds).
std::unique_ptr<nn::Sequential> BuildTauTower(size_t hidden, size_t out_dim,
                                              Rng* rng) {
  auto tower = std::make_unique<nn::Sequential>();
  auto* first = tower->Emplace<nn::PositiveLinear>(1, hidden, rng);
  first->InitBiasUniform(-2.0f, 2.0f, rng);
  tower->Emplace<nn::Relu>();
  tower->Emplace<nn::PositiveLinear>(hidden, out_dim, rng);
  tower->Emplace<nn::Relu>();
  return tower;
}

// The paper's E3/E6: two hidden layers (Section 5.1).
std::unique_ptr<nn::Sequential> BuildAuxTower(size_t in_dim, size_t hidden,
                                              Rng* rng) {
  auto tower = std::make_unique<nn::Sequential>();
  tower->Emplace<nn::Linear>(in_dim, hidden, rng);
  tower->Emplace<nn::Relu>();
  tower->Emplace<nn::Linear>(hidden, hidden, rng);
  tower->Emplace<nn::Relu>();
  return tower;
}

}  // namespace

void CardModelConfig::Serialize(Serializer* out) const {
  out->WriteU64(query_dim);
  out->WriteU32(use_cnn_query_tower ? 1 : 0);
  qes.Serialize(out);
  out->WriteU64(mlp_hidden);
  out->WriteU64(query_embed);
  out->WriteU64(tau_hidden);
  out->WriteU64(tau_embed);
  out->WriteU64(aux_dim);
  out->WriteU64(aux_hidden);
  out->WriteU64(head_hidden);
}

Status CardModelConfig::Deserialize(Deserializer* in) {
  uint64_t v = 0;
  uint32_t flag = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  query_dim = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU32(&flag));
  use_cnn_query_tower = flag != 0;
  SIMCARD_RETURN_IF_ERROR(qes.Deserialize(in));
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  mlp_hidden = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  query_embed = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  tau_hidden = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  tau_embed = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  aux_dim = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  aux_hidden = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  head_hidden = v;
  return Status::OK();
}

Result<std::unique_ptr<CardModel>> CardModel::Build(
    const CardModelConfig& config, Rng* rng) {
  if (config.query_dim == 0) {
    return Status::InvalidArgument("CardModel: query_dim must be positive");
  }
  auto model = std::unique_ptr<CardModel>(new CardModel());
  model->config_ = config;

  if (config.use_cnn_query_tower) {
    auto tower_or = BuildQesTower(config.query_dim, config.qes, rng,
                                  &model->query_embed_dim_);
    if (!tower_or.ok()) return tower_or.status();
    model->query_tower_ = std::move(tower_or.value());
  } else {
    model->query_embed_dim_ = config.query_embed;
    model->query_tower_ = BuildMlpTower(config.query_dim, config.mlp_hidden,
                                        config.query_embed, rng);
  }

  model->tau_embed_dim_ = config.tau_embed;
  model->tau_tower_ = BuildTauTower(config.tau_hidden, config.tau_embed, rng);

  if (config.aux_dim > 0) {
    model->aux_embed_dim_ = config.aux_hidden;
    model->aux_tower_ = BuildAuxTower(config.aux_dim, config.aux_hidden, rng);
  }

  const size_t concat = model->query_embed_dim_ + model->tau_embed_dim_ +
                        model->aux_embed_dim_;
  // Two-branch head: a positive-weight monotone path carries tau, an
  // unconstrained free path carries everything else (see nn/monotone_head.h).
  model->head_ = std::make_unique<nn::MonotoneHead>(
      concat,
      /*tau_begin=*/model->query_embed_dim_,
      /*tau_end=*/model->query_embed_dim_ + model->tau_embed_dim_,
      /*mono_hidden=*/std::max<size_t>(8, config.head_hidden / 4),
      /*free_hidden=*/config.head_hidden, /*out_dim=*/1, rng);
  return model;
}

Matrix CardModel::NormalizeTau(const Matrix& xtau) const {
  Matrix out = xtau;
  float* d = out.data();
  for (size_t i = 0; i < out.size(); ++i) {
    d[i] = (d[i] - tau_shift_) / tau_scale_;
  }
  return out;
}

Matrix CardModel::NormalizeAux(const Matrix& xaux) const {
  if (aux_shift_.empty() || xaux.empty()) return xaux;
  assert(xaux.cols() == aux_shift_.size());
  Matrix out = xaux;
  for (size_t r = 0; r < out.rows(); ++r) {
    float* row = out.Row(r);
    for (size_t c = 0; c < out.cols(); ++c) {
      row[c] = (row[c] - aux_shift_[c]) / aux_scale_[c];
    }
  }
  return out;
}

Matrix CardModel::Forward(const Matrix& xq, const Matrix& xtau,
                          const Matrix& xaux) {
  assert(xq.rows() == xtau.rows());
  last_forward_pooled_ = false;
  std::vector<Matrix> parts;
  parts.push_back(query_tower_->Forward(xq));
  parts.push_back(tau_tower_->Forward(NormalizeTau(xtau)));
  if (aux_tower_ != nullptr) {
    assert(xaux.rows() == xq.rows());
    parts.push_back(aux_tower_->Forward(NormalizeAux(xaux)));
  }
  return head_->Forward(ConcatCols(parts));
}

Matrix CardModel::Apply(const Matrix& xq, const Matrix& xtau,
                        const Matrix& xaux) const {
  assert(xq.rows() == xtau.rows());
  std::vector<Matrix> parts;
  parts.push_back(query_tower_->Apply(xq));
  parts.push_back(tau_tower_->Apply(NormalizeTau(xtau)));
  if (aux_tower_ != nullptr) {
    assert(xaux.rows() == xq.rows());
    parts.push_back(aux_tower_->Apply(NormalizeAux(xaux)));
  }
  return head_->Apply(ConcatCols(parts));
}

void CardModel::Backward(const Matrix& grad) {
  assert(!last_forward_pooled_);
  Matrix gh = head_->Backward(grad);
  size_t offset = 0;
  query_tower_->Backward(gh.SliceCols(offset, offset + query_embed_dim_));
  offset += query_embed_dim_;
  tau_tower_->Backward(gh.SliceCols(offset, offset + tau_embed_dim_));
  offset += tau_embed_dim_;
  if (aux_tower_ != nullptr) {
    aux_tower_->Backward(gh.SliceCols(offset, offset + aux_embed_dim_));
  }
}

Matrix CardModel::ForwardPooled(const Matrix& xq_members, float tau,
                                const Matrix& xaux_members, PooledMode mode) {
  last_forward_pooled_ = true;
  pooled_members_ = xq_members.rows();
  pooled_mode_ = mode;
  const float scale =
      mode == PooledMode::kMeanScaled
          ? 1.0f / static_cast<float>(std::max<size_t>(1, pooled_members_))
          : 1.0f;
  std::vector<Matrix> parts;
  parts.push_back(
      Scale(nn::SumPoolRows(query_tower_->Forward(xq_members)), scale));
  Matrix xtau(1, 1);
  xtau.at(0, 0) = tau;
  parts.push_back(tau_tower_->Forward(NormalizeTau(xtau)));
  if (aux_tower_ != nullptr) {
    assert(xaux_members.rows() == xq_members.rows());
    parts.push_back(Scale(
        nn::SumPoolRows(aux_tower_->Forward(NormalizeAux(xaux_members))),
        scale));
  }
  return head_->Forward(ConcatCols(parts));
}

void CardModel::BackwardPooled(const Matrix& grad) {
  assert(last_forward_pooled_);
  Matrix gh = head_->Backward(grad);
  const float scale =
      pooled_mode_ == PooledMode::kMeanScaled
          ? 1.0f / static_cast<float>(std::max<size_t>(1, pooled_members_))
          : 1.0f;
  // Pooling's gradient broadcasts the pooled slice to every member row
  // (scaled by 1/|Q| for mean pooling).
  auto broadcast = [this, scale](const Matrix& slice) {
    Matrix out(pooled_members_, slice.cols());
    for (size_t r = 0; r < pooled_members_; ++r) {
      out.SetRow(r, slice.Row(0));
    }
    return Scale(out, scale);
  };
  size_t offset = 0;
  query_tower_->Backward(
      broadcast(gh.SliceCols(offset, offset + query_embed_dim_)));
  offset += query_embed_dim_;
  tau_tower_->Backward(gh.SliceCols(offset, offset + tau_embed_dim_));
  offset += tau_embed_dim_;
  if (aux_tower_ != nullptr) {
    aux_tower_->Backward(
        broadcast(gh.SliceCols(offset, offset + aux_embed_dim_)));
  }
}

double CardModel::EstimateCard(const float* query, float tau,
                               const float* aux) const {
  Matrix xq(1, config_.query_dim);
  xq.SetRow(0, query);
  Matrix xtau(1, 1);
  xtau.at(0, 0) = tau;
  Matrix xaux;
  if (aux_tower_ != nullptr) {
    assert(aux != nullptr);
    xaux = Matrix(1, config_.aux_dim);
    xaux.SetRow(0, aux);
  }
  const float u = std::min(
      kLogCardHi, std::max(kLogCardLo, Apply(xq, xtau, xaux).at(0, 0)));
  return std::exp(static_cast<double>(u));
}

std::vector<double> CardModel::ApplyBatch(const Matrix& xq,
                                          const Matrix& xtau,
                                          const Matrix& xaux) const {
  const Matrix u = aux_tower_ != nullptr ? Apply(xq, xtau, xaux)
                                         : Apply(xq, xtau, Matrix());
  std::vector<double> out(u.rows());
  for (size_t r = 0; r < u.rows(); ++r) {
    const float c = std::min(kLogCardHi, std::max(kLogCardLo, u.at(r, 0)));
    out[r] = std::exp(static_cast<double>(c));
  }
  return out;
}

std::vector<nn::Parameter*> CardModel::Parameters() {
  std::vector<nn::Parameter*> out = query_tower_->Parameters();
  auto append = [&out](nn::Layer* layer) {
    if (layer == nullptr) return;
    auto ps = layer->Parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  };
  append(tau_tower_.get());
  append(aux_tower_.get());
  append(head_.get());
  return out;
}

std::vector<const nn::Parameter*> CardModel::Parameters() const {
  std::vector<const nn::Parameter*> out =
      static_cast<const nn::Layer*>(query_tower_.get())->Parameters();
  auto append = [&out](const nn::Layer* layer) {
    if (layer == nullptr) return;
    auto ps = layer->Parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  };
  append(tau_tower_.get());
  append(aux_tower_.get());
  append(head_.get());
  return out;
}

size_t CardModel::NumScalars() const {
  return nn::CountScalars(Parameters());
}

void CardModel::SetOutputBias(float value) { head_->SetOutputBias(value); }

void CardModel::SetInputNormalization(float tau_shift, float tau_scale,
                                      std::vector<float> aux_shift,
                                      std::vector<float> aux_scale) {
  tau_shift_ = tau_shift;
  tau_scale_ = tau_scale > 1e-12f ? tau_scale : 1.0f;
  aux_shift_ = std::move(aux_shift);
  aux_scale_ = std::move(aux_scale);
  for (auto& s : aux_scale_) {
    if (s <= 1e-12f) s = 1.0f;
  }
}

void CardModel::Serialize(Serializer* out) const {
  out->WriteF32(tau_shift_);
  out->WriteF32(tau_scale_);
  out->WriteFloatVector(aux_shift_);
  out->WriteFloatVector(aux_scale_);
  query_tower_->Serialize(out);
  tau_tower_->Serialize(out);
  out->WriteU32(aux_tower_ != nullptr ? 1 : 0);
  if (aux_tower_ != nullptr) aux_tower_->Serialize(out);
  head_->Serialize(out);
}

Status CardModel::Deserialize(Deserializer* in) {
  SIMCARD_RETURN_IF_ERROR(in->ReadF32(&tau_shift_));
  SIMCARD_RETURN_IF_ERROR(in->ReadF32(&tau_scale_));
  SIMCARD_RETURN_IF_ERROR(in->ReadFloatVector(&aux_shift_));
  SIMCARD_RETURN_IF_ERROR(in->ReadFloatVector(&aux_scale_));
  SIMCARD_RETURN_IF_ERROR(query_tower_->Deserialize(in));
  SIMCARD_RETURN_IF_ERROR(tau_tower_->Deserialize(in));
  uint32_t has_aux = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU32(&has_aux));
  if ((has_aux != 0) != (aux_tower_ != nullptr)) {
    return Status::Internal("CardModel: aux tower presence mismatch");
  }
  if (aux_tower_ != nullptr) {
    SIMCARD_RETURN_IF_ERROR(aux_tower_->Deserialize(in));
  }
  return head_->Deserialize(in);
}

void CardModel::SaveWithConfig(Serializer* out) const {
  config_.Serialize(out);
  Serialize(out);
}

Result<std::unique_ptr<CardModel>> CardModel::LoadWithConfig(
    Deserializer* in) {
  CardModelConfig config;
  SIMCARD_RETURN_IF_ERROR(config.Deserialize(in));
  Rng rng(0);  // weights are overwritten immediately
  auto model_or = Build(config, &rng);
  if (!model_or.ok()) return model_or.status();
  SIMCARD_RETURN_IF_ERROR(model_or.value()->Deserialize(in));
  return model_or;
}

Result<double> TrainCardModel(CardModel* model, const Matrix& queries,
                              const Matrix* aux,
                              std::vector<SampleRef> samples,
                              const CardTrainOptions& options) {
  if (samples.empty()) return 0.0;
  Rng rng(options.seed);

  if (options.reset_output_bias) {
    // Fit input standardization: tau over the samples, aux per column over
    // the query rows the samples reference.
    double tau_mean = 0.0;
    double tau_sq = 0.0;
    for (const auto& s : samples) {
      tau_mean += s.tau;
      tau_sq += static_cast<double>(s.tau) * s.tau;
    }
    tau_mean /= static_cast<double>(samples.size());
    const double tau_var =
        std::max(0.0, tau_sq / static_cast<double>(samples.size()) -
                          tau_mean * tau_mean);
    std::vector<float> aux_shift;
    std::vector<float> aux_scale;
    if (aux != nullptr && model->config().aux_dim > 0) {
      const size_t cols = aux->cols();
      aux_shift.assign(cols, 0.0f);
      aux_scale.assign(cols, 1.0f);
      std::vector<double> mean(cols, 0.0);
      std::vector<double> sq(cols, 0.0);
      for (size_t r = 0; r < aux->rows(); ++r) {
        const float* row = aux->Row(r);
        for (size_t c = 0; c < cols; ++c) {
          mean[c] += row[c];
          sq[c] += static_cast<double>(row[c]) * row[c];
        }
      }
      for (size_t c = 0; c < cols; ++c) {
        mean[c] /= static_cast<double>(aux->rows());
        const double var =
            std::max(0.0, sq[c] / static_cast<double>(aux->rows()) -
                              mean[c] * mean[c]);
        aux_shift[c] = static_cast<float>(mean[c]);
        aux_scale[c] = static_cast<float>(std::sqrt(var));
      }
    }
    model->SetInputNormalization(static_cast<float>(tau_mean),
                                 static_cast<float>(std::sqrt(tau_var)),
                                 std::move(aux_shift), std::move(aux_scale));
  }

  if (options.reset_output_bias) {
    // Warm-start the output bias at the mean log-cardinality.
    double mean_log = 0.0;
    for (const auto& s : samples) {
      mean_log += std::log(std::max(1.0f, s.card));
    }
    model->SetOutputBias(static_cast<float>(mean_log / samples.size()));
  }

  float lr = options.lr;
  auto opt = std::make_unique<nn::Adam>(model->Parameters(), lr);
  nn::HybridCardLoss loss(options.lambda);
  DivergenceWatchdog watchdog(options.watchdog, model->Parameters(),
                              options.observer_tag.empty()
                                  ? std::string("card")
                                  : options.observer_tag);

  Stopwatch total_watch;
  Stopwatch epoch_watch;
  double best = std::numeric_limits<double>::infinity();
  size_t stall = 0;
  size_t epochs_run = 0;
  double last_good_loss = 0.0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    epoch_watch.Restart();
    rng.Shuffle(&samples);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t first = 0; first < samples.size();
         first += options.batch_size) {
      const size_t count =
          std::min(options.batch_size, samples.size() - first);
      Batch batch = GatherBatch(queries, aux, samples, first, count);
      opt->ZeroGrad();
      Matrix pred = model->Forward(batch.xq, batch.xtau, batch.xaux);
      Matrix grad;
      epoch_loss += loss.Compute(pred, batch.targets, &grad);
      model->Backward(grad);
      opt->ClipGradNorm(options.grad_clip_norm);
      opt->Step();
      ++batches;
    }
    epoch_loss /= static_cast<double>(std::max<size_t>(1, batches));
    if (fault::ShouldFail("train.nan_loss")) {
      epoch_loss = std::numeric_limits<double>::quiet_NaN();
    }
    switch (watchdog.Observe(epoch, epoch_loss, &lr)) {
      case DivergenceWatchdog::Verdict::kOk:
        break;
      case DivergenceWatchdog::Verdict::kRolledBack:
        // Adam's moments were fed the diverging gradients; start fresh at
        // the halved learning rate.
        opt = std::make_unique<nn::Adam>(model->Parameters(), lr);
        continue;
      case DivergenceWatchdog::Verdict::kExhausted:
        obs::NotifyTrainEnd(options.observer_tag, epochs_run, last_good_loss,
                            total_watch.ElapsedSeconds());
        return watchdog.ExhaustedStatus();
    }
    last_good_loss = epoch_loss;
    epochs_run = epoch + 1;
    obs::NotifyTrainEpoch(options.observer_tag, epoch, epoch_loss,
                          epoch_watch.ElapsedSeconds());
    if (epoch_loss < best * (1.0 - options.min_improvement)) {
      best = epoch_loss;
      stall = 0;
    } else if (++stall >= options.patience) {
      break;
    }
  }
  obs::NotifyTrainEnd(options.observer_tag, epochs_run, last_good_loss,
                      total_watch.ElapsedSeconds());
  return last_good_loss;
}

}  // namespace simcard
