#include "core/join_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "core/features.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace simcard {

double FineTunePooled(CardModel* model, const Matrix& queries,
                      const Matrix* aux, std::vector<PooledSample> sets,
                      const PooledTrainOptions& options) {
  if (sets.empty()) return 0.0;
  Rng rng(options.seed);
  nn::Adam opt(model->Parameters(), options.lr);
  nn::HybridCardLoss loss(options.lambda);

  double epoch_loss = 0.0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&sets);
    epoch_loss = 0.0;
    size_t in_step = 0;
    opt.ZeroGrad();
    for (const PooledSample& set : sets) {
      // Gather member rows.
      Matrix xq(set.member_rows.size(), queries.cols());
      Matrix xaux;
      if (aux != nullptr) xaux = Matrix(set.member_rows.size(), aux->cols());
      for (size_t i = 0; i < set.member_rows.size(); ++i) {
        xq.SetRow(i, queries.Row(set.member_rows[i]));
        if (aux != nullptr) xaux.SetRow(i, aux->Row(set.member_rows[i]));
      }
      Matrix pred = model->ForwardPooled(xq, set.tau, xaux, options.mode);
      Matrix target(1, 1);
      // Mean mode regresses the average member cardinality.
      target.at(0, 0) =
          options.mode == CardModel::PooledMode::kMeanScaled
              ? set.card / static_cast<float>(set.member_rows.size())
              : set.card;
      Matrix grad;
      epoch_loss += loss.Compute(pred, target, &grad);
      model->BackwardPooled(grad);
      if (++in_step == options.sets_per_step) {
        opt.ClipGradNorm(options.grad_clip_norm);
        opt.Step();
        opt.ZeroGrad();
        in_step = 0;
      }
    }
    if (in_step > 0) {
      opt.ClipGradNorm(options.grad_clip_norm);
      opt.Step();
      opt.ZeroGrad();
    }
    epoch_loss /= static_cast<double>(sets.size());
  }
  return epoch_loss;
}

// ---------------------------------------------------------------------------
// CNNJoin
// ---------------------------------------------------------------------------

Status CnnJoinEstimator::Train(const TrainContext& ctx) {
  Stopwatch watch;
  metric_ = ctx.dataset->metric();
  dataset_size_ = static_cast<double>(ctx.dataset->size());
  flat_ = std::make_unique<FlatCardEstimator>(config_.base);
  SIMCARD_RETURN_IF_ERROR(flat_->Train(ctx));
  set_training_seconds(watch.ElapsedSeconds());
  return Status::OK();
}

Status CnnJoinEstimator::FineTuneOnJoins(const TrainContext& ctx,
                                         const JoinWorkload& joins) {
  if (flat_ == nullptr) {
    return Status::FailedPrecondition("CNNJoin: Train before FineTuneOnJoins");
  }
  Stopwatch watch;
  const Matrix& queries = ctx.workload->train_queries;
  const Matrix xd =
      BuildSampleDistanceFeatures(queries, flat_->samples(), metric_);
  std::vector<PooledSample> sets;
  sets.reserve(joins.train.size());
  for (const JoinSet& js : joins.train) {
    sets.push_back({js.query_rows, js.tau, static_cast<float>(js.card)});
  }
  PooledTrainOptions opts = config_.pooled;
  opts.seed = ctx.seed + 71;
  FineTunePooled(flat_->model(), queries, &xd, std::move(sets), opts);
  set_training_seconds(training_seconds() + watch.ElapsedSeconds());
  return Status::OK();
}

double CnnJoinEstimator::Estimate(const EstimateRequest& request) {
  return flat_->Estimate(request);
}

double CnnJoinEstimator::EstimateJoin(const Matrix& queries,
                                      const std::vector<uint32_t>& rows,
                                      float tau) {
  Matrix xq(rows.size(), queries.cols());
  Matrix xaux(rows.size(), flat_->samples().rows());
  for (size_t i = 0; i < rows.size(); ++i) {
    const float* q = queries.Row(rows[i]);
    xq.SetRow(i, q);
    const auto xd = SampleDistanceRow(q, flat_->samples(), metric_);
    xaux.SetRow(i, xd.data());
  }
  const float u =
      flat_->model()->ForwardPooled(xq, tau, xaux, config_.pooled.mode)
          .at(0, 0);
  double est =
      std::exp(static_cast<double>(std::min(25.0f, std::max(-10.0f, u))));
  if (config_.pooled.mode == CardModel::PooledMode::kMeanScaled) {
    est *= static_cast<double>(rows.size());
  }
  // A join's cardinality cannot exceed |Q| * |D|.
  return std::min(est, static_cast<double>(rows.size()) * dataset_size_);
}

size_t CnnJoinEstimator::ModelSizeBytes() const {
  return flat_->ModelSizeBytes();
}

// ---------------------------------------------------------------------------
// GLJoin / GLJoin+
// ---------------------------------------------------------------------------

GlJoinEstimator::Config GlJoinEstimator::Config::GlJoin() {
  Config c;
  c.base = GlEstimatorConfig::GlMlp();
  c.base.name = "GLJoin";
  return c;
}

GlJoinEstimator::Config GlJoinEstimator::Config::GlJoinPlus() {
  Config c;
  c.base = GlEstimatorConfig::GlPlus();
  c.base.name = "GLJoin+";
  return c;
}

Status GlJoinEstimator::Train(const TrainContext& ctx) {
  Stopwatch watch;
  metric_ = ctx.dataset->metric();
  dim_ = ctx.dataset->dim();
  gl_ = std::make_unique<GlEstimator>(config_.base);
  SIMCARD_RETURN_IF_ERROR(gl_->Train(ctx));
  set_training_seconds(watch.ElapsedSeconds());
  return Status::OK();
}

Status GlJoinEstimator::FineTuneOnJoins(const TrainContext& ctx,
                                        const JoinWorkload& joins) {
  if (gl_ == nullptr) {
    return Status::FailedPrecondition("GLJoin: Train before FineTuneOnJoins");
  }
  Stopwatch watch;
  const Matrix& queries = ctx.workload->train_queries;
  const Segmentation& seg = gl_->segmentation();
  const Matrix xc = BuildCentroidDistanceFeatures(queries, seg, metric_);

  // Per segment: pooled fine-tuning samples whose members are the queries
  // the (trained) global model routes to that segment, with the exact
  // segment-level join cardinality as target.
  const size_t n_seg = seg.num_segments();
  std::vector<std::vector<PooledSample>> per_segment(n_seg);
  for (const JoinSet& js : joins.train) {
    // Route every member through the global model once.
    std::vector<std::vector<uint32_t>> routed(n_seg);
    for (uint32_t row : js.query_rows) {
      const float* q = queries.Row(row);
      std::vector<size_t> selected;
      if (gl_->global_model() != nullptr) {
        selected = gl_->global_model()->SelectSegments(
            gl_->global_model()->Probabilities(q, js.tau, xc.Row(row)));
      } else {
        selected.resize(n_seg);
        for (size_t s = 0; s < n_seg; ++s) selected[s] = s;
      }
      for (size_t s : selected) routed[s].push_back(row);
    }
    for (size_t s = 0; s < n_seg; ++s) {
      if (routed[s].empty()) continue;
      per_segment[s].push_back({std::move(routed[s]), js.tau,
                                static_cast<float>(js.seg_cards[s])});
    }
  }
  for (size_t s = 0; s < n_seg; ++s) {
    if (per_segment[s].empty()) continue;
    PooledTrainOptions opts = config_.pooled;
    opts.seed = ctx.seed + 83 + s;
    FineTunePooled(gl_->local_model(s)->model(), queries, &xc,
                   std::move(per_segment[s]), opts);
  }
  set_training_seconds(training_seconds() + watch.ElapsedSeconds());
  return Status::OK();
}

double GlJoinEstimator::Estimate(const EstimateRequest& request) {
  return gl_->Estimate(request);
}

double GlJoinEstimator::EstimateJoin(const Matrix& queries,
                                     const std::vector<uint32_t>& rows,
                                     float tau) {
  const Segmentation& seg = gl_->segmentation();
  const size_t n_seg = seg.num_segments();

  // Indicating matrix M: route each member to its selected segments; the
  // transposed view (per-segment member lists) is the mask of Figure 6.
  std::vector<std::vector<uint32_t>> routed(n_seg);
  std::vector<std::vector<float>> member_xc(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const float* q = queries.Row(rows[i]);
    member_xc[i] = seg.CentroidDistances(q, dim_, metric_);
    std::vector<size_t> selected;
    if (gl_->global_model() != nullptr) {
      selected = gl_->global_model()->SelectSegments(
          gl_->global_model()->Probabilities(q, tau, member_xc[i].data()));
    } else {
      selected.resize(n_seg);
      for (size_t s = 0; s < n_seg; ++s) selected[s] = s;
    }
    for (size_t s : selected) routed[s].push_back(static_cast<uint32_t>(i));
  }

  double total = 0.0;
  for (size_t s = 0; s < n_seg; ++s) {
    if (routed[s].empty()) continue;
    Matrix xq(routed[s].size(), queries.cols());
    Matrix xaux(routed[s].size(), n_seg);
    for (size_t i = 0; i < routed[s].size(); ++i) {
      const uint32_t member = routed[s][i];
      xq.SetRow(i, queries.Row(rows[member]));
      xaux.SetRow(i, member_xc[member].data());
    }
    const float u =
        gl_->local_model(s)
            ->model()
            ->ForwardPooled(xq, tau, xaux, config_.pooled.mode)
            .at(0, 0);
    double est =
        std::exp(static_cast<double>(std::min(25.0f, std::max(-10.0f, u))));
    if (config_.pooled.mode == CardModel::PooledMode::kMeanScaled) {
      est *= static_cast<double>(routed[s].size());
    }
    // A segment contributes at most (#routed members) * (#segment members).
    total += std::min(est, static_cast<double>(routed[s].size()) *
                               static_cast<double>(seg.members[s].size()));
  }
  return total;
}

size_t GlJoinEstimator::ModelSizeBytes() const {
  return gl_->ModelSizeBytes();
}

}  // namespace simcard
