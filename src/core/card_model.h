// Multi-tower cardinality regression model (Figure 2 / Figure 7).
//
// Three embedding towers — query (E1: MLP or QES-CNN), threshold (E2:
// positive-weight MLP), optional distance features (E3/E6: two-hidden-layer
// MLP) — feed a two-branch MonotoneHead F: the tau embedding travels only
// through positive weights and monotone activations, so the predicted
// log-cardinality is provably non-decreasing in tau (the paper's
// monotonicity property, Sections 2/5.1), while query/distance features use
// an unconstrained branch.
//
// The model predicts u = log(card); the training loss exponentiates it
// (nn::HybridCardLoss). ForwardPooled/BackwardPooled implement the paper's
// similarity-join mode (Section 4): member query embeddings (and member aux
// embeddings) are sum-pooled into one set embedding, so the head runs once
// per query set.
#ifndef SIMCARD_CORE_CARD_MODEL_H_
#define SIMCARD_CORE_CARD_MODEL_H_

#include <memory>

#include "core/features.h"
#include "core/qes.h"
#include "core/train_watchdog.h"
#include "nn/losses.h"
#include "nn/monotone_head.h"
#include "nn/sequential.h"
#include "workload/labels.h"

namespace simcard {

/// \brief Architecture of a CardModel.
struct CardModelConfig {
  size_t query_dim = 0;

  /// Query tower: MLP (the paper's GL-MLP / MLP baselines) or QES CNN.
  bool use_cnn_query_tower = false;
  QesConfig qes;           ///< used when use_cnn_query_tower
  size_t mlp_hidden = 64;  ///< used otherwise
  size_t query_embed = 32;

  size_t tau_hidden = 16;
  size_t tau_embed = 8;

  /// Width of the aux feature (x_D sample distances or x_C centroid
  /// distances); 0 disables the aux tower.
  size_t aux_dim = 0;
  size_t aux_hidden = 32;

  size_t head_hidden = 64;

  void Serialize(Serializer* out) const;
  Status Deserialize(Deserializer* in);
};

/// \brief The assembled model. Create via Build().
class CardModel {
 public:
  static Result<std::unique_ptr<CardModel>> Build(
      const CardModelConfig& config, Rng* rng);

  /// Per-sample mode: returns [B,1] log-cardinality predictions.
  Matrix Forward(const Matrix& xq, const Matrix& xtau, const Matrix& xaux);

  /// Stateless inference twin of Forward: same math through nn::Layer::Apply,
  /// no cached activations, safe for concurrent callers sharing one model.
  Matrix Apply(const Matrix& xq, const Matrix& xtau, const Matrix& xaux) const;

  /// Backprop for the last Forward; `grad` is [B,1].
  void Backward(const Matrix& grad);

  /// Join mode: member embeddings are pooled; returns [1,1] log of the
  /// *total* cardinality over the member multiset (for mean pooling the
  /// caller scales by the member count — see PooledMode).
  ///
  /// kSum is the paper's sum pooling. kMeanScaled divides the pooled
  /// embedding by |Q| and lets the caller multiply the exponentiated output
  /// by |Q|: the head then models the *average* member cardinality, which
  /// extrapolates to set sizes beyond the training range far better than a
  /// locally-linear head on a sum (whose log-estimate grows linearly in
  /// |Q| while the truth grows like log |Q|). Documented extension; the
  /// join benches ablate both.
  enum class PooledMode { kSum, kMeanScaled };

  Matrix ForwardPooled(const Matrix& xq_members, float tau,
                       const Matrix& xaux_members,
                       PooledMode mode = PooledMode::kSum);

  /// Backprop for the last ForwardPooled; `grad` is [1,1].
  void BackwardPooled(const Matrix& grad);

  /// Convenience single-query estimate (returns raw cardinality, not log).
  /// Runs on the stateless Apply path, so it is const and thread-safe.
  double EstimateCard(const float* query, float tau, const float* aux) const;

  /// Batch twin of EstimateCard: one Apply over all rows, then the same
  /// per-row log-card clamp and exponentiation. Row i of the result equals
  /// EstimateCard(xq.Row(i), xtau.at(i,0), xaux.Row(i)) bitwise (every
  /// layer is row-independent; see DESIGN.md §11). `xaux` is ignored when
  /// the model has no aux tower.
  std::vector<double> ApplyBatch(const Matrix& xq, const Matrix& xtau,
                                 const Matrix& xaux) const;

  std::vector<nn::Parameter*> Parameters();
  std::vector<const nn::Parameter*> Parameters() const;
  size_t NumScalars() const;

  /// Warm-starts the head's output bias (e.g. at mean log-card).
  void SetOutputBias(float value);

  /// \brief Input standardization, fitted by TrainCardModel.
  ///
  /// tau and each aux column are z-scored before entering their towers.
  /// The tau transform is affine with positive scale, so monotonicity in
  /// tau is preserved. Raw thresholds often span a ~0.01-wide band (they
  /// are chosen by selectivity); without this the positive-weight tau tower
  /// would need huge weights to resolve them.
  void SetInputNormalization(float tau_shift, float tau_scale,
                             std::vector<float> aux_shift,
                             std::vector<float> aux_scale);

  const CardModelConfig& config() const { return config_; }

  /// Persists parameters + input normalization (structure must already
  /// match; see SaveWithConfig for self-describing persistence).
  void Serialize(Serializer* out) const;
  Status Deserialize(Deserializer* in);

  /// Self-describing persistence: writes the architecture config followed
  /// by the weights, so Load can rebuild the exact model (including a tuned
  /// QES geometry) without out-of-band information.
  void SaveWithConfig(Serializer* out) const;
  static Result<std::unique_ptr<CardModel>> LoadWithConfig(Deserializer* in);

 private:
  CardModel() = default;

  Matrix NormalizeTau(const Matrix& xtau) const;
  Matrix NormalizeAux(const Matrix& xaux) const;

  CardModelConfig config_;
  std::unique_ptr<nn::Sequential> query_tower_;
  std::unique_ptr<nn::Sequential> tau_tower_;
  std::unique_ptr<nn::Sequential> aux_tower_;  // may be null
  std::unique_ptr<nn::MonotoneHead> head_;
  size_t query_embed_dim_ = 0;
  size_t tau_embed_dim_ = 0;
  size_t aux_embed_dim_ = 0;
  size_t pooled_members_ = 0;  // batch size of the last pooled forward
  PooledMode pooled_mode_ = PooledMode::kSum;
  bool last_forward_pooled_ = false;
  float tau_shift_ = 0.0f;
  float tau_scale_ = 1.0f;
  std::vector<float> aux_shift_;
  std::vector<float> aux_scale_;
};

/// \brief Options for TrainCardModel.
struct CardTrainOptions {
  size_t epochs = 40;
  size_t batch_size = 64;
  float lr = 2e-3f;
  float lambda = 0.2f;        ///< Q-error weight in the hybrid loss
  double grad_clip_norm = 5.0;
  uint64_t seed = 41;
  /// Stop early when the epoch loss fails to improve by `min_improvement`
  /// (relative) for `patience` consecutive epochs.
  double min_improvement = 0.005;
  size_t patience = 6;
  /// Warm-start the output bias at the mean log-cardinality of the training
  /// labels. Disable when fine-tuning an already-trained model.
  bool reset_output_bias = true;
  /// Name under which per-epoch loss/time are reported to the observability
  /// layer (obs::NotifyTrainEpoch); empty = silent (e.g. tuner trial fits).
  std::string observer_tag;
  /// Divergence watchdog policy (rollback + LR halving on NaN/exploding
  /// loss; see core/train_watchdog.h).
  WatchdogOptions watchdog;
};

/// Trains with Adam + the hybrid MAPE/Q-error loss (Algorithm 1). `aux` may
/// be null when the model has no aux tower. Returns the final epoch loss.
/// Fails (descriptive Status, model rolled back to its last good
/// checkpoint) when the divergence watchdog exhausts its retries.
Result<double> TrainCardModel(CardModel* model, const Matrix& queries,
                              const Matrix* aux,
                              std::vector<SampleRef> samples,
                              const CardTrainOptions& options);

}  // namespace simcard

#endif  // SIMCARD_CORE_CARD_MODEL_H_
