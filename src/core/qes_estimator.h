// Whole-dataset (non-segmented) learned estimators: the paper's QES
// (Table 2 row 1) and the DL-based MLP baseline (row 9) share everything
// except the query tower, so both are FlatCardEstimator presets.
//
// The model is Figure 2/3: query tower E1 (QES CNN or plain MLP), threshold
// tower E2, sample-distance tower E3 over x_D (distances from the query to
// k fixed data samples), and output head F, trained end-to-end with
// Algorithm 1.
#ifndef SIMCARD_CORE_QES_ESTIMATOR_H_
#define SIMCARD_CORE_QES_ESTIMATOR_H_

#include <memory>
#include <string>

#include "core/card_model.h"
#include "core/estimator.h"
#include "core/tuner.h"

namespace simcard {

/// \brief Configuration of a whole-dataset estimator.
struct FlatCardEstimatorConfig {
  std::string name = "QES";
  bool use_cnn_query_tower = true;  ///< false -> the MLP baseline
  bool auto_tune = false;           ///< Algorithm 3 before training
  size_t num_samples = 64;          ///< k data samples for x_D

  QesConfig qes;
  size_t mlp_hidden = 64;
  size_t query_embed = 32;
  size_t tau_hidden = 16;
  size_t tau_embed = 8;
  size_t aux_hidden = 32;
  size_t head_hidden = 64;

  CardTrainOptions train;
  TunerOptions tuner;

  static FlatCardEstimatorConfig Qes();
  static FlatCardEstimatorConfig Mlp();
};

/// \brief Single-model estimator over the whole dataset.
class FlatCardEstimator : public Estimator {
 public:
  explicit FlatCardEstimator(FlatCardEstimatorConfig config)
      : config_(std::move(config)) {}

  std::string Name() const override { return config_.name; }
  Status Train(const TrainContext& ctx) override;
  double Estimate(const EstimateRequest& request) override;
  size_t ModelSizeBytes() const override;

  CardModel* model() { return model_.get(); }
  const Matrix& samples() const { return samples_; }

 private:
  FlatCardEstimatorConfig config_;
  Matrix samples_;  ///< the k retained data samples (part of the model)
  Metric metric_ = Metric::kL2;
  double max_card_ = 0.0;  ///< dataset size; estimates are clamped to it
  std::unique_ptr<CardModel> model_;
};

}  // namespace simcard

#endif  // SIMCARD_CORE_QES_ESTIMATOR_H_
