#include "core/qes.h"

#include <algorithm>
#include <sstream>

#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/linear.h"

namespace simcard {

std::string ConvLayerSpec::ToString() const {
  std::ostringstream out;
  out << "{ch=" << channels << " k=" << kernel << " s=" << stride
      << " p=" << pad << " pool=" << pool_kernel << "/"
      << nn::PoolOpName(pool_op) << "}";
  return out.str();
}

QesConfig QesConfig::Default(size_t query_dim) {
  QesConfig config;
  config.num_segments = query_dim >= 64 ? 8 : 4;
  config.seg_channels = 8;
  ConvLayerSpec merge;
  merge.channels = 8;
  merge.kernel = 2;
  merge.stride = 1;
  merge.pad = 0;
  merge.pool_kernel = 2;
  merge.pool_op = nn::PoolOp::kAvg;
  config.merge_layers = {merge, merge};
  config.embed_dim = 32;
  return config;
}

std::string QesConfig::ToString() const {
  std::ostringstream out;
  out << "QES{segments=" << num_segments << " seg_ch=" << seg_channels
      << " merge=[";
  for (size_t i = 0; i < merge_layers.size(); ++i) {
    if (i > 0) out << ", ";
    out << merge_layers[i].ToString();
  }
  out << "] embed=" << embed_dim << "}";
  return out.str();
}

void QesConfig::Serialize(Serializer* out) const {
  out->WriteU64(num_segments);
  out->WriteU64(seg_channels);
  out->WriteU64(embed_dim);
  out->WriteU64(merge_layers.size());
  for (const ConvLayerSpec& spec : merge_layers) {
    out->WriteU64(spec.channels);
    out->WriteU64(spec.kernel);
    out->WriteU64(spec.stride);
    out->WriteU64(spec.pad);
    out->WriteU64(spec.pool_kernel);
    out->WriteU32(static_cast<uint32_t>(spec.pool_op));
  }
}

Status QesConfig::Deserialize(Deserializer* in) {
  uint64_t v = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  num_segments = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  seg_channels = v;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
  embed_dim = v;
  uint64_t layers = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&layers));
  // Each layer encodes 5 u64 fields + 1 u32; reject counts the remaining
  // buffer cannot possibly hold before allocating.
  constexpr uint64_t kLayerBytes = 5 * sizeof(uint64_t) + sizeof(uint32_t);
  if (layers > in->remaining() / kLayerBytes) {
    return Status::OutOfRange("QesConfig: merge layer count " +
                              std::to_string(layers) +
                              " exceeds remaining buffer");
  }
  merge_layers.resize(layers);
  for (auto& spec : merge_layers) {
    SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
    spec.channels = v;
    SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
    spec.kernel = v;
    SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
    spec.stride = v;
    SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
    spec.pad = v;
    SIMCARD_RETURN_IF_ERROR(in->ReadU64(&v));
    spec.pool_kernel = v;
    uint32_t op = 0;
    SIMCARD_RETURN_IF_ERROR(in->ReadU32(&op));
    spec.pool_op = static_cast<nn::PoolOp>(op);
  }
  return Status::OK();
}

Result<std::unique_ptr<nn::Sequential>> BuildQesTower(size_t query_dim,
                                                      const QesConfig& config,
                                                      Rng* rng,
                                                      size_t* embed_dim) {
  if (query_dim == 0) {
    return Status::InvalidArgument("BuildQesTower: zero query dimension");
  }
  if (config.num_segments == 0 || config.seg_channels == 0 ||
      config.embed_dim == 0) {
    return Status::InvalidArgument("BuildQesTower: zero-sized component");
  }
  const size_t segments = std::min(config.num_segments, query_dim);

  auto tower = std::make_unique<nn::Sequential>();

  // Segment layer: kernel == stride == segment width; symmetric zero padding
  // rounds the query up to a whole number of segments.
  const size_t seg_w = (query_dim + segments - 1) / segments;
  const size_t needed = seg_w * segments;
  const size_t pad = (needed - query_dim + 1) / 2;
  auto* seg_conv = tower->Emplace<nn::Conv1D>(/*in_channels=*/1, query_dim,
                                              config.seg_channels, seg_w,
                                              seg_w, pad, rng);
  tower->Emplace<nn::Relu>();
  size_t channels = seg_conv->out_channels();
  size_t length = seg_conv->out_length();

  // Merge layers (the learned g()); infeasible geometries are skipped.
  for (const ConvLayerSpec& spec : config.merge_layers) {
    if (spec.channels == 0 || spec.kernel == 0 || spec.stride == 0) continue;
    if (nn::Conv1D::ComputeOutLength(length, spec.kernel, spec.stride,
                                     spec.pad) == 0) {
      continue;
    }
    auto* conv = tower->Emplace<nn::Conv1D>(channels, length, spec.channels,
                                            spec.kernel, spec.stride, spec.pad,
                                            rng);
    tower->Emplace<nn::Relu>();
    channels = conv->out_channels();
    length = conv->out_length();
    if (spec.pool_kernel > 1 &&
        nn::Pool1D::ComputeOutLength(length, spec.pool_kernel,
                                     spec.pool_kernel) > 0) {
      auto* pool = tower->Emplace<nn::Pool1D>(channels, length,
                                              spec.pool_kernel,
                                              spec.pool_kernel, spec.pool_op);
      length = pool->out_length();
    }
  }

  // Final projection to the query embedding z_q.
  tower->Emplace<nn::Linear>(channels * length, config.embed_dim, rng);
  tower->Emplace<nn::Relu>();
  if (embed_dim != nullptr) *embed_dim = config.embed_dim;
  return tower;
}

}  // namespace simcard
