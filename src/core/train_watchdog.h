// Divergence watchdog for the training loops.
//
// Small-batch training of the card/global models can diverge: a NaN sneaks
// in through an exploding gradient, or the loss blows up past any useful
// regime. Left alone, the NaN propagates into the weights and the trained
// model silently poisons every estimate it contributes to (fatal under the
// GL framework, where the final estimate is a *sum* of local models).
//
// The watchdog snapshots parameters after every good epoch; when an epoch's
// loss is non-finite or explodes past `explode_factor` times the best loss
// seen, it rolls the model back to the last good checkpoint, halves the
// learning rate, and lets the loop retry with a fresh optimizer. After
// `max_retries` rollbacks the loop gives up and returns a descriptive
// Status — training never returns a NaN model.
#ifndef SIMCARD_CORE_TRAIN_WATCHDOG_H_
#define SIMCARD_CORE_TRAIN_WATCHDOG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/parameter.h"

namespace simcard {

/// \brief Policy knobs for DivergenceWatchdog.
struct WatchdogOptions {
  bool enabled = true;
  /// Rollback budget; exceeding it fails the training run.
  size_t max_retries = 3;
  /// An epoch loss above explode_factor * (best_loss + 1) counts as
  /// divergence even when finite.
  double explode_factor = 1e3;
};

/// \brief Epoch-level divergence detection + checkpoint rollback.
///
/// Usage inside a training loop:
///
///   DivergenceWatchdog dog(options.watchdog, model->Parameters(), tag);
///   for (epoch ...) {
///     ... run epoch, compute epoch_loss ...
///     switch (dog.Observe(epoch, epoch_loss, &lr)) {
///       case Verdict::kOk:         break;            // checkpointed
///       case Verdict::kRolledBack: rebuild optimizer with lr; continue;
///       case Verdict::kExhausted:  return dog.ExhaustedStatus();
///     }
///   }
class DivergenceWatchdog {
 public:
  enum class Verdict { kOk, kRolledBack, kExhausted };

  /// Snapshots the initial parameter values as epoch-(-1)'s checkpoint.
  DivergenceWatchdog(const WatchdogOptions& options,
                     std::vector<nn::Parameter*> params, std::string tag);

  /// Judges one finished epoch. On kOk the current parameters become the
  /// new checkpoint. On kRolledBack the parameters have been restored to
  /// the last checkpoint and `*lr` halved; the caller must rebuild its
  /// optimizer (momentum/Adam state is poisoned too). kExhausted means the
  /// retry budget is spent and the parameters are restored; the caller
  /// should return ExhaustedStatus().
  Verdict Observe(size_t epoch, double loss, float* lr);

  /// Descriptive terminal error for kExhausted.
  Status ExhaustedStatus() const;

  size_t retries() const { return retries_; }

 private:
  bool IsDivergent(double loss) const;

  WatchdogOptions options_;
  std::vector<nn::Parameter*> params_;
  std::string tag_;
  std::vector<Matrix> checkpoint_;
  double best_loss_ = 0.0;
  bool has_best_ = false;
  double last_bad_loss_ = 0.0;
  size_t last_bad_epoch_ = 0;
  size_t retries_ = 0;
};

}  // namespace simcard

#endif  // SIMCARD_CORE_TRAIN_WATCHDOG_H_
