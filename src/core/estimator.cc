#include "core/estimator.h"

namespace simcard {

std::vector<double> Estimator::EstimateBatch(
    const BatchEstimateRequest& request) {
  std::vector<double> out;
  if (request.queries == nullptr) return out;
  const Matrix& queries = *request.queries;
  out.reserve(queries.rows());
  for (size_t r = 0; r < queries.rows(); ++r) {
    const float tau = r < request.taus.size() ? request.taus[r] : 0.0f;
    out.push_back(Estimate(EstimateRequest{
        std::span<const float>(queries.Row(r), queries.cols()), tau,
        request.options}));
  }
  return out;
}

double Estimator::EstimateJoin(const Matrix& queries,
                               const std::vector<uint32_t>& rows, float tau) {
  double total = 0.0;
  for (uint32_t row : rows) {
    total += Estimate(EstimateRequest{
        std::span<const float>(queries.Row(row), queries.cols()), tau, {}});
  }
  return total;
}

float InvertCardinality(Estimator* estimator, const float* query,
                        double target, float lo, float hi, int iterations) {
  // The caller hands us a bare pointer, so the request carries the
  // legacy empty-span encoding (length unknown, trust dim()).
  const auto at = [&](float tau) {
    return estimator->Estimate(EstimateRequest{
        std::span<const float>(query, static_cast<size_t>(0)), tau, {}});
  };
  if (at(hi) < target) return hi;
  for (int i = 0; i < iterations && lo < hi; ++i) {
    const float mid = 0.5f * (lo + hi);
    if (at(mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace simcard
