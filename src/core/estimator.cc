#include "core/estimator.h"

namespace simcard {

double Estimator::EstimateJoin(const Matrix& queries,
                               const std::vector<uint32_t>& rows, float tau) {
  double total = 0.0;
  for (uint32_t row : rows) {
    total += EstimateSearch(queries.Row(row), tau);
  }
  return total;
}

float InvertCardinality(Estimator* estimator, const float* query,
                        double target, float lo, float hi, int iterations) {
  if (estimator->EstimateSearch(query, hi) < target) return hi;
  for (int i = 0; i < iterations && lo < hi; ++i) {
    const float mid = 0.5f * (lo + hi);
    if (estimator->EstimateSearch(query, mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace simcard
