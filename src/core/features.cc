#include "core/features.h"

#include <cassert>

namespace simcard {

std::vector<float> SampleDistanceRow(const float* query, const Matrix& samples,
                                     Metric metric) {
  std::vector<float> out(samples.rows());
  for (size_t i = 0; i < samples.rows(); ++i) {
    out[i] = Distance(query, samples.Row(i), samples.cols(), metric);
  }
  return out;
}

Matrix BuildSampleDistanceFeatures(const Matrix& queries,
                                   const Matrix& samples, Metric metric) {
  assert(queries.cols() == samples.cols());
  return BatchDistances(queries, samples, metric);
}

std::vector<float> CentroidDistanceRow(const float* query,
                                       const Segmentation& seg, size_t dim,
                                       Metric metric) {
  return seg.CentroidDistances(query, dim, metric);
}

Matrix BuildCentroidDistanceFeatures(const Matrix& queries,
                                     const Segmentation& seg, Metric metric) {
  assert(queries.cols() == seg.centroids.cols());
  // Bitwise-matches the per-query CentroidDistances path: BatchDistances
  // evaluates each (query, centroid) pair with the same scalar kernel.
  return BatchDistances(queries, seg.centroids, metric);
}

Batch GatherBatch(const Matrix& queries, const Matrix* aux_features,
                  const std::vector<SampleRef>& samples, size_t first,
                  size_t count) {
  assert(first + count <= samples.size());
  Batch batch;
  batch.xq = Matrix(count, queries.cols());
  batch.xtau = Matrix(count, 1);
  if (aux_features != nullptr) {
    batch.xaux = Matrix(count, aux_features->cols());
  }
  batch.targets = Matrix(count, 1);
  for (size_t i = 0; i < count; ++i) {
    const SampleRef& s = samples[first + i];
    batch.xq.SetRow(i, queries.Row(s.query_row));
    batch.xtau.at(i, 0) = s.tau;
    if (aux_features != nullptr) {
      batch.xaux.SetRow(i, aux_features->Row(s.query_row));
    }
    batch.targets.at(i, 0) = s.card;
  }
  return batch;
}

}  // namespace simcard
