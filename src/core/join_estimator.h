// Similarity-join estimators (Section 4, Figure 6; Table 2 rows 11-13).
//
//   CNNJoin — no data segmentation: one QES model over the whole dataset
//             whose member-query embeddings are sum-pooled into a set
//             embedding, so the output module runs once per join set;
//   GLJoin  — global-local with MLP towers: the global model produces the
//             indicating matrix M per member query, M^T's rows act as
//             per-segment masks routing members to local models, and each
//             local model evaluates its routed members in one pooled pass;
//   GLJoin+ — GLJoin with QES towers and the same tuned hyperparameters as
//             GL+.
//
// All three are transfer-trained: first on single-query search supervision
// (Algorithm 1), then a short pooled fine-tune on join sets — the paper's
// "easily transferred from the original model by training on a few samples
// and by only 2-3 iterations".
#ifndef SIMCARD_CORE_JOIN_ESTIMATOR_H_
#define SIMCARD_CORE_JOIN_ESTIMATOR_H_

#include <memory>

#include "core/gl_estimator.h"
#include "core/qes_estimator.h"
#include "workload/join_sets.h"

namespace simcard {

/// \brief One pooled fine-tuning sample: a member multiset + tau + target.
struct PooledSample {
  std::vector<uint32_t> member_rows;
  float tau = 0.0f;
  float card = 0.0f;
};

/// \brief Options for pooled fine-tuning and pooled inference.
struct PooledTrainOptions {
  size_t epochs = 3;  ///< the paper's "2-3 iterations"
  /// kSum = the paper's sum pooling; kMeanScaled = the scaled variant that
  /// extrapolates beyond the training set-size range (see CardModel).
  CardModel::PooledMode mode = CardModel::PooledMode::kSum;
  size_t sets_per_step = 8;
  float lr = 1e-3f;
  float lambda = 0.2f;
  double grad_clip_norm = 5.0;
  uint64_t seed = 53;
};

/// Fine-tunes `model` in pooled (join) mode. `aux` rows align with query
/// rows, as in TrainCardModel. Returns the final epoch loss.
double FineTunePooled(CardModel* model, const Matrix& queries,
                      const Matrix* aux, std::vector<PooledSample> sets,
                      const PooledTrainOptions& options);

/// \brief Join training inputs, passed alongside the search TrainContext.
struct JoinTrainContext {
  const JoinWorkload* join_workload = nullptr;
};

/// \brief CNNJoin (Table 2 row 11).
class CnnJoinEstimator : public Estimator {
 public:
  /// \brief Configuration.
  struct Config {
    FlatCardEstimatorConfig base = FlatCardEstimatorConfig::Qes();
    PooledTrainOptions pooled;
    Config() { base.name = "CNNJoin"; }
  };

  explicit CnnJoinEstimator(Config config) : config_(std::move(config)) {}

  std::string Name() const override { return config_.base.name; }

  /// Phase 1: search-supervised training (delegates to FlatCardEstimator).
  Status Train(const TrainContext& ctx) override;

  /// Phase 2: pooled fine-tune on the join workload's training sets.
  Status FineTuneOnJoins(const TrainContext& ctx, const JoinWorkload& joins);

  double Estimate(const EstimateRequest& request) override;
  double EstimateJoin(const Matrix& queries, const std::vector<uint32_t>& rows,
                      float tau) override;
  size_t ModelSizeBytes() const override;

 private:
  Config config_;
  std::unique_ptr<FlatCardEstimator> flat_;
  Metric metric_ = Metric::kL2;
  double dataset_size_ = 0.0;
};

/// \brief GLJoin / GLJoin+ (Table 2 rows 12-13).
class GlJoinEstimator : public Estimator {
 public:
  /// \brief Configuration.
  struct Config {
    GlEstimatorConfig base = GlEstimatorConfig::GlPlus();
    PooledTrainOptions pooled;
    Config() { base.name = "GLJoin+"; }

    static Config GlJoin();      ///< MLP towers, no tuning (row 12)
    static Config GlJoinPlus();  ///< QES towers + tuning (row 13)
  };

  explicit GlJoinEstimator(Config config) : config_(std::move(config)) {}

  std::string Name() const override { return config_.base.name; }
  Status Train(const TrainContext& ctx) override;
  Status FineTuneOnJoins(const TrainContext& ctx, const JoinWorkload& joins);

  double Estimate(const EstimateRequest& request) override;

  /// Mask-based routing + per-segment pooled evaluation (Figure 6).
  double EstimateJoin(const Matrix& queries, const std::vector<uint32_t>& rows,
                      float tau) override;
  size_t ModelSizeBytes() const override;

  GlEstimator* gl() { return gl_.get(); }

 private:
  Config config_;
  std::unique_ptr<GlEstimator> gl_;
  Metric metric_ = Metric::kL2;
  size_t dim_ = 0;
};

}  // namespace simcard

#endif  // SIMCARD_CORE_JOIN_ESTIMATOR_H_
