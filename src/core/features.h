// Feature construction for the DNN estimators (Section 3.1 / Figure 5).
//
//   x_q   — the raw query vector (rows of a query matrix);
//   x_tau — the 1-dimensional threshold feature;
//   x_D   — distances from the query to k fixed data samples (E3's input);
//   x_C   — distances from the query to every segment centroid (E6's input,
//           and the local models' aux input under the global-local frame).
//
// Because each query appears under ~10 thresholds, per-query features are
// precomputed once per query row and gathered by index at batch time.
#ifndef SIMCARD_CORE_FEATURES_H_
#define SIMCARD_CORE_FEATURES_H_

#include <vector>

#include "cluster/segmentation.h"
#include "data/dataset.h"
#include "workload/labels.h"

namespace simcard {

/// x_D for one query: distances to each row of `samples`.
std::vector<float> SampleDistanceRow(const float* query, const Matrix& samples,
                                     Metric metric);

/// x_D for every row of `queries`: returns [num_queries, samples.rows()].
Matrix BuildSampleDistanceFeatures(const Matrix& queries,
                                   const Matrix& samples, Metric metric);

/// x_C for one query: distances to every segment centroid.
std::vector<float> CentroidDistanceRow(const float* query,
                                       const Segmentation& seg, size_t dim,
                                       Metric metric);

/// x_C for every row of `queries`: returns [num_queries, num_segments].
Matrix BuildCentroidDistanceFeatures(const Matrix& queries,
                                     const Segmentation& seg, Metric metric);

/// \brief Assembles one training batch for a multi-tower model.
///
/// Gathers, for samples[first:first+count), the query rows (x_q), threshold
/// column (x_tau), optional per-query aux features (x_D or x_C rows), and
/// the raw cardinality targets.
struct Batch {
  Matrix xq;       ///< [B, d]
  Matrix xtau;     ///< [B, 1]
  Matrix xaux;     ///< [B, aux_dim] or empty
  Matrix targets;  ///< [B, 1] raw cardinalities
};

Batch GatherBatch(const Matrix& queries, const Matrix* aux_features,
                  const std::vector<SampleRef>& samples, size_t first,
                  size_t count);

}  // namespace simcard

#endif  // SIMCARD_CORE_FEATURES_H_
