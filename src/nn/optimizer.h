// Gradient-descent optimizers (Algorithm 1 / Algorithm 2 use plain
// backward-propagation with gradient descent; Adam is the default here as it
// is what PyTorch-era training pipelines of the paper's vintage used).
#ifndef SIMCARD_NN_OPTIMIZER_H_
#define SIMCARD_NN_OPTIMIZER_H_

#include <vector>

#include "nn/parameter.h"

namespace simcard {
namespace nn {

/// \brief Base optimizer over a fixed set of borrowed parameters.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the accumulated gradients.
  virtual void Step() = 0;

  /// Clears gradient accumulators on every parameter.
  void ZeroGrad();

  /// Scales all gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

 protected:
  std::vector<Parameter*> params_;
};

/// \brief SGD with classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.9f);
  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

/// \brief Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace nn
}  // namespace simcard

#endif  // SIMCARD_NN_OPTIMIZER_H_
