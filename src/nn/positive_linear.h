// Affine layers whose (selected) weights are constrained positive.
//
// The paper (Section 5.1) requires the threshold-embedding networks E2/E5 to
// have all-positive weights so the cardinality estimate is monotone in the
// distance threshold tau. We implement the constraint by softplus
// reparameterization: the stored raw weight r maps to an effective weight
// softplus(r) > 0, so unconstrained gradient steps preserve positivity
// exactly (no clipping artifacts).
//
// PartialPositiveLinear generalizes this to the output head F: only the
// weight *rows* corresponding to the tau-embedding slice of the concatenated
// input are constrained, which together with monotone activations makes the
// whole model provably non-decreasing in tau while leaving the query/data
// towers unconstrained.
#ifndef SIMCARD_NN_POSITIVE_LINEAR_H_
#define SIMCARD_NN_POSITIVE_LINEAR_H_

#include "nn/layer.h"

namespace simcard {
namespace nn {

/// \brief Affine layer where weight rows [pos_row_begin, pos_row_end) are
/// reparameterized to be strictly positive.
class PartialPositiveLinear : public Layer {
 public:
  /// `pos_row_begin/end` select the *input* coordinates whose outgoing
  /// weights must be positive. Rows outside the range behave like Linear.
  PartialPositiveLinear(size_t in_dim, size_t out_dim, size_t pos_row_begin,
                        size_t pos_row_end, Rng* rng);

  Matrix Forward(const Matrix& input) override;
  Matrix Apply(const Matrix& input) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<const Parameter*> Parameters() const override;
  std::string Name() const override { return "PartialPositiveLinear"; }
  size_t OutputCols(size_t input_cols) const override;

  /// Effective (post-reparameterization) weight matrix; exposed for tests.
  Matrix EffectiveWeight() const;

  void SetBias(float value);

  /// Initializes biases i.i.d. uniform in [lo, hi]. With positive weights
  /// and ReLU, staggered biases make the units activate at different input
  /// thresholds — a monotone hinge basis over the (standardized) input
  /// range, which the tau towers need to resolve small threshold changes.
  void InitBiasUniform(float lo, float hi, Rng* rng);

 private:
  size_t in_dim_;
  size_t out_dim_;
  size_t pos_row_begin_;
  size_t pos_row_end_;
  Parameter raw_weight_;
  Parameter bias_;
  Matrix cached_input_;
  Matrix cached_effective_;
};

/// \brief Affine layer with *all* weights positive (the paper's E2/E5).
class PositiveLinear : public PartialPositiveLinear {
 public:
  PositiveLinear(size_t in_dim, size_t out_dim, Rng* rng)
      : PartialPositiveLinear(in_dim, out_dim, 0, in_dim, rng) {}
  std::string Name() const override { return "PositiveLinear"; }
};

}  // namespace nn
}  // namespace simcard

#endif  // SIMCARD_NN_POSITIVE_LINEAR_H_
