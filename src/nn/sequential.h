// Sequential container chaining layers.
#ifndef SIMCARD_NN_SEQUENTIAL_H_
#define SIMCARD_NN_SEQUENTIAL_H_

#include <memory>

#include "nn/layer.h"

namespace simcard {
namespace nn {

/// \brief Runs layers in order; Backward replays them in reverse.
///
/// Used for every tower (E1..E6) and head (F, G) in simcard's models.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns a borrowed pointer for further configuration.
  Layer* Add(std::unique_ptr<Layer> layer);

  /// Convenience: constructs L in place.
  template <typename L, typename... Args>
  L* Emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  Matrix Forward(const Matrix& input) override;
  Matrix Apply(const Matrix& input) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<const Parameter*> Parameters() const override;
  std::string Name() const override { return "Sequential"; }
  size_t OutputCols(size_t input_cols) const override;

  void Serialize(Serializer* out) const override;
  Status Deserialize(Deserializer* in) override;

  size_t NumLayers() const { return layers_.size(); }
  Layer* layer(size_t i) { return layers_[i].get(); }
  bool empty() const { return layers_.empty(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace nn
}  // namespace simcard

#endif  // SIMCARD_NN_SEQUENTIAL_H_
