// 1-D convolution over channel-major flattened signals.
//
// This layer implements the paper's query-segmentation embedding (Fig 3 /
// Fig 7): with kernel == stride == segment length, the first convolution
// applies one shared filter bank to every query segment (the per-segment
// distance-density function f()), and subsequent convolutions with smaller
// kernels merge neighboring segment distributions (the combine function g()).
// Weight sharing across positions is exactly the paper's "all e_i's in the
// same layer are identical".
//
// A batch row encodes a [channels, length] signal flattened channel-major:
// element (c, t) lives at column c*length + t.
#ifndef SIMCARD_NN_CONV1D_H_
#define SIMCARD_NN_CONV1D_H_

#include "nn/layer.h"

namespace simcard {
namespace nn {

/// \brief Shape-checked 1-D convolution with zero padding.
class Conv1D : public Layer {
 public:
  Conv1D(size_t in_channels, size_t in_length, size_t out_channels,
         size_t kernel, size_t stride, size_t pad, Rng* rng);

  Matrix Forward(const Matrix& input) override;
  Matrix Apply(const Matrix& input) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<const Parameter*> Parameters() const override;
  std::string Name() const override { return "Conv1D"; }
  size_t OutputCols(size_t input_cols) const override;

  size_t out_channels() const { return out_channels_; }
  size_t out_length() const { return out_length_; }

  /// Output length for the given geometry, or 0 when the configuration is
  /// infeasible (kernel larger than the padded signal).
  static size_t ComputeOutLength(size_t in_length, size_t kernel,
                                 size_t stride, size_t pad);

 private:
  size_t in_channels_;
  size_t in_length_;
  size_t out_channels_;
  size_t kernel_;
  size_t stride_;
  size_t pad_;
  size_t out_length_;
  Parameter weight_;  // [out_channels, in_channels * kernel]
  Parameter bias_;    // [1, out_channels]
  Matrix cached_input_;
};

}  // namespace nn
}  // namespace simcard

#endif  // SIMCARD_NN_CONV1D_H_
