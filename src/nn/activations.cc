#include "nn/activations.h"

#include <cmath>

namespace simcard {
namespace nn {

float SigmoidScalar(float x) {
  if (x >= 0.0f) {
    float e = std::exp(-x);
    return 1.0f / (1.0f + e);
  }
  float e = std::exp(x);
  return e / (1.0f + e);
}

float SoftplusScalar(float x) {
  if (x > 20.0f) return x;
  if (x < -20.0f) return std::exp(x);
  return std::log1p(std::exp(x));
}

Matrix Relu::Forward(const Matrix& input) {
  cached_input_ = input;
  return Apply(input);
}

Matrix Relu::Apply(const Matrix& input) const {
  Matrix out = input;
  ApplyInPlace(&out);
  return out;
}

void Relu::ApplyInPlace(Matrix* m) const {
  float* d = m->data();
  for (size_t i = 0; i < m->size(); ++i) {
    if (d[i] < 0.0f) d[i] = 0.0f;
  }
}

Matrix Relu::Backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  const float* x = cached_input_.data();
  float* gd = g.data();
  for (size_t i = 0; i < g.size(); ++i) {
    if (x[i] <= 0.0f) gd[i] = 0.0f;
  }
  return g;
}

Matrix Sigmoid::Forward(const Matrix& input) {
  Matrix out = Apply(input);
  cached_output_ = out;
  return out;
}

Matrix Sigmoid::Apply(const Matrix& input) const {
  Matrix out = input;
  ApplyInPlace(&out);
  return out;
}

void Sigmoid::ApplyInPlace(Matrix* m) const {
  float* d = m->data();
  for (size_t i = 0; i < m->size(); ++i) d[i] = SigmoidScalar(d[i]);
}

Matrix Sigmoid::Backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  const float* y = cached_output_.data();
  float* gd = g.data();
  for (size_t i = 0; i < g.size(); ++i) gd[i] *= y[i] * (1.0f - y[i]);
  return g;
}

Matrix Tanh::Forward(const Matrix& input) {
  Matrix out = Apply(input);
  cached_output_ = out;
  return out;
}

Matrix Tanh::Apply(const Matrix& input) const {
  Matrix out = input;
  ApplyInPlace(&out);
  return out;
}

void Tanh::ApplyInPlace(Matrix* m) const {
  float* d = m->data();
  for (size_t i = 0; i < m->size(); ++i) d[i] = std::tanh(d[i]);
}

Matrix Tanh::Backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  const float* y = cached_output_.data();
  float* gd = g.data();
  for (size_t i = 0; i < g.size(); ++i) gd[i] *= 1.0f - y[i] * y[i];
  return g;
}

Matrix Softplus::Forward(const Matrix& input) {
  cached_input_ = input;
  return Apply(input);
}

Matrix Softplus::Apply(const Matrix& input) const {
  Matrix out = input;
  ApplyInPlace(&out);
  return out;
}

void Softplus::ApplyInPlace(Matrix* m) const {
  float* d = m->data();
  for (size_t i = 0; i < m->size(); ++i) d[i] = SoftplusScalar(d[i]);
}

Matrix Softplus::Backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  const float* x = cached_input_.data();
  float* gd = g.data();
  for (size_t i = 0; i < g.size(); ++i) gd[i] *= SigmoidScalar(x[i]);
  return g;
}

}  // namespace nn
}  // namespace simcard
