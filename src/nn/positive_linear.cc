#include "nn/positive_linear.h"

#include <cassert>
#include <cmath>

#include "nn/init.h"
#include "tensor/ops.h"

namespace simcard {
namespace nn {
namespace {

float Softplus(float x) {
  if (x > 20.0f) return x;
  if (x < -20.0f) return std::exp(x);
  return std::log1p(std::exp(x));
}

float SigmoidF(float x) {
  if (x >= 0.0f) {
    float e = std::exp(-x);
    return 1.0f / (1.0f + e);
  }
  float e = std::exp(x);
  return e / (1.0f + e);
}

}  // namespace

PartialPositiveLinear::PartialPositiveLinear(size_t in_dim, size_t out_dim,
                                             size_t pos_row_begin,
                                             size_t pos_row_end, Rng* rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      pos_row_begin_(pos_row_begin),
      pos_row_end_(pos_row_end),
      raw_weight_("ppl.raw_weight", XavierUniform(in_dim, out_dim, rng)),
      bias_("ppl.bias", Matrix(1, out_dim)) {
  assert(pos_row_begin_ <= pos_row_end_ && pos_row_end_ <= in_dim_);
  // Re-initialize the constrained rows so softplus(raw) has Xavier-like
  // magnitude rather than softplus(~0) = 0.69 everywhere.
  Matrix pos_init = PositiveRawInit(in_dim, out_dim, rng);
  for (size_t r = pos_row_begin_; r < pos_row_end_; ++r) {
    for (size_t c = 0; c < out_dim_; ++c) {
      raw_weight_.value().at(r, c) = pos_init.at(r, c);
    }
  }
}

Matrix PartialPositiveLinear::EffectiveWeight() const {
  Matrix w = raw_weight_.value();
  for (size_t r = pos_row_begin_; r < pos_row_end_; ++r) {
    float* row = w.Row(r);
    for (size_t c = 0; c < out_dim_; ++c) row[c] = Softplus(row[c]);
  }
  return w;
}

Matrix PartialPositiveLinear::Forward(const Matrix& input) {
  assert(input.cols() == in_dim_);
  cached_input_ = input;
  cached_effective_ = EffectiveWeight();
  return AddRowBroadcast(MatMul(input, cached_effective_), bias_.value());
}

Matrix PartialPositiveLinear::Apply(const Matrix& input) const {
  assert(input.cols() == in_dim_);
  return AddRowBroadcast(MatMul(input, EffectiveWeight()), bias_.value());
}

Matrix PartialPositiveLinear::Backward(const Matrix& grad_output) {
  assert(grad_output.cols() == out_dim_);
  Matrix grad_eff = MatMulTransposeA(cached_input_, grad_output);
  // Chain rule through the reparameterization on constrained rows:
  // d softplus(r) / d r = sigmoid(r).
  for (size_t r = pos_row_begin_; r < pos_row_end_; ++r) {
    const float* raw = raw_weight_.value().Row(r);
    float* g = grad_eff.Row(r);
    for (size_t c = 0; c < out_dim_; ++c) g[c] *= SigmoidF(raw[c]);
  }
  AddScaledInPlace(&raw_weight_.grad(), grad_eff, 1.0f);
  AddScaledInPlace(&bias_.grad(), SumRows(grad_output), 1.0f);
  return MatMulTransposeB(grad_output, cached_effective_);
}

std::vector<Parameter*> PartialPositiveLinear::Parameters() {
  return {&raw_weight_, &bias_};
}

std::vector<const Parameter*> PartialPositiveLinear::Parameters() const {
  return {&raw_weight_, &bias_};
}

size_t PartialPositiveLinear::OutputCols(size_t input_cols) const {
  assert(input_cols == in_dim_);
  (void)input_cols;
  return out_dim_;
}

void PartialPositiveLinear::SetBias(float value) { bias_.value().Fill(value); }

void PartialPositiveLinear::InitBiasUniform(float lo, float hi, Rng* rng) {
  float* b = bias_.value().data();
  for (size_t i = 0; i < bias_.value().size(); ++i) {
    b[i] = lo + (hi - lo) * rng->NextFloat();
  }
}

}  // namespace nn
}  // namespace simcard
