// 1-D pooling (max / average / sum) over channel-major flattened signals.
//
// Pooling is one of the tunable hyperparameters of the paper's query
// embedding network (theta_pker, theta_op in Section 5.2); sum pooling is
// additionally the mechanism that aggregates query-set embeddings for
// similarity joins (Section 4), implemented there as SumPoolRows.
#ifndef SIMCARD_NN_POOL1D_H_
#define SIMCARD_NN_POOL1D_H_

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace simcard {
namespace nn {

/// Pooling operator choice (the paper's theta_op in {MAX, AVG, SUM}).
enum class PoolOp { kMax, kAvg, kSum };

const char* PoolOpName(PoolOp op);

/// \brief Non-padded 1-D pooling layer.
class Pool1D : public Layer {
 public:
  Pool1D(size_t channels, size_t in_length, size_t kernel, size_t stride,
         PoolOp op);

  Matrix Forward(const Matrix& input) override;
  Matrix Apply(const Matrix& input) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "Pool1D"; }
  size_t OutputCols(size_t input_cols) const override;

  size_t out_length() const { return out_length_; }
  size_t channels() const { return channels_; }

  static size_t ComputeOutLength(size_t in_length, size_t kernel,
                                 size_t stride);

 private:
  size_t channels_;
  size_t in_length_;
  size_t kernel_;
  size_t stride_;
  PoolOp op_;
  size_t out_length_;
  // Shared pooling kernel; records per-output argmax indices when `argmax`
  // is non-null (the training path), and touches no layer state otherwise.
  Matrix Compute(const Matrix& input, std::vector<uint32_t>* argmax) const;
  // For max pooling: flat index (within the row) of each output's argmax.
  std::vector<uint32_t> argmax_;
  size_t cached_batch_ = 0;
};

/// \brief Sum-pools a set of row vectors into one row (the paper's query-set
/// embedding). Gradient of the sum w.r.t. each member row is the identity,
/// so callers simply broadcast the output gradient back to every member.
Matrix SumPoolRows(const Matrix& rows);

}  // namespace nn
}  // namespace simcard

#endif  // SIMCARD_NN_POOL1D_H_
