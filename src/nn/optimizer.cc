#include "nn/optimizer.h"

#include <cmath>

namespace simcard {
namespace nn {

void Optimizer::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

double Optimizer::ClipGradNorm(double max_norm) {
  double sq = 0.0;
  for (Parameter* p : params_) {
    const float* g = p->grad().data();
    for (size_t i = 0; i < p->grad().size(); ++i) {
      sq += static_cast<double>(g[i]) * g[i];
    }
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Parameter* p : params_) {
      float* g = p->grad().data();
      for (size_t i = 0; i < p->grad().size(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    velocity_.emplace_back(p->value().rows(), p->value().cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* w = p->value().data();
    const float* g = p->grad().data();
    float* vel = velocity_[i].data();
    for (size_t j = 0; j < p->value().size(); ++j) {
      vel[j] = momentum_ * vel[j] - lr_ * g[j];
      w[j] += vel[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value().rows(), p->value().cols());
    v_.emplace_back(p->value().rows(), p->value().cols());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* w = p->value().data();
    const float* g = p->grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (size_t j = 0; j < p->value().size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace nn
}  // namespace simcard
