// Weight initialization schemes.
#ifndef SIMCARD_NN_INIT_H_
#define SIMCARD_NN_INIT_H_

#include "common/rng.h"
#include "tensor/matrix.h"

namespace simcard {
namespace nn {

/// Glorot/Xavier uniform init for a [fan_in, fan_out] weight matrix.
Matrix XavierUniform(size_t fan_in, size_t fan_out, Rng* rng);

/// He (Kaiming) Gaussian init, suited to ReLU networks.
Matrix HeGaussian(size_t fan_in, size_t fan_out, Rng* rng);

/// Inverse of softplus: returns x such that log(1+exp(x)) == y (y > 0).
/// Used to initialize raw weights of positive-reparameterized layers so the
/// *effective* weights start at a Xavier-like magnitude.
float InverseSoftplus(float y);

/// Raw-weight init for positive layers: effective weights softplus(raw) are
/// |Xavier| distributed.
Matrix PositiveRawInit(size_t fan_in, size_t fan_out, Rng* rng);

}  // namespace nn
}  // namespace simcard

#endif  // SIMCARD_NN_INIT_H_
