#include "nn/gradient_check.h"

#include <algorithm>
#include <cmath>

namespace simcard {
namespace nn {
namespace {

double SquaredErrorLoss(const Matrix& out, const Matrix& target) {
  double loss = 0.0;
  const float* o = out.data();
  const float* t = target.data();
  for (size_t i = 0; i < out.size(); ++i) {
    const double d = static_cast<double>(o[i]) - t[i];
    loss += 0.5 * d * d;
  }
  return loss;
}

Matrix SquaredErrorGrad(const Matrix& out, const Matrix& target) {
  Matrix g = out;
  const float* t = target.data();
  float* gd = g.data();
  for (size_t i = 0; i < g.size(); ++i) gd[i] -= t[i];
  return g;
}

double RelError(double analytic, double numeric) {
  const double denom =
      std::max({std::fabs(analytic), std::fabs(numeric), 1e-4});
  return std::fabs(analytic - numeric) / denom;
}

}  // namespace

GradCheckReport CheckLayerGradients(Layer* layer, const Matrix& input,
                                    const Matrix& target, Rng* rng,
                                    size_t max_checks_per_param, double h) {
  GradCheckReport report;

  // Analytic pass.
  for (Parameter* p : layer->Parameters()) p->ZeroGrad();
  Matrix out = layer->Forward(input);
  Matrix grad_in = layer->Backward(SquaredErrorGrad(out, target));

  // Parameter coordinates.
  for (Parameter* p : layer->Parameters()) {
    const size_t n = p->value().size();
    auto picks = rng->SampleWithoutReplacement(
        n, std::min(n, max_checks_per_param));
    for (size_t idx : picks) {
      float* w = p->value().data() + idx;
      const float saved = *w;
      *w = saved + static_cast<float>(h);
      const double lp = SquaredErrorLoss(layer->Forward(input), target);
      *w = saved - static_cast<float>(h);
      const double lm = SquaredErrorLoss(layer->Forward(input), target);
      *w = saved;
      const double numeric = (lp - lm) / (2.0 * h);
      const double analytic = p->grad().data()[idx];
      report.max_param_error =
          std::max(report.max_param_error, RelError(analytic, numeric));
      ++report.checked_params;
    }
  }

  // Input coordinates.
  {
    Matrix x = input;
    const size_t n = x.size();
    auto picks = rng->SampleWithoutReplacement(
        n, std::min(n, max_checks_per_param));
    for (size_t idx : picks) {
      float* xi = x.data() + idx;
      const float saved = *xi;
      *xi = saved + static_cast<float>(h);
      const double lp = SquaredErrorLoss(layer->Forward(x), target);
      *xi = saved - static_cast<float>(h);
      const double lm = SquaredErrorLoss(layer->Forward(x), target);
      *xi = saved;
      const double numeric = (lp - lm) / (2.0 * h);
      const double analytic = grad_in.data()[idx];
      report.max_input_error =
          std::max(report.max_input_error, RelError(analytic, numeric));
      ++report.checked_inputs;
    }
  }

  // Restore forward cache to match `input` for any subsequent Backward.
  layer->Forward(input);
  return report;
}

double CheckLossGradients(const std::function<double(bool)>& loss_fn,
                          const std::vector<Parameter*>& params, Rng* rng,
                          size_t max_checks_per_param, double h) {
  for (Parameter* p : params) p->ZeroGrad();
  loss_fn(/*fill_grads=*/true);
  // Snapshot the analytic gradients before finite differencing perturbs state.
  std::vector<Matrix> analytic;
  analytic.reserve(params.size());
  for (Parameter* p : params) analytic.push_back(p->grad());

  double max_err = 0.0;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Parameter* p = params[pi];
    const size_t n = p->value().size();
    auto picks = rng->SampleWithoutReplacement(
        n, std::min(n, max_checks_per_param));
    for (size_t idx : picks) {
      float* w = p->value().data() + idx;
      const float saved = *w;
      *w = saved + static_cast<float>(h);
      const double lp = loss_fn(false);
      *w = saved - static_cast<float>(h);
      const double lm = loss_fn(false);
      *w = saved;
      const double numeric = (lp - lm) / (2.0 * h);
      max_err = std::max(max_err, RelError(analytic[pi].data()[idx], numeric));
    }
  }
  return max_err;
}

}  // namespace nn
}  // namespace simcard
