// Output head that is provably monotone in the threshold embedding while
// remaining fully expressive in the other inputs.
//
// The paper requires estimates to be non-decreasing in tau (Section 2) and
// achieves it with positive weights on the threshold path plus a "learnable
// threshold before the Sigmoid" (Section 5.1). Forcing *all* output weights
// positive would also make the output monotone in the query/distance
// embeddings, which cripples discrimination (every output becomes an
// increasing function of the same shared hidden features). MonotoneHead
// instead splits the computation:
//
//   h_mono = ReLU(W_mono x),  W_mono rows for the tau slice positive
//   h_free = ReLU(W_free x_without_tau)         (unconstrained)
//   out    = V_pos h_mono + V_free h_free + b,  V_pos positive
//
// Every tau -> out path crosses only positive weights and monotone
// activations, so out is non-decreasing in each tau-embedding coordinate;
// the free branch never sees tau, so it is unconstrained.
#ifndef SIMCARD_NN_MONOTONE_HEAD_H_
#define SIMCARD_NN_MONOTONE_HEAD_H_

#include <memory>

#include "nn/linear.h"
#include "nn/positive_linear.h"

namespace simcard {
namespace nn {

/// \brief Two-branch monotone output head.
class MonotoneHead : public Layer {
 public:
  /// `tau_begin/tau_end` select the tau-embedding slice of the input.
  MonotoneHead(size_t in_dim, size_t tau_begin, size_t tau_end,
               size_t mono_hidden, size_t free_hidden, size_t out_dim,
               Rng* rng);

  Matrix Forward(const Matrix& input) override;
  Matrix Apply(const Matrix& input) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<const Parameter*> Parameters() const override;
  std::string Name() const override { return "MonotoneHead"; }
  size_t OutputCols(size_t input_cols) const override;

  /// Sets the additive output bias (warm start at mean log-card).
  void SetOutputBias(float value);

 private:
  size_t in_dim_;
  size_t tau_begin_;
  size_t tau_end_;
  size_t out_dim_;
  PartialPositiveLinear mono1_;
  PositiveLinear mono2_;
  Linear free1_;  // input: columns outside the tau slice
  Linear free2_;
  Matrix cached_mono_pre_;  // pre-ReLU activations of the mono branch
  Matrix cached_free_pre_;
};

}  // namespace nn
}  // namespace simcard

#endif  // SIMCARD_NN_MONOTONE_HEAD_H_
