#include "nn/pool1d.h"

#include <cassert>
#include <limits>

#include "tensor/ops.h"

namespace simcard {
namespace nn {

const char* PoolOpName(PoolOp op) {
  switch (op) {
    case PoolOp::kMax:
      return "MAX";
    case PoolOp::kAvg:
      return "AVG";
    case PoolOp::kSum:
      return "SUM";
  }
  return "?";
}

size_t Pool1D::ComputeOutLength(size_t in_length, size_t kernel,
                                size_t stride) {
  if (kernel == 0 || stride == 0 || kernel > in_length) return 0;
  return (in_length - kernel) / stride + 1;
}

Pool1D::Pool1D(size_t channels, size_t in_length, size_t kernel, size_t stride,
               PoolOp op)
    : channels_(channels),
      in_length_(in_length),
      kernel_(kernel),
      stride_(stride),
      op_(op),
      out_length_(ComputeOutLength(in_length, kernel, stride)) {
  assert(out_length_ > 0 && "infeasible pooling geometry");
}

Matrix Pool1D::Forward(const Matrix& input) {
  cached_batch_ = input.rows();
  return Compute(input, op_ == PoolOp::kMax ? &argmax_ : nullptr);
}

Matrix Pool1D::Apply(const Matrix& input) const {
  return Compute(input, nullptr);
}

Matrix Pool1D::Compute(const Matrix& input,
                       std::vector<uint32_t>* argmax) const {
  assert(input.cols() == channels_ * in_length_);
  const size_t batch = input.rows();
  Matrix out = Matrix::Uninit(batch, channels_ * out_length_);
  if (argmax != nullptr) {
    argmax->assign(batch * channels_ * out_length_, 0);
  }
  for (size_t b = 0; b < batch; ++b) {
    const float* x = input.Row(b);
    float* y = out.Row(b);
    for (size_t c = 0; c < channels_; ++c) {
      const float* xchan = x + c * in_length_;
      float* ychan = y + c * out_length_;
      for (size_t ot = 0; ot < out_length_; ++ot) {
        const size_t s = ot * stride_;
        switch (op_) {
          case PoolOp::kMax: {
            float best = -std::numeric_limits<float>::infinity();
            size_t best_t = s;
            for (size_t k = 0; k < kernel_; ++k) {
              if (xchan[s + k] > best) {
                best = xchan[s + k];
                best_t = s + k;
              }
            }
            ychan[ot] = best;
            if (argmax != nullptr) {
              (*argmax)[(b * channels_ + c) * out_length_ + ot] =
                  static_cast<uint32_t>(c * in_length_ + best_t);
            }
            break;
          }
          case PoolOp::kAvg: {
            float acc = 0.0f;
            for (size_t k = 0; k < kernel_; ++k) acc += xchan[s + k];
            ychan[ot] = acc / static_cast<float>(kernel_);
            break;
          }
          case PoolOp::kSum: {
            float acc = 0.0f;
            for (size_t k = 0; k < kernel_; ++k) acc += xchan[s + k];
            ychan[ot] = acc;
            break;
          }
        }
      }
    }
  }
  return out;
}

Matrix Pool1D::Backward(const Matrix& grad_output) {
  assert(grad_output.cols() == channels_ * out_length_);
  const size_t batch = grad_output.rows();
  assert(batch == cached_batch_);
  Matrix grad_input(batch, channels_ * in_length_);
  for (size_t b = 0; b < batch; ++b) {
    const float* gy = grad_output.Row(b);
    float* gx = grad_input.Row(b);
    for (size_t c = 0; c < channels_; ++c) {
      const float* gychan = gy + c * out_length_;
      float* gxchan = gx + c * in_length_;
      for (size_t ot = 0; ot < out_length_; ++ot) {
        const float g = gychan[ot];
        if (g == 0.0f) continue;
        const size_t s = ot * stride_;
        switch (op_) {
          case PoolOp::kMax:
            gx[argmax_[(b * channels_ + c) * out_length_ + ot]] += g;
            break;
          case PoolOp::kAvg: {
            const float share = g / static_cast<float>(kernel_);
            for (size_t k = 0; k < kernel_; ++k) gxchan[s + k] += share;
            break;
          }
          case PoolOp::kSum:
            for (size_t k = 0; k < kernel_; ++k) gxchan[s + k] += g;
            break;
        }
      }
    }
  }
  return grad_input;
}

size_t Pool1D::OutputCols(size_t input_cols) const {
  assert(input_cols == channels_ * in_length_);
  (void)input_cols;
  return channels_ * out_length_;
}

Matrix SumPoolRows(const Matrix& rows) { return SumRows(rows); }

}  // namespace nn
}  // namespace simcard
