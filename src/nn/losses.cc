#include "nn/losses.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/activations.h"

namespace simcard {
namespace nn {
namespace {

// Clamp for the exponentiation of log-card predictions. 25 covers
// cardinalities up to ~7e10, far beyond any dataset here; the clamp only
// keeps early-training gradients finite. The gradient is passed straight
// through the clamp so saturated predictions are still pushed back.
constexpr float kLogCardLo = -10.0f;
constexpr float kLogCardHi = 25.0f;

}  // namespace

double HybridCardLoss::Compute(const Matrix& pred, const Matrix& target,
                               Matrix* grad) const {
  assert(pred.rows() == target.rows());
  assert(pred.cols() == 1 && target.cols() == 1);
  const size_t batch = pred.rows();
  if (grad != nullptr) *grad = Matrix(batch, 1);
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (size_t i = 0; i < batch; ++i) {
    const float u =
        std::min(kLogCardHi, std::max(kLogCardLo, pred.at(i, 0)));
    const float e = std::exp(u);
    const float y = target.at(i, 0);
    const float yc = std::max(y, 0.1f);
    const float mape = std::fabs(e - y) / yc;
    float dmape = (e >= y ? 1.0f : -1.0f) * e / yc;
    float q;
    float dq;
    if (e >= yc) {
      q = e / yc;
      dq = e / yc;
    } else {
      q = yc / e;
      dq = -yc / e;
    }
    total += mape + lambda_ * q;
    if (grad != nullptr) {
      float g = dmape + lambda_ * dq;
      g = std::min(grad_clip_, std::max(-grad_clip_, g));
      grad->at(i, 0) = g * inv_batch;
    }
  }
  return total / static_cast<double>(batch);
}

double WeightedBceLoss::Compute(const Matrix& logits, const Matrix& labels,
                                const Matrix& penalty, Matrix* grad) const {
  assert(logits.rows() == labels.rows() && logits.cols() == labels.cols());
  assert(logits.rows() == penalty.rows() && logits.cols() == penalty.cols());
  const size_t total_elems = logits.size();
  if (grad != nullptr) *grad = Matrix(logits.rows(), logits.cols());
  const float inv_n = 1.0f / static_cast<float>(total_elems);
  const float* x = logits.data();
  const float* r = labels.data();
  const float* eps = penalty.data();
  float* g = grad != nullptr ? grad->data() : nullptr;
  double total = 0.0;
  for (size_t i = 0; i < total_elems; ++i) {
    const float prob = SigmoidScalar(x[i]);
    // Numerically stable: log(sigmoid(x)) = -softplus(-x),
    //                     log(1-sigmoid(x)) = -softplus(x).
    const float log_i = -SoftplusScalar(-x[i]);
    const float log_not_i = -SoftplusScalar(x[i]);
    const float w_pos = 1.0f + eps[i];
    total += -(r[i] * log_i * w_pos + (1.0f - r[i]) * log_not_i);
    if (g != nullptr) {
      g[i] = (r[i] * w_pos * (prob - 1.0f) + (1.0f - r[i]) * prob) * inv_n;
    }
  }
  return total * inv_n;
}

double MseLoss::Compute(const Matrix& pred, const Matrix& target,
                        Matrix* grad) const {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  const size_t n = pred.size();
  if (grad != nullptr) *grad = Matrix(pred.rows(), pred.cols());
  const float* p = pred.data();
  const float* t = target.data();
  float* g = grad != nullptr ? grad->data() : nullptr;
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (size_t i = 0; i < n; ++i) {
    const float d = p[i] - t[i];
    total += static_cast<double>(d) * d;
    if (g != nullptr) g[i] = 2.0f * d * inv_n;
  }
  return total / static_cast<double>(n);
}

Matrix MinMaxNormalizeRows(const Matrix& card) {
  Matrix out(card.rows(), card.cols());
  for (size_t r = 0; r < card.rows(); ++r) {
    const float* src = card.Row(r);
    float lo = src[0];
    float hi = src[0];
    for (size_t c = 1; c < card.cols(); ++c) {
      lo = std::min(lo, src[c]);
      hi = std::max(hi, src[c]);
    }
    float* dst = out.Row(r);
    const float span = hi - lo;
    if (span <= 0.0f) continue;  // constant row -> zero weights
    for (size_t c = 0; c < card.cols(); ++c) {
      dst[c] = (src[c] - lo) / span;
    }
  }
  return out;
}

}  // namespace nn
}  // namespace simcard
