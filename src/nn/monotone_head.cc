#include "nn/monotone_head.h"

#include <cassert>

#include "tensor/ops.h"

namespace simcard {
namespace nn {
namespace {

// Drops the tau slice from a batch of rows.
Matrix DropSlice(const Matrix& input, size_t begin, size_t end) {
  Matrix out = Matrix::Uninit(input.rows(), input.cols() - (end - begin));
  for (size_t r = 0; r < input.rows(); ++r) {
    const float* src = input.Row(r);
    float* dst = out.Row(r);
    for (size_t c = 0; c < begin; ++c) dst[c] = src[c];
    for (size_t c = end; c < input.cols(); ++c) {
      dst[begin + (c - end)] = src[c];
    }
  }
  return out;
}

// Scatters a gradient over the reduced (tau-less) coordinates back into the
// full coordinate space, adding into `full`.
void ScatterSliceGrad(const Matrix& reduced, size_t begin, size_t end,
                      Matrix* full) {
  for (size_t r = 0; r < reduced.rows(); ++r) {
    const float* src = reduced.Row(r);
    float* dst = full->Row(r);
    for (size_t c = 0; c < begin; ++c) dst[c] += src[c];
    for (size_t c = end; c < full->cols(); ++c) {
      dst[c] += src[begin + (c - end)];
    }
  }
}

void ReluInPlace(Matrix* m) {
  float* d = m->data();
  for (size_t i = 0; i < m->size(); ++i) {
    if (d[i] < 0.0f) d[i] = 0.0f;
  }
}

void ReluBackInPlace(const Matrix& pre, Matrix* grad) {
  const float* p = pre.data();
  float* g = grad->data();
  for (size_t i = 0; i < grad->size(); ++i) {
    if (p[i] <= 0.0f) g[i] = 0.0f;
  }
}

}  // namespace

MonotoneHead::MonotoneHead(size_t in_dim, size_t tau_begin, size_t tau_end,
                           size_t mono_hidden, size_t free_hidden,
                           size_t out_dim, Rng* rng)
    : in_dim_(in_dim),
      tau_begin_(tau_begin),
      tau_end_(tau_end),
      out_dim_(out_dim),
      mono1_(in_dim, mono_hidden, tau_begin, tau_end, rng),
      mono2_(mono_hidden, out_dim, rng),
      free1_(in_dim - (tau_end - tau_begin), free_hidden, rng),
      free2_(free_hidden, out_dim, rng) {
  assert(tau_begin_ <= tau_end_ && tau_end_ <= in_dim_);
}

Matrix MonotoneHead::Forward(const Matrix& input) {
  assert(input.cols() == in_dim_);
  cached_mono_pre_ = mono1_.Forward(input);
  Matrix h_mono = cached_mono_pre_;
  ReluInPlace(&h_mono);

  cached_free_pre_ = free1_.Forward(DropSlice(input, tau_begin_, tau_end_));
  Matrix h_free = cached_free_pre_;
  ReluInPlace(&h_free);

  return Add(mono2_.Forward(h_mono), free2_.Forward(h_free));
}

Matrix MonotoneHead::Apply(const Matrix& input) const {
  assert(input.cols() == in_dim_);
  Matrix h_mono = mono1_.Apply(input);
  ReluInPlace(&h_mono);
  Matrix h_free = free1_.Apply(DropSlice(input, tau_begin_, tau_end_));
  ReluInPlace(&h_free);
  return Add(mono2_.Apply(h_mono), free2_.Apply(h_free));
}

Matrix MonotoneHead::Backward(const Matrix& grad_output) {
  assert(grad_output.cols() == out_dim_);
  // Mono branch.
  Matrix g_mono = mono2_.Backward(grad_output);
  ReluBackInPlace(cached_mono_pre_, &g_mono);
  Matrix grad_input = mono1_.Backward(g_mono);
  // Free branch.
  Matrix g_free = free2_.Backward(grad_output);
  ReluBackInPlace(cached_free_pre_, &g_free);
  Matrix g_free_in = free1_.Backward(g_free);
  ScatterSliceGrad(g_free_in, tau_begin_, tau_end_, &grad_input);
  return grad_input;
}

std::vector<Parameter*> MonotoneHead::Parameters() {
  std::vector<Parameter*> out;
  for (Layer* layer :
       {static_cast<Layer*>(&mono1_), static_cast<Layer*>(&mono2_),
        static_cast<Layer*>(&free1_), static_cast<Layer*>(&free2_)}) {
    auto ps = layer->Parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

std::vector<const Parameter*> MonotoneHead::Parameters() const {
  std::vector<const Parameter*> out;
  for (const Layer* layer :
       {static_cast<const Layer*>(&mono1_), static_cast<const Layer*>(&mono2_),
        static_cast<const Layer*>(&free1_),
        static_cast<const Layer*>(&free2_)}) {
    auto ps = layer->Parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

size_t MonotoneHead::OutputCols(size_t input_cols) const {
  assert(input_cols == in_dim_);
  (void)input_cols;
  return out_dim_;
}

void MonotoneHead::SetOutputBias(float value) {
  free2_.SetBias(value);
  mono2_.SetBias(0.0f);
}

}  // namespace nn
}  // namespace simcard
