#include "nn/linear.h"

#include <cassert>

#include "nn/init.h"
#include "tensor/ops.h"

namespace simcard {
namespace nn {

Linear::Linear(size_t in_dim, size_t out_dim, Rng* rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_("linear.weight", XavierUniform(in_dim, out_dim, rng)),
      bias_("linear.bias", Matrix(1, out_dim)) {}

Matrix Linear::Forward(const Matrix& input) {
  cached_input_ = input;
  return Apply(input);
}

Matrix Linear::Apply(const Matrix& input) const {
  assert(input.cols() == in_dim_);
  return AddRowBroadcast(MatMul(input, weight_.value()), bias_.value());
}

Matrix Linear::Backward(const Matrix& grad_output) {
  assert(grad_output.cols() == out_dim_);
  assert(grad_output.rows() == cached_input_.rows());
  AddScaledInPlace(&weight_.grad(),
                   MatMulTransposeA(cached_input_, grad_output), 1.0f);
  AddScaledInPlace(&bias_.grad(), SumRows(grad_output), 1.0f);
  return MatMulTransposeB(grad_output, weight_.value());
}

std::vector<Parameter*> Linear::Parameters() { return {&weight_, &bias_}; }

std::vector<const Parameter*> Linear::Parameters() const {
  return {&weight_, &bias_};
}

size_t Linear::OutputCols(size_t input_cols) const {
  assert(input_cols == in_dim_);
  (void)input_cols;
  return out_dim_;
}

void Linear::SetBias(float value) { bias_.value().Fill(value); }

}  // namespace nn
}  // namespace simcard
