#include "nn/dropout.h"

#include <cassert>

#include "tensor/ops.h"

namespace simcard {
namespace nn {

Dropout::Dropout(float rate, uint64_t seed) : rate_(rate), rng_(seed) {
  assert(rate_ >= 0.0f && rate_ < 1.0f);
}

Matrix Dropout::Forward(const Matrix& input) {
  if (!training_ || rate_ == 0.0f) {
    mask_ = Matrix();
    return input;
  }
  mask_ = Matrix(input.rows(), input.cols());
  const float keep_scale = 1.0f / (1.0f - rate_);
  float* m = mask_.data();
  for (size_t i = 0; i < mask_.size(); ++i) {
    m[i] = rng_.NextBernoulli(rate_) ? 0.0f : keep_scale;
  }
  return Mul(input, mask_);
}

Matrix Dropout::Backward(const Matrix& grad_output) {
  if (mask_.empty()) return grad_output;
  assert(grad_output.rows() == mask_.rows() &&
         grad_output.cols() == mask_.cols());
  return Mul(grad_output, mask_);
}

}  // namespace nn
}  // namespace simcard
