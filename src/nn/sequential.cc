#include "nn/sequential.h"

namespace simcard {
namespace nn {

Layer* Sequential::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return layers_.back().get();
}

Matrix Sequential::Forward(const Matrix& input) {
  Matrix x = input;
  for (auto& layer : layers_) {
    x = layer->Forward(x);
  }
  return x;
}

Matrix Sequential::Apply(const Matrix& input) const {
  // The first non-in-place layer consumes `input` directly; after that the
  // intermediate is ours, so element-wise layers mutate it in place instead
  // of copying it. Values are identical to chaining Apply calls.
  Matrix x;
  bool own = false;
  for (const auto& layer : layers_) {
    if (!own) {
      if (layer->SupportsInPlaceApply()) {
        x = input;
        own = true;
        layer->ApplyInPlace(&x);
      } else {
        x = layer->Apply(input);
        own = true;
      }
    } else if (layer->SupportsInPlaceApply()) {
      layer->ApplyInPlace(&x);
    } else {
      x = layer->Apply(x);
    }
  }
  if (!own) return input;
  return x;
}

Matrix Sequential::Backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::Parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    auto ps = layer->Parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

std::vector<const Parameter*> Sequential::Parameters() const {
  std::vector<const Parameter*> out;
  for (const auto& layer : layers_) {
    auto ps = static_cast<const Layer*>(layer.get())->Parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

size_t Sequential::OutputCols(size_t input_cols) const {
  size_t cols = input_cols;
  for (const auto& layer : layers_) {
    cols = layer->OutputCols(cols);
  }
  return cols;
}

void Sequential::Serialize(Serializer* out) const {
  out->WriteU64(layers_.size());
  for (const auto& layer : layers_) {
    out->WriteString(layer->Name());
    layer->Serialize(out);
  }
}

Status Sequential::Deserialize(Deserializer* in) {
  uint64_t n = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&n));
  if (n != layers_.size()) {
    return Status::Internal("sequential layer count mismatch");
  }
  for (auto& layer : layers_) {
    std::string name;
    SIMCARD_RETURN_IF_ERROR(in->ReadString(&name));
    if (name != layer->Name()) {
      return Status::Internal("sequential layer type mismatch: expected " +
                              layer->Name() + ", found " + name);
    }
    SIMCARD_RETURN_IF_ERROR(layer->Deserialize(in));
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace simcard
