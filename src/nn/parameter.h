// Trainable parameter: a value matrix plus its gradient accumulator.
#ifndef SIMCARD_NN_PARAMETER_H_
#define SIMCARD_NN_PARAMETER_H_

#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace simcard {
namespace nn {

/// \brief A named trainable tensor. Layers own their Parameters; optimizers
/// hold raw pointers to them and must not outlive the owning layer.
class Parameter {
 public:
  Parameter() = default;
  Parameter(std::string name, Matrix value)
      : name_(std::move(name)),
        value_(std::move(value)),
        grad_(value_.rows(), value_.cols()) {}

  const std::string& name() const { return name_; }
  Matrix& value() { return value_; }
  const Matrix& value() const { return value_; }
  Matrix& grad() { return grad_; }
  const Matrix& grad() const { return grad_; }

  /// Resets the gradient accumulator to zero.
  void ZeroGrad();

  /// Number of scalar weights (used for model-size accounting, Table 5).
  size_t NumScalars() const { return value_.size(); }

  void Serialize(Serializer* out) const;
  Status Deserialize(Deserializer* in);

 private:
  std::string name_;
  Matrix value_;
  Matrix grad_;
};

/// Copies every parameter's value matrix (a training checkpoint — gradients
/// and optimizer state are not captured; restoring implies a fresh
/// optimizer). Used by the divergence watchdog to roll back a model whose
/// loss went NaN or exploded.
std::vector<Matrix> SnapshotParameters(const std::vector<Parameter*>& params);

/// Restores values captured by SnapshotParameters. `snapshot` must come
/// from the same parameter list (checked by shape).
void RestoreParameters(const std::vector<Matrix>& snapshot,
                       const std::vector<Parameter*>& params);

}  // namespace nn
}  // namespace simcard

#endif  // SIMCARD_NN_PARAMETER_H_
