// Layer interface for the manual-backpropagation framework.
//
// simcard's models (the paper's E1..E6, F, G modules) are compositions of
// small layers. Each layer implements an exact Forward/Backward pair; the
// Backward of every layer is verified against numerical differentiation in
// tests/nn/gradient_check_test.cc. There is no tape/autograd: composite
// models (towers + concat + head) wire gradients explicitly, which keeps the
// framework small and the memory profile predictable.
#ifndef SIMCARD_NN_LAYER_H_
#define SIMCARD_NN_LAYER_H_

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/matrix.h"

namespace simcard {
namespace nn {

/// \brief One differentiable computation stage.
///
/// Contract: Backward(g) must be called after Forward(x) with g shaped like
/// Forward's output; it accumulates parameter gradients (+=) and returns the
/// gradient with respect to the input. Layers cache whatever Forward state
/// Backward needs, so a layer instance is not reentrant across batches.
///
/// Inference without that restriction goes through Apply: a const,
/// cache-free forward pass (dropout and friends behave as in inference
/// mode) that touches no per-layer scratch, so any number of threads may
/// Apply one shared layer concurrently. Forward is implemented as
/// "cache the state Backward needs, then Apply" in every layer, keeping the
/// two paths numerically identical by construction.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch (rows = batch).
  virtual Matrix Forward(const Matrix& input) = 0;

  /// Stateless forward pass: identical output to Forward (inference mode)
  /// but writes no cached state. Safe to call concurrently from many
  /// threads on one shared layer; does not arm Backward.
  virtual Matrix Apply(const Matrix& input) const = 0;

  /// True when ApplyInPlace produces Apply's exact output without a fresh
  /// allocation (element-wise layers). Sequential::Apply uses it to mutate
  /// the flowing intermediate instead of copying it per activation.
  virtual bool SupportsInPlaceApply() const { return false; }

  /// In-place twin of Apply for layers that report SupportsInPlaceApply.
  /// The default falls back to Apply for the rest.
  virtual void ApplyInPlace(Matrix* m) const { *m = Apply(*m); }

  /// Propagates `grad_output` through the cached forward pass; accumulates
  /// parameter gradients and returns the gradient w.r.t. the input.
  virtual Matrix Backward(const Matrix& grad_output) = 0;

  /// Trainable parameters, if any. The non-const overload hands mutable
  /// pointers to optimizers; the const overload serves read-only uses
  /// (serialization, size accounting).
  virtual std::vector<Parameter*> Parameters() { return {}; }
  virtual std::vector<const Parameter*> Parameters() const { return {}; }

  /// Layer type tag for debugging/serialization sanity checks.
  virtual std::string Name() const = 0;

  /// Output width for a given input width (used by model builders).
  virtual size_t OutputCols(size_t input_cols) const = 0;

  /// Persists trainable state (default: every parameter in order).
  virtual void Serialize(Serializer* out) const;

  /// Restores trainable state written by Serialize.
  virtual Status Deserialize(Deserializer* in);
};

/// Total scalar-parameter count over a set of layers.
size_t CountScalars(const std::vector<Parameter*>& params);
size_t CountScalars(const std::vector<const Parameter*>& params);

inline void Layer::Serialize(Serializer* out) const {
  auto params = Parameters();
  out->WriteU64(params.size());
  for (const Parameter* p : params) p->Serialize(out);
}

inline Status Layer::Deserialize(Deserializer* in) {
  auto params = Parameters();
  uint64_t n = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&n));
  if (n != params.size()) {
    return Status::Internal("layer " + Name() + ": parameter count mismatch");
  }
  for (Parameter* p : params) {
    SIMCARD_RETURN_IF_ERROR(p->Deserialize(in));
  }
  return Status::OK();
}

inline size_t CountScalars(const std::vector<Parameter*>& params) {
  size_t n = 0;
  for (const Parameter* p : params) n += p->NumScalars();
  return n;
}

inline size_t CountScalars(const std::vector<const Parameter*>& params) {
  size_t n = 0;
  for (const Parameter* p : params) n += p->NumScalars();
  return n;
}

}  // namespace nn
}  // namespace simcard

#endif  // SIMCARD_NN_LAYER_H_
