#include "nn/init.h"

#include <algorithm>
#include <cmath>

namespace simcard {
namespace nn {

Matrix XavierUniform(size_t fan_in, size_t fan_out, Rng* rng) {
  Matrix w(fan_in, fan_out);
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  float* d = w.data();
  for (size_t i = 0; i < w.size(); ++i) {
    d[i] = limit * (2.0f * rng->NextFloat() - 1.0f);
  }
  return w;
}

Matrix HeGaussian(size_t fan_in, size_t fan_out, Rng* rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Matrix::Gaussian(fan_in, fan_out, stddev, rng);
}

float InverseSoftplus(float y) {
  // softplus(x) = log1p(exp(x)); inverse is log(exp(y) - 1) = y + log1p(-exp(-y)).
  y = std::max(y, 1e-6f);
  if (y > 20.0f) return y;  // softplus is identity-like far from zero
  return y + std::log1p(-std::exp(-y));
}

Matrix PositiveRawInit(size_t fan_in, size_t fan_out, Rng* rng) {
  Matrix w = XavierUniform(fan_in, fan_out, rng);
  float* d = w.data();
  for (size_t i = 0; i < w.size(); ++i) {
    d[i] = InverseSoftplus(std::fabs(d[i]) + 1e-3f);
  }
  return w;
}

}  // namespace nn
}  // namespace simcard
