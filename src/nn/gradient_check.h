// Numerical gradient verification.
//
// Every layer's Backward is checked in tests against central finite
// differences through an arbitrary scalar loss. This is the safety net that
// lets simcard implement backprop by hand instead of depending on libtorch.
#ifndef SIMCARD_NN_GRADIENT_CHECK_H_
#define SIMCARD_NN_GRADIENT_CHECK_H_

#include <functional>

#include "nn/layer.h"

namespace simcard {
namespace nn {

/// \brief Result of one gradient check.
struct GradCheckReport {
  double max_param_error = 0.0;  ///< worst relative error over checked weights
  double max_input_error = 0.0;  ///< worst relative error over input coords
  size_t checked_params = 0;
  size_t checked_inputs = 0;
};

/// \brief Compares `layer`'s analytic gradients against central differences.
///
/// The scalar objective is 0.5*||Forward(x) - target||^2 summed over all
/// elements, whose output-gradient is (Forward(x) - target). At most
/// `max_checks_per_param` randomly-chosen coordinates per parameter (and of
/// the input) are probed with step `h`. Relative error uses an absolute
/// floor so near-zero gradients do not blow the ratio up.
GradCheckReport CheckLayerGradients(Layer* layer, const Matrix& input,
                                    const Matrix& target, Rng* rng,
                                    size_t max_checks_per_param = 24,
                                    double h = 1e-3);

/// \brief Checks analytic gradients of a scalar loss functor.
///
/// `loss_fn` must return the loss for the current parameter values and, when
/// `fill_grads` is true, leave fresh gradients accumulated on `params`
/// (starting from zero). Used to verify the hybrid and BCE losses end-to-end
/// through whole models.
double CheckLossGradients(const std::function<double(bool fill_grads)>& loss_fn,
                          const std::vector<Parameter*>& params, Rng* rng,
                          size_t max_checks_per_param = 16, double h = 1e-3);

}  // namespace nn
}  // namespace simcard

#endif  // SIMCARD_NN_GRADIENT_CHECK_H_
