// Inverted dropout.
//
// The paper attributes part of its inference speed to "the dropout for
// DNN" (Exp-9); simcard's default models train without it (they are small
// enough that early stopping regularizes adequately), but the layer is part
// of the framework for larger user-defined towers. Uses inverted scaling so
// inference is a no-op: call SetTraining(false) before evaluation.
#ifndef SIMCARD_NN_DROPOUT_H_
#define SIMCARD_NN_DROPOUT_H_

#include "nn/layer.h"

namespace simcard {
namespace nn {

/// \brief Inverted dropout with per-layer RNG stream.
class Dropout : public Layer {
 public:
  /// `rate` in [0, 1): probability of zeroing each activation.
  Dropout(float rate, uint64_t seed);

  Matrix Forward(const Matrix& input) override;
  /// Inference semantics: inverted dropout is the identity at eval time.
  Matrix Apply(const Matrix& input) const override { return input; }
  bool SupportsInPlaceApply() const override { return true; }
  void ApplyInPlace(Matrix*) const override {}  // identity at eval time
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "Dropout"; }
  size_t OutputCols(size_t input_cols) const override { return input_cols; }

  /// Training mode applies the mask; inference mode is the identity.
  void SetTraining(bool training) { training_ = training; }
  bool training() const { return training_; }

 private:
  float rate_;
  bool training_ = true;
  Rng rng_;
  Matrix mask_;  // cached keep/scale mask from the last training forward
};

}  // namespace nn
}  // namespace simcard

#endif  // SIMCARD_NN_DROPOUT_H_
