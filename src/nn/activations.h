// Element-wise activation layers. All of these are monotone non-decreasing,
// which the monotonicity guarantee of the threshold path relies on.
#ifndef SIMCARD_NN_ACTIVATIONS_H_
#define SIMCARD_NN_ACTIVATIONS_H_

#include "nn/layer.h"

namespace simcard {
namespace nn {

/// \brief max(0, x).
class Relu : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  Matrix Apply(const Matrix& input) const override;
  bool SupportsInPlaceApply() const override { return true; }
  void ApplyInPlace(Matrix* m) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "Relu"; }
  size_t OutputCols(size_t input_cols) const override { return input_cols; }

 private:
  Matrix cached_input_;
};

/// \brief Logistic sigmoid.
class Sigmoid : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  Matrix Apply(const Matrix& input) const override;
  bool SupportsInPlaceApply() const override { return true; }
  void ApplyInPlace(Matrix* m) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "Sigmoid"; }
  size_t OutputCols(size_t input_cols) const override { return input_cols; }

 private:
  Matrix cached_output_;
};

/// \brief Hyperbolic tangent.
class Tanh : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  Matrix Apply(const Matrix& input) const override;
  bool SupportsInPlaceApply() const override { return true; }
  void ApplyInPlace(Matrix* m) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "Tanh"; }
  size_t OutputCols(size_t input_cols) const override { return input_cols; }

 private:
  Matrix cached_output_;
};

/// \brief log(1 + e^x); smooth positive activation.
class Softplus : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  Matrix Apply(const Matrix& input) const override;
  bool SupportsInPlaceApply() const override { return true; }
  void ApplyInPlace(Matrix* m) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "Softplus"; }
  size_t OutputCols(size_t input_cols) const override { return input_cols; }

 private:
  Matrix cached_input_;
};

/// Scalar helpers shared with loss code.
float SigmoidScalar(float x);
float SoftplusScalar(float x);

}  // namespace nn
}  // namespace simcard

#endif  // SIMCARD_NN_ACTIVATIONS_H_
