// Loss functions.
//
// HybridCardLoss is the paper's regression loss (Section 3.1):
//     J = |e^u - y| / y  +  lambda * max(e^u, y) / min(e^u, y)
// where u is the model's log-cardinality prediction and y the true
// cardinality (floored at 0.1 when zero, per Section 2). The MAPE term
// punishes relative error; the Q-error term counteracts MAPE's tendency to
// underestimate. The loss is computed on the *exponentiated* output, so the
// model regresses log(card), which compresses the zero-to-millions label
// range (the paper's answer to "hard to fit them all").
//
// WeightedBceLoss is the paper's global-model loss (Section 3.3):
//     -1/(n*Bs) * sum  R*log(I)*(1+eps) + (1-R)*log(1-I)
// with eps the min-max-normalized per-query segment cardinality; the (1+eps)
// term penalizes missing segments that hold many similar objects (Exp-6).
#ifndef SIMCARD_NN_LOSSES_H_
#define SIMCARD_NN_LOSSES_H_

#include "tensor/matrix.h"

namespace simcard {
namespace nn {

/// \brief Regression loss on log-cardinality predictions.
class HybridCardLoss {
 public:
  /// `lambda` weights the Q-error term; `grad_clip` bounds per-sample
  /// gradients (e^u explodes early in training otherwise).
  explicit HybridCardLoss(float lambda = 0.2f, float grad_clip = 5.0f)
      : lambda_(lambda), grad_clip_(grad_clip) {}

  /// `pred` is [B,1] log-card estimates u; `target` is [B,1] true (raw)
  /// cardinalities. Returns the mean loss; writes d(mean loss)/du into
  /// `grad` ([B,1]) when non-null.
  double Compute(const Matrix& pred, const Matrix& target, Matrix* grad) const;

  float lambda() const { return lambda_; }

 private:
  float lambda_;
  float grad_clip_;
};

/// \brief Cardinality-weighted binary cross-entropy on logits.
class WeightedBceLoss {
 public:
  /// `logits` is [B,n] pre-sigmoid segment scores; `labels` is [B,n] in
  /// {0,1}; `penalty` is [B,n] eps weights in [0,1] (pass an all-zero matrix
  /// to disable the paper's penalty — the Exp-6 ablation). Returns mean
  /// loss; writes d(mean)/dlogit into `grad` when non-null.
  double Compute(const Matrix& logits, const Matrix& labels,
                 const Matrix& penalty, Matrix* grad) const;
};

/// \brief Plain mean-squared-error, used by unit tests and the tuner's
/// sanity fits.
class MseLoss {
 public:
  double Compute(const Matrix& pred, const Matrix& target, Matrix* grad) const;
};

/// Min-max normalizes each row of `card` ([B,n] per-segment cardinalities)
/// into the paper's eps weights. Rows with a constant value map to zeros.
Matrix MinMaxNormalizeRows(const Matrix& card);

}  // namespace nn
}  // namespace simcard

#endif  // SIMCARD_NN_LOSSES_H_
