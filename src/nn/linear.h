// Fully-connected layer: y = x W + b.
#ifndef SIMCARD_NN_LINEAR_H_
#define SIMCARD_NN_LINEAR_H_

#include "nn/layer.h"

namespace simcard {
namespace nn {

/// \brief Affine layer with weight [in_dim, out_dim] and bias [1, out_dim].
class Linear : public Layer {
 public:
  Linear(size_t in_dim, size_t out_dim, Rng* rng);

  Matrix Forward(const Matrix& input) override;
  Matrix Apply(const Matrix& input) const override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<const Parameter*> Parameters() const override;
  std::string Name() const override { return "Linear"; }
  size_t OutputCols(size_t input_cols) const override;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

  /// Overwrites the bias (used to warm-start the output head at the mean
  /// log-cardinality of the training labels).
  void SetBias(float value);

 private:
  size_t in_dim_;
  size_t out_dim_;
  Parameter weight_;
  Parameter bias_;
  Matrix cached_input_;
};

}  // namespace nn
}  // namespace simcard

#endif  // SIMCARD_NN_LINEAR_H_
