#include "nn/conv1d.h"

#include <algorithm>
#include <cassert>

#include "nn/init.h"

namespace simcard {
namespace nn {

size_t Conv1D::ComputeOutLength(size_t in_length, size_t kernel, size_t stride,
                                size_t pad) {
  const size_t padded = in_length + 2 * pad;
  if (kernel == 0 || stride == 0 || kernel > padded) return 0;
  return (padded - kernel) / stride + 1;
}

Conv1D::Conv1D(size_t in_channels, size_t in_length, size_t out_channels,
               size_t kernel, size_t stride, size_t pad, Rng* rng)
    : in_channels_(in_channels),
      in_length_(in_length),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      out_length_(ComputeOutLength(in_length, kernel, stride, pad)),
      weight_("conv1d.weight",
              XavierUniform(in_channels * kernel, out_channels, rng)),
      bias_("conv1d.bias", Matrix(1, out_channels)) {
  assert(out_length_ > 0 && "infeasible conv geometry");
  // Store the weight as [out_channels, in_channels*kernel] for row-major
  // filter access in the inner loop.
  Matrix w(out_channels_, in_channels_ * kernel_);
  for (size_t oc = 0; oc < out_channels_; ++oc) {
    for (size_t i = 0; i < in_channels_ * kernel_; ++i) {
      w.at(oc, i) = weight_.value().at(i, oc);
    }
  }
  weight_ = Parameter("conv1d.weight", std::move(w));
}

Matrix Conv1D::Forward(const Matrix& input) {
  cached_input_ = input;
  return Apply(input);
}

Matrix Conv1D::Apply(const Matrix& input) const {
  assert(input.cols() == in_channels_ * in_length_);
  const size_t batch = input.rows();
  Matrix out = Matrix::Uninit(batch, out_channels_ * out_length_);
  const Matrix& w = weight_.value();
  const float* bias = bias_.value().data();
  for (size_t b = 0; b < batch; ++b) {
    const float* x = input.Row(b);
    float* y = out.Row(b);
    for (size_t oc = 0; oc < out_channels_; ++oc) {
      const float* filter = w.Row(oc);
      float* ychan = y + oc * out_length_;
      for (size_t ot = 0; ot < out_length_; ++ot) {
        // Window start in (unpadded) input coordinates; may be negative.
        const long s =
            static_cast<long>(ot * stride_) - static_cast<long>(pad_);
        // Valid tap range [k_lo, k_hi): the padding boundary conditions are
        // hoisted out of the accumulation loop, which walks the same taps
        // in the same ascending (ic, k) order as the branchy form — the
        // accumulated sum is bitwise identical.
        const size_t k_lo = s < 0 ? static_cast<size_t>(-s) : 0;
        const long hi = static_cast<long>(in_length_) - s;
        const size_t k_hi =
            hi <= 0 ? k_lo : std::min(kernel_, static_cast<size_t>(hi));
        float acc = bias[oc];
        for (size_t ic = 0; ic < in_channels_; ++ic) {
          const float* xchan = x + ic * in_length_;
          const float* fk = filter + ic * kernel_;
          for (size_t k = k_lo; k < k_hi; ++k) {
            acc += fk[k] * xchan[static_cast<size_t>(s + static_cast<long>(k))];
          }
        }
        ychan[ot] = acc;
      }
    }
  }
  return out;
}

Matrix Conv1D::Backward(const Matrix& grad_output) {
  assert(grad_output.cols() == out_channels_ * out_length_);
  const size_t batch = grad_output.rows();
  assert(batch == cached_input_.rows());
  Matrix grad_input(batch, in_channels_ * in_length_);
  Matrix& gw = weight_.grad();
  float* gb = bias_.grad().data();
  const Matrix& w = weight_.value();
  for (size_t b = 0; b < batch; ++b) {
    const float* x = cached_input_.Row(b);
    const float* gy = grad_output.Row(b);
    float* gx = grad_input.Row(b);
    for (size_t oc = 0; oc < out_channels_; ++oc) {
      const float* filter = w.Row(oc);
      float* gfilter = gw.Row(oc);
      const float* gychan = gy + oc * out_length_;
      for (size_t ot = 0; ot < out_length_; ++ot) {
        const float g = gychan[ot];
        if (g == 0.0f) continue;
        gb[oc] += g;
        const long s =
            static_cast<long>(ot * stride_) - static_cast<long>(pad_);
        for (size_t ic = 0; ic < in_channels_; ++ic) {
          const float* xchan = x + ic * in_length_;
          float* gxchan = gx + ic * in_length_;
          const float* fk = filter + ic * kernel_;
          float* gfk = gfilter + ic * kernel_;
          for (size_t k = 0; k < kernel_; ++k) {
            const long t = s + static_cast<long>(k);
            if (t < 0 || t >= static_cast<long>(in_length_)) continue;
            gfk[k] += g * xchan[t];
            gxchan[t] += g * fk[k];
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<Parameter*> Conv1D::Parameters() { return {&weight_, &bias_}; }

std::vector<const Parameter*> Conv1D::Parameters() const {
  return {&weight_, &bias_};
}

size_t Conv1D::OutputCols(size_t input_cols) const {
  assert(input_cols == in_channels_ * in_length_);
  (void)input_cols;
  return out_channels_ * out_length_;
}

}  // namespace nn
}  // namespace simcard
