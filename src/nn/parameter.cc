#include "nn/parameter.h"

namespace simcard {
namespace nn {

void Parameter::ZeroGrad() { grad_.Fill(0.0f); }

void Parameter::Serialize(Serializer* out) const {
  out->WriteString(name_);
  value_.Serialize(out);
}

Status Parameter::Deserialize(Deserializer* in) {
  SIMCARD_RETURN_IF_ERROR(in->ReadString(&name_));
  SIMCARD_RETURN_IF_ERROR(value_.Deserialize(in));
  grad_ = Matrix(value_.rows(), value_.cols());
  return Status::OK();
}

}  // namespace nn
}  // namespace simcard
