#include "nn/parameter.h"

namespace simcard {
namespace nn {

void Parameter::ZeroGrad() { grad_.Fill(0.0f); }

void Parameter::Serialize(Serializer* out) const {
  out->WriteString(name_);
  value_.Serialize(out);
}

Status Parameter::Deserialize(Deserializer* in) {
  SIMCARD_RETURN_IF_ERROR(in->ReadString(&name_));
  SIMCARD_RETURN_IF_ERROR(value_.Deserialize(in));
  grad_ = Matrix(value_.rows(), value_.cols());
  return Status::OK();
}

std::vector<Matrix> SnapshotParameters(
    const std::vector<Parameter*>& params) {
  std::vector<Matrix> snapshot;
  snapshot.reserve(params.size());
  for (const Parameter* p : params) {
    snapshot.push_back(p->value());
  }
  return snapshot;
}

void RestoreParameters(const std::vector<Matrix>& snapshot,
                       const std::vector<Parameter*>& params) {
  assert(snapshot.size() == params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    assert(snapshot[i].rows() == params[i]->value().rows() &&
           snapshot[i].cols() == params[i]->value().cols());
    params[i]->value() = snapshot[i];
  }
}

}  // namespace nn
}  // namespace simcard
