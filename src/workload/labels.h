// Flattening labeled workloads into per-sample training views.
//
// A "sample" is one (query, tau) pair. Estimators gather query feature rows
// by index at batch time instead of duplicating them 10x in memory.
#ifndef SIMCARD_WORKLOAD_LABELS_H_
#define SIMCARD_WORKLOAD_LABELS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"
#include "workload/queries.h"

namespace simcard {

/// \brief One flattened supervision sample.
struct SampleRef {
  uint32_t query_row = 0;  ///< row in the query matrix
  float tau = 0.0f;
  float card = 0.0f;  ///< target cardinality for this sample's scope
};

/// Flattens (query, tau, card) triples over the whole dataset.
std::vector<SampleRef> FlattenSearch(const std::vector<LabeledQuery>& queries);

/// Flattens per-segment samples for local-model training: card becomes the
/// segment-level cardinality. Zero-cardinality samples are kept with
/// probability `zero_keep_prob` (they teach the local model to output ~0
/// for queries the global model routes in by mistake, without swamping the
/// positives).
std::vector<SampleRef> FlattenSegment(const std::vector<LabeledQuery>& queries,
                                      size_t segment, double zero_keep_prob,
                                      Rng* rng);

/// \brief Global-model supervision (Algorithm 2).
///
/// For each sample j and segment i:
///   labels R^{j}[i]  = 1 iff the segment holds at least one similar object;
///   penalty eps^{j}[i] = min-max-normalized segment cardinality (the loss
///   weight that stops the model from dropping high-cardinality segments).
struct GlobalLabels {
  std::vector<SampleRef> samples;  ///< card = total cardinality
  Matrix labels;                   ///< [S, num_segments], 0/1
  Matrix penalty;                  ///< [S, num_segments], in [0,1]
};

GlobalLabels BuildGlobalLabels(const std::vector<LabeledQuery>& queries,
                               size_t num_segments);

}  // namespace simcard

#endif  // SIMCARD_WORKLOAD_LABELS_H_
