// Similarity-join workload generation (Section 6, "Query Selection").
//
// Training join sets draw their size from [1, 100) and their members from
// the training queries; each member set is paired with 10 thresholds spread
// evenly over the workload's threshold range. Test sets come in three size
// buckets — [50,100), [100,150), [150,200) — with 10 random thresholds each
// (Exp-12 / Figure 12). Ground-truth join cardinalities are exact: the sum
// of each member's card(q, tau), evaluated by rank lookup on the kept
// distance profiles.
#ifndef SIMCARD_WORKLOAD_JOIN_SETS_H_
#define SIMCARD_WORKLOAD_JOIN_SETS_H_

#include <cstdint>
#include <vector>

#include "workload/queries.h"

namespace simcard {

/// \brief One join sample: a multiset of query rows and one threshold.
struct JoinSet {
  std::vector<uint32_t> query_rows;  ///< rows in the owning query matrix
  bool from_test_queries = false;    ///< which query matrix the rows index
  float tau = 0.0f;
  double card = 0.0;                 ///< exact total pair count
  std::vector<double> seg_cards;     ///< per-segment totals (if segmented)
};

/// \brief Join workload with the paper's size buckets.
struct JoinWorkload {
  std::vector<JoinSet> train;
  /// test_buckets[0]: size in [50,100); [1]: [100,150); [2]: [150,200).
  std::vector<std::vector<JoinSet>> test_buckets;
};

/// \brief Options for BuildJoinWorkload.
struct JoinWorkloadOptions {
  size_t num_train_sets = 120;   ///< member sets; each yields 10 tau samples
  size_t num_test_sets = 20;     ///< per size bucket
  size_t thresholds_per_set = 10;
  uint64_t seed = 37;
};

/// Builds join sets over an existing search workload. Requires
/// `search.train_profiles` / `search.test_profiles` to be populated
/// (keep_profiles=true). Test-set members are sampled with replacement when
/// a bucket exceeds the number of distinct test queries (a join query set is
/// a multiset, so duplicates are well-defined).
Result<JoinWorkload> BuildJoinWorkload(const SearchWorkload& search,
                                       size_t num_segments,
                                       const JoinWorkloadOptions& options);

}  // namespace simcard

#endif  // SIMCARD_WORKLOAD_JOIN_SETS_H_
