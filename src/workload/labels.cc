#include "workload/labels.h"

#include <algorithm>

#include "nn/losses.h"

namespace simcard {

std::vector<SampleRef> FlattenSearch(
    const std::vector<LabeledQuery>& queries) {
  std::vector<SampleRef> out;
  for (const auto& q : queries) {
    for (const auto& t : q.thresholds) {
      out.push_back({q.row, t.tau, t.card});
    }
  }
  return out;
}

std::vector<SampleRef> FlattenSegment(const std::vector<LabeledQuery>& queries,
                                      size_t segment, double zero_keep_prob,
                                      Rng* rng) {
  std::vector<SampleRef> out;
  for (const auto& q : queries) {
    for (const auto& t : q.thresholds) {
      const float seg_card =
          segment < t.seg_cards.size() ? t.seg_cards[segment] : 0.0f;
      if (seg_card <= 0.0f && rng != nullptr &&
          !rng->NextBernoulli(zero_keep_prob)) {
        continue;
      }
      out.push_back({q.row, t.tau, seg_card});
    }
  }
  return out;
}

GlobalLabels BuildGlobalLabels(const std::vector<LabeledQuery>& queries,
                               size_t num_segments) {
  GlobalLabels out;
  out.samples = FlattenSearch(queries);
  const size_t s = out.samples.size();
  out.labels = Matrix(s, num_segments);
  Matrix seg_cards(s, num_segments);
  size_t row = 0;
  for (const auto& q : queries) {
    for (const auto& t : q.thresholds) {
      for (size_t i = 0; i < num_segments && i < t.seg_cards.size(); ++i) {
        seg_cards.at(row, i) = t.seg_cards[i];
        out.labels.at(row, i) = t.seg_cards[i] > 0.0f ? 1.0f : 0.0f;
      }
      ++row;
    }
  }
  out.penalty = nn::MinMaxNormalizeRows(seg_cards);
  return out;
}

}  // namespace simcard
