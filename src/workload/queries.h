// Search-query workload generation (Section 6, "Query Selection").
//
// Following the paper: query objects are randomly drawn dataset points,
// split 80/20 into train/test; each training query gets 10 thresholds whose
// *selectivities* are uniform in (0, max_selectivity]; each testing query
// gets 10 thresholds with geometrically-distributed selectivities (more
// low-selectivity queries), which stresses generalization. Thresholds are
// derived from target selectivities by rank lookup on the query's sorted
// distance list, mirroring "generate thresholds ... by selectivities".
#ifndef SIMCARD_WORKLOAD_QUERIES_H_
#define SIMCARD_WORKLOAD_QUERIES_H_

#include <cstdint>
#include <vector>

#include "cluster/segmentation.h"
#include "data/dataset.h"
#include "index/ground_truth.h"

namespace simcard {

/// \brief One (tau, cardinality) supervision point, with optional
/// per-segment cardinalities when a segmentation was supplied.
struct ThresholdLabel {
  float tau = 0.0f;
  float card = 0.0f;
  std::vector<float> seg_cards;  ///< empty when no segmentation
};

/// \brief A query object plus its labeled thresholds.
struct LabeledQuery {
  uint32_t row = 0;  ///< row in the owning query matrix
  std::vector<ThresholdLabel> thresholds;
};

/// \brief Complete search workload for one dataset.
struct SearchWorkload {
  Matrix train_queries;  ///< [n_train, d]
  Matrix test_queries;   ///< [n_test, d]
  std::vector<LabeledQuery> train;
  std::vector<LabeledQuery> test;
  /// Sorted distance profiles (kept when options.keep_profiles) — required
  /// to label join sets and incremental updates without rescanning.
  std::vector<QueryDistanceProfile> train_profiles;
  std::vector<QueryDistanceProfile> test_profiles;
  /// Wall-clock cost of label construction (the Fig 14 "label time").
  double label_build_seconds = 0.0;
};

/// \brief Options for BuildSearchWorkload.
struct WorkloadOptions {
  size_t num_train = 400;
  size_t num_test = 100;
  size_t thresholds_per_query = 10;
  double max_selectivity = 0.01;  ///< paper: "selectivities less than 1%"
  uint64_t seed = 31;
  bool keep_profiles = true;
};

/// Builds the workload. `seg` may be null (no per-segment labels then).
Result<SearchWorkload> BuildSearchWorkload(const Dataset& dataset,
                                           const Segmentation* seg,
                                           const WorkloadOptions& options);

/// Recomputes every label in `workload` against the (mutated) dataset.
/// Used after Append()/Truncate() in the incremental-update experiments;
/// profiles are rebuilt as well.
Status RelabelWorkload(const Dataset& dataset, const Segmentation* seg,
                       SearchWorkload* workload);

/// Persists the immutable half of a workload: query matrices plus each
/// labeled query's row and threshold taus. Labels, per-segment cards, and
/// distance profiles are all derived data — RelabelWorkload rebuilds them
/// against whatever dataset epoch is recovered — so they are not written.
void SerializeQueries(const SearchWorkload& workload, Serializer* out);

/// Restores SerializeQueries output. The result has zeroed labels and
/// default-sized profiles; callers must RelabelWorkload before use.
Result<SearchWorkload> DeserializeQueries(Deserializer* in);

}  // namespace simcard

#endif  // SIMCARD_WORKLOAD_QUERIES_H_
