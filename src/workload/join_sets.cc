#include "workload/join_sets.h"

#include <algorithm>
#include <limits>

#include "common/rng.h"

namespace simcard {
namespace {

// The workload's threshold range: min/max across all train thresholds.
std::pair<float, float> TauRange(const SearchWorkload& search) {
  float lo = std::numeric_limits<float>::infinity();
  float hi = -std::numeric_limits<float>::infinity();
  for (const auto& q : search.train) {
    for (const auto& t : q.thresholds) {
      lo = std::min(lo, t.tau);
      hi = std::max(hi, t.tau);
    }
  }
  if (!(lo <= hi)) {
    lo = 0.0f;
    hi = 1.0f;
  }
  return {lo, hi};
}

// Labels one join set exactly from member profiles.
void LabelJoinSet(const std::vector<QueryDistanceProfile>& profiles,
                  size_t num_segments, JoinSet* js) {
  js->card = 0.0;
  js->seg_cards.assign(num_segments, 0.0);
  for (uint32_t row : js->query_rows) {
    const QueryDistanceProfile& profile = profiles[row];
    js->card += static_cast<double>(profile.CountAt(js->tau));
    for (size_t s = 0; s < num_segments; ++s) {
      js->seg_cards[s] +=
          static_cast<double>(profile.SegCountAt(s, js->tau));
    }
  }
}

}  // namespace

Result<JoinWorkload> BuildJoinWorkload(const SearchWorkload& search,
                                       size_t num_segments,
                                       const JoinWorkloadOptions& options) {
  if (search.train_profiles.size() != search.train.size() ||
      search.test_profiles.size() != search.test.size()) {
    return Status::FailedPrecondition(
        "BuildJoinWorkload: search workload must keep distance profiles");
  }
  if (search.train.empty() || search.test.empty()) {
    return Status::InvalidArgument("BuildJoinWorkload: empty search workload");
  }
  Rng rng(options.seed);
  const auto [tau_lo, tau_hi] = TauRange(search);

  JoinWorkload out;
  const size_t n_train_q = search.train.size();

  // Training join sets: size in [1, 100), members w/o replacement when
  // possible; 10 evenly-spaced thresholds per member set.
  for (size_t s = 0; s < options.num_train_sets; ++s) {
    const size_t size = static_cast<size_t>(rng.NextInt(1, 99));
    std::vector<uint32_t> members;
    if (size <= n_train_q) {
      auto picks = rng.SampleWithoutReplacement(n_train_q, size);
      members.assign(picks.begin(), picks.end());
    } else {
      members.resize(size);
      for (auto& m : members) {
        m = static_cast<uint32_t>(rng.NextBounded(n_train_q));
      }
    }
    for (size_t t = 0; t < options.thresholds_per_set; ++t) {
      JoinSet js;
      js.query_rows = members;
      js.from_test_queries = false;
      const float frac = options.thresholds_per_set == 1
                             ? 0.5f
                             : static_cast<float>(t) /
                                   static_cast<float>(
                                       options.thresholds_per_set - 1);
      js.tau = tau_lo + frac * (tau_hi - tau_lo);
      LabelJoinSet(search.train_profiles, num_segments, &js);
      out.train.push_back(std::move(js));
    }
  }

  // Test join sets: three size buckets, random thresholds, members from the
  // *test* queries (with replacement when the bucket exceeds their count).
  const size_t bucket_lo[3] = {50, 100, 150};
  const size_t bucket_hi[3] = {99, 149, 199};
  const size_t n_test_q = search.test.size();
  out.test_buckets.resize(3);
  for (size_t b = 0; b < 3; ++b) {
    for (size_t s = 0; s < options.num_test_sets; ++s) {
      const size_t size = static_cast<size_t>(
          rng.NextInt(static_cast<int64_t>(bucket_lo[b]),
                      static_cast<int64_t>(bucket_hi[b])));
      std::vector<uint32_t> members;
      if (size <= n_test_q) {
        auto picks = rng.SampleWithoutReplacement(n_test_q, size);
        members.assign(picks.begin(), picks.end());
      } else {
        members.resize(size);
        for (auto& m : members) {
          m = static_cast<uint32_t>(rng.NextBounded(n_test_q));
        }
      }
      for (size_t t = 0; t < options.thresholds_per_set; ++t) {
        JoinSet js;
        js.query_rows = members;
        js.from_test_queries = true;
        js.tau = tau_lo + static_cast<float>(rng.NextDouble()) *
                              (tau_hi - tau_lo);
        LabelJoinSet(search.test_profiles, num_segments, &js);
        out.test_buckets[b].push_back(std::move(js));
      }
    }
  }
  return out;
}

}  // namespace simcard
