#include "workload/queries.h"

#include <algorithm>
#include <cstring>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/stopwatch.h"

namespace simcard {
namespace {

// Fills one query's threshold labels from its distance profile.
void LabelThresholds(const QueryDistanceProfile& profile,
                     const Segmentation* seg,
                     const std::vector<float>& taus, LabeledQuery* out) {
  out->thresholds.clear();
  out->thresholds.reserve(taus.size());
  for (float tau : taus) {
    ThresholdLabel label;
    label.tau = tau;
    label.card = static_cast<float>(profile.CountAt(tau));
    if (seg != nullptr) {
      label.seg_cards.resize(seg->num_segments());
      for (size_t s = 0; s < seg->num_segments(); ++s) {
        label.seg_cards[s] = static_cast<float>(profile.SegCountAt(s, tau));
      }
    }
    out->thresholds.push_back(std::move(label));
  }
}

// Training selectivities: uniform in (0, max_sel].
std::vector<float> TrainTaus(const QueryDistanceProfile& profile,
                             size_t count, double max_sel, Rng* rng) {
  std::vector<float> taus(count);
  for (auto& tau : taus) {
    const double sel = std::max(1e-9, rng->NextDouble()) * max_sel;
    tau = profile.TauForSelectivity(sel);
  }
  std::sort(taus.begin(), taus.end());
  return taus;
}

// Testing selectivities: geometric mixture biased toward low selectivity
// (the paper's "geometrical distribution of selectivities").
std::vector<float> TestTaus(const QueryDistanceProfile& profile, size_t count,
                            double max_sel, Rng* rng) {
  std::vector<float> taus(count);
  for (auto& tau : taus) {
    const int k = std::min(rng->NextGeometric(0.5), 6);
    const double jitter = 0.5 + 0.5 * rng->NextDouble();
    const double sel = max_sel * jitter / static_cast<double>(1 << k);
    tau = profile.TauForSelectivity(sel);
  }
  std::sort(taus.begin(), taus.end());
  return taus;
}

}  // namespace

Result<SearchWorkload> BuildSearchWorkload(const Dataset& dataset,
                                           const Segmentation* seg,
                                           const WorkloadOptions& options) {
  if (options.num_train + options.num_test > dataset.size()) {
    return Status::InvalidArgument(
        "BuildSearchWorkload: more queries requested than dataset points");
  }
  if (options.thresholds_per_query == 0) {
    return Status::InvalidArgument(
        "BuildSearchWorkload: thresholds_per_query must be positive");
  }
  Stopwatch watch;
  Rng rng(options.seed);
  const size_t d = dataset.dim();
  auto picks = rng.SampleWithoutReplacement(
      dataset.size(), options.num_train + options.num_test);

  SearchWorkload wl;
  wl.train_queries = Matrix(options.num_train, d);
  wl.test_queries = Matrix(options.num_test, d);
  for (size_t i = 0; i < options.num_train; ++i) {
    wl.train_queries.SetRow(i, dataset.Point(picks[i]));
  }
  for (size_t i = 0; i < options.num_test; ++i) {
    wl.test_queries.SetRow(i, dataset.Point(picks[options.num_train + i]));
  }

  GroundTruth gt(&dataset);
  wl.train.resize(options.num_train);
  wl.test.resize(options.num_test);
  if (options.keep_profiles) {
    wl.train_profiles.resize(options.num_train);
    wl.test_profiles.resize(options.num_test);
  }

  for (size_t i = 0; i < options.num_train; ++i) {
    QueryDistanceProfile profile =
        gt.BuildProfile(wl.train_queries.Row(i), seg);
    wl.train[i].row = static_cast<uint32_t>(i);
    LabelThresholds(profile, seg,
                    TrainTaus(profile, options.thresholds_per_query,
                              options.max_selectivity, &rng),
                    &wl.train[i]);
    if (options.keep_profiles) wl.train_profiles[i] = std::move(profile);
  }
  for (size_t i = 0; i < options.num_test; ++i) {
    QueryDistanceProfile profile = gt.BuildProfile(wl.test_queries.Row(i), seg);
    wl.test[i].row = static_cast<uint32_t>(i);
    LabelThresholds(profile, seg,
                    TestTaus(profile, options.thresholds_per_query,
                             options.max_selectivity, &rng),
                    &wl.test[i]);
    if (options.keep_profiles) wl.test_profiles[i] = std::move(profile);
  }
  wl.label_build_seconds = watch.ElapsedSeconds();
  return wl;
}

Status RelabelWorkload(const Dataset& dataset, const Segmentation* seg,
                       SearchWorkload* workload) {
  if (workload->train_queries.cols() != dataset.dim()) {
    return Status::InvalidArgument("RelabelWorkload: dimension mismatch");
  }
  GroundTruth gt(&dataset);
  const bool keep =
      workload->train_profiles.size() == workload->train.size();

  for (size_t i = 0; i < workload->train.size(); ++i) {
    LabeledQuery& lq = workload->train[i];
    QueryDistanceProfile profile =
        gt.BuildProfile(workload->train_queries.Row(lq.row), seg);
    std::vector<float> taus;
    taus.reserve(lq.thresholds.size());
    for (const auto& t : lq.thresholds) taus.push_back(t.tau);
    LabelThresholds(profile, seg, taus, &lq);
    if (keep) workload->train_profiles[i] = std::move(profile);
  }
  const bool keep_test =
      workload->test_profiles.size() == workload->test.size();
  for (size_t i = 0; i < workload->test.size(); ++i) {
    LabeledQuery& lq = workload->test[i];
    QueryDistanceProfile profile =
        gt.BuildProfile(workload->test_queries.Row(lq.row), seg);
    std::vector<float> taus;
    taus.reserve(lq.thresholds.size());
    for (const auto& t : lq.thresholds) taus.push_back(t.tau);
    LabelThresholds(profile, seg, taus, &lq);
    if (keep_test) workload->test_profiles[i] = std::move(profile);
  }
  return Status::OK();
}

namespace {

void SerializeQuerySet(const std::vector<LabeledQuery>& queries,
                       Serializer* out) {
  out->WriteU64(queries.size());
  for (const LabeledQuery& lq : queries) {
    out->WriteU32(lq.row);
    out->WriteU64(lq.thresholds.size());
    for (const ThresholdLabel& t : lq.thresholds) out->WriteF32(t.tau);
  }
}

Status DeserializeQuerySet(Deserializer* in,
                           std::vector<LabeledQuery>* queries) {
  uint64_t n = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&n));
  if (n > in->remaining()) {
    return Status::OutOfRange("query set count exceeds buffer");
  }
  queries->resize(n);
  for (LabeledQuery& lq : *queries) {
    SIMCARD_RETURN_IF_ERROR(in->ReadU32(&lq.row));
    uint64_t taus = 0;
    SIMCARD_RETURN_IF_ERROR(in->ReadU64(&taus));
    if (taus * sizeof(float) > in->remaining()) {
      return Status::OutOfRange("threshold count exceeds buffer");
    }
    lq.thresholds.resize(taus);
    for (ThresholdLabel& t : lq.thresholds) {
      SIMCARD_RETURN_IF_ERROR(in->ReadF32(&t.tau));
    }
  }
  return Status::OK();
}

}  // namespace

void SerializeQueries(const SearchWorkload& workload, Serializer* out) {
  workload.train_queries.Serialize(out);
  workload.test_queries.Serialize(out);
  SerializeQuerySet(workload.train, out);
  SerializeQuerySet(workload.test, out);
}

Result<SearchWorkload> DeserializeQueries(Deserializer* in) {
  SearchWorkload wl;
  SIMCARD_RETURN_IF_ERROR(wl.train_queries.Deserialize(in));
  SIMCARD_RETURN_IF_ERROR(wl.test_queries.Deserialize(in));
  SIMCARD_RETURN_IF_ERROR(DeserializeQuerySet(in, &wl.train));
  SIMCARD_RETURN_IF_ERROR(DeserializeQuerySet(in, &wl.test));
  // Pre-size the profile slots so the first RelabelWorkload rebuilds and
  // keeps them (it only stores profiles when the sizes already agree).
  wl.train_profiles.resize(wl.train.size());
  wl.test_profiles.resize(wl.test.size());
  return wl;
}

}  // namespace simcard
