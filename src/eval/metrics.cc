#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace simcard {
namespace {

constexpr double kZeroFloor = 0.1;

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double QError(double estimate, double truth) {
  double e = std::max(std::fabs(estimate), kZeroFloor);
  double t = std::max(truth, kZeroFloor);
  return e > t ? e / t : t / e;
}

double Mape(double estimate, double truth) {
  const double t = std::max(truth, kZeroFloor);
  return std::fabs(estimate - truth) / t;
}

ErrorSummary Summarize(const std::vector<double>& errors) {
  ErrorSummary s;
  s.count = errors.size();
  if (errors.empty()) return s;
  std::vector<double> sorted = errors;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (double e : sorted) total += e;
  s.mean = total / static_cast<double>(sorted.size());
  s.median = Percentile(sorted, 0.5);
  s.p90 = Percentile(sorted, 0.90);
  s.p95 = Percentile(sorted, 0.95);
  s.p99 = Percentile(sorted, 0.99);
  s.max = sorted.back();
  return s;
}

}  // namespace simcard
