// Shared experiment harness: builds one dataset's environment (data,
// segmentation, labeled workload), constructs estimators by their Table 2
// names, and evaluates search/join accuracy and latency. Every bench binary
// is a thin driver over these helpers, so the experiments stay consistent
// with each other.
#ifndef SIMCARD_EVAL_HARNESS_H_
#define SIMCARD_EVAL_HARNESS_H_

#include <memory>
#include <string>

#include "core/estimator.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "workload/join_sets.h"

namespace simcard {

/// \brief Fully-prepared single-dataset experiment environment.
struct ExperimentEnv {
  AnalogSpec spec;
  Dataset dataset;
  Segmentation segmentation;
  SearchWorkload workload;
  Scale scale = Scale::kSmall;
  uint64_t seed = 0;
};

/// \brief Options for BuildEnvironment.
struct EnvOptions {
  size_t num_segments = 16;
  SegmentationMethod segmentation_method = SegmentationMethod::kPcaKMeans;
  /// Overrides the spec's query counts when nonzero.
  size_t train_queries_override = 0;
  size_t test_queries_override = 0;
  bool keep_profiles = true;
  uint64_t seed = 2026;
};

Result<ExperimentEnv> BuildEnvironment(const std::string& dataset_name,
                                       Scale scale, const EnvOptions& options);

/// Builds an estimator by its Table 2 name: "GL+", "Local+", "GL-CNN",
/// "GL-MLP", "QES", "MLP", "CardNet", "Kernel-based", "Sampling (1%)",
/// "Sampling (10%)", "Sampling (equal)", "CNNJoin", "GLJoin", "GLJoin+".
/// `equal_target_bytes` sizes "Sampling (equal)" (pass a learned model's
/// ModelSizeBytes()). The returned estimator is untrained.
Result<std::unique_ptr<Estimator>> MakeEstimatorByName(
    const std::string& name, Scale scale, size_t equal_target_bytes = 0);

/// Shorthand: training context over an environment.
TrainContext MakeTrainContext(const ExperimentEnv& env);

/// \brief Accuracy + latency over a test workload.
struct EvalResult {
  std::vector<double> qerrors;
  std::vector<double> mapes;
  ErrorSummary qerror;
  ErrorSummary mape;
  double mean_latency_ms = 0.0;
};

/// Evaluates every (test query, threshold) sample.
EvalResult EvaluateSearch(Estimator* estimator, const SearchWorkload& workload);

/// Evaluates every join set in `sets` (rows resolve against the workload's
/// train or test query matrix per JoinSet::from_test_queries).
EvalResult EvaluateJoin(Estimator* estimator, const SearchWorkload& workload,
                        const std::vector<JoinSet>& sets);

}  // namespace simcard

#endif  // SIMCARD_EVAL_HARNESS_H_
