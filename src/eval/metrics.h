// Error metrics for cardinality estimation (Section 2 of the paper).
#ifndef SIMCARD_EVAL_METRICS_H_
#define SIMCARD_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace simcard {

/// Q-error = max(est, truth) / min(est, truth), with a 0.1 floor on either
/// side when it is zero (the paper's convention). Always >= 1.
double QError(double estimate, double truth);

/// MAPE = |est - truth| / truth, with the same 0.1 floor on a zero truth.
double Mape(double estimate, double truth);

/// \brief Distribution summary in the shape of the paper's tables
/// (mean / median / 90th / 95th / 99th / max).
struct ErrorSummary {
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  size_t count = 0;
};

/// Summarizes `errors` (copied and sorted internally).
ErrorSummary Summarize(const std::vector<double>& errors);

}  // namespace simcard

#endif  // SIMCARD_EVAL_METRICS_H_
