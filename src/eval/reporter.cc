#include "eval/reporter.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace simcard {

std::string FormatPaperNumber(double value) {
  char buf[64];
  const double a = std::fabs(value);
  if (a > 0 && a < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.4f", value);
  } else if (a >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else if (a >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else if (a >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", value);
  }
  return buf;
}

void TableReporter::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void TableReporter::AddSummaryRow(const std::string& label,
                                  const ErrorSummary& summary) {
  AddRow({label, FormatPaperNumber(summary.mean),
          FormatPaperNumber(summary.median), FormatPaperNumber(summary.p90),
          FormatPaperNumber(summary.p95), FormatPaperNumber(summary.p99),
          FormatPaperNumber(summary.max)});
}

void TableReporter::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(columns_);
  os << "|";
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::vector<std::string> SummaryColumns(const std::string& label_header) {
  return {label_header, "Mean", "Median", "90th", "95th", "99th", "Max"};
}

}  // namespace simcard
