// Plain-text table rendering in the shape of the paper's tables.
#ifndef SIMCARD_EVAL_REPORTER_H_
#define SIMCARD_EVAL_REPORTER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/metrics.h"

namespace simcard {

/// Formats like the paper's tables: 3 significant digits ("2.34", "19.7",
/// "111", "3526").
std::string FormatPaperNumber(double value);

/// \brief Column-aligned ASCII table writer.
class TableReporter {
 public:
  explicit TableReporter(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells);

  /// Convenience: "Method | mean | median | 90th | 95th | 99th | max" row.
  void AddSummaryRow(const std::string& label, const ErrorSummary& summary);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// The paper's summary-table header after a leading label column.
std::vector<std::string> SummaryColumns(const std::string& label_header);

}  // namespace simcard

#endif  // SIMCARD_EVAL_REPORTER_H_
