#include "eval/harness.h"

#include <span>

#include "baselines/cardnet_estimator.h"
#include "baselines/kernel_estimator.h"
#include "baselines/mlp_estimator.h"
#include "baselines/sampling_estimator.h"
#include "common/stopwatch.h"
#include "core/join_estimator.h"
#include "obs/metrics.h"

namespace simcard {
namespace {

// Training budgets by scale: tiny favors turnaround, full favors accuracy.
void ApplyScaleToCardTraining(Scale scale, CardTrainOptions* opts) {
  switch (scale) {
    case Scale::kTiny:
      opts->epochs = 20;
      break;
    case Scale::kSmall:
      opts->epochs = 40;
      break;
    case Scale::kFull:
      opts->epochs = 60;
      break;
  }
}

void ApplyScaleToGl(Scale scale, GlEstimatorConfig* config) {
  ApplyScaleToCardTraining(scale, &config->local_train);
  switch (scale) {
    case Scale::kTiny:
      config->global_train.epochs = 20;
      config->tune_per_segment = false;  // one shared tuning run
      config->tuner.max_trials = 8;
      config->tuner.trial_epochs = 20;
      config->tuner.train_subsample = 300;
      config->tuner.val_subsample = 80;
      break;
    case Scale::kSmall:
      config->global_train.epochs = 40;
      config->tuner.max_trials = 8;
      // Trials train as long as the real local models so the proxy ranking
      // transfers; the subsample keeps each trial cheap.
      config->tuner.trial_epochs = config->local_train.epochs;
      config->tuner.train_subsample = 300;
      config->tuner.val_subsample = 80;
      break;
    case Scale::kFull:
      config->global_train.epochs = 60;
      config->tuner.max_trials = 12;
      config->tuner.trial_epochs = config->local_train.epochs;
      break;
  }
}

void ApplyScaleToFlat(Scale scale, FlatCardEstimatorConfig* config) {
  ApplyScaleToCardTraining(scale, &config->train);
}

}  // namespace

Result<ExperimentEnv> BuildEnvironment(const std::string& dataset_name,
                                       Scale scale,
                                       const EnvOptions& options) {
  auto spec_or = GetAnalogSpec(dataset_name, scale);
  if (!spec_or.ok()) return spec_or.status();

  ExperimentEnv env;
  env.spec = spec_or.value();
  env.scale = scale;
  env.seed = options.seed;

  auto data_or = MakeAnalogDataset(dataset_name, scale, options.seed);
  if (!data_or.ok()) return data_or.status();
  env.dataset = std::move(data_or.value());

  SegmentationOptions seg_opts;
  seg_opts.target_segments = options.num_segments;
  seg_opts.method = options.segmentation_method;
  seg_opts.seed = options.seed + 1;
  auto seg_or = SegmentData(env.dataset, seg_opts);
  if (!seg_or.ok()) return seg_or.status();
  env.segmentation = std::move(seg_or.value());

  WorkloadOptions wl_opts;
  wl_opts.num_train = options.train_queries_override > 0
                          ? options.train_queries_override
                          : env.spec.train_queries;
  wl_opts.num_test = options.test_queries_override > 0
                         ? options.test_queries_override
                         : env.spec.test_queries;
  wl_opts.seed = options.seed + 2;
  wl_opts.keep_profiles = options.keep_profiles;
  auto wl_or = BuildSearchWorkload(env.dataset, &env.segmentation, wl_opts);
  if (!wl_or.ok()) return wl_or.status();
  env.workload = std::move(wl_or.value());
  return env;
}

Result<std::unique_ptr<Estimator>> MakeEstimatorByName(
    const std::string& name, Scale scale, size_t equal_target_bytes) {
  if (name == "GL+" || name == "Local+" || name == "GL-CNN" ||
      name == "GL-MLP") {
    GlEstimatorConfig config;
    if (name == "GL+") config = GlEstimatorConfig::GlPlus();
    if (name == "Local+") config = GlEstimatorConfig::LocalPlus();
    if (name == "GL-CNN") config = GlEstimatorConfig::GlCnn();
    if (name == "GL-MLP") config = GlEstimatorConfig::GlMlp();
    ApplyScaleToGl(scale, &config);
    return std::unique_ptr<Estimator>(new GlEstimator(std::move(config)));
  }
  if (name == "QES" || name == "MLP") {
    FlatCardEstimatorConfig config = name == "QES"
                                         ? FlatCardEstimatorConfig::Qes()
                                         : FlatCardEstimatorConfig::Mlp();
    ApplyScaleToFlat(scale, &config);
    return std::unique_ptr<Estimator>(
        new FlatCardEstimator(std::move(config)));
  }
  if (name == "CardNet") {
    CardNetEstimator::Config config;
    config.epochs = scale == Scale::kTiny ? 20 : 40;
    return std::unique_ptr<Estimator>(new CardNetEstimator(config));
  }
  if (name == "Kernel-based") {
    return std::unique_ptr<Estimator>(new KernelEstimator(0.01));
  }
  if (name == "Sampling (1%)") {
    return std::unique_ptr<Estimator>(
        new SamplingEstimator("Sampling (1%)", 0.01));
  }
  if (name == "Sampling (10%)") {
    return std::unique_ptr<Estimator>(
        new SamplingEstimator("Sampling (10%)", 0.10));
  }
  if (name == "Sampling (equal)") {
    if (equal_target_bytes == 0) {
      return Status::InvalidArgument(
          "Sampling (equal) needs equal_target_bytes (a learned model size)");
    }
    return std::unique_ptr<Estimator>(
        SamplingEstimator::Equal(equal_target_bytes).release());
  }
  if (name == "CNNJoin") {
    CnnJoinEstimator::Config config;
    ApplyScaleToFlat(scale, &config.base);
    return std::unique_ptr<Estimator>(new CnnJoinEstimator(std::move(config)));
  }
  if (name == "GLJoin" || name == "GLJoin+") {
    GlJoinEstimator::Config config = name == "GLJoin"
                                         ? GlJoinEstimator::Config::GlJoin()
                                         : GlJoinEstimator::Config::GlJoinPlus();
    ApplyScaleToGl(scale, &config.base);
    return std::unique_ptr<Estimator>(new GlJoinEstimator(std::move(config)));
  }
  return Status::NotFound("unknown estimator: " + name);
}

TrainContext MakeTrainContext(const ExperimentEnv& env) {
  TrainContext ctx;
  ctx.dataset = &env.dataset;
  ctx.workload = &env.workload;
  ctx.segmentation = &env.segmentation;
  ctx.seed = env.seed + 7;
  return ctx;
}

EvalResult EvaluateSearch(Estimator* estimator,
                          const SearchWorkload& workload) {
  EvalResult result;
  const bool record = obs::MetricsEnabled();
  obs::Histogram* latency_us = obs::GetHistogram("eval.query_latency_us");
  obs::Histogram* qerror_hist = obs::GetHistogram(
      "eval.qerror", obs::Histogram::ExponentialBuckets(1.0, 1.5, 24));
  Stopwatch watch;
  double total_ms = 0.0;
  const size_t dim = workload.test_queries.cols();
  for (const auto& lq : workload.test) {
    EstimateRequest request;
    request.query = std::span<const float>(
        workload.test_queries.Row(lq.row), dim);
    for (const auto& t : lq.thresholds) {
      request.tau = t.tau;
      watch.Restart();
      const double est = estimator->Estimate(request);
      const double elapsed_ms = watch.ElapsedMillis();
      total_ms += elapsed_ms;
      result.qerrors.push_back(QError(est, t.card));
      result.mapes.push_back(Mape(est, t.card));
      if (record) {
        latency_us->Record(elapsed_ms * 1e3);
        qerror_hist->Record(result.qerrors.back());
      }
    }
  }
  if (record) {
    obs::GetCounter("eval.samples")
        ->Add(static_cast<int64_t>(result.qerrors.size()));
  }
  result.qerror = Summarize(result.qerrors);
  result.mape = Summarize(result.mapes);
  result.mean_latency_ms =
      result.qerrors.empty()
          ? 0.0
          : total_ms / static_cast<double>(result.qerrors.size());
  return result;
}

EvalResult EvaluateJoin(Estimator* estimator, const SearchWorkload& workload,
                        const std::vector<JoinSet>& sets) {
  EvalResult result;
  const bool record = obs::MetricsEnabled();
  obs::Histogram* latency_us = obs::GetHistogram("eval.join_latency_us");
  Stopwatch watch;
  double total_ms = 0.0;
  for (const JoinSet& js : sets) {
    const Matrix& queries =
        js.from_test_queries ? workload.test_queries : workload.train_queries;
    watch.Restart();
    const double est = estimator->EstimateJoin(queries, js.query_rows, js.tau);
    const double elapsed_ms = watch.ElapsedMillis();
    total_ms += elapsed_ms;
    result.qerrors.push_back(QError(est, js.card));
    result.mapes.push_back(Mape(est, js.card));
    if (record) latency_us->Record(elapsed_ms * 1e3);
  }
  result.qerror = Summarize(result.qerrors);
  result.mape = Summarize(result.mapes);
  result.mean_latency_ms =
      sets.empty() ? 0.0 : total_ms / static_cast<double>(sets.size());
  return result;
}

}  // namespace simcard
