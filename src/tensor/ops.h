// Numerical kernels over Matrix.
//
// These are the only places where simcard does heavy floating-point work on
// matrices. The forward-path kernels (MatMul, MatMulTransposeB) are cache
// blocked for batched inference, but every output element still accumulates
// its products in ascending reduction-index order, so results are bitwise
// identical to the naive loops — that ordering contract is what makes
// batch-of-queries inference reproduce single-query results exactly
// (DESIGN.md §11). Building with -DSIMCARD_SIMD=ON adds explicit
// vectorization hints and a multi-accumulator dot product that reassociate
// the FP sums for extra throughput at the cost of that guarantee.
#ifndef SIMCARD_TENSOR_OPS_H_
#define SIMCARD_TENSOR_OPS_H_

#include "tensor/matrix.h"

namespace simcard {

/// C = A * B. Requires a.cols() == b.rows().
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A * B^T. Requires a.cols() == b.cols(). Avoids materializing B^T;
/// this is the layout used by Linear::Backward.
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);

/// C = A^T * B. Requires a.rows() == b.rows().
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);

/// Transposed copy.
Matrix Transpose(const Matrix& a);

/// Element-wise sum; shapes must match.
Matrix Add(const Matrix& a, const Matrix& b);

/// Element-wise difference; shapes must match.
Matrix Sub(const Matrix& a, const Matrix& b);

/// Element-wise (Hadamard) product; shapes must match.
Matrix Mul(const Matrix& a, const Matrix& b);

/// Scales every element by `s`.
Matrix Scale(const Matrix& a, float s);

/// Adds `bias` (1 x a.cols()) to every row of `a`.
Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias);

/// Column-wise sum of `a`, returned as 1 x cols.
Matrix SumRows(const Matrix& a);

/// Concatenates matrices horizontally; all must share the row count.
Matrix ConcatCols(const std::vector<Matrix>& parts);

/// In-place a += b * s (axpy); shapes must match.
void AddScaledInPlace(Matrix* a, const Matrix& b, float s);

/// In-place element clamp to [lo, hi].
void ClampInPlace(Matrix* a, float lo, float hi);

}  // namespace simcard

#endif  // SIMCARD_TENSOR_OPS_H_
