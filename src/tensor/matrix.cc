#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace simcard {

Matrix Matrix::Full(size_t rows, size_t cols, float value) {
  Matrix m(rows, cols);
  m.Fill(value);
  return m;
}

Matrix Matrix::Gaussian(size_t rows, size_t cols, float stddev, Rng* rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) {
    v = stddev * static_cast<float>(rng->NextGaussian());
  }
  return m;
}

Matrix Matrix::RowVector(const std::vector<float>& values) {
  return Matrix(1, values.size(), values);
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::SetRow(size_t r, const float* src) {
  assert(r < rows_);
  std::memcpy(Row(r), src, cols_ * sizeof(float));
}

Matrix Matrix::SliceRows(size_t begin, size_t end) const {
  assert(begin <= end && end <= rows_);
  Matrix out = Uninit(end - begin, cols_);
  std::memcpy(out.data(), data_.data() + begin * cols_,
              (end - begin) * cols_ * sizeof(float));
  return out;
}

Matrix Matrix::SliceCols(size_t begin, size_t end) const {
  assert(begin <= end && end <= cols_);
  Matrix out = Uninit(rows_, end - begin);
  for (size_t r = 0; r < rows_; ++r) {
    std::memcpy(out.Row(r), Row(r) + begin, (end - begin) * sizeof(float));
  }
  return out;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Matrix::Norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

float Matrix::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Matrix::AllClose(const Matrix& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString(size_t max_elems) const {
  std::ostringstream out;
  out << "Matrix(" << rows_ << "x" << cols_ << ")[";
  for (size_t i = 0; i < std::min(max_elems, data_.size()); ++i) {
    if (i > 0) out << ", ";
    out << data_[i];
  }
  if (data_.size() > max_elems) out << ", ...";
  out << "]";
  return out.str();
}

void Matrix::Serialize(Serializer* out) const {
  out->WriteU64(rows_);
  out->WriteU64(cols_);
  // Same framing as WriteFloatVector (u64 count + raw floats); spelled out
  // because data_ uses the default-init allocator type.
  out->WriteU64(data_.size());
  out->WriteRawBytes(data_.data(), data_.size() * sizeof(float));
}

Status Matrix::Deserialize(Deserializer* in) {
  uint64_t rows = 0;
  uint64_t cols = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&rows));
  SIMCARD_RETURN_IF_ERROR(in->ReadU64(&cols));
  std::vector<float> data;
  SIMCARD_RETURN_IF_ERROR(in->ReadFloatVector(&data));
  if (data.size() != rows * cols) {
    return Status::Internal("matrix payload size mismatch");
  }
  rows_ = rows;
  cols_ = cols;
  data_.assign(data.begin(), data.end());
  return Status::OK();
}

}  // namespace simcard
