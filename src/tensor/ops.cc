#include "tensor/ops.h"

#include <algorithm>
#include <cassert>

// SIMCARD_SIMD_HINTS (cmake -DSIMCARD_SIMD=ON) turns on explicit
// vectorization hints: ivdep-style pragmas on the stride-1 inner loops and a
// four-accumulator dot product. The multi-accumulator reduction REASSOCIATES
// the floating-point sum, so results may differ in the last ulp from the
// default build — which is why it is off by default: the batch/single parity
// guarantee (DESIGN.md §11) and the golden-value tests are stated for the
// strict accumulation order.
#if defined(SIMCARD_SIMD_HINTS)
#if defined(__clang__)
#define SIMCARD_IVDEP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define SIMCARD_IVDEP _Pragma("GCC ivdep")
#else
#define SIMCARD_IVDEP
#endif
#else
#define SIMCARD_IVDEP
#endif

namespace simcard {
namespace {

// Cache-blocking tile sizes. The models here are small (hidden widths in the
// tens to low hundreds), so the tiles are sized for L1: a 64x128 float tile
// of B is 32 KiB.
constexpr size_t kBlockP = 64;   // reduction-dimension tile
constexpr size_t kBlockJ = 128;  // output-column tile
constexpr size_t kBlockI = 64;   // output-row tile (MatMulTransposeB)

// Stride-1 dot product. The default build keeps a single accumulator in
// ascending index order so every caller gets the same bits as the naive
// loop; the SIMD build trades that for four independent accumulators.
inline float Dot1(const float* a, const float* b, size_t k) {
#if defined(SIMCARD_SIMD_HINTS)
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t p = 0;
  for (; p + 4 <= k; p += 4) {
    acc0 += a[p] * b[p];
    acc1 += a[p + 1] * b[p + 1];
    acc2 += a[p + 2] * b[p + 2];
    acc3 += a[p + 3] * b[p + 3];
  }
  float acc = (acc0 + acc1) + (acc2 + acc3);
  for (; p < k; ++p) acc += a[p] * b[p];
  return acc;
#else
  float acc = 0.0f;
  for (size_t p = 0; p < k; ++p) acc += a[p] * b[p];
  return acc;
#endif
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.cols();
  // Blocked ikj: tile the reduction (p) and output-column (j) loops so a
  // kBlockP x kBlockJ panel of B stays cache-hot across every row of A.
  // Each output element still accumulates its products in ascending-p order
  // (blocks ascend, p ascends within a block), so the result is bitwise
  // identical to the unblocked loop for finite inputs.
  for (size_t jb = 0; jb < m; jb += kBlockJ) {
    const size_t jend = std::min(m, jb + kBlockJ);
    for (size_t pb = 0; pb < k; pb += kBlockP) {
      const size_t pend = std::min(k, pb + kBlockP);
      for (size_t i = 0; i < n; ++i) {
        const float* arow = a.Row(i);
        float* crow = c.Row(i);
        for (size_t p = pb; p < pend; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;  // ReLU activations are often sparse
          const float* brow = b.Row(p);
          SIMCARD_IVDEP
          for (size_t j = jb; j < jend; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
  }
  return c;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c = Matrix::Uninit(a.rows(), b.rows());
  const size_t k = a.cols();
  // Blocked over both output dimensions: a tile of B rows is reused against
  // a tile of A rows before moving on. The per-(i,j) reduction is a single
  // stride-1 dot product (see Dot1 for the accumulation-order contract).
  for (size_t ib = 0; ib < a.rows(); ib += kBlockI) {
    const size_t iend = std::min(a.rows(), ib + kBlockI);
    for (size_t jb = 0; jb < b.rows(); jb += kBlockI) {
      const size_t jend = std::min(b.rows(), jb + kBlockI);
      for (size_t i = ib; i < iend; ++i) {
        const float* arow = a.Row(i);
        float* crow = c.Row(i);
        for (size_t j = jb; j < jend; ++j) {
          crow[j] = Dot1(arow, b.Row(j), k);
        }
      }
    }
  }
  return c;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (size_t p = 0; p < a.rows(); ++p) {
    const float* arow = a.Row(p);
    const float* brow = b.Row(p);
    for (size_t i = 0; i < a.cols(); ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.Row(i);
      SIMCARD_IVDEP
      for (size_t j = 0; j < b.cols(); ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t = Matrix::Uninit(a.cols(), a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      t.at(j, i) = a.at(i, j);
    }
  }
  return t;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c = a;
  float* cd = c.data();
  const float* bd = b.data();
  for (size_t i = 0; i < c.size(); ++i) cd[i] += bd[i];
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c = a;
  float* cd = c.data();
  const float* bd = b.data();
  for (size_t i = 0; i < c.size(); ++i) cd[i] -= bd[i];
  return c;
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c = a;
  float* cd = c.data();
  const float* bd = b.data();
  for (size_t i = 0; i < c.size(); ++i) cd[i] *= bd[i];
  return c;
}

Matrix Scale(const Matrix& a, float s) {
  Matrix c = a;
  float* cd = c.data();
  for (size_t i = 0; i < c.size(); ++i) cd[i] *= s;
  return c;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias) {
  assert(bias.rows() == 1 && bias.cols() == a.cols());
  Matrix c = a;
  const float* bd = bias.data();
  for (size_t r = 0; r < c.rows(); ++r) {
    float* row = c.Row(r);
    for (size_t j = 0; j < c.cols(); ++j) row[j] += bd[j];
  }
  return c;
}

Matrix SumRows(const Matrix& a) {
  Matrix s(1, a.cols());
  float* sd = s.data();
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* row = a.Row(r);
    for (size_t j = 0; j < a.cols(); ++j) sd[j] += row[j];
  }
  return s;
}

Matrix ConcatCols(const std::vector<Matrix>& parts) {
  assert(!parts.empty());
  size_t rows = parts[0].rows();
  size_t cols = 0;
  for (const auto& p : parts) {
    assert(p.rows() == rows);
    cols += p.cols();
  }
  Matrix out = Matrix::Uninit(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    float* dst = out.Row(r);
    for (const auto& p : parts) {
      const float* src = p.Row(r);
      std::copy(src, src + p.cols(), dst);
      dst += p.cols();
    }
  }
  return out;
}

void AddScaledInPlace(Matrix* a, const Matrix& b, float s) {
  assert(a->rows() == b.rows() && a->cols() == b.cols());
  float* ad = a->data();
  const float* bd = b.data();
  for (size_t i = 0; i < a->size(); ++i) ad[i] += s * bd[i];
}

void ClampInPlace(Matrix* a, float lo, float hi) {
  float* ad = a->data();
  for (size_t i = 0; i < a->size(); ++i) {
    ad[i] = std::min(hi, std::max(lo, ad[i]));
  }
}

}  // namespace simcard
