#include "tensor/ops.h"

#include <algorithm>
#include <cassert>

namespace simcard {

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.cols();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.Row(p);
      for (size_t j = 0; j < m; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  const size_t k = a.cols();
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.Row(j);
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return c;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (size_t p = 0; p < a.rows(); ++p) {
    const float* arow = a.Row(p);
    const float* brow = b.Row(p);
    for (size_t i = 0; i < a.cols(); ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.Row(i);
      for (size_t j = 0; j < b.cols(); ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      t.at(j, i) = a.at(i, j);
    }
  }
  return t;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c = a;
  float* cd = c.data();
  const float* bd = b.data();
  for (size_t i = 0; i < c.size(); ++i) cd[i] += bd[i];
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c = a;
  float* cd = c.data();
  const float* bd = b.data();
  for (size_t i = 0; i < c.size(); ++i) cd[i] -= bd[i];
  return c;
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c = a;
  float* cd = c.data();
  const float* bd = b.data();
  for (size_t i = 0; i < c.size(); ++i) cd[i] *= bd[i];
  return c;
}

Matrix Scale(const Matrix& a, float s) {
  Matrix c = a;
  float* cd = c.data();
  for (size_t i = 0; i < c.size(); ++i) cd[i] *= s;
  return c;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias) {
  assert(bias.rows() == 1 && bias.cols() == a.cols());
  Matrix c = a;
  const float* bd = bias.data();
  for (size_t r = 0; r < c.rows(); ++r) {
    float* row = c.Row(r);
    for (size_t j = 0; j < c.cols(); ++j) row[j] += bd[j];
  }
  return c;
}

Matrix SumRows(const Matrix& a) {
  Matrix s(1, a.cols());
  float* sd = s.data();
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* row = a.Row(r);
    for (size_t j = 0; j < a.cols(); ++j) sd[j] += row[j];
  }
  return s;
}

Matrix ConcatCols(const std::vector<Matrix>& parts) {
  assert(!parts.empty());
  size_t rows = parts[0].rows();
  size_t cols = 0;
  for (const auto& p : parts) {
    assert(p.rows() == rows);
    cols += p.cols();
  }
  Matrix out(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    float* dst = out.Row(r);
    for (const auto& p : parts) {
      const float* src = p.Row(r);
      std::copy(src, src + p.cols(), dst);
      dst += p.cols();
    }
  }
  return out;
}

void AddScaledInPlace(Matrix* a, const Matrix& b, float s) {
  assert(a->rows() == b.rows() && a->cols() == b.cols());
  float* ad = a->data();
  const float* bd = b.data();
  for (size_t i = 0; i < a->size(); ++i) ad[i] += s * bd[i];
}

void ClampInPlace(Matrix* a, float lo, float hi) {
  float* ad = a->data();
  for (size_t i = 0; i < a->size(); ++i) {
    ad[i] = std::min(hi, std::max(lo, ad[i]));
  }
}

}  // namespace simcard
