// Dense row-major float32 matrix.
//
// All neural-network state and activations in simcard are Matrix objects.
// Rows are the batch dimension by convention; a vector is a 1xN matrix.
// The class is deliberately small: shape bookkeeping, element access, and a
// few whole-matrix helpers. Numerical kernels live in tensor/ops.h.
#ifndef SIMCARD_TENSOR_MATRIX_H_
#define SIMCARD_TENSOR_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"

namespace simcard {

/// \brief Allocator whose valueless construct() default-initializes — a
/// no-op for float — so Matrix::Uninit can skip the zero-fill for outputs
/// every element of which is about to be written. Explicit fills
/// (vector(n, 0.0f), assign, push_back) still construct values as usual.
template <class T>
struct DefaultInitAllocator : std::allocator<T> {
  using std::allocator<T>::allocator;
  template <class U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };
  template <class U>
  void construct(U* p) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(p)) U;
  }
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

/// \brief Row-major float32 matrix with value semantics.
class Matrix {
 public:
  using Buffer = std::vector<float, DefaultInitAllocator<float>>;

  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}
  Matrix(size_t rows, size_t cols, const std::vector<float>& data)
      : rows_(rows), cols_(cols), data_(data.begin(), data.end()) {
    assert(data_.size() == rows_ * cols_);
  }

  /// All-zeros matrix.
  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

  /// Matrix with UNINITIALIZED contents: the kernels' fast path for outputs
  /// that write every element before any read. Reading an element before
  /// writing it is undefined — never hand one of these out partially
  /// written.
  static Matrix Uninit(size_t rows, size_t cols) {
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = Buffer(rows * cols);
    return m;
  }

  /// Constant-filled matrix.
  static Matrix Full(size_t rows, size_t cols, float value);

  /// I.i.d. N(0, stddev^2) entries drawn from `rng`.
  static Matrix Gaussian(size_t rows, size_t cols, float stddev, Rng* rng);

  /// Wraps one row of external data (copies it) as a 1xN matrix.
  static Matrix RowVector(const std::vector<float>& values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* Row(size_t r) {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  const Buffer& storage() const { return data_; }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Copies `src` (length cols()) into row `r`.
  void SetRow(size_t r, const float* src);

  /// Returns a copy of rows [begin, end).
  Matrix SliceRows(size_t begin, size_t end) const;

  /// Returns a copy of columns [begin, end).
  Matrix SliceCols(size_t begin, size_t end) const;

  /// Sum of all elements.
  double Sum() const;

  /// Frobenius norm.
  double Norm() const;

  /// Largest absolute element.
  float MaxAbs() const;

  /// True when shapes and all elements match `other` within `tol`.
  bool AllClose(const Matrix& other, float tol = 1e-5f) const;

  /// Debug rendering of shape + leading elements.
  std::string ToString(size_t max_elems = 16) const;

  void Serialize(Serializer* out) const;
  Status Deserialize(Deserializer* in);

 private:
  size_t rows_;
  size_t cols_;
  Buffer data_;
};

}  // namespace simcard

#endif  // SIMCARD_TENSOR_MATRIX_H_
