// Dense row-major float32 matrix.
//
// All neural-network state and activations in simcard are Matrix objects.
// Rows are the batch dimension by convention; a vector is a 1xN matrix.
// The class is deliberately small: shape bookkeeping, element access, and a
// few whole-matrix helpers. Numerical kernels live in tensor/ops.h.
#ifndef SIMCARD_TENSOR_MATRIX_H_
#define SIMCARD_TENSOR_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"

namespace simcard {

/// \brief Row-major float32 matrix with value semantics.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}
  Matrix(size_t rows, size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  /// All-zeros matrix.
  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

  /// Constant-filled matrix.
  static Matrix Full(size_t rows, size_t cols, float value);

  /// I.i.d. N(0, stddev^2) entries drawn from `rng`.
  static Matrix Gaussian(size_t rows, size_t cols, float stddev, Rng* rng);

  /// Wraps one row of external data (copies it) as a 1xN matrix.
  static Matrix RowVector(const std::vector<float>& values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* Row(size_t r) {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  const std::vector<float>& storage() const { return data_; }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Copies `src` (length cols()) into row `r`.
  void SetRow(size_t r, const float* src);

  /// Returns a copy of rows [begin, end).
  Matrix SliceRows(size_t begin, size_t end) const;

  /// Returns a copy of columns [begin, end).
  Matrix SliceCols(size_t begin, size_t end) const;

  /// Sum of all elements.
  double Sum() const;

  /// Frobenius norm.
  double Norm() const;

  /// Largest absolute element.
  float MaxAbs() const;

  /// True when shapes and all elements match `other` within `tol`.
  bool AllClose(const Matrix& other, float tol = 1e-5f) const;

  /// Debug rendering of shape + leading elements.
  std::string ToString(size_t max_elems = 16) const;

  void Serialize(Serializer* out) const;
  Status Deserialize(Deserializer* in);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace simcard

#endif  // SIMCARD_TENSOR_MATRIX_H_
