#include "baselines/kernel_estimator.h"

#include <algorithm>
#include <cmath>

#include "data/sampling.h"

namespace simcard {
namespace {

// Standard normal CDF.
double NormalCdf(double z) { return 0.5 * std::erfc(-z * M_SQRT1_2); }

}  // namespace

Status KernelEstimator::Train(const TrainContext& ctx) {
  if (ctx.dataset == nullptr) {
    return Status::InvalidArgument("KernelEstimator: dataset required");
  }
  if (fraction_ <= 0.0 || fraction_ > 1.0) {
    return Status::InvalidArgument(
        "KernelEstimator: fraction must be in (0,1]");
  }
  const Dataset& data = *ctx.dataset;
  const size_t rows = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(fraction_ * static_cast<double>(data.size()))));
  Rng rng(ctx.seed);
  sample_ = GatherRows(data.points(), SampleIndices(data, rows, &rng));
  metric_ = data.metric();
  scale_ = static_cast<double>(data.size()) / static_cast<double>(rows);
  return Status::OK();
}

double KernelEstimator::Estimate(const EstimateRequest& request) {
  const float* query = request.query.data();
  const float tau = request.tau;
  const size_t k = sample_.rows();
  std::vector<double> dists(k);
  double mean = 0.0;
  for (size_t i = 0; i < k; ++i) {
    dists[i] = Distance(query, sample_.Row(i), sample_.cols(), metric_);
    mean += dists[i];
  }
  mean /= static_cast<double>(k);
  double var = 0.0;
  for (double d : dists) var += (d - mean) * (d - mean);
  var /= static_cast<double>(std::max<size_t>(1, k - 1));
  // Silverman's rule of thumb for a 1-D Gaussian kernel over distances.
  const double bandwidth = std::max(
      1e-6, 1.06 * std::sqrt(var) *
                std::pow(static_cast<double>(k), -0.2));

  double mass = 0.0;
  for (double d : dists) {
    mass += NormalCdf((static_cast<double>(tau) - d) / bandwidth);
  }
  return mass * scale_;
}

size_t KernelEstimator::ModelSizeBytes() const {
  return sample_.size() * sizeof(float);
}

}  // namespace simcard
