#include "baselines/cardnet_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stopwatch.h"
#include "nn/activations.h"
#include "nn/optimizer.h"
#include "workload/labels.h"

namespace simcard {
namespace {

// Inclusion weight of bucket b at threshold tau: 1 below tau's bucket, a
// linear fraction inside it, 0 above. Differentiable-in-parameters (the
// weights depend only on tau) and monotone non-decreasing in tau.
void BucketInclusion(const std::vector<float>& upper, float tau,
                     std::vector<float>* w) {
  w->assign(upper.size(), 0.0f);
  float lower = 0.0f;
  for (size_t b = 0; b < upper.size(); ++b) {
    if (tau >= upper[b]) {
      (*w)[b] = 1.0f;
    } else if (tau > lower) {
      (*w)[b] = (tau - lower) / std::max(1e-9f, upper[b] - lower);
      break;
    } else {
      break;
    }
    lower = upper[b];
  }
}

// d(hybrid loss)/d(card) in raw cardinality space.
float HybridGradRawCard(float card, float y, float lambda, float clip) {
  const float yc = std::max(y, 0.1f);
  const float c = std::max(card, 1e-3f);
  float g = (c >= y ? 1.0f : -1.0f) / yc;            // MAPE term
  g += lambda * (c >= yc ? 1.0f / yc : -yc / (c * c));  // Q-error term
  return std::min(clip, std::max(-clip, g));
}

}  // namespace

Status CardNetEstimator::Train(const TrainContext& ctx) {
  if (ctx.dataset == nullptr || ctx.workload == nullptr) {
    return Status::InvalidArgument("CardNet: dataset/workload required");
  }
  Stopwatch watch;
  Rng rng(ctx.seed);
  const size_t d = ctx.dataset->dim();
  query_dim_ = d;
  max_card_ = static_cast<double>(ctx.dataset->size());

  // Equal-frequency bucket boundaries over the training thresholds.
  std::vector<float> taus;
  for (const auto& q : ctx.workload->train) {
    for (const auto& t : q.thresholds) taus.push_back(t.tau);
  }
  if (taus.empty()) {
    return Status::InvalidArgument("CardNet: empty training workload");
  }
  std::sort(taus.begin(), taus.end());
  const size_t nb = std::min(config_.num_buckets, taus.size());
  bucket_upper_.resize(nb);
  for (size_t b = 0; b < nb; ++b) {
    const size_t rank =
        std::min(taus.size() - 1, (b + 1) * taus.size() / nb);
    bucket_upper_[b] = taus[rank];
  }
  bucket_upper_.back() = taus.back();
  // Deduplicate ties by nudging (keeps inclusion weights well-defined).
  for (size_t b = 1; b < nb; ++b) {
    if (bucket_upper_[b] <= bucket_upper_[b - 1]) {
      bucket_upper_[b] = std::nextafter(bucket_upper_[b - 1],
                                        std::numeric_limits<float>::max());
    }
  }

  // Fully-connected encoder (no query segmentation, by design).
  encoder_ = std::make_unique<nn::Sequential>();
  encoder_->Emplace<nn::Linear>(d, config_.encoder_hidden, &rng);
  encoder_->Emplace<nn::Relu>();
  encoder_->Emplace<nn::Linear>(config_.encoder_hidden, config_.encoder_out,
                                &rng);
  encoder_->Emplace<nn::Relu>();
  decoder_ = std::make_unique<nn::Linear>(config_.encoder_out, nb, &rng);

  std::vector<nn::Parameter*> params = encoder_->Parameters();
  {
    auto dp = decoder_->Parameters();
    params.insert(params.end(), dp.begin(), dp.end());
  }
  nn::Adam opt(params, config_.lr);

  auto samples = FlattenSearch(ctx.workload->train);
  const Matrix& queries = ctx.workload->train_queries;
  std::vector<float> inclusion;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&samples);
    for (size_t first = 0; first < samples.size();
         first += config_.batch_size) {
      const size_t count =
          std::min(config_.batch_size, samples.size() - first);
      Matrix xq(count, d);
      for (size_t i = 0; i < count; ++i) {
        xq.SetRow(i, queries.Row(samples[first + i].query_row));
      }
      opt.ZeroGrad();
      Matrix raw = decoder_->Forward(encoder_->Forward(xq));
      Matrix grad_raw(count, nb);
      for (size_t i = 0; i < count; ++i) {
        const SampleRef& s = samples[first + i];
        BucketInclusion(bucket_upper_, s.tau, &inclusion);
        double card = 0.0;
        const float* raw_row = raw.Row(i);
        for (size_t b = 0; b < nb; ++b) {
          card += inclusion[b] * nn::SoftplusScalar(raw_row[b]);
        }
        const float gc = HybridGradRawCard(static_cast<float>(card), s.card,
                                           config_.lambda, 5.0f) /
                         static_cast<float>(count);
        float* grow = grad_raw.Row(i);
        for (size_t b = 0; b < nb; ++b) {
          grow[b] = gc * inclusion[b] * nn::SigmoidScalar(raw_row[b]);
        }
      }
      encoder_->Backward(decoder_->Backward(grad_raw));
      opt.ClipGradNorm(config_.grad_clip_norm);
      opt.Step();
    }
  }
  set_training_seconds(watch.ElapsedSeconds());
  return Status::OK();
}

double CardNetEstimator::PredictCard(const Matrix& increments_row, float tau,
                                     std::vector<float>* inclusion) const {
  BucketInclusion(bucket_upper_, tau, inclusion);
  double card = 0.0;
  for (size_t b = 0; b < bucket_upper_.size(); ++b) {
    card += (*inclusion)[b] *
            nn::SoftplusScalar(increments_row.at(0, b));
  }
  return card;
}

double CardNetEstimator::Estimate(const EstimateRequest& request) {
  Matrix row(1, query_dim_);
  row.SetRow(0, request.query.data());
  Matrix raw = decoder_->Forward(encoder_->Forward(row));
  std::vector<float> inclusion;
  // No query can match more objects than the dataset holds.
  return std::min(PredictCard(raw, request.tau, &inclusion), max_card_);
}

size_t CardNetEstimator::ModelSizeBytes() const {
  size_t scalars = bucket_upper_.size();
  scalars += nn::CountScalars(
      static_cast<const nn::Layer*>(encoder_.get())->Parameters());
  scalars += nn::CountScalars(
      static_cast<const nn::Layer*>(decoder_.get())->Parameters());
  return scalars * sizeof(float);
}

}  // namespace simcard
