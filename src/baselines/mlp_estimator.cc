#include "baselines/mlp_estimator.h"

namespace simcard {

std::unique_ptr<FlatCardEstimator> MakeMlpEstimator() {
  return std::make_unique<FlatCardEstimator>(FlatCardEstimatorConfig::Mlp());
}

std::unique_ptr<FlatCardEstimator> MakeQesEstimator() {
  return std::make_unique<FlatCardEstimator>(FlatCardEstimatorConfig::Qes());
}

}  // namespace simcard
