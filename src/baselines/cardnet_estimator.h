// CardNet-style baseline (Table 2 row 6) — a reimplementation of the
// SIGMOD'20 competitor [53] adapted to this repository's substrate.
//
// CardNet's two properties the paper contrasts against are reproduced
// faithfully: (1) the query embedding is FULLY CONNECTED over the whole
// feature vector (no query segmentation — the stated reason it struggles on
// high-dimensional data), and (2) estimates are MONOTONE in tau via
// per-threshold decoding: tau space is discretized into buckets (equal-
// frequency over the training thresholds) and the network emits one
// non-negative cardinality *increment* per bucket; card(tau) is the prefix
// sum of increments up to tau's bucket. The original's variational
// autoencoder is replaced by a deterministic encoder (see DESIGN.md
// Section 2); the VAE's sampling machinery is orthogonal to both contrasted
// properties.
#ifndef SIMCARD_BASELINES_CARDNET_ESTIMATOR_H_
#define SIMCARD_BASELINES_CARDNET_ESTIMATOR_H_

#include <memory>

#include "core/estimator.h"
#include "nn/linear.h"
#include "nn/sequential.h"

namespace simcard {

/// \brief Monotone bucketed-decoder estimator.
class CardNetEstimator : public Estimator {
 public:
  /// \brief Configuration.
  struct Config {
    size_t num_buckets = 32;   ///< tau discretization resolution
    size_t encoder_hidden = 128;
    size_t encoder_out = 64;
    size_t epochs = 40;
    size_t batch_size = 64;
    float lr = 2e-3f;
    float lambda = 0.2f;  ///< Q-error weight (same hybrid loss as ours)
    double grad_clip_norm = 5.0;
  };

  CardNetEstimator() : config_(Config{}) {}
  explicit CardNetEstimator(Config config) : config_(config) {}

  std::string Name() const override { return "CardNet"; }
  Status Train(const TrainContext& ctx) override;
  double Estimate(const EstimateRequest& request) override;
  size_t ModelSizeBytes() const override;

  /// Exposed for the monotonicity property tests.
  size_t num_buckets() const { return bucket_upper_.size(); }

 private:
  /// Prefix-summed increments for one query at threshold tau, plus the
  /// per-bucket inclusion weights used by backprop.
  double PredictCard(const Matrix& increments_row, float tau,
                     std::vector<float>* inclusion) const;

  Config config_;
  size_t query_dim_ = 0;
  double max_card_ = 0.0;  ///< dataset size; estimates are clamped to it
  std::vector<float> bucket_upper_;  ///< ascending bucket upper bounds
  std::unique_ptr<nn::Sequential> encoder_;
  std::unique_ptr<nn::Linear> decoder_;  ///< encoder_out -> num_buckets
};

}  // namespace simcard

#endif  // SIMCARD_BASELINES_CARDNET_ESTIMATOR_H_
