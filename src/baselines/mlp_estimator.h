// The DL-based MLP baseline (Table 2 row 9): fully-connected embeddings for
// query, distance, and threshold features — i.e. the FlatCardEstimator with
// its MLP query tower. Kept as a distinct factory so benches read like the
// paper's method list.
#ifndef SIMCARD_BASELINES_MLP_ESTIMATOR_H_
#define SIMCARD_BASELINES_MLP_ESTIMATOR_H_

#include <memory>

#include "core/qes_estimator.h"

namespace simcard {

/// Creates the "MLP" baseline estimator.
std::unique_ptr<FlatCardEstimator> MakeMlpEstimator();

/// Creates the "QES" method (query segmentation, no data segmentation).
std::unique_ptr<FlatCardEstimator> MakeQesEstimator();

}  // namespace simcard

#endif  // SIMCARD_BASELINES_MLP_ESTIMATOR_H_
