// Sampling baseline (Table 2 row 7; Exp-1/2).
//
// Retains a uniform sample of the dataset; card(q, tau) is the sample count
// within tau scaled by the inverse sampling ratio. The paper evaluates 1%,
// 10%, and "equal" (a sample occupying the same bytes as the GL+ model).
// Suffers the 0-tuple problem on low-selectivity queries, which is exactly
// what the learned methods fix.
#ifndef SIMCARD_BASELINES_SAMPLING_ESTIMATOR_H_
#define SIMCARD_BASELINES_SAMPLING_ESTIMATOR_H_

#include <memory>
#include <string>

#include "core/estimator.h"

namespace simcard {

/// \brief Uniform-sample scaling estimator.
class SamplingEstimator : public Estimator {
 public:
  /// `fraction` in (0,1]: sample size as a share of the dataset.
  SamplingEstimator(std::string name, double fraction)
      : name_(std::move(name)), fraction_(fraction) {}

  /// Constructs the "Sampling (equal)" variant: the sample is sized to
  /// `target_bytes` (a learned model's size).
  static std::unique_ptr<SamplingEstimator> Equal(size_t target_bytes);

  std::string Name() const override { return name_; }
  Status Train(const TrainContext& ctx) override;
  double Estimate(const EstimateRequest& request) override;
  size_t ModelSizeBytes() const override;

  size_t sample_rows() const { return sample_.rows(); }

 private:
  std::string name_;
  double fraction_ = 0.01;
  size_t target_bytes_ = 0;  ///< nonzero -> "equal" sizing
  double scale_ = 1.0;       ///< dataset_size / sample_size
  Metric metric_ = Metric::kL2;
  Matrix sample_;
  BitMatrix sample_bits_;  ///< fast path for Hamming
  bool use_bits_ = false;
};

}  // namespace simcard

#endif  // SIMCARD_BASELINES_SAMPLING_ESTIMATOR_H_
