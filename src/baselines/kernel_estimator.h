// Kernel-density baseline (Table 2 row 8), after Mattig et al. [37].
//
// Each retained sample contributes a Gaussian kernel over *distance* space;
// card(q, tau) is the scaled sum of each kernel's cumulative density up to
// tau. The bandwidth follows a Silverman-style rule on the query's sample
// distances. Like sampling, it keeps raw data rows; unlike sampling, the
// smooth CDF avoids hard zero estimates but still fits multi-modal distance
// distributions poorly (the paper's Exp-1 observation).
#ifndef SIMCARD_BASELINES_KERNEL_ESTIMATOR_H_
#define SIMCARD_BASELINES_KERNEL_ESTIMATOR_H_

#include <string>

#include "core/estimator.h"

namespace simcard {

/// \brief Gaussian-kernel cumulative-density estimator.
class KernelEstimator : public Estimator {
 public:
  explicit KernelEstimator(double fraction = 0.01,
                           std::string name = "Kernel-based")
      : name_(std::move(name)), fraction_(fraction) {}

  std::string Name() const override { return name_; }
  Status Train(const TrainContext& ctx) override;
  double Estimate(const EstimateRequest& request) override;
  size_t ModelSizeBytes() const override;

 private:
  std::string name_;
  double fraction_;
  double scale_ = 1.0;
  Metric metric_ = Metric::kL2;
  Matrix sample_;
};

}  // namespace simcard

#endif  // SIMCARD_BASELINES_KERNEL_ESTIMATOR_H_
