#include "baselines/sampling_estimator.h"

#include <algorithm>
#include <cmath>

#include "core/model_size.h"
#include "data/sampling.h"

namespace simcard {

std::unique_ptr<SamplingEstimator> SamplingEstimator::Equal(
    size_t target_bytes) {
  auto est = std::make_unique<SamplingEstimator>("Sampling (equal)", 0.0);
  est->target_bytes_ = target_bytes;
  return est;
}

Status SamplingEstimator::Train(const TrainContext& ctx) {
  if (ctx.dataset == nullptr) {
    return Status::InvalidArgument("SamplingEstimator: dataset required");
  }
  const Dataset& data = *ctx.dataset;
  size_t rows;
  if (target_bytes_ > 0) {
    rows = SampleRowsForBytes(data, target_bytes_);
  } else {
    if (fraction_ <= 0.0 || fraction_ > 1.0) {
      return Status::InvalidArgument(
          "SamplingEstimator: fraction must be in (0,1]");
    }
    rows = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(fraction_ * static_cast<double>(data.size()))));
  }
  Rng rng(ctx.seed);
  sample_ = GatherRows(data.points(), SampleIndices(data, rows, &rng));
  metric_ = data.metric();
  scale_ = static_cast<double>(data.size()) / static_cast<double>(rows);
  use_bits_ = metric_ == Metric::kHamming;
  if (use_bits_) sample_bits_ = BitMatrix::FromMatrix(sample_);
  return Status::OK();
}

double SamplingEstimator::Estimate(const EstimateRequest& request) {
  const float* query = request.query.data();
  const float tau = request.tau;
  size_t hits = 0;
  if (use_bits_) {
    const auto packed = sample_bits_.PackVector(query);
    for (size_t i = 0; i < sample_bits_.rows(); ++i) {
      hits += sample_bits_.HammingNormalized(i, packed.data()) <= tau;
    }
  } else {
    for (size_t i = 0; i < sample_.rows(); ++i) {
      hits += Distance(query, sample_.Row(i), sample_.cols(), metric_) <= tau;
    }
  }
  return static_cast<double>(hits) * scale_;
}

size_t SamplingEstimator::ModelSizeBytes() const {
  return sample_.size() * sizeof(float);
}

}  // namespace simcard
