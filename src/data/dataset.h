// Dataset: a collection of feature vectors plus its similarity metric.
#ifndef SIMCARD_DATA_DATASET_H_
#define SIMCARD_DATA_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/metric.h"
#include "tensor/matrix.h"

namespace simcard {

/// \brief Immutable-by-default collection of d-dimensional objects.
///
/// Rows of `points` are objects (the paper's x_p). Hamming datasets lazily
/// maintain a bit-packed shadow copy for fast exact scans. Append() supports
/// the incremental-update experiments (Section 5.3 / Exp-11).
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, Matrix points, Metric metric, float tau_max);

  const std::string& name() const { return name_; }
  size_t size() const { return points_.rows(); }
  size_t dim() const { return points_.cols(); }
  Metric metric() const { return metric_; }

  /// Largest threshold the workload generator will emit for this dataset
  /// (the paper's tau_max, Table 3).
  float tau_max() const { return tau_max_; }

  const Matrix& points() const { return points_; }
  const float* Point(size_t i) const { return points_.Row(i); }

  /// Bit-packed rows; built on first use, only meaningful for kHamming.
  const BitMatrix& bits() const;

  /// Distance from an external vector `q` (length dim()) to point `i`.
  float DistanceTo(const float* q, size_t i) const {
    return Distance(q, Point(i), dim(), metric_);
  }

  /// Appends `extra` rows (same width); invalidates the bit cache.
  void Append(const Matrix& extra);

  /// Removes the trailing `n` rows (used by deletion tests).
  void Truncate(size_t n);

  /// Removes the given rows (ascending, unique, in range) by stable
  /// compaction: surviving rows keep their relative order, so old row r
  /// lands at BuildEraseRemap(size(), rows)[r]. Invalidates the bit cache.
  /// Arbitrary-row deletion for the online-update path (Section 5.3);
  /// Truncate(n) is the trailing-rows special case.
  void EraseRows(const std::vector<uint32_t>& rows);

  void Serialize(Serializer* out) const;
  static Result<Dataset> Deserialize(Deserializer* in);

 private:
  std::string name_;
  Matrix points_;
  Metric metric_ = Metric::kL2;
  float tau_max_ = 1.0f;
  mutable std::unique_ptr<BitMatrix> bits_;  // lazy cache
};

}  // namespace simcard

#endif  // SIMCARD_DATA_DATASET_H_
