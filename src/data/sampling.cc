#include "data/sampling.h"

#include <cstring>

namespace simcard {

std::vector<size_t> SampleIndices(const Dataset& dataset, size_t k, Rng* rng) {
  return rng->SampleWithoutReplacement(dataset.size(), k);
}

Matrix GatherRows(const Matrix& points, const std::vector<size_t>& indices) {
  Matrix out(indices.size(), points.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    std::memcpy(out.Row(i), points.Row(indices[i]),
                points.cols() * sizeof(float));
  }
  return out;
}

}  // namespace simcard
