#include "data/delta_overlay.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace simcard {

std::vector<uint32_t> BuildEraseRemap(
    size_t n, const std::vector<uint32_t>& sorted_rows) {
  std::vector<uint32_t> remap(n);
  size_t next = 0;
  uint32_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    if (next < sorted_rows.size() && sorted_rows[next] == i) {
      remap[i] = kRemovedRow;
      ++next;
    } else {
      remap[i] = out++;
    }
  }
  return remap;
}

Status DeltaOverlay::StageInsert(std::span<const float> point) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("DeltaOverlay: insert has wrong dimension");
  }
  for (float v : point) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("DeltaOverlay: non-finite insert");
    }
  }
  inserts_.insert(inserts_.end(), point.begin(), point.end());
  return Status::OK();
}

Status DeltaOverlay::StageErase(uint32_t row) {
  if (row >= base_rows_) {
    return Status::InvalidArgument(
        "DeltaOverlay: erase row out of range (inserted rows cannot be "
        "erased until the overlay is applied)");
  }
  if (IsErased(row)) {
    return Status::InvalidArgument("DeltaOverlay: row already erased");
  }
  erases_.push_back(row);
  return Status::OK();
}

void DeltaOverlay::UnstageLastInsert() {
  if (inserts_.size() >= dim_ && dim_ > 0) {
    inserts_.resize(inserts_.size() - dim_);
  }
}

void DeltaOverlay::UnstageLastErase() {
  if (!erases_.empty()) erases_.pop_back();
}

bool DeltaOverlay::IsErased(uint32_t row) const {
  return std::find(erases_.begin(), erases_.end(), row) != erases_.end();
}

Matrix DeltaOverlay::InsertMatrix() const {
  const size_t n = num_inserts();
  Matrix out = Matrix::Uninit(n, dim_);
  if (n > 0) {
    std::memcpy(out.data(), inserts_.data(), inserts_.size() * sizeof(float));
  }
  return out;
}

std::vector<uint32_t> DeltaOverlay::SortedErases() const {
  std::vector<uint32_t> out = erases_;
  std::sort(out.begin(), out.end());
  return out;
}

Result<DeltaApplication> DeltaOverlay::ApplyTo(Dataset* dataset) const {
  if (dataset == nullptr) {
    return Status::InvalidArgument("DeltaOverlay: null dataset");
  }
  if (dataset->size() != base_rows_ || dataset->dim() != dim_) {
    return Status::FailedPrecondition(
        "DeltaOverlay: dataset shape no longer matches the staged epoch");
  }
  DeltaApplication app;
  const std::vector<uint32_t> sorted = SortedErases();
  app.remap = BuildEraseRemap(base_rows_, sorted);
  dataset->EraseRows(sorted);
  const uint32_t first_new = static_cast<uint32_t>(dataset->size());
  if (num_inserts() > 0) dataset->Append(InsertMatrix());
  app.new_rows.resize(num_inserts());
  for (size_t i = 0; i < app.new_rows.size(); ++i) {
    app.new_rows[i] = first_new + static_cast<uint32_t>(i);
  }
  return app;
}

}  // namespace simcard
