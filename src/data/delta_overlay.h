// Delta overlay: staged pending mutations against a base dataset.
//
// The online-update subsystem (src/update/) ingests inserts and erases
// while serving continues, then applies them in one shot at refresh time
// (Section 5.3). The overlay is the staging half of that split: it records
// pending rows without touching the base dataset, and ApplyTo materializes
// them — erased rows are removed by stable compaction (surviving rows keep
// their relative order), inserted rows are appended after the survivors.
//
// The overlay itself is not synchronized; update::DeltaBuffer wraps it with
// a mutex plus centroid routing for concurrent writers.
#ifndef SIMCARD_DATA_DELTA_OVERLAY_H_
#define SIMCARD_DATA_DELTA_OVERLAY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"

namespace simcard {

/// Sentinel in a row remap: the row was erased and has no new index.
inline constexpr uint32_t kRemovedRow = 0xFFFFFFFFu;

/// Old-row -> new-row map for erasing `sorted_rows` (ascending, unique)
/// from `n` rows by stable compaction; erased rows map to kRemovedRow.
/// Shared by Dataset::EraseRows and Segmentation::EraseRows so the two
/// always agree on where a surviving row lands.
std::vector<uint32_t> BuildEraseRemap(size_t n,
                                      const std::vector<uint32_t>& sorted_rows);

/// \brief What ApplyTo did to the dataset, in terms callers can act on.
struct DeltaApplication {
  /// Old row -> new row (kRemovedRow for erased rows). Sized to the base
  /// row count the overlay was staged against.
  std::vector<uint32_t> remap;
  /// Row ids of the staged inserts in the updated dataset, in staging order.
  std::vector<uint32_t> new_rows;
};

/// \brief Pending inserts and erases staged against one dataset epoch.
class DeltaOverlay {
 public:
  DeltaOverlay() = default;
  DeltaOverlay(size_t base_rows, size_t dim)
      : base_rows_(base_rows), dim_(dim) {}

  /// Stages one appended row. The vector must hold exactly dim() finite
  /// floats (a malformed delta must never reach the dataset).
  Status StageInsert(std::span<const float> point);

  /// Stages the removal of base row `row`. Rows appended by StageInsert
  /// cannot be erased in the same overlay (they have no row id until
  /// ApplyTo); out-of-range and duplicate erases are rejected.
  Status StageErase(uint32_t row);

  /// Rolls back the most recently staged insert / erase. The update layer
  /// needs these when the journal append for a freshly staged delta fails:
  /// the caller sees an error (no ack), so the delta must not survive in
  /// the overlay or the next refresh would apply a mutation that was never
  /// acknowledged nor made durable. No-ops on an empty overlay.
  void UnstageLastInsert();
  void UnstageLastErase();

  size_t base_rows() const { return base_rows_; }
  size_t dim() const { return dim_; }
  size_t num_inserts() const { return dim_ == 0 ? 0 : inserts_.size() / dim_; }
  size_t num_erases() const { return erases_.size(); }
  size_t pending() const { return num_inserts() + num_erases(); }
  bool IsErased(uint32_t row) const;

  /// The staged inserts as a [num_inserts, dim] matrix (staging order).
  Matrix InsertMatrix() const;

  /// The staged erases, ascending and unique.
  std::vector<uint32_t> SortedErases() const;

  /// Row `i` of the staged inserts (i < num_inserts()).
  const float* InsertRow(size_t i) const { return inserts_.data() + i * dim_; }

  /// Erases the staged rows from `dataset` (stable compaction) and appends
  /// the staged inserts, in that order. `dataset` must still have exactly
  /// base_rows() rows — the overlay is only valid against the epoch it was
  /// staged on.
  Result<DeltaApplication> ApplyTo(Dataset* dataset) const;

 private:
  size_t base_rows_ = 0;
  size_t dim_ = 0;
  std::vector<float> inserts_;    // flattened [num_inserts, dim]
  std::vector<uint32_t> erases_;  // insertion order; sorted on demand
};

}  // namespace simcard

#endif  // SIMCARD_DATA_DELTA_OVERLAY_H_
