#include "data/dataset.h"

#include <cassert>
#include <cstring>

namespace simcard {

Dataset::Dataset(std::string name, Matrix points, Metric metric,
                 float tau_max)
    : name_(std::move(name)),
      points_(std::move(points)),
      metric_(metric),
      tau_max_(tau_max) {}

const BitMatrix& Dataset::bits() const {
  if (bits_ == nullptr) {
    bits_ = std::make_unique<BitMatrix>(BitMatrix::FromMatrix(points_));
  }
  return *bits_;
}

void Dataset::Append(const Matrix& extra) {
  assert(extra.cols() == points_.cols());
  Matrix merged(points_.rows() + extra.rows(), points_.cols());
  std::memcpy(merged.data(), points_.data(),
              points_.size() * sizeof(float));
  std::memcpy(merged.data() + points_.size(), extra.data(),
              extra.size() * sizeof(float));
  points_ = std::move(merged);
  bits_.reset();
}

void Dataset::Truncate(size_t n) {
  assert(n <= points_.rows());
  points_ = points_.SliceRows(0, points_.rows() - n);
  bits_.reset();
}

void Dataset::EraseRows(const std::vector<uint32_t>& rows) {
  if (rows.empty()) return;
  assert(rows.back() < points_.rows());
  Matrix compact = Matrix::Uninit(points_.rows() - rows.size(),
                                  points_.cols());
  size_t next = 0;
  size_t out = 0;
  for (size_t r = 0; r < points_.rows(); ++r) {
    if (next < rows.size() && rows[next] == r) {
      ++next;
      continue;
    }
    compact.SetRow(out++, points_.Row(r));
  }
  assert(out == compact.rows());
  points_ = std::move(compact);
  bits_.reset();
}

void Dataset::Serialize(Serializer* out) const {
  out->WriteString(name_);
  out->WriteU32(static_cast<uint32_t>(metric_));
  out->WriteF32(tau_max_);
  points_.Serialize(out);
}

Result<Dataset> Dataset::Deserialize(Deserializer* in) {
  Dataset d;
  SIMCARD_RETURN_IF_ERROR(in->ReadString(&d.name_));
  uint32_t metric = 0;
  SIMCARD_RETURN_IF_ERROR(in->ReadU32(&metric));
  d.metric_ = static_cast<Metric>(metric);
  SIMCARD_RETURN_IF_ERROR(in->ReadF32(&d.tau_max_));
  SIMCARD_RETURN_IF_ERROR(d.points_.Deserialize(in));
  return d;
}

}  // namespace simcard
