#include "data/generators.h"

#include <algorithm>
#include <cmath>

namespace simcard {
namespace {

// Base specs at Scale::kSmall, mirroring the structure (not the absolute
// size) of the paper's Table 3. Dimensions and cardinalities are scaled to a
// single-core budget; kFull grows toward the paper's regime.
const AnalogSpec kBaseSpecs[] = {
    // name, paper, dim, n, clusters, metric, tau_max, train_q, test_q
    {"bms-sim", "BMS", 128, 20000, 50, Metric::kHamming, 0.30f, 400, 100},
    {"glove-sim", "GloVe300", 64, 20000, 50, Metric::kAngular, 0.50f, 400,
     100},
    {"imagenet-sim", "ImageNET", 64, 20000, 50, Metric::kHamming, 0.50f, 400,
     100},
    {"aminer-sim", "Aminer", 256, 10000, 40, Metric::kHamming, 0.15f, 200,
     50},
    {"youtube-sim", "YouTube", 128, 10000, 40, Metric::kL2, 2.00f, 160, 40},
    {"dblp-sim", "DBLP", 384, 10000, 40, Metric::kHamming, 0.20f, 160, 40},
};

AnalogSpec ApplyScale(AnalogSpec spec, Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      spec.dim = std::max<size_t>(16, spec.dim / 4);
      spec.num_points = std::max<size_t>(1500, spec.num_points / 10);
      spec.num_clusters = std::max<size_t>(8, spec.num_clusters / 4);
      spec.train_queries = std::max<size_t>(60, spec.train_queries / 5);
      spec.test_queries = std::max<size_t>(20, spec.test_queries / 5);
      break;
    case Scale::kSmall:
      break;
    case Scale::kFull:
      spec.dim *= 2;
      spec.num_points *= 5;
      spec.num_clusters *= 2;
      spec.train_queries *= 4;
      spec.test_queries *= 4;
      break;
  }
  return spec;
}

// Generates points + appended update rows in one deterministic stream so
// updates come from the same cluster structure as the base data.
Matrix GenerateAnalogPoints(const AnalogSpec& spec, size_t total_points,
                            uint64_t seed) {
  Rng rng(seed);
  if (spec.metric == Metric::kL2 || spec.metric == Metric::kAngular ||
      spec.metric == Metric::kCosine) {
    const bool normalize = spec.metric != Metric::kL2;
    const float anisotropy = spec.paper_name == "YouTube" ? 0.6f : 0.0f;
    return GenerateGaussianMixture(total_points, spec.dim, spec.num_clusters,
                                   /*cluster_spread=*/1.0f,
                                   /*within_spread=*/0.22f, anisotropy,
                                   normalize, &rng);
  }
  // Hamming family. ImageNET-like codes are dense; the set-based analogs
  // (BMS/Aminer/DBLP) are sparse with token-frequency-like bit densities.
  if (spec.paper_name == "ImageNET") {
    return GenerateBinaryPrototypes(total_points, spec.dim, spec.num_clusters,
                                    /*uniform_density=*/0.5f, {},
                                    /*flip_prob=*/0.08f, &rng);
  }
  const float expected_ones = std::max(8.0f, spec.dim * 0.08f);
  auto density = PowerLawBitDensity(spec.dim, /*exponent=*/1.2f,
                                    expected_ones, &rng);
  return GenerateBinaryPrototypes(total_points, spec.dim, spec.num_clusters,
                                  /*uniform_density=*/0.0f, density,
                                  /*flip_prob=*/0.02f, &rng);
}

}  // namespace

Result<Scale> ParseScale(const std::string& name) {
  if (name == "tiny") return Scale::kTiny;
  if (name == "small") return Scale::kSmall;
  if (name == "full") return Scale::kFull;
  return Status::InvalidArgument("unknown scale: " + name +
                                 " (expected tiny|small|full)");
}

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return "tiny";
    case Scale::kSmall:
      return "small";
    case Scale::kFull:
      return "full";
  }
  return "?";
}

Matrix GenerateGaussianMixture(size_t n, size_t dim, size_t clusters,
                               float cluster_spread, float within_spread,
                               float anisotropy, bool normalize, Rng* rng) {
  // Cluster centers.
  Matrix centers = Matrix::Gaussian(clusters, dim, cluster_spread, rng);
  // Optional per-cluster axis scales (anisotropy).
  Matrix axis_scales = Matrix::Full(clusters, dim, 1.0f);
  if (anisotropy > 0.0f) {
    for (size_t c = 0; c < clusters; ++c) {
      for (size_t j = 0; j < dim; ++j) {
        axis_scales.at(c, j) =
            std::exp(anisotropy * static_cast<float>(rng->NextGaussian()));
      }
    }
  }
  // Zipf-ish cluster popularity so segment cardinalities vary (the paper's
  // penalty experiment needs skew across segments).
  std::vector<double> weights(clusters);
  double total = 0.0;
  for (size_t c = 0; c < clusters; ++c) {
    weights[c] = 1.0 / static_cast<double>(c + 1);
    total += weights[c];
  }
  std::vector<double> cdf(clusters);
  double acc = 0.0;
  for (size_t c = 0; c < clusters; ++c) {
    acc += weights[c] / total;
    cdf[c] = acc;
  }

  Matrix points(n, dim);
  for (size_t i = 0; i < n; ++i) {
    const double u = rng->NextDouble();
    size_t c = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (c >= clusters) c = clusters - 1;
    float* row = points.Row(i);
    const float* center = centers.Row(c);
    const float* scales = axis_scales.Row(c);
    for (size_t j = 0; j < dim; ++j) {
      row[j] = center[j] + within_spread * scales[j] *
                               static_cast<float>(rng->NextGaussian());
    }
    if (normalize) NormalizeRow(row, dim);
  }
  return points;
}

Matrix GenerateBinaryPrototypes(size_t n, size_t dim, size_t clusters,
                                float uniform_density,
                                const std::vector<float>& bit_density,
                                float flip_prob, Rng* rng) {
  // Prototype codes.
  Matrix protos(clusters, dim);
  for (size_t c = 0; c < clusters; ++c) {
    float* row = protos.Row(c);
    for (size_t j = 0; j < dim; ++j) {
      const float p = bit_density.empty() ? uniform_density : bit_density[j];
      row[j] = rng->NextBernoulli(p) ? 1.0f : 0.0f;
    }
  }
  // Zipf-ish popularity, as in the dense generator.
  std::vector<double> cdf(clusters);
  double total = 0.0;
  for (size_t c = 0; c < clusters; ++c) total += 1.0 / (c + 1.0);
  double acc = 0.0;
  for (size_t c = 0; c < clusters; ++c) {
    acc += 1.0 / ((c + 1.0) * total);
    cdf[c] = acc;
  }

  Matrix points(n, dim);
  for (size_t i = 0; i < n; ++i) {
    const double u = rng->NextDouble();
    size_t c = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (c >= clusters) c = clusters - 1;
    float* row = points.Row(i);
    const float* proto = protos.Row(c);
    for (size_t j = 0; j < dim; ++j) {
      const bool bit = proto[j] >= 0.5f;
      row[j] = (rng->NextBernoulli(flip_prob) ? !bit : bit) ? 1.0f : 0.0f;
    }
  }
  return points;
}

std::vector<float> PowerLawBitDensity(size_t dim, float exponent,
                                      float expected_ones, Rng* rng) {
  std::vector<float> density(dim);
  for (size_t j = 0; j < dim; ++j) {
    density[j] = std::pow(static_cast<float>(j + 1), -exponent);
  }
  // Water-filling calibration: scale the unclamped entries so the total
  // probability mass hits expected_ones even though head "tokens" saturate
  // at the 0.95 cap.
  constexpr float kCap = 0.95f;
  const double target =
      std::min<double>(expected_ones, kCap * static_cast<double>(dim));
  std::vector<bool> capped(dim, false);
  for (;;) {
    size_t n_capped = 0;
    double free_mass = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      if (capped[j]) {
        ++n_capped;
      } else {
        free_mass += density[j];
      }
    }
    const double remaining = target - kCap * static_cast<double>(n_capped);
    if (remaining <= 0.0 || free_mass <= 0.0) break;
    const double s = remaining / free_mass;
    bool newly_capped = false;
    for (size_t j = 0; j < dim; ++j) {
      if (!capped[j] && density[j] * s >= kCap) {
        capped[j] = true;
        newly_capped = true;
      }
    }
    if (!newly_capped) {
      for (size_t j = 0; j < dim; ++j) {
        if (!capped[j]) density[j] = static_cast<float>(density[j] * s);
      }
      break;
    }
  }
  for (size_t j = 0; j < dim; ++j) {
    if (capped[j]) density[j] = kCap;
  }
  // Shuffle so frequent "tokens" are not all in the leading dimensions
  // (otherwise query segmentation would see trivially imbalanced segments).
  for (size_t j = dim - 1; j > 0; --j) {
    size_t k = static_cast<size_t>(rng->NextBounded(j + 1));
    std::swap(density[j], density[k]);
  }
  return density;
}

std::vector<std::string> AnalogNames() {
  std::vector<std::string> names;
  for (const auto& spec : kBaseSpecs) names.push_back(spec.name);
  return names;
}

Result<AnalogSpec> GetAnalogSpec(const std::string& name, Scale scale) {
  for (const auto& spec : kBaseSpecs) {
    if (spec.name == name) return ApplyScale(spec, scale);
  }
  return Status::NotFound("unknown analog dataset: " + name);
}

Result<Dataset> MakeAnalogDataset(const std::string& name, Scale scale,
                                  uint64_t seed) {
  auto spec_or = GetAnalogSpec(name, scale);
  if (!spec_or.ok()) return spec_or.status();
  const AnalogSpec& spec = spec_or.value();
  Matrix points = GenerateAnalogPoints(spec, spec.num_points, seed);
  return Dataset(spec.name, std::move(points), spec.metric, spec.tau_max);
}

Result<Matrix> MakeAnalogUpdates(const std::string& name, Scale scale,
                                 size_t n, uint64_t seed) {
  auto spec_or = GetAnalogSpec(name, scale);
  if (!spec_or.ok()) return spec_or.status();
  const AnalogSpec& spec = spec_or.value();
  // Generate base + tail in one deterministic stream, then return the tail:
  // updates are fresh draws from the same cluster structure.
  Matrix all = GenerateAnalogPoints(spec, spec.num_points + n, seed);
  return all.SliceRows(spec.num_points, spec.num_points + n);
}

}  // namespace simcard
