// Synthetic analogs of the paper's six evaluation datasets (Table 3).
//
// The real corpora (BMS, GloVe300, ImageNET/HashNet, Aminer, YouTube Faces,
// DBLP) are not available offline; each generator below produces data with
// the same *structure* the corresponding dataset contributes to the paper's
// evaluation — clustered sparse binary sets, unit-norm dense word vectors,
// short binary hash codes, very high-dimensional sparse title vectors, dense
// face embeddings — under the same (transformed) metric. See DESIGN.md
// Section 2 for the substitution rationale.
#ifndef SIMCARD_DATA_GENERATORS_H_
#define SIMCARD_DATA_GENERATORS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace simcard {

/// Experiment sizing knob shared by tests, examples, and benches.
enum class Scale { kTiny, kSmall, kFull };

Result<Scale> ParseScale(const std::string& name);
const char* ScaleName(Scale scale);

/// \brief Low-level generator: mixture of Gaussian clusters.
///
/// `anisotropy` > 0 stretches each cluster along random axes (YouTube-like);
/// `normalize` projects points to the unit sphere (GloVe-like).
Matrix GenerateGaussianMixture(size_t n, size_t dim, size_t clusters,
                               float cluster_spread, float within_spread,
                               float anisotropy, bool normalize, Rng* rng);

/// \brief Low-level generator: binary vectors around prototype codes.
///
/// Each cluster has a prototype whose bits are 1 with probability
/// `bit_density[j]` per dimension j (pass an empty vector for uniform
/// density `uniform_density`); members flip each prototype bit with
/// probability `flip_prob`.
Matrix GenerateBinaryPrototypes(size_t n, size_t dim, size_t clusters,
                                float uniform_density,
                                const std::vector<float>& bit_density,
                                float flip_prob, Rng* rng);

/// Power-law per-dimension bit densities (token-frequency-like), scaled so
/// the expected number of set bits is `expected_ones`.
std::vector<float> PowerLawBitDensity(size_t dim, float exponent,
                                      float expected_ones, Rng* rng);

/// \brief Static description of one paper-analog dataset at a given scale.
struct AnalogSpec {
  std::string name;          ///< e.g. "glove-sim"
  std::string paper_name;    ///< e.g. "GloVe300"
  size_t dim = 0;
  size_t num_points = 0;
  size_t num_clusters = 0;
  Metric metric = Metric::kL2;
  float tau_max = 1.0f;
  size_t train_queries = 0;  ///< query objects (each gets 10 thresholds)
  size_t test_queries = 0;
};

/// Names of all six analogs, in the paper's Table 3 order.
std::vector<std::string> AnalogNames();

/// Spec for `name` at `scale`; NotFound for unknown names.
Result<AnalogSpec> GetAnalogSpec(const std::string& name, Scale scale);

/// Materializes the analog dataset deterministically from `seed`.
Result<Dataset> MakeAnalogDataset(const std::string& name, Scale scale,
                                  uint64_t seed);

/// Generates `n` extra rows drawn from the same distribution family as the
/// analog `name` (used by the incremental-update experiment, Exp-11).
Result<Matrix> MakeAnalogUpdates(const std::string& name, Scale scale,
                                 size_t n, uint64_t seed);

}  // namespace simcard

#endif  // SIMCARD_DATA_GENERATORS_H_
