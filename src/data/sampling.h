// Data-sample selection shared by the basic model's x_D feature (k samples,
// Section 3.1) and the sampling baselines (Exp-1/2).
#ifndef SIMCARD_DATA_SAMPLING_H_
#define SIMCARD_DATA_SAMPLING_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace simcard {

/// Uniformly samples `k` distinct row indices of `dataset`.
std::vector<size_t> SampleIndices(const Dataset& dataset, size_t k, Rng* rng);

/// Materializes sampled rows into their own matrix (rows in sample order).
Matrix GatherRows(const Matrix& points, const std::vector<size_t>& indices);

}  // namespace simcard

#endif  // SIMCARD_DATA_SAMPLING_H_
