#include "obs/trace.h"

#include "common/logging.h"
#include "obs/clock.h"

namespace simcard {
namespace obs {
namespace {

thread_local int g_span_depth = 0;

int64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             ReadMonotonicClock() - start)
      .count();
}

}  // namespace

int64_t ScopedTimer::Stop() {
  if (hist_ == nullptr) return 0;
  const int64_t us = ElapsedUs(start_);
  hist_->Record(static_cast<double>(us));
  hist_ = nullptr;
  return us;
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!MetricsEnabled()) return;
  active_ = true;
  start_ = ReadMonotonicClock();
  ++g_span_depth;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const int64_t us = ElapsedUs(start_);
  --g_span_depth;
  GetHistogram(std::string("span.") + name_ + "_us")
      ->Record(static_cast<double>(us));
  SIMCARD_LOG(DEBUG) << std::string(static_cast<size_t>(g_span_depth) * 2, ' ')
                     << "span " << name_ << ": " << us << "us";
}

int TraceSpan::CurrentDepth() { return g_span_depth; }

}  // namespace obs
}  // namespace simcard
