#include "obs/qerror_tracker.h"

#include <algorithm>
#include <cmath>

namespace simcard {
namespace obs {

QErrorTracker::QErrorTracker(QErrorTrackerOptions options)
    : options_(std::move(options)) {
  if (options_.window == 0) options_.window = 1;
  std::sort(options_.tau_edges.begin(), options_.tau_edges.end());
  by_tau_.resize(num_tau_buckets());
}

double QErrorTracker::QError(double estimate, double actual) {
  const double est = std::max(std::abs(estimate), 1.0);
  const double act = std::max(std::abs(actual), 1.0);
  return est >= act ? est / act : act / est;
}

void QErrorTracker::Ring::Push(double v, size_t capacity) {
  if (values.size() < capacity) {
    values.push_back(v);
  } else {
    values[next] = v;
    next = (next + 1) % capacity;
  }
  count = values.size();
  ++total;
}

void QErrorTracker::Record(double estimate, double actual, float tau,
                           std::span<const uint32_t> segments) {
  if (!std::isfinite(estimate) || !std::isfinite(actual)) return;
  const double q = QError(estimate, actual);
  std::lock_guard<std::mutex> lk(mu_);
  overall_.Push(q, options_.window);
  by_tau_[TauBucketIndexLocked(tau)].Push(q, options_.window);
  for (uint32_t s : segments) {
    if (s >= options_.max_segments) continue;
    by_segment_[s].Push(q, options_.window);
  }
}

size_t QErrorTracker::TauBucketIndexLocked(float tau) const {
  size_t b = 0;
  while (b < options_.tau_edges.size() && tau > options_.tau_edges[b]) ++b;
  return b;
}

QErrorWindow QErrorTracker::StatsLocked(const Ring& ring) const {
  QErrorWindow w;
  w.reports = ring.count;
  if (ring.count == 0) return w;
  std::vector<double> sorted(ring.values.begin(),
                             ring.values.begin() + ring.count);
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double v : sorted) sum += v;
  w.mean = sum / static_cast<double>(sorted.size());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  };
  w.p50 = quantile(0.5);
  w.p90 = quantile(0.9);
  w.p99 = quantile(0.99);
  w.max = sorted.back();
  return w;
}

QErrorWindow QErrorTracker::Overall() const {
  std::lock_guard<std::mutex> lk(mu_);
  return StatsLocked(overall_);
}

QErrorWindow QErrorTracker::TauBucket(size_t b) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (b >= by_tau_.size()) return {};
  return StatsLocked(by_tau_[b]);
}

QErrorWindow QErrorTracker::Segment(size_t s) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_segment_.find(s);
  if (it == by_segment_.end()) return {};
  return StatsLocked(it->second);
}

std::vector<ObservedSegmentAccuracy> QErrorTracker::PerSegment() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ObservedSegmentAccuracy> out;
  out.reserve(by_segment_.size());
  for (const auto& [s, ring] : by_segment_) {
    const QErrorWindow w = StatsLocked(ring);
    if (w.reports == 0) continue;
    ObservedSegmentAccuracy acc;
    acc.segment = s;
    acc.reports = w.reports;
    acc.qerror_p50 = w.p50;
    acc.qerror_p90 = w.p90;
    out.push_back(acc);
  }
  return out;
}

uint64_t QErrorTracker::total_reports() const {
  std::lock_guard<std::mutex> lk(mu_);
  return overall_.total;
}

namespace {

JsonValue WindowToJson(const QErrorWindow& w) {
  JsonValue obj = JsonValue::Object();
  obj.Set("reports", JsonValue::Int(static_cast<int64_t>(w.reports)));
  obj.Set("mean", JsonValue::Number(w.mean));
  obj.Set("p50", JsonValue::Number(w.p50));
  obj.Set("p90", JsonValue::Number(w.p90));
  obj.Set("p99", JsonValue::Number(w.p99));
  obj.Set("max", JsonValue::Number(w.max));
  return obj;
}

}  // namespace

JsonValue QErrorTracker::ToJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  JsonValue doc = JsonValue::Object();
  doc.Set("window", JsonValue::Int(static_cast<int64_t>(options_.window)));
  doc.Set("total_reports",
          JsonValue::Int(static_cast<int64_t>(overall_.total)));
  doc.Set("overall", WindowToJson(StatsLocked(overall_)));

  JsonValue by_tau = JsonValue::Array();
  for (size_t b = 0; b < by_tau_.size(); ++b) {
    JsonValue bucket = JsonValue::Object();
    const bool overflow = b >= options_.tau_edges.size();
    bucket.Set("tau_le",
               overflow ? JsonValue::Null()
                        : JsonValue::Number(options_.tau_edges[b]));
    bucket.Set("stats", WindowToJson(StatsLocked(by_tau_[b])));
    by_tau.Append(std::move(bucket));
  }
  doc.Set("by_tau", std::move(by_tau));

  JsonValue by_segment = JsonValue::Array();
  for (const auto& [s, ring] : by_segment_) {
    const QErrorWindow w = StatsLocked(ring);
    if (w.reports == 0) continue;
    JsonValue seg = JsonValue::Object();
    seg.Set("segment", JsonValue::Int(static_cast<int64_t>(s)));
    seg.Set("stats", WindowToJson(w));
    by_segment.Append(std::move(seg));
  }
  doc.Set("by_segment", std::move(by_segment));
  return doc;
}

void QErrorTracker::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  overall_ = Ring{};
  for (Ring& r : by_tau_) r = Ring{};
  by_segment_.clear();
}

}  // namespace obs
}  // namespace simcard
