#include "obs/training_observer.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace simcard {
namespace obs {
namespace {

std::mutex& ObserverMutex() {
  static std::mutex mu;
  return mu;
}

std::vector<TrainingObserver*>& Observers() {
  static std::vector<TrainingObserver*> observers;
  return observers;
}

std::vector<TrainingObserver*> SnapshotObservers() {
  std::lock_guard<std::mutex> lock(ObserverMutex());
  return Observers();
}

}  // namespace

void AddTrainingObserver(TrainingObserver* observer) {
  if (observer == nullptr) return;
  std::lock_guard<std::mutex> lock(ObserverMutex());
  Observers().push_back(observer);
}

void RemoveTrainingObserver(TrainingObserver* observer) {
  std::lock_guard<std::mutex> lock(ObserverMutex());
  auto& observers = Observers();
  observers.erase(std::remove(observers.begin(), observers.end(), observer),
                  observers.end());
}

void NotifyTrainEpoch(const std::string& tag, size_t epoch, double loss,
                      double seconds) {
  if (tag.empty()) return;
  if (MetricsEnabled()) {
    GetTimeSeries("train." + tag + ".loss")
        ->Append(static_cast<double>(epoch), loss);
    GetHistogram("train.epoch_us")->Record(seconds * 1e6);
  }
  for (TrainingObserver* obs : SnapshotObservers()) {
    obs->OnEpochEnd(tag, epoch, loss, seconds);
  }
}

void NotifyTrainEnd(const std::string& tag, size_t epochs_run,
                    double final_loss, double total_seconds) {
  if (tag.empty()) return;
  if (MetricsEnabled()) {
    GetCounter("train.runs")->Increment();
    GetTimeSeries("train." + tag + ".seconds")
        ->Append(static_cast<double>(epochs_run), total_seconds);
  }
  for (TrainingObserver* obs : SnapshotObservers()) {
    obs->OnTrainEnd(tag, epochs_run, final_loss, total_seconds);
  }
}

void NotifyDivergence(const std::string& tag, size_t epoch, double loss,
                      size_t retry, float next_lr) {
  if (MetricsEnabled()) {
    GetCounter("simcard.watchdog.divergences")->Increment();
  }
  for (TrainingObserver* obs : SnapshotObservers()) {
    obs->OnDivergence(tag, epoch, loss, retry, next_lr);
  }
}

}  // namespace obs
}  // namespace simcard
