// Per-segment health rollup for live telemetry.
//
// The serving and update layers each know one sliver of a segment's state:
// the circuit breaker knows whether its local model keeps failing, the
// estimator knows how often the segment answered from its sampling
// fallback, the published model knows which locals are quarantined, the
// drift monitor knows how far pending deltas moved the segment, and the
// delta buffer knows the backlog routed at it. This registry unifies those
// slivers into one fixed-size array of atomic slots that the
// TelemetryExporter snapshots — writers pay a handful of relaxed stores,
// never a lock.
//
// Slots are keyed by segment id and capped at kMaxSegments (beyond that,
// updates are dropped — consistent with the breaker's own max_segments
// cap). A slot reports only after it was touched at least once.
#ifndef SIMCARD_OBS_SEGMENT_HEALTH_H_
#define SIMCARD_OBS_SEGMENT_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/json.h"

namespace simcard {
namespace obs {

/// Breaker state codes mirrored from serve::SegmentCircuitBreaker.
enum class BreakerHealth : uint32_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

/// \brief One segment's unified health, as read by a snapshot.
struct SegmentHealth {
  size_t segment = 0;
  uint64_t evals = 0;      ///< per-segment evaluations since reset
  uint64_t fallbacks = 0;  ///< of which answered by the sampling fallback
  BreakerHealth breaker = BreakerHealth::kClosed;
  uint64_t breaker_trips = 0;
  bool quarantined = false;
  double drift_delta_fraction = 0.0;  ///< last DriftMonitor assessment
  double drift_centroid_shift = 0.0;
  bool drift_stale = false;
  uint64_t delta_backlog = 0;  ///< pending deltas routed at this segment
  double fallback_rate() const {
    return evals > 0 ? static_cast<double>(fallbacks) /
                           static_cast<double>(evals)
                     : 0.0;
  }
};

/// \brief Process-wide registry of atomic per-segment slots.
///
/// Thread-safe: every setter is a few relaxed atomic stores; Snapshot
/// reads the same atomics. Writers should gate on MetricsEnabled() the
/// same way other instrumentation sites do.
class SegmentHealthRegistry {
 public:
  static constexpr size_t kMaxSegments = 512;

  SegmentHealthRegistry();
  SegmentHealthRegistry(const SegmentHealthRegistry&) = delete;
  SegmentHealthRegistry& operator=(const SegmentHealthRegistry&) = delete;

  static SegmentHealthRegistry& Default();

  /// One local-model-or-fallback evaluation of segment `s`.
  void RecordEval(size_t s, bool used_fallback);

  void SetBreakerState(size_t s, BreakerHealth state);
  void RecordBreakerTrip(size_t s);
  void SetQuarantined(size_t s, bool quarantined);
  void SetDriftScore(size_t s, double delta_fraction, double centroid_shift,
                     bool stale);
  void SetDeltaBacklog(size_t s, uint64_t pending);

  /// Manager-level flag: the update subsystem exhausted its refresh retry
  /// budget and stopped auto-refreshing (an explicit Refresh() or crash
  /// recovery heals it). Not per-segment — the whole update loop is down —
  /// but surfaced here so telemetry snapshots carry it alongside segment
  /// state.
  void SetUpdateDegraded(bool degraded);
  bool update_degraded() const;

  /// Health of every touched segment, ascending by segment id.
  std::vector<SegmentHealth> Snapshot() const;

  /// JSON array used by the "simcard.telemetry.v1" snapshot.
  JsonValue ToJson() const;

  /// Zeroes every slot (keeps nothing marked touched).
  void ResetForTesting();

 private:
  struct Slot {
    std::atomic<uint32_t> touched{0};
    std::atomic<uint64_t> evals{0};
    std::atomic<uint64_t> fallbacks{0};
    std::atomic<uint32_t> breaker{0};
    std::atomic<uint64_t> breaker_trips{0};
    std::atomic<uint32_t> quarantined{0};
    std::atomic<double> drift_delta_fraction{0.0};
    std::atomic<double> drift_centroid_shift{0.0};
    std::atomic<uint32_t> drift_stale{0};
    std::atomic<uint64_t> delta_backlog{0};
  };

  Slot* slot(size_t s) {
    if (s >= slots_.size()) return nullptr;
    Slot& sl = slots_[s];
    sl.touched.store(1, std::memory_order_relaxed);
    return &sl;
  }

  std::vector<Slot> slots_;
  std::atomic<uint32_t> update_degraded_{0};
};

}  // namespace obs
}  // namespace simcard

#endif  // SIMCARD_OBS_SEGMENT_HEALTH_H_
