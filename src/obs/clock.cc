#include "obs/clock.h"

namespace simcard {
namespace obs {
namespace internal {

uint64_t& ClockReadsThisThread() {
  thread_local uint64_t reads = 0;
  return reads;
}

}  // namespace internal
}  // namespace obs
}  // namespace simcard
