// Online accuracy accounting from served ground truth.
//
// The serving layer cannot know the true cardinality of a query at answer
// time, but callers often learn it later (they ran the actual search). The
// ROADMAP's serve-time feedback loop — modeled on AQO-style execution
// feedback — starts here: EstimationService::ReportActual feeds
// (estimate, actual) pairs into this tracker, which maintains sliding-
// window Q-error quantiles overall, bucketed by tau, and per segment. The
// paper's own evaluation metric (q-error = max(est/act, act/est), Section
// 6.1) is used unchanged, with both sides clamped to >= 1 so empty results
// do not divide by zero.
//
// Consumers: the TelemetryExporter surfaces the windows in every snapshot,
// and update::DriftMonitor treats a segment's observed q-error as a
// staleness input — degraded accuracy can trigger a fine-tune even when no
// deltas accumulated (concept drift in the query stream).
#ifndef SIMCARD_OBS_QERROR_TRACKER_H_
#define SIMCARD_OBS_QERROR_TRACKER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "obs/json.h"

namespace simcard {
namespace obs {

/// \brief Window sizing and bucketing knobs.
struct QErrorTrackerOptions {
  /// Sliding-window length (reports) for each scope: overall, every tau
  /// bucket, and every segment window.
  size_t window = 512;
  /// Upper edges of the tau buckets: bucket i covers (edge{i-1}, edge{i}],
  /// plus one overflow bucket above the last edge.
  std::vector<float> tau_edges = {0.25f, 0.5f, 1.0f};
  /// Segments tracked individually; ids at or beyond this are untracked.
  size_t max_segments = 256;
};

/// \brief Quantiles over one sliding window.
struct QErrorWindow {
  size_t reports = 0;  ///< reports currently in the window
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// \brief One segment's observed accuracy, for DriftMonitor consumption.
struct ObservedSegmentAccuracy {
  size_t segment = 0;
  size_t reports = 0;
  double qerror_p50 = 0.0;
  double qerror_p90 = 0.0;
};

/// \brief Mutex-guarded sliding-window Q-error quantile tracker.
///
/// Thread-safe. Record is off the per-query hot path (it only runs when a
/// caller reports ground truth), so a mutex plus ring buffers is the right
/// simplicity/perf trade.
class QErrorTracker {
 public:
  explicit QErrorTracker(QErrorTrackerOptions options = {});

  QErrorTracker(const QErrorTracker&) = delete;
  QErrorTracker& operator=(const QErrorTracker&) = delete;

  /// Q-error as the paper computes it: max(est, 1) / max(act, 1), folded
  /// to >= 1. Exposed for reuse by the eval harness and tests.
  static double QError(double estimate, double actual);

  /// Feeds one ground-truth report. `segments` are the segments that
  /// contributed to the served estimate (from the request's probe); each
  /// tracked segment's window receives the same q-error.
  void Record(double estimate, double actual, float tau,
              std::span<const uint32_t> segments = {});

  QErrorWindow Overall() const;
  /// Bucket `b` in [0, num_tau_buckets()); the last bucket is overflow.
  QErrorWindow TauBucket(size_t b) const;
  size_t num_tau_buckets() const { return options_.tau_edges.size() + 1; }
  QErrorWindow Segment(size_t s) const;

  /// Every segment with at least one report, ascending by id.
  std::vector<ObservedSegmentAccuracy> PerSegment() const;

  uint64_t total_reports() const;

  /// {"window", "total_reports", "overall", "by_tau", "by_segment"} — the
  /// "accuracy" section of the telemetry snapshot.
  JsonValue ToJson() const;

  void Reset();

  const QErrorTrackerOptions& options() const { return options_; }

 private:
  struct Ring {
    std::vector<double> values;  // capacity = options_.window
    size_t next = 0;
    size_t count = 0;  // <= capacity
    uint64_t total = 0;
    void Push(double v, size_t capacity);
  };

  QErrorWindow StatsLocked(const Ring& ring) const;
  size_t TauBucketIndexLocked(float tau) const;

  QErrorTrackerOptions options_;
  mutable std::mutex mu_;
  Ring overall_;
  std::vector<Ring> by_tau_;               // num_tau_buckets entries
  std::map<size_t, Ring> by_segment_;      // touched segments only
};

}  // namespace obs
}  // namespace simcard

#endif  // SIMCARD_OBS_QERROR_TRACKER_H_
