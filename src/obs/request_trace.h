// Request-scoped tracing for the serving stack.
//
// A request picks up a TraceContext at EstimationService::Submit and carries
// it through micro-batch assembly, GlEstimator per-segment evaluation,
// circuit-breaker/fallback decisions, deadline checks, and the reply. Each
// span/instant event is published into the *recording thread's* TraceSink —
// a single-writer, lock-free ring of seqlock-guarded slots — so the hot
// path never takes a lock and never allocates; parent links (trace id +
// span id + parent span id) stitch the cross-thread chain back together at
// export time.
//
// Tail-based sampling happens at export, where it is free: the exporter
// groups the rings' events by trace id and keeps (a) every trace flagged
// interesting — shed, deadline-exceeded, fallback-served, breaker
// short-circuit, error, no-model — and (b) the slowest fraction of the
// rest. Everything else ages out of the rings naturally.
//
// Export format: "simcard.traces.v1" — a JSON object whose `traceEvents`
// array is Chrome trace-event compatible (load it in chrome://tracing or
// Perfetto as-is; ph "X" duration events in microseconds, instants as ph
// "i"). Schema details in DESIGN.md §13 and scripts/check_metrics_json.py.
//
// Enablement is a separate flag from metrics: SetTracingEnabled(true), or
// SIMCARD_TRACE=1 in the environment. Disabled, TraceContext::Start is one
// relaxed atomic load — no clock read, no allocation, no trace-id handed
// out (pinned by tests/obs/trace_fastpath_test.cc).
#ifndef SIMCARD_OBS_REQUEST_TRACE_H_
#define SIMCARD_OBS_REQUEST_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/clock.h"
#include "obs/json.h"

namespace simcard {
namespace obs {

/// True when requests should record trace events. Initialized once from the
/// SIMCARD_TRACE environment variable ("1"/"true" enable).
bool TracingEnabled();

/// Flips tracing on/off process-wide (e.g. when --trace-out is given).
void SetTracingEnabled(bool enabled);

/// Why a trace is always kept by the tail sampler. Bits accumulate on the
/// context and are emitted on the trace's root event.
enum TraceFlag : uint32_t {
  kTraceShed = 1u << 0,              ///< admission control refused it
  kTraceDeadlineExceeded = 1u << 1,  ///< deadline passed in queue or eval
  kTraceFallback = 1u << 2,          ///< >=1 segment answered from fallback
  kTraceBreakerShortCircuit = 1u << 3,  ///< >=1 segment skipped by breaker
  kTraceError = 1u << 4,             ///< request failed (injected or real)
  kTraceNoModel = 1u << 5,           ///< no model published at eval time
};

/// Dotted lowercase names for the flag bits, "shed|fallback" style.
std::string TraceFlagNames(uint32_t flags);

/// \brief One recorded span or instant. Plain data; `name`/`arg_name` must
/// be string literals (the sink stores the pointers, never copies).
struct TraceEvent {
  uint64_t trace_id = 0;
  uint32_t span_id = 0;
  uint32_t parent_id = 0;  ///< 0 only on the trace's root event
  const char* name = nullptr;
  int64_t start_us = 0;  ///< microseconds since the process trace epoch
  int64_t dur_us = 0;    ///< -1 encodes an instant event
  uint32_t thread_ordinal = 0;
  uint32_t flags = 0;  ///< root event carries the trace's accumulated flags
  const char* arg_name = nullptr;  ///< optional scalar annotation
  double arg = 0.0;
};

/// \brief Single-writer lock-free event ring (one per recording thread).
///
/// Writes are wait-free: each slot is a seqlock of relaxed atomics (odd
/// sequence = write in progress), so a concurrent Collect from another
/// thread either sees a consistent slot or skips it — no locks, no torn
/// events, clean under TSan (tests/obs/trace_stress_test.cc). The ring
/// overwrites oldest-first; dropped() counts overwritten events.
class TraceSink {
 public:
  static constexpr size_t kDefaultCapacity = 2048;

  explicit TraceSink(uint32_t thread_ordinal,
                     size_t capacity = kDefaultCapacity);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Records one event. Must only be called by the sink's owning thread.
  void Publish(const TraceEvent& event);

  /// Appends every currently-consistent event to `out` (any thread; slots
  /// being overwritten concurrently are skipped). Returns events appended.
  size_t Collect(std::vector<TraceEvent>* out) const;

  uint32_t thread_ordinal() const { return thread_ordinal_; }
  size_t capacity() const { return slots_.size(); }
  uint64_t published() const {
    return head_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const {
    const uint64_t h = published();
    return h > slots_.size() ? h - slots_.size() : 0;
  }

  /// Empties the ring. Requires the owning thread to be quiescent.
  void ResetForTesting();

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  ///< 0 = never written; odd = in progress
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint32_t> span_id{0};
    std::atomic<uint32_t> parent_id{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<int64_t> start_us{0};
    std::atomic<int64_t> dur_us{0};
    std::atomic<uint32_t> flags{0};
    std::atomic<const char*> arg_name{nullptr};
    std::atomic<double> arg{0.0};
  };

  uint32_t thread_ordinal_;
  std::vector<Slot> slots_;
  std::atomic<uint64_t> head_{0};  ///< next write position (monotonic)
};

/// \brief Process-wide sink registry + trace-id source + tail-sampled
/// exporter. Use TraceCollector::Default(); sinks are created lazily per
/// recording thread and live for the process lifetime (ResetForTesting
/// empties them but never frees, so cached thread_local pointers stay
/// valid).
class TraceCollector {
 public:
  static TraceCollector& Default();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// The calling thread's sink, created and registered on first use.
  TraceSink* SinkForThisThread();

  uint64_t NextTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Every currently-consistent event across all sinks (unsampled).
  std::vector<TraceEvent> CollectAll() const;

  /// Tail-sampled "simcard.traces.v1" document: keeps every trace whose
  /// accumulated flags are non-zero plus the slowest
  /// `keep_slowest_fraction` (at least one) of the unflagged complete
  /// traces. Traces whose root event was overwritten are dropped and
  /// counted in meta.incomplete_dropped.
  JsonValue ToJson(double keep_slowest_fraction = 0.05) const;

  Status DumpJson(const std::string& path,
                  double keep_slowest_fraction = 0.05) const;

  size_t num_sinks() const;
  /// Sum of TraceSink::dropped() over all sinks.
  uint64_t dropped_events() const;

  /// Empties every sink. Requires recording threads to be quiescent.
  void ResetForTesting();

 private:
  TraceCollector() = default;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TraceSink>> sinks_;  // append-only
  std::atomic<uint64_t> next_trace_id_{1};
};

/// Writes TraceCollector::Default()'s sampled report to `path`.
Status DumpTraceJson(const std::string& path,
                     double keep_slowest_fraction = 0.05);

/// Microseconds since the process trace epoch, without reading the clock —
/// for retro-spans over timestamps the caller already holds.
int64_t TraceTimeUs(std::chrono::steady_clock::time_point tp);

/// Microseconds since the process trace epoch, now (one clock read).
int64_t TraceNowUs();

/// \brief Per-request trace handle, carried by value through the service.
///
/// Inactive (default-constructed, or Start while tracing is disabled) it is
/// a no-op whose every method is a branch on a zero trace id. Active, it
/// hands out span ids and publishes events into the calling thread's sink —
/// a context may hop threads (submit thread -> worker) as long as only one
/// thread uses it at a time, which the service's queue handoff guarantees.
class TraceContext {
 public:
  /// Span id of the implicit root span (the whole request).
  static constexpr uint32_t kRootSpan = 1;

  TraceContext() = default;
  ~TraceContext() { Finish(); }

  TraceContext(TraceContext&& other) noexcept { *this = std::move(other); }
  TraceContext& operator=(TraceContext&& other) noexcept {
    if (this != &other) {
      Finish();
      trace_id_ = other.trace_id_;
      next_span_ = other.next_span_;
      flags_ = other.flags_;
      start_us_ = other.start_us_;
      root_name_ = other.root_name_;
      other.trace_id_ = 0;
    }
    return *this;
  }
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Activates the context (no-op while tracing is disabled). `root_name`
  /// must be a string literal; it names the root span.
  void Start(const char* root_name);

  bool active() const { return trace_id_ != 0; }
  uint64_t trace_id() const { return trace_id_; }

  void AddFlag(uint32_t flag) { flags_ |= flag; }  // TraceFlag bits OR'd
  uint32_t flags() const { return flags_; }

  /// Fresh span id for a child span (ids are per-trace, root = 1).
  uint32_t NewSpanId() { return next_span_++; }

  /// Publishes a completed span [start_us, end_us] under `parent_id`.
  void RecordSpan(const char* name, int64_t start_us, int64_t end_us,
                  uint32_t span_id, uint32_t parent_id = kRootSpan,
                  const char* arg_name = nullptr, double arg = 0.0);

  /// Publishes a zero-duration marker at now (one clock read).
  void RecordInstant(const char* name, uint32_t parent_id = kRootSpan,
                     const char* arg_name = nullptr, double arg = 0.0);

  /// Publishes the root span (with the accumulated flags) and deactivates
  /// the context. Idempotent; also run by the destructor.
  void Finish();

 private:
  uint64_t trace_id_ = 0;
  uint32_t next_span_ = kRootSpan + 1;
  uint32_t flags_ = 0;
  int64_t start_us_ = 0;
  const char* root_name_ = nullptr;
};

/// \brief RAII child span on a TraceContext. One clock read at entry and
/// one at exit when the context is active; nothing otherwise.
class TraceScope {
 public:
  TraceScope(TraceContext* ctx, const char* name,
             uint32_t parent_id = TraceContext::kRootSpan)
      : ctx_(ctx != nullptr && ctx->active() ? ctx : nullptr), name_(name),
        parent_id_(parent_id) {
    if (ctx_ != nullptr) {
      span_id_ = ctx_->NewSpanId();
      start_us_ = TraceNowUs();
    }
  }

  ~TraceScope() {
    if (ctx_ != nullptr) {
      ctx_->RecordSpan(name_, start_us_, TraceNowUs(), span_id_, parent_id_,
                       arg_name_, arg_);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Attaches one scalar annotation, emitted with the span.
  void SetArg(const char* name, double value) {
    arg_name_ = name;
    arg_ = value;
  }

  /// 0 when the context is inactive.
  uint32_t span_id() const { return span_id_; }

 private:
  TraceContext* ctx_;
  const char* name_;
  uint32_t parent_id_;
  uint32_t span_id_ = 0;
  int64_t start_us_ = 0;
  const char* arg_name_ = nullptr;
  double arg_ = 0.0;
};

}  // namespace obs
}  // namespace simcard

#endif  // SIMCARD_OBS_REQUEST_TRACE_H_
