#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <limits>
#include <sstream>

namespace simcard {
namespace obs {
namespace {

bool EnabledFromEnv() {
  const char* env = std::getenv("SIMCARD_METRICS");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled(EnabledFromEnv());
  return enabled;
}

// fetch_add for atomic<double> without requiring C++20 library support.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double expected = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(expected, expected + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value < expected && !target->compare_exchange_weak(
                                 expected, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value > expected && !target->compare_exchange_weak(
                                 expected, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string WallClockIso8601() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

bool MetricsEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (buckets_.size() != bounds_.size() + 1) {
    // Duplicates were removed; re-size (only reachable pre-publication, so
    // this is not racy).
    std::vector<std::atomic<uint64_t>> fresh(bounds_.size() + 1);
    buckets_.swap(fresh);
  }
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::Record(double value) {
  // lower_bound keeps buckets upper-inclusive — bucket i is (b{i-1}, b{i}]
  // — matching the "le" bound the JSON report advertises.
  const size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Min() const {
  return Count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const {
  return Count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[i]);
    if (rank <= next || i + 1 == counts.size()) {
      // Interpolate inside bucket i. Bucket edges: lo = previous bound (or
      // the observed min for the first populated region), hi = this bound
      // (or the observed max for the overflow bucket).
      double lo = i == 0 ? Min() : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : Max();
      lo = std::max(lo, Min());
      hi = std::min(hi, Max());
      if (hi < lo) hi = lo;
      const double frac =
          std::min(1.0, std::max(0.0, (rank - cumulative) /
                                          static_cast<double>(counts[i])));
      return lo + (hi - lo) * frac;
    }
    cumulative = next;
  }
  return Max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> Histogram::LatencyBucketsUs() {
  return ExponentialBuckets(1.0, 2.0, 21);  // 1us .. ~1.05s
}

std::vector<double> Histogram::ExponentialBuckets(double start, double factor,
                                                  size_t count) {
  std::vector<double> out;
  out.reserve(count);
  double v = start;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

std::vector<double> Histogram::LinearBuckets(double start, double width,
                                             size_t count) {
  std::vector<double> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(start + width * static_cast<double>(i));
  }
  return out;
}

void TimeSeries::Append(double step, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.emplace_back(step, value);
}

std::vector<std::pair<double, double>> TimeSeries::Points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_;
}

size_t TimeSeries::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_.size();
}

void TimeSeries::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = Histogram::LatencyBucketsUs();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

TimeSeries* MetricsRegistry::GetTimeSeries(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[name];
  if (slot == nullptr) slot = std::make_unique<TimeSeries>();
  return slot.get();
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, s] : series_) s->Reset();
  meta_.clear();
}

void MetricsRegistry::SetMetaString(const std::string& key,
                                    const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = JsonValue::Str(value);
      return;
    }
  }
  meta_.emplace_back(key, JsonValue::Str(value));
}

void MetricsRegistry::SetMetaNumber(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = JsonValue::Number(value);
      return;
    }
  }
  meta_.emplace_back(key, JsonValue::Number(value));
}

JsonValue MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue root = JsonValue::Object();
  root.Set("schema", JsonValue::Str("simcard.metrics.v1"));

  JsonValue meta = JsonValue::Object();
  meta.Set("timestamp_utc", JsonValue::Str(WallClockIso8601()));
  meta.Set("metrics_enabled", JsonValue::Bool(MetricsEnabled()));
  for (const auto& [k, v] : meta_) meta.Set(k, v);
  root.Set("meta", std::move(meta));

  JsonValue counters = JsonValue::Object();
  for (const auto& [name, c] : counters_) {
    counters.Set(name, JsonValue::Int(c->Value()));
  }
  root.Set("counters", std::move(counters));

  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, g] : gauges_) {
    gauges.Set(name, JsonValue::Number(g->Value()));
  }
  root.Set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, h] : histograms_) {
    JsonValue hj = JsonValue::Object();
    hj.Set("count", JsonValue::Int(static_cast<int64_t>(h->Count())));
    hj.Set("sum", JsonValue::Number(h->Sum()));
    hj.Set("mean", JsonValue::Number(h->Mean()));
    hj.Set("min", JsonValue::Number(h->Min()));
    hj.Set("max", JsonValue::Number(h->Max()));
    hj.Set("p50", JsonValue::Number(h->Quantile(0.50)));
    hj.Set("p90", JsonValue::Number(h->Quantile(0.90)));
    hj.Set("p95", JsonValue::Number(h->Quantile(0.95)));
    hj.Set("p99", JsonValue::Number(h->Quantile(0.99)));
    JsonValue buckets = JsonValue::Array();
    const auto counts = h->BucketCounts();
    const auto& bounds = h->bounds();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;  // sparse: empty buckets add no info
      JsonValue b = JsonValue::Object();
      if (i < bounds.size()) {
        b.Set("le", JsonValue::Number(bounds[i]));
      } else {
        b.Set("le", JsonValue::Str("inf"));
      }
      b.Set("count", JsonValue::Int(static_cast<int64_t>(counts[i])));
      buckets.Append(std::move(b));
    }
    hj.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(hj));
  }
  root.Set("histograms", std::move(histograms));

  JsonValue series = JsonValue::Object();
  for (const auto& [name, s] : series_) {
    JsonValue points = JsonValue::Array();
    for (const auto& [step, value] : s->Points()) {
      JsonValue p = JsonValue::Array();
      p.Append(JsonValue::Number(step));
      p.Append(JsonValue::Number(value));
      points.Append(std::move(p));
    }
    series.Set(name, std::move(points));
  }
  root.Set("series", std::move(series));
  return root;
}

std::string MetricsRegistry::ToCsv() const {
  const JsonValue root = ToJson();
  std::ostringstream out;
  out << "kind,name,field,value\n";
  auto quote = [](const std::string& s) {
    return '"' + s + '"';  // metric names contain no quotes/commas
  };
  for (const auto& [name, v] : root.Get("counters").members()) {
    out << "counter," << quote(name) << ",value," << v.Dump() << "\n";
  }
  for (const auto& [name, v] : root.Get("gauges").members()) {
    out << "gauge," << quote(name) << ",value," << v.Dump() << "\n";
  }
  for (const auto& [name, h] : root.Get("histograms").members()) {
    for (const char* field :
         {"count", "sum", "mean", "min", "max", "p50", "p90", "p95", "p99"}) {
      out << "histogram," << quote(name) << "," << field << ","
          << h.Get(field).Dump() << "\n";
    }
  }
  for (const auto& [name, points] : root.Get("series").members()) {
    for (size_t i = 0; i < points.size(); ++i) {
      out << "series," << quote(name) << "," << points.at(i).at(0).Dump()
          << "," << points.at(i).at(1).Dump() << "\n";
    }
  }
  return out.str();
}

Status WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << contents;
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status DumpMetricsJson(const std::string& path) {
  return WriteTextFile(
      path,
      MetricsRegistry::Default().ToJson().Dump(/*indent=*/2) + "\n");
}

Status DumpMetricsCsv(const std::string& path) {
  return WriteTextFile(path, MetricsRegistry::Default().ToCsv());
}

}  // namespace obs
}  // namespace simcard
