#include "obs/segment_health.h"

namespace simcard {
namespace obs {

SegmentHealthRegistry::SegmentHealthRegistry() : slots_(kMaxSegments) {}

SegmentHealthRegistry& SegmentHealthRegistry::Default() {
  static SegmentHealthRegistry* registry = new SegmentHealthRegistry();
  return *registry;
}

void SegmentHealthRegistry::RecordEval(size_t s, bool used_fallback) {
  Slot* sl = slot(s);
  if (sl == nullptr) return;
  sl->evals.fetch_add(1, std::memory_order_relaxed);
  if (used_fallback) sl->fallbacks.fetch_add(1, std::memory_order_relaxed);
}

void SegmentHealthRegistry::SetBreakerState(size_t s, BreakerHealth state) {
  Slot* sl = slot(s);
  if (sl == nullptr) return;
  sl->breaker.store(static_cast<uint32_t>(state), std::memory_order_relaxed);
}

void SegmentHealthRegistry::RecordBreakerTrip(size_t s) {
  Slot* sl = slot(s);
  if (sl == nullptr) return;
  sl->breaker_trips.fetch_add(1, std::memory_order_relaxed);
}

void SegmentHealthRegistry::SetQuarantined(size_t s, bool quarantined) {
  Slot* sl = slot(s);
  if (sl == nullptr) return;
  sl->quarantined.store(quarantined ? 1 : 0, std::memory_order_relaxed);
}

void SegmentHealthRegistry::SetDriftScore(size_t s, double delta_fraction,
                                          double centroid_shift, bool stale) {
  Slot* sl = slot(s);
  if (sl == nullptr) return;
  sl->drift_delta_fraction.store(delta_fraction, std::memory_order_relaxed);
  sl->drift_centroid_shift.store(centroid_shift, std::memory_order_relaxed);
  sl->drift_stale.store(stale ? 1 : 0, std::memory_order_relaxed);
}

void SegmentHealthRegistry::SetDeltaBacklog(size_t s, uint64_t pending) {
  Slot* sl = slot(s);
  if (sl == nullptr) return;
  sl->delta_backlog.store(pending, std::memory_order_relaxed);
}

void SegmentHealthRegistry::SetUpdateDegraded(bool degraded) {
  update_degraded_.store(degraded ? 1 : 0, std::memory_order_relaxed);
}

bool SegmentHealthRegistry::update_degraded() const {
  return update_degraded_.load(std::memory_order_relaxed) != 0;
}

std::vector<SegmentHealth> SegmentHealthRegistry::Snapshot() const {
  std::vector<SegmentHealth> out;
  for (size_t s = 0; s < slots_.size(); ++s) {
    const Slot& sl = slots_[s];
    if (sl.touched.load(std::memory_order_relaxed) == 0) continue;
    SegmentHealth h;
    h.segment = s;
    h.evals = sl.evals.load(std::memory_order_relaxed);
    h.fallbacks = sl.fallbacks.load(std::memory_order_relaxed);
    h.breaker =
        static_cast<BreakerHealth>(sl.breaker.load(std::memory_order_relaxed));
    h.breaker_trips = sl.breaker_trips.load(std::memory_order_relaxed);
    h.quarantined = sl.quarantined.load(std::memory_order_relaxed) != 0;
    h.drift_delta_fraction =
        sl.drift_delta_fraction.load(std::memory_order_relaxed);
    h.drift_centroid_shift =
        sl.drift_centroid_shift.load(std::memory_order_relaxed);
    h.drift_stale = sl.drift_stale.load(std::memory_order_relaxed) != 0;
    h.delta_backlog = sl.delta_backlog.load(std::memory_order_relaxed);
    out.push_back(h);
  }
  return out;
}

namespace {

const char* BreakerName(BreakerHealth state) {
  switch (state) {
    case BreakerHealth::kClosed:
      return "closed";
    case BreakerHealth::kOpen:
      return "open";
    case BreakerHealth::kHalfOpen:
      return "half_open";
  }
  return "closed";
}

}  // namespace

JsonValue SegmentHealthRegistry::ToJson() const {
  JsonValue arr = JsonValue::Array();
  for (const SegmentHealth& h : Snapshot()) {
    JsonValue seg = JsonValue::Object();
    seg.Set("segment", JsonValue::Int(static_cast<int64_t>(h.segment)));
    seg.Set("evals", JsonValue::Int(static_cast<int64_t>(h.evals)));
    seg.Set("fallbacks", JsonValue::Int(static_cast<int64_t>(h.fallbacks)));
    seg.Set("fallback_rate", JsonValue::Number(h.fallback_rate()));
    seg.Set("breaker_state", JsonValue::Str(BreakerName(h.breaker)));
    seg.Set("breaker_trips",
            JsonValue::Int(static_cast<int64_t>(h.breaker_trips)));
    seg.Set("quarantined", JsonValue::Bool(h.quarantined));
    seg.Set("drift_delta_fraction", JsonValue::Number(h.drift_delta_fraction));
    seg.Set("drift_centroid_shift", JsonValue::Number(h.drift_centroid_shift));
    seg.Set("drift_stale", JsonValue::Bool(h.drift_stale));
    seg.Set("delta_backlog",
            JsonValue::Int(static_cast<int64_t>(h.delta_backlog)));
    arr.Append(std::move(seg));
  }
  return arr;
}

void SegmentHealthRegistry::ResetForTesting() {
  update_degraded_.store(0, std::memory_order_relaxed);
  for (Slot& sl : slots_) {
    sl.touched.store(0, std::memory_order_relaxed);
    sl.evals.store(0, std::memory_order_relaxed);
    sl.fallbacks.store(0, std::memory_order_relaxed);
    sl.breaker.store(0, std::memory_order_relaxed);
    sl.breaker_trips.store(0, std::memory_order_relaxed);
    sl.quarantined.store(0, std::memory_order_relaxed);
    sl.drift_delta_fraction.store(0.0, std::memory_order_relaxed);
    sl.drift_centroid_shift.store(0.0, std::memory_order_relaxed);
    sl.drift_stale.store(0, std::memory_order_relaxed);
    sl.delta_backlog.store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace simcard
