// Background telemetry export: periodic snapshots of the MetricsRegistry,
// the SegmentHealthRegistry, and the (optional) QErrorTracker into
// rotating JSON files plus Prometheus text exposition.
//
// Snapshot document ("simcard.telemetry.v1"):
//   {
//     "schema": "simcard.telemetry.v1",
//     "meta": {"timestamp_utc": ..., "seq": N, "interval_ms": ...},
//     "metrics": <a full simcard.metrics.v1 document>,
//     "segment_health": [ {segment, evals, fallbacks, fallback_rate,
//                          breaker_state, quarantined, drift_*,
//                          delta_backlog}, ... ],
//     "accuracy": {window, total_reports, overall, by_tau, by_segment}
//   }
//
// Files: `<dir>/<basename>-<seq>.json` (rotating; the oldest beyond
// max_snapshots is deleted), `<dir>/<basename>-latest.json` (always the
// newest), and `<dir>/<basename>.prom` (Prometheus text exposition v0.0.4,
// overwritten each snapshot). DumpNow() writes one snapshot synchronously
// — the CLI's `telemetry-dump` path — and works without Start().
//
// Overhead: the exporter thread wakes every interval_ms; serving threads
// are never blocked by it (every registry read is atomics or a short
// mutex). Budgeted at <= 1% served QPS, pinned by bench_serve_throughput's
// exporter-running variant.
#ifndef SIMCARD_OBS_TELEMETRY_H_
#define SIMCARD_OBS_TELEMETRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/json.h"
#include "obs/qerror_tracker.h"

namespace simcard {
namespace obs {

/// \brief Exporter knobs.
struct TelemetryOptions {
  std::string dir = ".";                ///< output directory (must exist)
  std::string basename = "telemetry";   ///< file stem
  double interval_ms = 1000.0;          ///< background snapshot period
  size_t max_snapshots = 8;             ///< rotation depth (0 = unbounded)
  bool write_prometheus = true;         ///< also write <basename>.prom
};

/// \brief Periodic snapshot writer. One instance per process is typical.
///
/// Thread-safe: Start/Stop/DumpNow from any thread; the background thread
/// is joined by Stop() (and by the destructor).
class TelemetryExporter {
 public:
  /// `accuracy` may be null (the snapshot then has an empty "accuracy"
  /// section); if non-null it must outlive the exporter.
  explicit TelemetryExporter(TelemetryOptions options,
                             const QErrorTracker* accuracy = nullptr);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// Spawns the background thread. FailedPrecondition if already running.
  Status Start();

  /// Stops and joins the background thread. Idempotent.
  void Stop();

  /// Writes one snapshot (and the .prom file) immediately.
  Status DumpNow();

  /// The snapshot document, without writing anything.
  JsonValue SnapshotJson() const;

  /// Prometheus text exposition of the current metrics + segment health +
  /// accuracy windows.
  std::string PrometheusText() const;

  uint64_t snapshots_written() const {
    return snapshots_written_.load(std::memory_order_relaxed);
  }
  bool running() const { return running_.load(std::memory_order_relaxed); }
  const TelemetryOptions& options() const { return options_; }

 private:
  void RunLoop();
  Status WriteSnapshot();
  std::string PathFor(const std::string& leaf) const;

  TelemetryOptions options_;
  const QErrorTracker* accuracy_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> snapshots_written_{0};
  uint64_t next_seq_ = 0;  // guarded by mu_

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  // guarded by mu_
  std::thread worker_;
};

}  // namespace obs
}  // namespace simcard

#endif  // SIMCARD_OBS_TELEMETRY_H_
