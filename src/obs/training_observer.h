// Per-epoch training callbacks.
//
// Training loops (TrainCardModel, TrainGlobalModel, MiniBatchKMeans, the
// QES tuner) report progress through NotifyTrainEpoch/NotifyTrainEnd. Two
// consumers exist:
//
//  * registered TrainingObserver implementations (progress bars, early
//    aborts, experiment sweeps) — always called;
//  * the default MetricsRegistry — when MetricsEnabled(), each epoch
//    appends to the time series "train.<tag>.loss" and records the epoch
//    wall time in the histogram "train.epoch_us", so a run report carries
//    full loss trajectories (the Figure 14 training-time breakdown).
//
// Tags name the model instance: "local.<segment>", "global", "kmeans", ...
// Loops pass an empty tag to stay silent (e.g. tuner trial fits, which
// would flood the report with dozens of short throwaway series).
#ifndef SIMCARD_OBS_TRAINING_OBSERVER_H_
#define SIMCARD_OBS_TRAINING_OBSERVER_H_

#include <cstddef>
#include <string>

namespace simcard {
namespace obs {

/// \brief Interface for per-epoch training progress consumers.
class TrainingObserver {
 public:
  virtual ~TrainingObserver() = default;

  /// Called after every epoch with the mean epoch loss and epoch wall time.
  virtual void OnEpochEnd(const std::string& tag, size_t epoch, double loss,
                          double seconds) = 0;

  /// Called once when the loop finishes (early stop included).
  virtual void OnTrainEnd(const std::string& tag, size_t epochs_run,
                          double final_loss, double total_seconds) {
    (void)tag;
    (void)epochs_run;
    (void)final_loss;
    (void)total_seconds;
  }

  /// Called when the divergence watchdog fires: epoch `epoch` produced a
  /// NaN/exploding loss `loss`, the model was rolled back to its last good
  /// checkpoint, and training resumes at `next_lr` (retry number `retry`,
  /// 1-based). Not called for the terminal give-up — the loop returns a
  /// Status for that.
  virtual void OnDivergence(const std::string& tag, size_t epoch, double loss,
                            size_t retry, float next_lr) {
    (void)tag;
    (void)epoch;
    (void)loss;
    (void)retry;
    (void)next_lr;
  }
};

/// Registers/unregisters a process-wide observer (borrowed pointer; must
/// outlive its registration). Thread-safe.
void AddTrainingObserver(TrainingObserver* observer);
void RemoveTrainingObserver(TrainingObserver* observer);

/// Dispatch helpers called by the training loops. No-ops for empty tags
/// (except NotifyDivergence, whose watchdog counters always record).
void NotifyTrainEpoch(const std::string& tag, size_t epoch, double loss,
                      double seconds);
void NotifyTrainEnd(const std::string& tag, size_t epochs_run,
                    double final_loss, double total_seconds);
void NotifyDivergence(const std::string& tag, size_t epoch, double loss,
                      size_t retry, float next_lr);

}  // namespace obs
}  // namespace simcard

#endif  // SIMCARD_OBS_TRAINING_OBSERVER_H_
