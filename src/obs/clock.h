// Monotonic clock access for instrumentation, with a per-thread read
// counter so tests can pin the disabled-telemetry fast path ("no clock
// read when metrics/tracing are off") as an invariant instead of a
// benchmark assertion.
//
// Every obs-layer timing primitive (ScopedTimer, TraceSpan, TraceContext)
// reads time through ReadMonotonicClock(); the counter bump is one
// thread-local increment (no atomics, no TLS-destructor ordering hazards)
// and is negligible next to the vDSO clock read itself.
#ifndef SIMCARD_OBS_CLOCK_H_
#define SIMCARD_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace simcard {
namespace obs {

namespace internal {
/// Count of ReadMonotonicClock() calls made by the calling thread since it
/// started. Test-only readback; writable so tests can zero it.
uint64_t& ClockReadsThisThread();
}  // namespace internal

/// The one way obs code reads the monotonic clock.
inline std::chrono::steady_clock::time_point ReadMonotonicClock() {
  ++internal::ClockReadsThisThread();
  return std::chrono::steady_clock::now();
}

}  // namespace obs
}  // namespace simcard

#endif  // SIMCARD_OBS_CLOCK_H_
