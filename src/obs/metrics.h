// Process-wide metrics: counters, gauges, fixed-bucket histograms, and
// append-only time series, exported as a structured JSON/CSV run report.
//
// Design goals (mirroring how CardNet / MSCN-style estimators are judged —
// per-query counters and latency quantiles — and the paper's own Tables
// 4-6 / Figures 9 & 14):
//
//  * Cheap enough for hot paths: counters/histograms are lock-free atomics;
//    instrumentation sites gate on MetricsEnabled() (a relaxed atomic load)
//    so a disabled build path costs one branch.
//  * Stable pointers: Get* registers on first use and never invalidates, so
//    call sites may cache the returned pointer in a function-local static.
//    ResetForTesting() zeroes values but keeps registrations.
//  * Diffable output: DumpMetricsJson emits insertion-stable, sorted-name
//    sections so two runs can be compared with a text diff.
//
// Enablement: off by default; turned on by SIMCARD_METRICS=1 in the
// environment, a bench's --json flag, or simcard_cli --metrics-out.
#ifndef SIMCARD_OBS_METRICS_H_
#define SIMCARD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace simcard {
namespace obs {

/// True when instrumentation sites should record. Initialized once from the
/// SIMCARD_METRICS environment variable ("1"/"true" enable).
bool MetricsEnabled();

/// Flips recording on/off process-wide (e.g. when --metrics-out is given).
void SetMetricsEnabled(bool enabled);

/// UTC wall-clock "YYYY-MM-DDTHH:MM:SSZ" — the timestamp format every
/// exported report (metrics, telemetry, traces, bench JSON) shares.
std::string WallClockIso8601();

/// \brief Monotonically increasing counter.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Last-write-wins scalar.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram with quantile extraction.
///
/// Buckets are defined by sorted upper bounds b0 < b1 < ... < b{n-1}:
/// bucket i counts samples in (b{i-1}, b{i}] (bucket 0 is (-inf, b0]), plus
/// one overflow bucket (b{n-1}, +inf). Record is wait-free; Quantile is
/// approximate (linear interpolation inside the bucket, clamped to the
/// observed min/max) which is the standard fixed-bucket trade-off.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  double Min() const;  ///< 0 when empty
  double Max() const;  ///< 0 when empty

  /// q in [0,1]; 0.5 -> median. Returns 0 when empty.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<uint64_t> BucketCounts() const;

  void Reset();

  /// Upper bounds 2^0..2^20 microseconds (~1us .. ~1s): the default for
  /// latency histograms.
  static std::vector<double> LatencyBucketsUs();
  /// `count` bounds starting at `start`, each `factor` times the previous.
  static std::vector<double> ExponentialBuckets(double start, double factor,
                                                size_t count);
  /// `count` bounds start, start+width, ...
  static std::vector<double> LinearBuckets(double start, double width,
                                           size_t count);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// \brief Append-only (step, value) series, e.g. per-epoch training loss.
class TimeSeries {
 public:
  void Append(double step, double value);
  std::vector<std::pair<double, double>> Points() const;
  size_t Size() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<double, double>> points_;
};

/// \brief Named metric store. Use MetricsRegistry::Default() — a process
/// has exactly one unless a test constructs its own.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Default();

  /// Finds or creates; returned pointers stay valid for the registry's
  /// lifetime. `bounds` applies only on first creation; empty means
  /// LatencyBucketsUs().
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});
  TimeSeries* GetTimeSeries(const std::string& name);

  /// Zeroes every metric's value, keeping registrations (and therefore any
  /// cached pointers) intact.
  void ResetForTesting();

  /// Attaches a string to the report's "meta" section (scale, seed, ...).
  void SetMetaString(const std::string& key, const std::string& value);
  void SetMetaNumber(const std::string& key, double value);

  /// The full report as a JSON document (see DumpMetricsJson for schema).
  JsonValue ToJson() const;

  /// Flat "kind,name,field,value" rows for spreadsheet ingestion.
  std::string ToCsv() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
  std::vector<std::pair<std::string, JsonValue>> meta_;
};

/// Shorthands against the default registry.
inline Counter* GetCounter(const std::string& name) {
  return MetricsRegistry::Default().GetCounter(name);
}
inline Gauge* GetGauge(const std::string& name) {
  return MetricsRegistry::Default().GetGauge(name);
}
inline Histogram* GetHistogram(const std::string& name,
                               std::vector<double> bounds = {}) {
  return MetricsRegistry::Default().GetHistogram(name, std::move(bounds));
}
inline TimeSeries* GetTimeSeries(const std::string& name) {
  return MetricsRegistry::Default().GetTimeSeries(name);
}

/// Writes the default registry's JSON report ("simcard.metrics.v1" schema:
/// top-level {schema, meta, counters, gauges, histograms, series}).
Status DumpMetricsJson(const std::string& path);

/// Writes the default registry's CSV report.
Status DumpMetricsCsv(const std::string& path);

/// Truncate-and-write helper shared by the obs exporters.
Status WriteTextFile(const std::string& path, const std::string& contents);

}  // namespace obs
}  // namespace simcard

#endif  // SIMCARD_OBS_METRICS_H_
