// RAII timing helpers that record into named latency histograms.
//
//   void GlEstimator::Train(...) {
//     obs::TraceSpan span("gl.train");          // histogram span.gl.train_us
//     ...
//   }
//
//   {
//     obs::ScopedTimer t(obs::GetHistogram("gl.latency.features_us"));
//     BuildFeatures();
//   }
//
// Both are no-ops (no clock read, no allocation) while MetricsEnabled() is
// false, so they can sit on hot paths — pinned by tests/obs/
// trace_fastpath_test.cc via the obs/clock.h read counter. TraceSpan
// additionally tracks per-thread nesting depth and, at
// SIMCARD_LOG_LEVEL=debug, logs an indented enter/exit line — a poor man's
// flame graph for single runs.
#ifndef SIMCARD_OBS_TRACE_H_
#define SIMCARD_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace simcard {
namespace obs {

/// \brief Records wall-clock microseconds into a histogram on destruction.
class ScopedTimer {
 public:
  /// `hist` may be null (timer disabled). The clock is read only when both
  /// the histogram exists and metrics are enabled at construction time.
  explicit ScopedTimer(Histogram* hist)
      : hist_(MetricsEnabled() ? hist : nullptr) {
    if (hist_ != nullptr) start_ = ReadMonotonicClock();
  }

  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now instead of at scope exit; returns elapsed microseconds
  /// (0 when disabled). Idempotent.
  int64_t Stop();

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Named span: histogram "span.<name>_us" + nesting-aware debug log.
///
/// `name` must outlive the span (in practice: a string literal). Taking a
/// pointer instead of a std::string keeps the disabled path free of even
/// an SSO-defeating string copy.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Current nesting depth on this thread (0 outside any span).
  static int CurrentDepth();

 private:
  const char* name_;
  bool active_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace simcard

#endif  // SIMCARD_OBS_TRACE_H_
