#include "obs/request_trace.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>

#include "obs/metrics.h"

namespace simcard {
namespace obs {
namespace {

bool TracingFromEnv() {
  const char* env = std::getenv("SIMCARD_TRACE");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0;
}

std::atomic<bool>& TracingFlag() {
  static std::atomic<bool> enabled(TracingFromEnv());
  return enabled;
}

// Fixed per-process origin for trace timestamps; taken once, before any
// event, so every ts/dur in an export shares the same epoch.
std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

bool TracingEnabled() {
  return TracingFlag().load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  TraceEpoch();  // pin the epoch before the first event
  TracingFlag().store(enabled, std::memory_order_relaxed);
}

std::string TraceFlagNames(uint32_t flags) {
  static constexpr struct {
    uint32_t bit;
    const char* name;
  } kNames[] = {
      {kTraceShed, "shed"},
      {kTraceDeadlineExceeded, "deadline_exceeded"},
      {kTraceFallback, "fallback"},
      {kTraceBreakerShortCircuit, "breaker_short_circuit"},
      {kTraceError, "error"},
      {kTraceNoModel, "no_model"},
  };
  std::string out;
  for (const auto& entry : kNames) {
    if ((flags & entry.bit) == 0) continue;
    if (!out.empty()) out += "|";
    out += entry.name;
  }
  return out;
}

int64_t TraceTimeUs(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::microseconds>(tp -
                                                               TraceEpoch())
      .count();
}

int64_t TraceNowUs() { return TraceTimeUs(ReadMonotonicClock()); }

// ---------------------------------------------------------------------------
// TraceSink: per-slot seqlock over relaxed atomics.
//
// Writer (owning thread only):  seq -> odd, release fence, fields, release
// fence, seq -> even.  Reader: load seq (acquire); skip if odd or zero;
// read fields; acquire fence; re-load seq; accept only if unchanged. The
// fences make any new field value a reader observes imply it also observes
// the odd seq, so torn slots are always detected and skipped.
// ---------------------------------------------------------------------------

TraceSink::TraceSink(uint32_t thread_ordinal, size_t capacity)
    : thread_ordinal_(thread_ordinal),
      slots_(capacity > 0 ? capacity : kDefaultCapacity) {}

void TraceSink::Publish(const TraceEvent& event) {
  const uint64_t pos = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[pos % slots_.size()];
  const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_relaxed);  // odd: in progress
  std::atomic_thread_fence(std::memory_order_release);
  slot.trace_id.store(event.trace_id, std::memory_order_relaxed);
  slot.span_id.store(event.span_id, std::memory_order_relaxed);
  slot.parent_id.store(event.parent_id, std::memory_order_relaxed);
  slot.name.store(event.name, std::memory_order_relaxed);
  slot.start_us.store(event.start_us, std::memory_order_relaxed);
  slot.dur_us.store(event.dur_us, std::memory_order_relaxed);
  slot.flags.store(event.flags, std::memory_order_relaxed);
  slot.arg_name.store(event.arg_name, std::memory_order_relaxed);
  slot.arg.store(event.arg, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.seq.store(seq + 2, std::memory_order_release);  // even: stable
  head_.store(pos + 1, std::memory_order_release);
}

size_t TraceSink::Collect(std::vector<TraceEvent>* out) const {
  size_t appended = 0;
  for (const Slot& slot : slots_) {
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // never written / mid-write
    TraceEvent event;
    event.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    event.span_id = slot.span_id.load(std::memory_order_relaxed);
    event.parent_id = slot.parent_id.load(std::memory_order_relaxed);
    event.name = slot.name.load(std::memory_order_relaxed);
    event.start_us = slot.start_us.load(std::memory_order_relaxed);
    event.dur_us = slot.dur_us.load(std::memory_order_relaxed);
    event.flags = slot.flags.load(std::memory_order_relaxed);
    event.arg_name = slot.arg_name.load(std::memory_order_relaxed);
    event.arg = slot.arg.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
    event.thread_ordinal = thread_ordinal_;
    out->push_back(event);
    ++appended;
  }
  return appended;
}

void TraceSink::ResetForTesting() {
  for (Slot& slot : slots_) {
    slot.seq.store(0, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// TraceCollector
// ---------------------------------------------------------------------------

TraceCollector& TraceCollector::Default() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

TraceSink* TraceCollector::SinkForThisThread() {
  thread_local TraceSink* cached = nullptr;
  if (cached == nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    sinks_.push_back(std::make_unique<TraceSink>(
        static_cast<uint32_t>(sinks_.size())));
    cached = sinks_.back().get();
  }
  return cached;
}

std::vector<TraceEvent> TraceCollector::CollectAll() const {
  std::vector<TraceEvent> events;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& sink : sinks_) sink->Collect(&events);
  return events;
}

size_t TraceCollector::num_sinks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sinks_.size();
}

uint64_t TraceCollector::dropped_events() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t dropped = 0;
  for (const auto& sink : sinks_) dropped += sink->dropped();
  return dropped;
}

void TraceCollector::ResetForTesting() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& sink : sinks_) sink->ResetForTesting();
}

namespace {

struct TraceGroup {
  std::vector<TraceEvent> events;
  const TraceEvent* root = nullptr;  // parent_id == 0
  uint32_t flags = 0;                // OR over events (root carries most)
};

JsonValue EventToJson(const TraceEvent& event) {
  JsonValue e = JsonValue::Object();
  e.Set("name", JsonValue::Str(event.name != nullptr ? event.name : "?"));
  e.Set("ph", JsonValue::Str(event.dur_us < 0 ? "i" : "X"));
  e.Set("ts", JsonValue::Int(event.start_us));
  if (event.dur_us >= 0) e.Set("dur", JsonValue::Int(event.dur_us));
  if (event.dur_us < 0) e.Set("s", JsonValue::Str("t"));
  e.Set("pid", JsonValue::Int(1));
  e.Set("tid", JsonValue::Int(event.thread_ordinal));
  JsonValue args = JsonValue::Object();
  args.Set("trace_id", JsonValue::Int(static_cast<int64_t>(event.trace_id)));
  args.Set("span_id", JsonValue::Int(event.span_id));
  args.Set("parent_id", JsonValue::Int(event.parent_id));
  if (event.parent_id == 0) {
    args.Set("flags", JsonValue::Int(event.flags));
    args.Set("flag_names", JsonValue::Str(TraceFlagNames(event.flags)));
  }
  if (event.arg_name != nullptr) {
    args.Set(event.arg_name, JsonValue::Number(event.arg));
  }
  e.Set("args", std::move(args));
  return e;
}

}  // namespace

JsonValue TraceCollector::ToJson(double keep_slowest_fraction) const {
  std::vector<TraceEvent> events = CollectAll();

  std::map<uint64_t, TraceGroup> by_trace;
  for (const TraceEvent& event : events) {
    TraceGroup& g = by_trace[event.trace_id];
    g.events.push_back(event);
    g.flags |= event.flags;
  }
  size_t incomplete = 0;
  for (auto& [id, g] : by_trace) {
    for (const TraceEvent& event : g.events) {
      if (event.parent_id == 0) g.root = &event;
    }
    if (g.root == nullptr) ++incomplete;
  }

  // Tail sampling: flagged traces are always kept; the unflagged complete
  // rest competes on root duration for the slowest-fraction slots.
  std::vector<const TraceGroup*> kept;
  std::vector<const TraceGroup*> unflagged;
  for (const auto& [id, g] : by_trace) {
    if (g.root == nullptr) continue;
    if (g.flags != 0) {
      kept.push_back(&g);
    } else {
      unflagged.push_back(&g);
    }
  }
  const size_t kept_flagged = kept.size();
  size_t slow_slots = 0;
  if (!unflagged.empty() && keep_slowest_fraction > 0.0) {
    slow_slots = std::max<size_t>(
        1, static_cast<size_t>(keep_slowest_fraction *
                               static_cast<double>(unflagged.size())));
    slow_slots = std::min(slow_slots, unflagged.size());
    std::partial_sort(unflagged.begin(), unflagged.begin() + slow_slots,
                      unflagged.end(),
                      [](const TraceGroup* a, const TraceGroup* b) {
                        return a->root->dur_us > b->root->dur_us;
                      });
    kept.insert(kept.end(), unflagged.begin(), unflagged.begin() + slow_slots);
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::Str("simcard.traces.v1"));
  JsonValue meta = JsonValue::Object();
  meta.Set("timestamp_utc", JsonValue::Str(WallClockIso8601()));
  meta.Set("traces_seen", JsonValue::Int(static_cast<int64_t>(by_trace.size())));
  meta.Set("traces_kept", JsonValue::Int(static_cast<int64_t>(kept.size())));
  meta.Set("kept_flagged", JsonValue::Int(static_cast<int64_t>(kept_flagged)));
  meta.Set("kept_slowest", JsonValue::Int(static_cast<int64_t>(slow_slots)));
  meta.Set("incomplete_dropped", JsonValue::Int(static_cast<int64_t>(incomplete)));
  meta.Set("ring_dropped_events",
           JsonValue::Int(static_cast<int64_t>(dropped_events())));
  meta.Set("keep_slowest_fraction", JsonValue::Number(keep_slowest_fraction));
  doc.Set("meta", std::move(meta));
  doc.Set("displayTimeUnit", JsonValue::Str("ms"));

  // Stable order: by trace id, then span start, then span id.
  std::sort(kept.begin(), kept.end(),
            [](const TraceGroup* a, const TraceGroup* b) {
              return a->root->trace_id < b->root->trace_id;
            });
  JsonValue trace_events = JsonValue::Array();
  for (const TraceGroup* g : kept) {
    std::vector<TraceEvent> ordered = g->events;
    std::sort(ordered.begin(), ordered.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.start_us != b.start_us) return a.start_us < b.start_us;
                return a.span_id < b.span_id;
              });
    for (const TraceEvent& event : ordered) {
      trace_events.Append(EventToJson(event));
    }
  }
  doc.Set("traceEvents", std::move(trace_events));
  return doc;
}

Status TraceCollector::DumpJson(const std::string& path,
                                double keep_slowest_fraction) const {
  return WriteTextFile(path,
                       ToJson(keep_slowest_fraction).Dump(/*indent=*/2) + "\n");
}

Status DumpTraceJson(const std::string& path, double keep_slowest_fraction) {
  return TraceCollector::Default().DumpJson(path, keep_slowest_fraction);
}

// ---------------------------------------------------------------------------
// TraceContext
// ---------------------------------------------------------------------------

void TraceContext::Start(const char* root_name) {
  if (!TracingEnabled() || active()) return;
  trace_id_ = TraceCollector::Default().NextTraceId();
  next_span_ = kRootSpan + 1;
  flags_ = 0;
  root_name_ = root_name;
  start_us_ = TraceNowUs();
}

void TraceContext::RecordSpan(const char* name, int64_t start_us,
                              int64_t end_us, uint32_t span_id,
                              uint32_t parent_id, const char* arg_name,
                              double arg) {
  if (!active()) return;
  TraceEvent event;
  event.trace_id = trace_id_;
  event.span_id = span_id;
  event.parent_id = parent_id;
  event.name = name;
  event.start_us = start_us;
  event.dur_us = end_us >= start_us ? end_us - start_us : 0;
  event.arg_name = arg_name;
  event.arg = arg;
  TraceCollector::Default().SinkForThisThread()->Publish(event);
}

void TraceContext::RecordInstant(const char* name, uint32_t parent_id,
                                 const char* arg_name, double arg) {
  if (!active()) return;
  TraceEvent event;
  event.trace_id = trace_id_;
  event.span_id = NewSpanId();
  event.parent_id = parent_id;
  event.name = name;
  event.start_us = TraceNowUs();
  event.dur_us = -1;  // instant
  event.arg_name = arg_name;
  event.arg = arg;
  TraceCollector::Default().SinkForThisThread()->Publish(event);
}

void TraceContext::Finish() {
  if (!active()) return;
  TraceEvent event;
  event.trace_id = trace_id_;
  event.span_id = kRootSpan;
  event.parent_id = 0;
  event.name = root_name_ != nullptr ? root_name_ : "request";
  event.start_us = start_us_;
  event.dur_us = TraceNowUs() - start_us_;
  event.flags = flags_;
  TraceCollector::Default().SinkForThisThread()->Publish(event);
  trace_id_ = 0;
}

}  // namespace obs
}  // namespace simcard
