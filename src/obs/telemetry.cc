#include "obs/telemetry.h"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"
#include "obs/segment_health.h"

namespace simcard {
namespace obs {
namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; simcard names use dots.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string PromNumber(double v) {
  JsonValue num = JsonValue::Number(v);
  return num.Dump();  // JSON number formatting is Prometheus-compatible
}

}  // namespace

TelemetryExporter::TelemetryExporter(TelemetryOptions options,
                                     const QErrorTracker* accuracy)
    : options_(std::move(options)), accuracy_(accuracy) {
  if (options_.interval_ms <= 0.0) options_.interval_ms = 1000.0;
  if (options_.basename.empty()) options_.basename = std::string("telemetry");
  if (options_.dir.empty()) options_.dir = std::string(".");
}

TelemetryExporter::~TelemetryExporter() { Stop(); }

Status TelemetryExporter::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("telemetry exporter already running");
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = false;
  }
  worker_ = std::thread([this] { RunLoop(); });
  return Status::OK();
}

void TelemetryExporter::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void TelemetryExporter::RunLoop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(options_.interval_ms));
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lk, interval, [this] { return stop_requested_; })) {
      break;
    }
    lk.unlock();
    // Best effort: a full disk or removed directory must not kill serving.
    (void)WriteSnapshot();
    lk.lock();
  }
}

std::string TelemetryExporter::PathFor(const std::string& leaf) const {
  return options_.dir + "/" + leaf;
}

JsonValue TelemetryExporter::SnapshotJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::Str("simcard.telemetry.v1"));
  JsonValue meta = JsonValue::Object();
  meta.Set("timestamp_utc", JsonValue::Str(WallClockIso8601()));
  meta.Set("seq", JsonValue::Int(
                      static_cast<int64_t>(snapshots_written_.load(
                          std::memory_order_relaxed))));
  meta.Set("interval_ms", JsonValue::Number(options_.interval_ms));
  doc.Set("meta", std::move(meta));
  doc.Set("metrics", MetricsRegistry::Default().ToJson());
  doc.Set("segment_health", SegmentHealthRegistry::Default().ToJson());
  doc.Set("update_degraded",
          JsonValue::Bool(SegmentHealthRegistry::Default().update_degraded()));
  doc.Set("accuracy",
          accuracy_ != nullptr ? accuracy_->ToJson() : JsonValue::Object());
  return doc;
}

Status TelemetryExporter::WriteSnapshot() {
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    seq = next_seq_++;
  }
  const JsonValue doc = SnapshotJson();
  const std::string stem = options_.basename + "-" + std::to_string(seq);
  Status status = WriteTextFile(PathFor(stem + ".json"),
                                doc.Dump(/*indent=*/2) + "\n");
  if (!status.ok()) return status;
  status = WriteTextFile(PathFor(options_.basename + "-latest.json"),
                         doc.Dump(/*indent=*/2) + "\n");
  if (!status.ok()) return status;
  if (options_.write_prometheus) {
    status = WriteTextFile(PathFor(options_.basename + ".prom"),
                           PrometheusText());
    if (!status.ok()) return status;
  }
  if (options_.max_snapshots > 0 && seq >= options_.max_snapshots) {
    const std::string stale =
        PathFor(options_.basename + "-" +
                std::to_string(seq - options_.max_snapshots) + ".json");
    std::remove(stale.c_str());  // best-effort rotation
  }
  snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status TelemetryExporter::DumpNow() { return WriteSnapshot(); }

std::string TelemetryExporter::PrometheusText() const {
  std::ostringstream out;
  const JsonValue metrics = MetricsRegistry::Default().ToJson();

  for (const auto& [name, v] : metrics.Get("counters").members()) {
    const std::string p = PromName(name);
    out << "# TYPE " << p << " counter\n"
        << p << " " << v.Dump() << "\n";
  }
  for (const auto& [name, v] : metrics.Get("gauges").members()) {
    const std::string p = PromName(name);
    out << "# TYPE " << p << " gauge\n"
        << p << " " << v.Dump() << "\n";
  }
  for (const auto& [name, h] : metrics.Get("histograms").members()) {
    const std::string p = PromName(name);
    out << "# TYPE " << p << " histogram\n";
    // Buckets in the JSON report are sparse per-bucket counts; Prometheus
    // wants cumulative counts per upper bound.
    uint64_t cumulative = 0;
    const JsonValue& buckets = h.Get("buckets");
    for (size_t i = 0; i < buckets.size(); ++i) {
      const JsonValue& b = buckets.at(i);
      cumulative += static_cast<uint64_t>(b.Get("count").number_value());
      const JsonValue& le = b.Get("le");
      const std::string bound =
          le.is_string() ? "+Inf" : PromNumber(le.number_value());
      out << p << "_bucket{le=\"" << bound << "\"} " << cumulative << "\n";
    }
    const uint64_t count =
        static_cast<uint64_t>(h.Get("count").number_value());
    if (cumulative < count || buckets.size() == 0 ||
        !buckets.at(buckets.size() - 1).Get("le").is_string()) {
      out << p << "_bucket{le=\"+Inf\"} " << count << "\n";
    }
    out << p << "_sum " << PromNumber(h.Get("sum").number_value()) << "\n";
    out << p << "_count " << count << "\n";
  }

  for (const SegmentHealth& sh : SegmentHealthRegistry::Default().Snapshot()) {
    const std::string label = "{segment=\"" + std::to_string(sh.segment) +
                              "\"}";
    out << "simcard_segment_evals" << label << " " << sh.evals << "\n";
    out << "simcard_segment_fallbacks" << label << " " << sh.fallbacks
        << "\n";
    out << "simcard_segment_fallback_rate" << label << " "
        << PromNumber(sh.fallback_rate()) << "\n";
    out << "simcard_segment_breaker_state" << label << " "
        << static_cast<uint32_t>(sh.breaker) << "\n";
    out << "simcard_segment_quarantined" << label << " "
        << (sh.quarantined ? 1 : 0) << "\n";
    out << "simcard_segment_drift_delta_fraction" << label << " "
        << PromNumber(sh.drift_delta_fraction) << "\n";
    out << "simcard_segment_delta_backlog" << label << " "
        << sh.delta_backlog << "\n";
  }

  if (accuracy_ != nullptr) {
    const QErrorWindow w = accuracy_->Overall();
    out << "# TYPE simcard_accuracy_qerror summary\n";
    out << "simcard_accuracy_qerror{quantile=\"0.5\"} " << PromNumber(w.p50)
        << "\n";
    out << "simcard_accuracy_qerror{quantile=\"0.9\"} " << PromNumber(w.p90)
        << "\n";
    out << "simcard_accuracy_qerror{quantile=\"0.99\"} " << PromNumber(w.p99)
        << "\n";
    out << "simcard_accuracy_qerror_count " << accuracy_->total_reports()
        << "\n";
  }
  return out.str();
}

}  // namespace obs
}  // namespace simcard
