#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace simcard {
namespace obs {
namespace {

const JsonValue& SharedNull() {
  static const JsonValue null;
  return null;
}

// Shortest representation that survives a double round-trip; integral
// values (the common case for counters) print without a fraction.
std::string FormatNumber(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g form when it round-trips exactly.
  char shorter[64];
  std::snprintf(shorter, sizeof(shorter), "%.12g", v);
  if (std::strtod(shorter, nullptr) == v) return shorter;
  return buf;
}

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::Int(int64_t value) {
  return Number(static_cast<double>(value));
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

void JsonValue::Append(JsonValue v) { items_.push_back(std::move(v)); }

void JsonValue::Set(const std::string& key, JsonValue v) {
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

bool JsonValue::Has(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  return SharedNull();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<size_t>(indent) * (depth + 1), ' ')
                 : "";
  const std::string close_pad =
      indent > 0 ? "\n" + std::string(static_cast<size_t>(indent) * depth, ' ')
                 : "";
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      *out += FormatNumber(number_);
      return;
    case Type::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      return;
    case Type::kArray: {
      *out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) *out += ',';
        *out += pad;
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (!items_.empty()) *out += close_pad;
      *out += ']';
      return;
    }
    case Type::kObject: {
      *out += '{';
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) *out += ',';
        *out += pad;
        *out += '"';
        *out += JsonEscape(object_[i].first);
        *out += indent > 0 ? "\": " : "\":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) *out += close_pad;
      *out += '}';
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

// Recursive-descent parser over a raw char range.
class Parser {
 public:
  Parser(const char* p, const char* end) : p_(p), end_(end) {}

  Result<JsonValue> ParseDocument() {
    auto v = ParseValue();
    if (!v.ok()) return v;
    SkipSpace();
    if (p_ != end_) return Err("trailing characters after JSON value");
    return v;
  }

 private:
  Status Err(const std::string& message) const {
    return Status::InvalidArgument(
        "json: " + message + " at offset " + std::to_string(offset_));
  }

  void SkipSpace() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) {
      Advance();
    }
  }

  void Advance() {
    ++p_;
    ++offset_;
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      Advance();
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const char* q = p_;
    size_t n = 0;
    while (lit[n] != '\0') {
      if (q == end_ || *q != lit[n]) return false;
      ++q;
      ++n;
    }
    p_ = q;
    offset_ += n;
    return true;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (p_ == end_) return Err("unexpected end of input");
    switch (*p_) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        std::string s;
        SIMCARD_RETURN_IF_ERROR(ParseString(&s));
        return JsonValue::Str(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::Bool(true);
        return Err("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::Bool(false);
        return Err("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::Null();
        return Err("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseNumber() {
    const char* start = p_;
    if (Consume('-')) {
    }
    while (p_ != end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
            *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      Advance();
    }
    if (p_ == start) return Err("invalid number");
    char* parse_end = nullptr;
    const std::string text(start, p_);
    const double v = std::strtod(text.c_str(), &parse_end);
    if (parse_end != text.c_str() + text.size()) return Err("invalid number");
    return JsonValue::Number(v);
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Err("expected '\"'");
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_;
      Advance();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ == end_) return Err("unterminated escape");
      char esc = *p_;
      Advance();
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (end_ - p_ < 4) return Err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_;
            Advance();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Err("invalid \\u escape");
            }
          }
          // Reports only ever escape control characters; emit Latin-1
          // directly and UTF-8-encode the rest.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Err("invalid escape");
      }
    }
    if (!Consume('"')) return Err("unterminated string");
    return Status::OK();
  }

  Result<JsonValue> ParseArray() {
    Advance();  // '['
    JsonValue out = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return out;
    while (true) {
      auto v = ParseValue();
      if (!v.ok()) return v;
      out.Append(std::move(v).value());
      SkipSpace();
      if (Consume(']')) return out;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject() {
    Advance();  // '{'
    JsonValue out = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return out;
    while (true) {
      SkipSpace();
      std::string key;
      SIMCARD_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Err("expected ':'");
      auto v = ParseValue();
      if (!v.ok()) return v;
      out.Set(key, std::move(v).value());
      SkipSpace();
      if (Consume('}')) return out;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  const char* p_;
  const char* end_;
  size_t offset_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.ParseDocument();
}

}  // namespace obs
}  // namespace simcard
