// Minimal JSON document model used by the observability exporters.
//
// JsonValue covers the subset of JSON the metrics reports need — null,
// bool, double, string, array, object (insertion-ordered) — with a writer
// (Dump) and a strict reader (Parse) so reports can be round-tripped in
// tests and post-processed by scripts/check_metrics_json.py. It is not a
// general-purpose JSON library: numbers are always doubles, and object keys
// keep first-insertion order so diffs between two runs line up.
#ifndef SIMCARD_OBS_JSON_H_
#define SIMCARD_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace simcard {
namespace obs {

/// \brief One JSON value (recursive).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue Int(int64_t v);  ///< stored as double; emitted unfractioned
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }

  /// Array access.
  void Append(JsonValue v);
  size_t size() const { return items_.size(); }
  const JsonValue& at(size_t i) const { return items_[i]; }

  /// Object access. Set overwrites an existing key in place.
  void Set(const std::string& key, JsonValue v);
  bool Has(const std::string& key) const;
  /// Returns the member or a shared null value when absent.
  const JsonValue& Get(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error). Accepts integers and floats as numbers.
  static Result<JsonValue> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> object_;   // kObject
};

/// Escapes `s` for inclusion in a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace simcard

#endif  // SIMCARD_OBS_JSON_H_
