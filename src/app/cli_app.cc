#include "app/cli_app.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/gl_estimator.h"
#include "data/generators.h"
#include "dist/metric.h"
#include "eval/harness.h"
#include "eval/reporter.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/telemetry.h"
#include "serve/estimation_service.h"
#include "serve/model_registry.h"
#include "update/update_manager.h"

namespace simcard {
namespace {

constexpr char kUsage[] =
    "usage: simcard_cli "
    "<generate|train|estimate|evaluate|serve-bench|update-bench|"
    "telemetry-dump|chaos-drill> "
    "[flags]\n"
    "  generate --dataset=<analog> [--scale=S] [--seed=N] --out=FILE\n"
    "  train    --data=FILE --method=M [--segments=N] [--scale=S]\n"
    "           [--seed=N] --out=FILE        (M in GL+/Local+/GL-CNN/GL-MLP)\n"
    "  estimate --data=FILE --model=FILE --query-row=N --tau=X\n"
    "  evaluate --data=FILE --model=FILE [--segments=N] [--seed=N]\n"
    "  serve-bench --data=FILE --model=FILE [--threads=N] [--clients=N]\n"
    "           [--requests=N] [--tau=X] [--deadline-ms=D]\n"
    "           [--queue-capacity=N] [--max-batch=N] [--linger-us=U]\n"
    "           (concurrent serving throughput; max-batch > 1 coalesces\n"
    "           queued requests into one batched forward pass)\n"
    "  update-bench --data=FILE --model=FILE [--delta-fraction=F]\n"
    "           [--refresh-threshold=N] [--refresh-epochs=N]\n"
    "           [--refresh-stale-fraction=F] [--refresh-stale-shift=F]\n"
    "           [--refresh-full-reseg=F] [--segments=N] [--scale=S]\n"
    "           [--seed=N]\n"
    "           (online-update drill: stages F*|D| inserts+erases against a\n"
    "           served model, runs a drift-aware refresh, and reports stale\n"
    "           vs refreshed q-error; --refresh-threshold=N refreshes via\n"
    "           periodic Tick once N deltas are pending instead of one\n"
    "           explicit Refresh)\n"
    "  telemetry-dump --data=FILE --model=FILE [--requests=N] [--tau=X]\n"
    "           [--threads=N] [--deadline-ms=D] [--max-batch=N]\n"
    "           [--telemetry-out=STEM] [--trace-out=FILE]\n"
    "           (observability drill: serves phased traffic — normal with\n"
    "           ground-truth ReportActual, forced sheds, forced deadline\n"
    "           misses, forced local-model failures — then writes a\n"
    "           telemetry snapshot + Prometheus text; arms its own faults)\n"
    "  chaos-drill --data=FILE --model=FILE [--journal=DIR] [--rounds=N]\n"
    "           [--requests=N] [--deltas=N] [--threads=N] [--tau=X]\n"
    "           [--group-commit=N] [--delta-capacity=N]\n"
    "           [--refresh-retry-budget=N] [--refresh-retry-base-ms=D]\n"
    "           [--refresh-retry-max-ms=D] [--segments=N] [--scale=S]\n"
    "           [--seed=N]\n"
    "           (durability drill: concurrent serving + delta ingestion +\n"
    "           refreshes under a seeded fault schedule with simulated\n"
    "           process kills + journal recovery between rounds; verifies\n"
    "           zero acked-delta loss, monotone epochs, clamped estimates,\n"
    "           and recovery convergence, then prints key=value invariants\n"
    "           and PASS/FAIL)\n"
    "every command also accepts --metrics-out=FILE to write a JSON metrics\n"
    "report (SIMCARD_METRICS=1 enables collection without a report file),\n"
    "--trace-out=FILE to enable request tracing and write the tail-sampled\n"
    "simcard.traces.v1 report at exit (SIMCARD_TRACE=1 enables collection\n"
    "without a report file), --telemetry-out=STEM to write a telemetry\n"
    "snapshot (STEM-latest.json + STEM.prom) at exit,\n"
    "--fault=SPEC to arm deterministic fault injection (e.g.\n"
    "\"points=io.load;prob=0.5;seed=7\"; see SIMCARD_FAULT_* env knobs),\n"
    "and estimate/evaluate accept --degraded to quarantine corrupt model\n"
    "sections instead of failing the load\n";

Result<CommandLine> ParseFlags(int argc, const char* const* argv,
                               std::vector<std::string> known) {
  // Skip argv[1] (the subcommand) by shifting.
  std::vector<char*> shifted;
  shifted.push_back(const_cast<char*>(argv[0]));
  for (int i = 2; i < argc; ++i) {
    shifted.push_back(const_cast<char*>(argv[i]));
  }
  return CommandLine::Parse(static_cast<int>(shifted.size()), shifted.data(),
                            known);
}

Result<Dataset> LoadDataset(const std::string& path) {
  auto in_or = Deserializer::FromFile(path);
  if (!in_or.ok()) return in_or.status();
  Deserializer in = std::move(in_or).value();
  return Dataset::Deserialize(&in);
}

// Deterministically rebuilds segmentation + workload for a dataset file, so
// train/evaluate agree on the split without persisting labels.
Result<ExperimentEnv> RebuildEnv(Dataset dataset, size_t segments,
                                 uint64_t seed, Scale scale) {
  ExperimentEnv env;
  auto spec_or = GetAnalogSpec(dataset.name(), scale);
  if (!spec_or.ok()) return spec_or.status();
  env.spec = spec_or.value();
  env.scale = scale;
  env.seed = seed;
  env.dataset = std::move(dataset);

  SegmentationOptions seg_opts;
  seg_opts.target_segments = segments;
  seg_opts.seed = seed + 1;
  auto seg_or = SegmentData(env.dataset, seg_opts);
  if (!seg_or.ok()) return seg_or.status();
  env.segmentation = std::move(seg_or.value());

  WorkloadOptions wl_opts;
  wl_opts.num_train = std::min<size_t>(env.spec.train_queries,
                                       env.dataset.size() / 4);
  wl_opts.num_test = std::min<size_t>(env.spec.test_queries,
                                      env.dataset.size() / 8);
  wl_opts.seed = seed + 2;
  wl_opts.keep_profiles = false;
  auto wl_or = BuildSearchWorkload(env.dataset, &env.segmentation, wl_opts);
  if (!wl_or.ok()) return wl_or.status();
  env.workload = std::move(wl_or).value();
  return env;
}

int Fail(std::ostream& err, const Status& status) {
  err << status.ToString() << "\n";
  return 1;
}

int CmdGenerate(const CommandLine& cl, std::ostream& out, std::ostream& err) {
  const std::string name = cl.GetString("dataset", "");
  const std::string path = cl.GetString("out", "");
  if (name.empty() || path.empty()) {
    err << "generate: --dataset and --out are required\n";
    return 2;
  }
  auto scale_or = ParseScale(cl.GetString("scale", "small"));
  if (!scale_or.ok()) return Fail(err, scale_or.status());
  const uint64_t seed = static_cast<uint64_t>(cl.GetInt("seed", 2026));
  auto data_or = MakeAnalogDataset(name, scale_or.value(), seed);
  if (!data_or.ok()) return Fail(err, data_or.status());
  Serializer ser;
  data_or.value().Serialize(&ser);
  if (Status st = ser.SaveToFile(path); !st.ok()) return Fail(err, st);
  out << "wrote " << data_or.value().size() << " points ("
      << data_or.value().dim() << " dims, "
      << MetricName(data_or.value().metric()) << ") to " << path << "\n";
  return 0;
}

int CmdTrain(const CommandLine& cl, std::ostream& out, std::ostream& err) {
  const std::string data_path = cl.GetString("data", "");
  const std::string model_path = cl.GetString("out", "");
  const std::string method = cl.GetString("method", "GL-CNN");
  if (data_path.empty() || model_path.empty()) {
    err << "train: --data and --out are required\n";
    return 2;
  }
  auto scale_or = ParseScale(cl.GetString("scale", "small"));
  if (!scale_or.ok()) return Fail(err, scale_or.status());
  auto data_or = LoadDataset(data_path);
  if (!data_or.ok()) return Fail(err, data_or.status());
  const uint64_t seed = static_cast<uint64_t>(cl.GetInt("seed", 2026));
  const size_t segments = static_cast<size_t>(cl.GetInt("segments", 16));
  auto env_or = RebuildEnv(std::move(data_or).value(), segments, seed,
                           scale_or.value());
  if (!env_or.ok()) return Fail(err, env_or.status());
  ExperimentEnv env = std::move(env_or).value();

  auto est_or = MakeEstimatorByName(method, scale_or.value());
  if (!est_or.ok()) return Fail(err, est_or.status());
  auto* gl = dynamic_cast<GlEstimator*>(est_or.value().get());
  if (gl == nullptr) {
    err << "train: only GL-family methods can be saved (got " << method
        << ")\n";
    return 2;
  }
  TrainContext ctx = MakeTrainContext(env);
  if (Status st = gl->Train(ctx); !st.ok()) return Fail(err, st);
  if (Status st = gl->SaveToFile(model_path); !st.ok()) return Fail(err, st);
  out << "trained " << method << " in " << FormatPaperNumber(
             gl->training_seconds())
      << "s (" << gl->num_local_models() << " local models, "
      << FormatPaperNumber(gl->ModelSizeBytes() / 1e6) << " MB) -> "
      << model_path << "\n";
  return 0;
}

// Loads a model with a neutral config (behavioral knobs only matter for
// further training).
Result<std::unique_ptr<GlEstimator>> LoadModel(const CommandLine& cl,
                                               const std::string& path) {
  auto est = std::make_unique<GlEstimator>(GlEstimatorConfig::GlCnn());
  const auto mode = cl.GetBool("degraded", false)
                        ? GlEstimator::LoadMode::kDegraded
                        : GlEstimator::LoadMode::kStrict;
  SIMCARD_RETURN_IF_ERROR(est->LoadFromFile(path, mode));
  return est;
}

int CmdEstimate(const CommandLine& cl, std::ostream& out, std::ostream& err) {
  const std::string data_path = cl.GetString("data", "");
  const std::string model_path = cl.GetString("model", "");
  if (data_path.empty() || model_path.empty()) {
    err << "estimate: --data and --model are required\n";
    return 2;
  }
  auto data_or = LoadDataset(data_path);
  if (!data_or.ok()) return Fail(err, data_or.status());
  const Dataset& dataset = data_or.value();
  auto est_or = LoadModel(cl, model_path);
  if (!est_or.ok()) return Fail(err, est_or.status());
  const size_t row = static_cast<size_t>(cl.GetInt("query-row", 0));
  if (row >= dataset.size()) {
    err << "estimate: --query-row out of range\n";
    return 2;
  }
  const float tau = static_cast<float>(cl.GetDouble("tau", 0.1));
  EstimateRequest request;
  request.query =
      std::span<const float>(dataset.Point(row), dataset.dim());
  request.tau = tau;
  const double estimate = est_or.value()->Estimate(request);
  out << "card(row " << row << ", tau " << tau
      << ") ~= " << FormatPaperNumber(estimate) << "\n";
  return 0;
}

int CmdEvaluate(const CommandLine& cl, std::ostream& out, std::ostream& err) {
  const std::string data_path = cl.GetString("data", "");
  const std::string model_path = cl.GetString("model", "");
  if (data_path.empty() || model_path.empty()) {
    err << "evaluate: --data and --model are required\n";
    return 2;
  }
  auto scale_or = ParseScale(cl.GetString("scale", "small"));
  if (!scale_or.ok()) return Fail(err, scale_or.status());
  auto data_or = LoadDataset(data_path);
  if (!data_or.ok()) return Fail(err, data_or.status());
  const uint64_t seed = static_cast<uint64_t>(cl.GetInt("seed", 2026));
  const size_t segments = static_cast<size_t>(cl.GetInt("segments", 16));
  auto env_or = RebuildEnv(std::move(data_or).value(), segments, seed,
                           scale_or.value());
  if (!env_or.ok()) return Fail(err, env_or.status());
  auto est_or = LoadModel(cl, model_path);
  if (!est_or.ok()) return Fail(err, est_or.status());

  EvalResult result =
      EvaluateSearch(est_or.value().get(), env_or.value().workload);
  TableReporter table(SummaryColumns("Metric"));
  table.AddSummaryRow("Q-error", result.qerror);
  table.AddSummaryRow("MAPE", result.mape);
  table.Print(out);
  out << "mean latency: " << FormatPaperNumber(result.mean_latency_ms)
      << " ms/query over " << result.qerror.count << " test samples\n";
  return 0;
}

// Drives the concurrent serving layer against a saved model: N client
// threads submit requests through an EstimationService and the command
// reports throughput, latency percentiles, and shed/deadline counts.
int CmdServeBench(const CommandLine& cl, std::ostream& out,
                  std::ostream& err) {
  const std::string data_path = cl.GetString("data", "");
  const std::string model_path = cl.GetString("model", "");
  if (data_path.empty() || model_path.empty()) {
    err << "serve-bench: --data and --model are required\n";
    return 2;
  }
  auto data_or = LoadDataset(data_path);
  if (!data_or.ok()) return Fail(err, data_or.status());
  const Dataset& dataset = data_or.value();
  auto est_or = LoadModel(cl, model_path);
  if (!est_or.ok()) return Fail(err, est_or.status());
  const std::shared_ptr<const GlEstimator> model = std::move(est_or).value();

  serve::ServeOptions options;
  options.num_threads = static_cast<size_t>(cl.GetInt("threads", 4));
  options.queue_capacity =
      static_cast<size_t>(cl.GetInt("queue-capacity", 1024));
  options.default_deadline_ms = cl.GetDouble("deadline-ms", 100.0);
  options.max_batch = static_cast<size_t>(
      std::max<int64_t>(1, cl.GetInt("max-batch", 1)));
  options.batch_linger_us = cl.GetDouble("linger-us", 50.0);
  const size_t clients =
      std::max<int64_t>(1, cl.GetInt("clients", 4));
  const size_t per_client =
      std::max<int64_t>(1, cl.GetInt("requests", 2000));
  const float tau = static_cast<float>(cl.GetDouble("tau", 0.1));

  serve::ModelRegistry registry;
  registry.Publish(model);
  serve::EstimationService service(&registry, options);

  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> deadline{0};
  std::vector<std::vector<double>> latencies(clients);
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      for (size_t i = 0; i < per_client; ++i) {
        const size_t row = (c * per_client + i) % dataset.size();
        EstimateRequest request;
        request.query =
            std::span<const float>(dataset.Point(row), dataset.dim());
        request.tau = tau;
        request.options.deadline_ms = options.default_deadline_ms;
        serve::EstimateResponse response = service.Submit(request).get();
        switch (response.status.code()) {
          case StatusCode::kOk:
            ok.fetch_add(1);
            latencies[c].push_back(response.total_us);
            break;
          case StatusCode::kDeadlineExceeded:
            deadline.fetch_add(1);
            break;
          default:
            shed.fetch_add(1);
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  service.Drain();
  const double seconds = wall.ElapsedSeconds();

  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  auto pct = [&](double p) -> double {
    if (all.empty()) return 0.0;
    const size_t idx = std::min(
        all.size() - 1, static_cast<size_t>(p * static_cast<double>(
                                                    all.size() - 1)));
    return all[idx];
  };

  const uint64_t total = clients * per_client;
  out << "serve-bench: " << total << " requests, " << clients
      << " clients, " << options.num_threads << " workers, deadline "
      << FormatPaperNumber(options.default_deadline_ms) << " ms, max-batch "
      << options.max_batch << "\n";
  out << "  ok " << ok.load() << ", shed " << shed.load()
      << ", deadline-exceeded " << deadline.load() << " (breaker trips "
      << service.breaker()->trips() << ")\n";
  out << "  wall " << FormatPaperNumber(seconds) << " s, "
      << FormatPaperNumber(static_cast<double>(total) / seconds)
      << " req/s\n";
  out << "  latency us p50 " << FormatPaperNumber(pct(0.50)) << ", p95 "
      << FormatPaperNumber(pct(0.95)) << ", p99 "
      << FormatPaperNumber(pct(0.99)) << "\n";
  return ok.load() > 0 ? 0 : 1;
}

// Online-update drill: loads a served model, stages --delta-fraction of the
// dataset as inserts + erases through an UpdateManager, runs a drift-aware
// refresh (threshold Tick or explicit Refresh), and reports stale vs
// refreshed q-error on the relabeled workload. With --metrics-out this is
// the canonical producer of the simcard.update.* metric families.
int CmdUpdateBench(const CommandLine& cl, std::ostream& out,
                   std::ostream& err) {
  const std::string data_path = cl.GetString("data", "");
  const std::string model_path = cl.GetString("model", "");
  if (data_path.empty() || model_path.empty()) {
    err << "update-bench: --data and --model are required\n";
    return 2;
  }
  auto scale_or = ParseScale(cl.GetString("scale", "small"));
  if (!scale_or.ok()) return Fail(err, scale_or.status());
  auto data_or = LoadDataset(data_path);
  if (!data_or.ok()) return Fail(err, data_or.status());
  const std::string dataset_name = data_or.value().name();
  const uint64_t seed = static_cast<uint64_t>(cl.GetInt("seed", 2026));
  const size_t segments = static_cast<size_t>(cl.GetInt("segments", 16));
  auto env_or = RebuildEnv(std::move(data_or).value(), segments, seed,
                           scale_or.value());
  if (!env_or.ok()) return Fail(err, env_or.status());
  ExperimentEnv env = std::move(env_or).value();
  auto est_or = LoadModel(cl, model_path);
  if (!est_or.ok()) return Fail(err, est_or.status());

  const double delta_fraction = cl.GetDouble("delta-fraction", 0.2);
  update::UpdateOptions opts;
  opts.refresh_delta_threshold =
      static_cast<size_t>(cl.GetInt("refresh-threshold", 0));
  opts.fine_tune_epochs =
      static_cast<size_t>(cl.GetInt("refresh-epochs", 3));
  opts.seed = seed + 17;
  opts.drift.stale_delta_fraction = cl.GetDouble(
      "refresh-stale-fraction", opts.drift.stale_delta_fraction);
  opts.drift.stale_centroid_shift = cl.GetDouble(
      "refresh-stale-shift", opts.drift.stale_centroid_shift);
  const double reseg_fraction = cl.GetDouble(
      "refresh-full-reseg", opts.drift.full_reseg_fraction);
  opts.allow_full_reseg = reseg_fraction > 0.0;
  if (opts.allow_full_reseg) opts.drift.full_reseg_fraction = reseg_fraction;

  const size_t base_rows = env.dataset.size();
  const size_t num_inserts =
      static_cast<size_t>(static_cast<double>(base_rows) * delta_fraction /
                          2.0);
  auto inserts_or = MakeAnalogUpdates(dataset_name, scale_or.value(),
                                      num_inserts, seed + 18);
  if (!inserts_or.ok()) return Fail(err, inserts_or.status());
  const Matrix& inserts = inserts_or.value();

  serve::ModelRegistry registry;
  update::UpdateManager manager(std::move(env.dataset),
                                std::move(env.workload), &registry, opts);
  if (Status st = manager.Start(*est_or.value()); !st.ok()) {
    return Fail(err, st);
  }
  // The stale contender keeps answering from the pre-delta weights.
  std::unique_ptr<GlEstimator> stale = std::move(est_or).value();

  for (size_t i = 0; i < inserts.rows(); ++i) {
    Status st = manager.Insert(
        std::span<const float>(inserts.Row(i), inserts.cols()));
    if (!st.ok()) return Fail(err, st);
  }
  Rng erase_rng(seed + 19);
  for (size_t row :
       erase_rng.SampleWithoutReplacement(base_rows, num_inserts)) {
    if (Status st = manager.Erase(static_cast<uint32_t>(row)); !st.ok()) {
      return Fail(err, st);
    }
  }
  out << "update-bench: staged " << inserts.rows() << " inserts + "
      << num_inserts << " erases (" << (delta_fraction * 100.0)
      << "% of " << base_rows << " rows), pending " << manager.pending()
      << "\n";

  auto outcome_or = opts.refresh_delta_threshold > 0 ? manager.Tick()
                                                     : manager.Refresh();
  if (!outcome_or.ok()) return Fail(err, outcome_or.status());
  const update::RefreshOutcome& outcome = outcome_or.value();
  if (!outcome.refreshed) {
    out << "update-bench: refresh not due (pending " << manager.pending()
        << " < threshold " << opts.refresh_delta_threshold << ")\n";
    return 0;
  }
  out << "update-bench: " << (outcome.full_reseg
                                  ? "full re-segmentation"
                                  : "incremental refresh")
      << " published epoch " << outcome.epoch << " in "
      << FormatPaperNumber(outcome.refresh_ms) << " ms ("
      << outcome.segments_refreshed << " locals fine-tuned, "
      << outcome.segments_cloned << " cloned)\n";

  // Both contenders answer the post-delta relabeled workload.
  auto refreshed = std::make_unique<GlEstimator>(stale->config());
  if (Status st = refreshed->LoadFromBytes(
          registry.Current().estimator->SaveToBytes());
      !st.ok()) {
    return Fail(err, st);
  }
  const EvalResult stale_eval =
      EvaluateSearch(stale.get(), manager.workload());
  const EvalResult fresh_eval =
      EvaluateSearch(refreshed.get(), manager.workload());
  TableReporter table({"Model", "Mean Q-error", "Median Q-error"});
  table.AddRow({"stale (pre-delta)", FormatPaperNumber(stale_eval.qerror.mean),
                FormatPaperNumber(stale_eval.qerror.median)});
  table.AddRow({"refreshed", FormatPaperNumber(fresh_eval.qerror.mean),
                FormatPaperNumber(fresh_eval.qerror.median)});
  table.Print(out);
  out << "refreshed improves on stale by "
      << FormatPaperNumber(stale_eval.qerror.mean / fresh_eval.qerror.mean)
      << "x on " << fresh_eval.qerror.count << " test samples\n";
  return 0;
}

// --telemetry-out takes a path STEM ("out/telem" or "out/telem.json"); the
// exporter then writes STEM-<seq>.json, STEM-latest.json, and STEM.prom.
obs::TelemetryOptions TelemetryOptionsForStem(std::string stem) {
  if (stem.size() > 5 && stem.ends_with(".json")) {
    stem.resize(stem.size() - 5);
  }
  obs::TelemetryOptions topts;
  const size_t slash = stem.find_last_of('/');
  if (slash == std::string::npos) {
    topts.basename = stem;
  } else {
    topts.dir = stem.substr(0, slash);
    topts.basename = stem.substr(slash + 1);
  }
  if (topts.dir.empty()) topts.dir = ".";
  if (topts.basename.empty()) topts.basename = "telemetry";
  return topts;
}

int WriteTelemetrySnapshot(const std::string& stem,
                           const obs::QErrorTracker* accuracy,
                           std::ostream& out, std::ostream& err) {
  const obs::TelemetryOptions topts = TelemetryOptionsForStem(stem);
  obs::TelemetryExporter exporter(topts, accuracy);
  if (Status st = exporter.DumpNow(); !st.ok()) {
    err << "writing telemetry snapshot: " << st.ToString() << "\n";
    return 1;
  }
  out << "telemetry snapshot -> " << topts.dir << "/" << topts.basename
      << "-latest.json (+ .prom)\n";
  return 0;
}

// Observability drill: serves phased traffic against a saved model — normal
// requests (answered with brute-force ground truth through ReportActual),
// forced sheds, forced deadline misses, forced local-model failures — so a
// single run populates every telemetry surface: serve/batch metrics,
// per-segment health, Q-error accuracy windows, and flag-marked traces
// (shed / deadline-exceeded / fallback / breaker). Arms and disarms its own
// fault sites; combine with --trace-out for the trace report.
int CmdTelemetryDump(const CommandLine& cl, std::ostream& out,
                     std::ostream& err) {
  const std::string data_path = cl.GetString("data", "");
  const std::string model_path = cl.GetString("model", "");
  if (data_path.empty() || model_path.empty()) {
    err << "telemetry-dump: --data and --model are required\n";
    return 2;
  }
  // The drill is pointless without collection: imply both switches (the
  // global --trace-out/--metrics-out handling may have set them already).
  obs::SetMetricsEnabled(true);
  obs::SetTracingEnabled(true);

  auto data_or = LoadDataset(data_path);
  if (!data_or.ok()) return Fail(err, data_or.status());
  const Dataset& dataset = data_or.value();
  auto est_or = LoadModel(cl, model_path);
  if (!est_or.ok()) return Fail(err, est_or.status());
  const std::shared_ptr<const GlEstimator> model = std::move(est_or).value();

  serve::ServeOptions options;
  options.num_threads = static_cast<size_t>(cl.GetInt("threads", 2));
  options.queue_capacity = 64;
  options.default_deadline_ms = cl.GetDouble("deadline-ms", 25.0);
  options.max_batch = static_cast<size_t>(
      std::max<int64_t>(1, cl.GetInt("max-batch", 4)));
  // A low trip threshold so the failure phase also exercises the breaker
  // (open -> short-circuit -> half-open probe shows up in segment health).
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_requests = 4;
  const size_t per_phase =
      static_cast<size_t>(std::max<int64_t>(1, cl.GetInt("requests", 24)));
  const float tau = static_cast<float>(cl.GetDouble("tau", 0.1));

  serve::ModelRegistry registry;
  registry.Publish(model);
  serve::EstimationService service(&registry, options);

  auto wave = [&](size_t count) {
    std::vector<std::future<serve::EstimateResponse>> futures;
    futures.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const size_t row = i % dataset.size();
      EstimateRequest request;
      request.query =
          std::span<const float>(dataset.Point(row), dataset.dim());
      request.tau = tau;
      request.options.deadline_ms = options.default_deadline_ms;
      futures.push_back(service.Submit(request));
    }
    std::vector<serve::EstimateResponse> responses;
    responses.reserve(count);
    for (auto& f : futures) responses.push_back(f.get());
    return responses;
  };
  auto count_ok = [](const std::vector<serve::EstimateResponse>& rs) {
    size_t n = 0;
    for (const auto& r : rs) n += r.status.ok() ? 1 : 0;
    return n;
  };

  // Phase 1 — normal traffic, then close the loop on accuracy: brute-force
  // the true cardinality for a handful of completed requests and feed it
  // back through ReportActual so the Q-error windows populate.
  const std::vector<serve::EstimateResponse> normal = wave(per_phase);
  size_t reported = 0;
  constexpr size_t kMaxGroundTruth = 16;  // bounds the O(n^2) distance scan
  for (size_t i = 0; i < normal.size() && reported < kMaxGroundTruth; ++i) {
    if (!normal[i].status.ok()) continue;
    const size_t row = i % dataset.size();
    const float* q = dataset.Point(row);
    size_t true_card = 0;
    for (size_t r = 0; r < dataset.size(); ++r) {
      if (Distance(q, dataset.Point(r), dataset.dim(), dataset.metric()) <=
          tau) {
        ++true_card;
      }
    }
    if (service
            .ReportActual(normal[i].request_id,
                          static_cast<double>(true_card))
            .ok()) {
      ++reported;
    }
  }

  // Phase 2 — admission control: every submit is refused, flag-marking a
  // shed trace per request.
  fault::Configure({.sites = "serve.queue_full", .probability = 1.0});
  const std::vector<serve::EstimateResponse> shed = wave(per_phase);

  // Phase 3 — evaluation stalls past the deadline.
  fault::Configure({.sites = "serve.slow_eval", .probability = 1.0});
  const std::vector<serve::EstimateResponse> late = wave(per_phase);

  // Phase 4 — local models fail: segments answer from their sampling
  // fallback and the circuit breaker trips open.
  fault::Configure({.sites = "gl.local_eval", .probability = 1.0});
  const std::vector<serve::EstimateResponse> degraded = wave(per_phase);
  fault::Disable();

  service.Drain();

  size_t fallback_served = 0;
  for (const auto& r : degraded) {
    fallback_served += r.fallback_segments > 0 ? 1 : 0;
  }
  size_t deadline_missed = 0;
  for (const auto& r : late) {
    deadline_missed +=
        r.status.code() == StatusCode::kDeadlineExceeded ? 1 : 0;
  }
  out << "telemetry-dump: " << 4 * per_phase << " requests in 4 phases\n";
  out << "  normal: ok " << count_ok(normal) << ", accuracy reports "
      << reported << "\n";
  out << "  shed: " << (shed.size() - count_ok(shed)) << "/" << shed.size()
      << " refused\n";
  out << "  deadline: " << deadline_missed << "/" << late.size()
      << " exceeded\n";
  out << "  degraded: " << fallback_served << "/" << degraded.size()
      << " fallback-served (breaker trips " << service.breaker()->trips()
      << ")\n";

  return WriteTelemetrySnapshot(cl.GetString("telemetry-out", "telemetry"),
                                &service.accuracy(), out, err);
}

// Chaos drill: serve traffic, delta ingestion, and refreshes run
// concurrently for --rounds rounds while a seeded schedule arms refresh-path
// fault sites and, after every even round, a simulated process kill
// (manager + registry torn down, RecoverFrom from the journal directory).
// The drill verifies the durability invariants end to end and prints them
// as key=value lines for scripts/check_chaos.py:
//   - no acknowledged delta is lost (every acked insert is a row of the
//     final dataset; the final row count reflects every ack exactly once),
//   - the served epoch never moves backwards, including across kills,
//   - every successful estimate stays within the guard clamps,
//   - recovery converges (RecoverFrom succeeds, a final refresh drains).
int CmdChaosDrill(const CommandLine& cl, std::ostream& out,
                  std::ostream& err) {
  const std::string data_path = cl.GetString("data", "");
  const std::string model_path = cl.GetString("model", "");
  if (data_path.empty() || model_path.empty()) {
    err << "chaos-drill: --data and --model are required\n";
    return 2;
  }
  auto scale_or = ParseScale(cl.GetString("scale", "tiny"));
  if (!scale_or.ok()) return Fail(err, scale_or.status());
  auto data_or = LoadDataset(data_path);
  if (!data_or.ok()) return Fail(err, data_or.status());
  const std::string dataset_name = data_or.value().name();
  const uint64_t seed = static_cast<uint64_t>(cl.GetInt("seed", 2026));
  const size_t segments = static_cast<size_t>(cl.GetInt("segments", 6));
  auto env_or = RebuildEnv(std::move(data_or).value(), segments, seed,
                           scale_or.value());
  if (!env_or.ok()) return Fail(err, env_or.status());
  ExperimentEnv env = std::move(env_or).value();
  auto est_or = LoadModel(cl, model_path);
  if (!est_or.ok()) return Fail(err, est_or.status());
  const GlEstimatorConfig model_config = est_or.value()->config();

  const size_t rounds =
      static_cast<size_t>(std::max<int64_t>(1, cl.GetInt("rounds", 4)));
  const size_t per_round = static_cast<size_t>(
      std::max<int64_t>(2, cl.GetInt("requests", 64)));
  const size_t deltas_per_round = static_cast<size_t>(
      std::max<int64_t>(2, cl.GetInt("deltas", 8)));
  const float tau = static_cast<float>(cl.GetDouble("tau", 0.1));

  update::UpdateOptions opts;
  opts.allow_full_reseg = false;
  opts.fine_tune_epochs =
      static_cast<size_t>(cl.GetInt("refresh-epochs", 2));
  opts.seed = seed + 17;
  opts.journal_dir = cl.GetString("journal", "chaos-journal");
  opts.journal.group_commit = static_cast<size_t>(
      std::max<int64_t>(1, cl.GetInt("group-commit", 8)));
  opts.delta_capacity =
      static_cast<size_t>(cl.GetInt("delta-capacity", 0));
  opts.refresh_retry_budget = static_cast<size_t>(
      cl.GetInt("refresh-retry-budget", 8));
  opts.refresh_backoff_base_ms =
      cl.GetDouble("refresh-retry-base-ms", 1.0);
  opts.refresh_backoff_max_ms = cl.GetDouble("refresh-retry-max-ms", 50.0);
  std::filesystem::remove_all(opts.journal_dir);  // always a fresh drill

  const size_t base_rows = env.dataset.size();
  const size_t dim = env.dataset.dim();
  const Matrix probe_queries = env.workload.test_queries;
  auto pool_or = MakeAnalogUpdates(dataset_name, scale_or.value(),
                                   rounds * deltas_per_round, seed + 21);
  if (!pool_or.ok()) return Fail(err, pool_or.status());
  const Matrix& pool = pool_or.value();
  // The largest the dataset can ever get; valid guard clamp for any epoch.
  const double clamp_bound =
      static_cast<double>(base_rows + pool.rows()) + 1e-6;

  auto registry = std::make_unique<serve::ModelRegistry>();
  auto manager = std::make_unique<update::UpdateManager>(
      std::move(env.dataset), std::move(env.workload), registry.get(), opts);
  if (Status st = manager->Start(*est_or.value()); !st.ok()) {
    return Fail(err, st);
  }

  serve::ServeOptions sopts;
  sopts.num_threads = static_cast<size_t>(cl.GetInt("threads", 2));
  sopts.default_deadline_ms = cl.GetDouble("deadline-ms", 100.0);
  sopts.max_batch = 4;

  // The acked-delta ledger: only OK acks enter. Erase rows come from a
  // monotone cursor so no two acks ever name the same row of one epoch —
  // that keeps the row-count invariant exact (each acked erase removes
  // exactly one row; each acked insert adds exactly one).
  std::vector<std::vector<float>> acked_inserts;
  size_t acked_erases = 0;
  size_t shed = 0;
  size_t next_insert = 0;
  uint32_t next_erase = 0;
  size_t faults_armed = 0;
  size_t refresh_failures = 0;
  size_t kills = 0;
  size_t recoveries = 0;
  std::atomic<size_t> estimates_checked{0};
  std::atomic<size_t> clamp_violations{0};
  bool epochs_monotone = true;
  uint64_t last_epoch = registry->epoch();
  size_t dropped_erases = 0;
  Rng chaos(seed ^ 0xC4A05D211ull);

  for (size_t round = 1; round <= rounds; ++round) {
    {
      serve::EstimationService service(registry.get(), sopts);
      std::thread ingest([&] {
        for (size_t k = 0; k < deltas_per_round; ++k) {
          Status st;
          if (k % 2 == 0 && next_insert < pool.rows()) {
            const float* row = pool.Row(next_insert);
            st = manager->Insert(std::span<const float>(row, dim));
            if (st.ok()) {
              acked_inserts.emplace_back(row, row + dim);
            }
            ++next_insert;
          } else {
            st = manager->Erase(next_erase);
            if (st.ok()) ++acked_erases;
            ++next_erase;
          }
          if (!st.ok()) ++shed;
        }
      });
      auto client = [&](size_t offset) {
        for (size_t i = 0; i < per_round / 2; ++i) {
          const size_t q = (offset + i) % probe_queries.rows();
          EstimateRequest request;
          request.query =
              std::span<const float>(probe_queries.Row(q), dim);
          request.tau = tau;
          request.options.deadline_ms = sopts.default_deadline_ms;
          const serve::EstimateResponse response =
              service.Submit(request).get();
          if (!response.status.ok()) continue;
          ++estimates_checked;
          if (!std::isfinite(response.estimate) || response.estimate < 0.0 ||
              response.estimate > clamp_bound) {
            ++clamp_violations;
          }
        }
      };
      std::thread left(client, 0);
      std::thread right(client, probe_queries.rows() / 2);

      // The seeded fault schedule rotates over the refresh-path sites; the
      // skip index walks the distinct hits of each site so repeated rounds
      // cover the whole durable-commit window.
      std::string armed;
      switch (round % 4) {
        case 1:
          armed = "update.refresh_finetune";
          break;
        case 2:
          armed = "update.journal_io";
          break;
        case 0:
          armed = "io.save";
          break;
        default:
          break;  // a clean round: the refresh should commit
      }
      if (!armed.empty()) {
        fault::FaultConfig config;
        config.sites = armed;
        config.max_injections = 1;
        config.skip_first =
            armed == "update.refresh_finetune"
                ? 0
                : chaos.NextBounded(armed == "io.save" ? 3 : 4);
        fault::Configure(config);
        ++faults_armed;
      }
      const auto refresh = manager->Refresh();
      fault::Disable();
      if (!refresh.ok()) ++refresh_failures;

      ingest.join();
      left.join();
      right.join();
      service.Drain();
    }
    {
      const uint64_t epoch = registry->epoch();
      if (epoch < last_epoch) epochs_monotone = false;
      last_epoch = epoch;
    }

    // Simulated process kill after every even round (and whenever a
    // mid-commit failure quarantined the manager): tear down the manager
    // and registry with no shutdown hook and recover from the files.
    if (round % 2 == 0 || manager->needs_recovery()) {
      dropped_erases += manager->buffer().dropped_erases();
      manager.reset();
      registry = std::make_unique<serve::ModelRegistry>();
      auto recovered =
          update::UpdateManager::RecoverFrom(registry.get(), opts,
                                             &model_config);
      if (!recovered.ok()) {
        err << "chaos-drill: recovery after round " << round
            << " failed: " << recovered.status().ToString() << "\n";
        out << "chaos-drill: FAIL\n";
        return 1;
      }
      manager = std::move(recovered).value();
      ++kills;
      ++recoveries;
      if (registry->epoch() < last_epoch) epochs_monotone = false;
      last_epoch = registry->epoch();
    }
  }

  // Convergence: with faults cleared, one explicit refresh must drain
  // everything the drill acknowledged into the dataset.
  if (manager->needs_recovery()) {
    dropped_erases += manager->buffer().dropped_erases();
    manager.reset();
    registry = std::make_unique<serve::ModelRegistry>();
    auto recovered = update::UpdateManager::RecoverFrom(registry.get(), opts,
                                                        &model_config);
    if (!recovered.ok()) {
      err << "chaos-drill: final recovery failed: "
          << recovered.status().ToString() << "\n";
      out << "chaos-drill: FAIL\n";
      return 1;
    }
    manager = std::move(recovered).value();
    ++kills;
    ++recoveries;
  }
  if (auto final_refresh = manager->Refresh(); !final_refresh.ok()) {
    err << "chaos-drill: final refresh failed: "
        << final_refresh.status().ToString() << "\n";
    out << "chaos-drill: FAIL\n";
    return 1;
  }
  if (registry->epoch() < last_epoch) epochs_monotone = false;
  dropped_erases += manager->buffer().dropped_erases();

  // Zero-loss audit. Every acked insert vector must be a row of the final
  // dataset, and the row count must reflect every ack exactly once.
  const Matrix& points = manager->dataset().points();
  size_t lost_inserts = 0;
  for (const std::vector<float>& ins : acked_inserts) {
    bool found = false;
    for (size_t r = 0; r < points.rows() && !found; ++r) {
      found = std::memcmp(points.Row(r), ins.data(),
                          dim * sizeof(float)) == 0;
    }
    if (!found) ++lost_inserts;
  }
  const size_t expected_rows =
      base_rows + acked_inserts.size() - (acked_erases - dropped_erases);
  const size_t final_rows = manager->dataset().size();

  out << "chaos-drill: rounds=" << rounds << " requests_per_round="
      << per_round << " deltas_per_round=" << deltas_per_round
      << " seed=" << seed << " group_commit=" << opts.journal.group_commit
      << "\n";
  out << "chaos-drill: faults_armed=" << faults_armed
      << " refresh_failures=" << refresh_failures << " kills=" << kills
      << " recoveries=" << recoveries << "\n";
  out << "chaos-drill: acked_inserts=" << acked_inserts.size()
      << " acked_erases=" << acked_erases << " shed=" << shed
      << " dropped_erases=" << dropped_erases << "\n";
  out << "chaos-drill: estimates_checked=" << estimates_checked.load()
      << " clamp_violations=" << clamp_violations.load() << "\n";
  out << "chaos-drill: epochs_monotone=" << (epochs_monotone ? 1 : 0)
      << " final_epoch=" << registry->epoch() << "\n";
  out << "chaos-drill: base_rows=" << base_rows << " final_rows="
      << final_rows << " expected_rows=" << expected_rows
      << " lost_inserts=" << lost_inserts << "\n";

  const bool pass = lost_inserts == 0 && final_rows == expected_rows &&
                    epochs_monotone && clamp_violations.load() == 0 &&
                    manager->pending() == 0;
  out << "chaos-drill: " << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}

}  // namespace

int RunCliApp(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  if (argc < 2) {
    err << kUsage;
    return 2;
  }
  const std::string command = argv[1];
  const std::vector<std::string> known = {
      "dataset", "scale", "seed", "out",  "data",        "method",
      "segments", "model", "query-row", "tau", "metrics-out",
      "fault", "degraded", "threads", "clients", "requests",
      "deadline-ms", "queue-capacity", "max-batch", "linger-us",
      "delta-fraction", "refresh-threshold", "refresh-epochs",
      "refresh-stale-fraction", "refresh-stale-shift", "refresh-full-reseg",
      "trace-out", "telemetry-out", "journal", "rounds", "deltas",
      "group-commit", "delta-capacity", "refresh-retry-budget",
      "refresh-retry-base-ms", "refresh-retry-max-ms"};
  auto cl_or = ParseFlags(argc, argv, known);
  if (!cl_or.ok()) return Fail(err, cl_or.status());
  const CommandLine& cl = cl_or.value();

  const std::string metrics_out = cl.GetString("metrics-out", "");
  if (!metrics_out.empty()) {
    obs::SetMetricsEnabled(true);
    obs::MetricsRegistry::Default().SetMetaString("command", command);
  }
  // Collection must be on before the command runs; the reports are written
  // after it returns (events survive in process-wide registries/sinks).
  const std::string trace_out = cl.GetString("trace-out", "");
  if (!trace_out.empty()) obs::SetTracingEnabled(true);
  const std::string telemetry_out = cl.GetString("telemetry-out", "");
  if (!telemetry_out.empty()) obs::SetMetricsEnabled(true);
  const std::string fault_spec = cl.GetString("fault", "");
  if (!fault_spec.empty()) {
    if (Status st = fault::ConfigureFromSpec(fault_spec); !st.ok()) {
      return Fail(err, st);
    }
  }

  int rc;
  if (command == "generate") {
    rc = CmdGenerate(cl, out, err);
  } else if (command == "train") {
    rc = CmdTrain(cl, out, err);
  } else if (command == "estimate") {
    rc = CmdEstimate(cl, out, err);
  } else if (command == "evaluate") {
    rc = CmdEvaluate(cl, out, err);
  } else if (command == "serve-bench") {
    rc = CmdServeBench(cl, out, err);
  } else if (command == "update-bench") {
    rc = CmdUpdateBench(cl, out, err);
  } else if (command == "telemetry-dump") {
    rc = CmdTelemetryDump(cl, out, err);
  } else if (command == "chaos-drill") {
    rc = CmdChaosDrill(cl, out, err);
  } else {
    err << "unknown command: " << command << "\n" << kUsage;
    return 2;
  }

  if (!metrics_out.empty()) {
    if (Status st = obs::DumpMetricsJson(metrics_out); !st.ok()) {
      err << "writing metrics report: " << st.ToString() << "\n";
      if (rc == 0) rc = 1;
    } else {
      out << "metrics report -> " << metrics_out << "\n";
    }
  }
  if (!trace_out.empty()) {
    if (Status st = obs::DumpTraceJson(trace_out); !st.ok()) {
      err << "writing trace report: " << st.ToString() << "\n";
      if (rc == 0) rc = 1;
    } else {
      out << "trace report -> " << trace_out << "\n";
    }
  }
  // telemetry-dump already wrote its snapshot, with the service's accuracy
  // windows attached; the generic exit-path write has no accuracy source.
  if (!telemetry_out.empty() && command != "telemetry-dump") {
    const int trc = WriteTelemetrySnapshot(telemetry_out, nullptr, out, err);
    if (rc == 0) rc = trc;
  }
  return rc;
}

}  // namespace simcard
