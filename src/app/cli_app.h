// Implementation of the `simcard_cli` tool as a library entry point so its
// subcommands are unit-testable. Subcommands:
//
//   generate  --dataset=<analog> [--scale=..] [--seed=..] --out=FILE
//       materialize a paper-analog dataset to a binary file;
//   train     --data=FILE --method=GL-CNN|GL+|Local+|GL-MLP
//             [--segments=N] [--scale=..] [--seed=..] --out=FILE
//       segment + label + train a GL-family estimator and save it;
//   estimate  --data=FILE --model=FILE --query-row=N --tau=X
//       load a saved model and print one cardinality estimate;
//   evaluate  --data=FILE --model=FILE [--segments=N] [--seed=..]
//       rebuild the (deterministic) test workload and print the Q-error /
//       MAPE summary of the saved model.
#ifndef SIMCARD_APP_CLI_APP_H_
#define SIMCARD_APP_CLI_APP_H_

#include <iosfwd>

namespace simcard {

/// Runs the CLI; returns the process exit code. Output goes to `out`,
/// errors to `err` (tests pass string streams).
int RunCliApp(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err);

}  // namespace simcard

#endif  // SIMCARD_APP_CLI_APP_H_
