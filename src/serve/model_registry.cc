#include "serve/model_registry.h"

#include "obs/metrics.h"

namespace simcard {
namespace serve {

ModelSnapshot ModelRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t ModelRegistry::Publish(std::shared_ptr<const GlEstimator> estimator) {
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = ++current_.epoch;
    current_.estimator = std::move(estimator);
  }
  if (obs::MetricsEnabled()) {
    obs::GetCounter("simcard.serve.publishes")->Increment();
    obs::GetGauge("simcard.serve.model_epoch")
        ->Set(static_cast<double>(epoch));
  }
  return epoch;
}

uint64_t ModelRegistry::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_.epoch;
}

}  // namespace serve
}  // namespace simcard
