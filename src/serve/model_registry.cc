#include "serve/model_registry.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/segment_health.h"

namespace simcard {
namespace serve {

ModelSnapshot ModelRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t ModelRegistry::Publish(std::shared_ptr<const GlEstimator> estimator) {
  return PublishAt(std::move(estimator), 0);
}

uint64_t ModelRegistry::PublishAt(
    std::shared_ptr<const GlEstimator> estimator, uint64_t at_epoch) {
  uint64_t epoch = 0;
  ModelSnapshot published;
  std::vector<std::pair<uint64_t, std::function<void(const ModelSnapshot&)>>>
      listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = std::max(at_epoch, current_.epoch + 1);
    current_.epoch = epoch;
    current_.estimator = std::move(estimator);
    published = current_;
    listeners = listeners_;  // invoke outside the lock
  }
  for (const auto& [id, fn] : listeners) fn(published);
  if (obs::MetricsEnabled()) {
    obs::GetCounter("simcard.serve.publishes")->Increment();
    obs::GetGauge("simcard.serve.model_epoch")
        ->Set(static_cast<double>(epoch));
    // Refresh the per-segment quarantine flags against the new snapshot: a
    // null local-model slot means the segment answers from its sampling
    // fallback until the next full retrain.
    if (published.estimator != nullptr) {
      auto& health = obs::SegmentHealthRegistry::Default();
      for (size_t s = 0; s < published.estimator->num_local_models(); ++s) {
        health.SetQuarantined(s,
                              published.estimator->local_model(s) == nullptr);
      }
    }
  }
  return epoch;
}

uint64_t ModelRegistry::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_.epoch;
}

uint64_t ModelRegistry::AddListener(
    std::function<void(const ModelSnapshot&)> listener) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(listener));
  return id;
}

void ModelRegistry::RemoveListener(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == id) {
      listeners_.erase(it);
      return;
    }
  }
}

}  // namespace serve
}  // namespace simcard
