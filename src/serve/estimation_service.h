// Concurrent estimation service: deadlines, load shedding, circuit breaker,
// and request micro-batching.
//
// Wraps the const inference path of a published GlEstimator (see
// serve/model_registry.h) behind a fixed worker pool. Each request carries a
// deadline; the service sheds load with a typed kUnavailable status when its
// bounded queue is full, answers kDeadlineExceeded when a request's deadline
// passes before (or during) evaluation, and routes segments whose local
// model keeps failing to the sampling fallback through a per-segment circuit
// breaker (the SegmentEvalPolicy hook in core/estimator.h).
//
// Micro-batching: when ServeOptions::max_batch > 1 each worker drains up to
// max_batch queued requests per pass — waiting up to batch_linger_us for a
// burst to accumulate — and evaluates them through
// GlEstimator::EstimateSearchBatch (one feature build + one global forward +
// one local forward per segment for the whole batch). Every future is still
// fulfilled individually, deadlines are still checked per request at dequeue
// and after evaluation, and a failure injected into one batch member never
// touches its batch mates. max_batch = 1 (the default) preserves the
// one-request-per-worker behavior exactly.
//
// Observability (all gated on obs::MetricsEnabled()):
//   counters   simcard.serve.requests, .accepted, .shed, .deadline_exceeded,
//              .completed, .no_model, .breaker_open, .breaker_short_circuited,
//              .actual_reports, .actual_unmatched,
//              simcard.batch.evals, .coalesced, .isolated_errors
//   gauge      simcard.serve.queue_depth (plus .model_epoch / .publishes
//              from the registry)
//   histograms simcard.serve.latency.queue_us, .eval_us, .total_us,
//              simcard.serve.batch_size
//
// Request tracing (gated on obs::TracingEnabled(), see obs/request_trace.h):
// every submitted request carries a TraceContext; the service publishes a
// "serve.request" root span plus "serve.queue" / "serve.eval" child spans
// and instants for shed, deadline, no-model, and fault outcomes, and the
// estimator parents its per-segment events under the eval span. Shed,
// deadline-exceeded, fallback-served, and breaker-short-circuited requests
// are flag-marked so tail sampling always keeps them.
//
// Online accuracy: completed requests are remembered in a fixed ring;
// ReportActual(request_id, true_card) matches a ticket to its estimate and
// feeds sliding Q-error windows (overall / per tau bucket / per evaluated
// segment) exposed via accuracy() for telemetry export and drift gating.
//
// Fault sites (common/fault.h):
//   serve.queue_full  forces admission control to shed the request
//   serve.slow_eval   stalls evaluation past the request's deadline
//   serve.batch_eval  poisons one batch member with an injected error
//                     (its batch mates must still succeed)
#ifndef SIMCARD_SERVE_ESTIMATION_SERVICE_H_
#define SIMCARD_SERVE_ESTIMATION_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/gl_estimator.h"
#include "obs/qerror_tracker.h"
#include "obs/request_trace.h"
#include "serve/model_registry.h"

namespace simcard {
namespace serve {

/// \brief Serving knobs.
struct ServeOptions {
  size_t num_threads = 2;          ///< worker threads (0 = hardware)
  size_t queue_capacity = 64;      ///< max queued + running requests
  double default_deadline_ms = 50.0;

  /// Micro-batching: max requests one worker drains per pass (1 = no
  /// batching) and how long an under-filled worker waits for stragglers
  /// before evaluating what it has. The linger is bounded by max_batch
  /// arrivals, so it adds at most batch_linger_us to a lone request's
  /// latency while letting bursts share one forward pass.
  size_t max_batch = 1;
  double batch_linger_us = 50.0;

  /// Circuit breaker: consecutive local-model failures before a segment is
  /// routed to its sampling fallback, and how many short-circuited requests
  /// the segment sits out before a half-open probe re-tries the model.
  size_t breaker_failure_threshold = 3;
  size_t breaker_cooldown_requests = 32;
  /// Segments tracked by the breaker; segments at or beyond this index are
  /// never short-circuited (they still fall back on non-finite estimates).
  size_t breaker_max_segments = 256;

  /// Online accuracy accounting: completed requests are remembered in a
  /// fixed ring of `recent_capacity` entries so a later
  /// ReportActual(request_id, true_card) can be matched to its estimate and
  /// fed into the sliding Q-error windows. 0 (or track_accuracy = false)
  /// disables the ledger; ReportActual then answers kFailedPrecondition.
  bool track_accuracy = true;
  size_t recent_capacity = 4096;
  /// Knobs for the Q-error windows (window size, tau bucket edges).
  obs::QErrorTrackerOptions accuracy;
};

/// \brief Outcome of one request.
struct EstimateResponse {
  Status status;
  double estimate = 0.0;
  uint64_t request_id = 0;   ///< ticket for ReportActual (never 0)
  uint64_t model_epoch = 0;  ///< epoch of the snapshot that answered
  double queue_us = 0.0;     ///< submit -> worker pickup
  double eval_us = 0.0;      ///< model evaluation only (shared by the batch)
  double total_us = 0.0;     ///< submit -> response
  size_t batch_size = 1;     ///< requests drained in the same worker pass
  size_t fallback_segments = 0;  ///< segments answered by the fallback
};

/// \brief Per-segment circuit breaker implementing SegmentEvalPolicy.
///
/// closed --(threshold consecutive failures)--> open
/// open   --(cooldown_requests short-circuits)--> half-open (one probe)
/// probe ok -> closed; probe fails -> open again.
///
/// All state is atomic; concurrent requests may race on transitions, which
/// is benign for a heuristic — at worst a segment probes once more or sits
/// out a few extra requests.
class SegmentCircuitBreaker : public SegmentEvalPolicy {
 public:
  SegmentCircuitBreaker(size_t failure_threshold, size_t cooldown_requests,
                        size_t max_segments);

  bool ForceFallback(size_t s) override;
  void OnLocalResult(size_t s, bool ok) override;

  /// True while segment `s` short-circuits to the fallback.
  bool IsOpen(size_t s) const;

  /// Total times any segment's breaker tripped open.
  uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }

  /// Closes every breaker and clears failure counts (e.g. after publishing
  /// a retrained model).
  void Reset();

 private:
  enum : uint32_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
  struct SegState {
    std::atomic<uint32_t> state{kClosed};
    std::atomic<uint32_t> failures{0};
    std::atomic<uint32_t> cooldown{0};
  };

  void TripOpen(SegState* st);

  size_t failure_threshold_;
  size_t cooldown_requests_;
  std::vector<SegState> states_;
  std::atomic<uint64_t> trips_{0};
};

/// \brief Worker-pooled estimation front end over a ModelRegistry.
///
/// Thread-safe: Submit may be called from any thread, including while a
/// writer thread publishes replacement models through the registry. The
/// destructor drains in-flight requests.
class EstimationService {
 public:
  /// `registry` must outlive the service.
  EstimationService(ModelRegistry* registry, const ServeOptions& options);
  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  /// Enqueues one request. `request.query` must be a sized span of the
  /// model's dim() floats (it is copied, so the caller's buffer may be
  /// reused immediately); `request.options.deadline_ms` <= 0 uses the
  /// default deadline; `request.options.policy` is ignored — the service
  /// applies its own circuit breaker. Shed requests resolve immediately
  /// with kUnavailable.
  std::future<EstimateResponse> Submit(const EstimateRequest& request);

  /// Deprecated: build an EstimateRequest and call Submit(request) instead.
  std::future<EstimateResponse> Submit(const float* query, size_t dim,
                                       float tau) {
    return SubmitInternal(std::vector<float>(query, query + dim), tau,
                          options_.default_deadline_ms);
  }

  /// Deprecated: build an EstimateRequest and call Submit(request) instead.
  std::future<EstimateResponse> Submit(std::vector<float> query, float tau,
                                       double deadline_ms) {
    return SubmitInternal(std::move(query), tau, deadline_ms);
  }

  /// Blocks until every accepted request has completed.
  void Drain();

  /// \brief Feeds the true cardinality for an answered request into the
  /// online Q-error windows (overall, per tau bucket, per evaluated
  /// segment).
  ///
  /// `request_id` is the ticket from the request's EstimateResponse. Each
  /// ticket matches at most once; a ticket that was never issued, was
  /// evicted from the recent-request ring (capacity
  /// ServeOptions::recent_capacity), already matched, or belongs to a
  /// request that did not produce an estimate answers kNotFound.
  /// kFailedPrecondition when accuracy tracking is disabled.
  Status ReportActual(uint64_t request_id, double true_card);

  /// The online accuracy windows fed by ReportActual. Valid for the
  /// service's lifetime; hand to TelemetryExporter / UpdateManager.
  const obs::QErrorTracker& accuracy() const { return accuracy_; }

  /// Queued + running requests (admission-control view).
  size_t pending() const { return pending_.load(std::memory_order_relaxed); }

  SegmentCircuitBreaker* breaker() { return &breaker_; }
  const ServeOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::vector<float> query;
    float tau = 0.0f;
    uint64_t request_id = 0;
    Clock::time_point submitted;
    Clock::time_point deadline;
    obs::TraceContext trace;  // inactive unless tracing is enabled
    std::promise<EstimateResponse> promise;
  };

  /// One completed request remembered for ReportActual matching. A slot is
  /// valid only while `id` matches the ticket being reported (the ring
  /// overwrites at id % capacity, so eviction is implicit).
  struct RecentRequest {
    uint64_t id = 0;
    double estimate = 0.0;
    float tau = 0.0f;
    uint16_t num_segments = 0;
    uint32_t segments[EstimateProbe::kMaxSegments] = {};
  };

  void RememberCompleted(const Pending& item, double estimate,
                         const EstimateProbe& probe);

  std::future<EstimateResponse> SubmitInternal(std::vector<float> query,
                                               float tau, double deadline_ms);
  void WorkerLoop();
  void ProcessBatch(std::vector<Pending>* batch);

  ModelRegistry* registry_;
  ServeOptions options_;
  SegmentCircuitBreaker breaker_;
  uint64_t publish_listener_id_ = 0;  // breaker reset on model hot-swap
  std::atomic<size_t> pending_{0};
  std::atomic<uint64_t> next_request_id_{1};

  obs::QErrorTracker accuracy_;
  std::mutex recent_mu_;
  std::vector<RecentRequest> recent_;  // empty when tracking is disabled

  std::mutex mu_;
  std::condition_variable cv_;       // queue has work / stopping
  std::condition_variable idle_cv_;  // queue empty and no batch running
  std::deque<Pending> queue_;
  size_t running_ = 0;  // workers currently evaluating a batch
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace simcard

#endif  // SIMCARD_SERVE_ESTIMATION_SERVICE_H_
