// Epoch-published model registry for the concurrent serving layer.
//
// The registry holds one immutable published estimator at a time. Readers
// take a cheap snapshot (a shared_ptr copy under a short mutex) and keep
// using it for the whole request even if a writer publishes a replacement
// mid-flight; the old model is destroyed when the last in-flight request
// drops its reference. Writers build a new estimator entirely off to the
// side (train, fine-tune, or clone via GlEstimator::SaveToBytes /
// LoadFromBytes) and make it visible with a single Publish call — the
// RCU-style "swap whole snapshots, never mutate in place" discipline that
// keeps inference lock-free of model state.
#ifndef SIMCARD_SERVE_MODEL_REGISTRY_H_
#define SIMCARD_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/gl_estimator.h"

namespace simcard {
namespace serve {

/// \brief What a reader sees: the shared immutable estimator plus the epoch
/// it was published at (0 = nothing published yet, estimator == nullptr).
struct ModelSnapshot {
  std::shared_ptr<const GlEstimator> estimator;
  uint64_t epoch = 0;
};

/// \brief Single-slot epoch-versioned model store.
///
/// Thread-safe: any number of concurrent Current() readers and Publish()
/// writers. The mutex only guards the pointer/epoch pair, so the critical
/// section is a few instructions — model evaluation happens entirely
/// outside it.
class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The currently published model, or {nullptr, 0} before first Publish.
  ModelSnapshot Current() const;

  /// Atomically replaces the published model and bumps the epoch. Passing
  /// nullptr unpublishes (requests then shed with kUnavailable). Returns
  /// the new epoch. Exposed metrics: bumps simcard.serve.publishes and sets
  /// the simcard.serve.model_epoch gauge.
  uint64_t Publish(std::shared_ptr<const GlEstimator> estimator);

  /// Publish at an explicit epoch — crash recovery resuming the durable
  /// epoch sequence on a fresh registry. The epoch never moves backwards:
  /// the published epoch is max(epoch, current + 1), returned. Listeners
  /// and metrics behave exactly as for Publish.
  uint64_t PublishAt(std::shared_ptr<const GlEstimator> estimator,
                     uint64_t epoch);

  /// Epoch of the last Publish (0 before the first).
  uint64_t epoch() const;

  bool has_model() const { return Current().estimator != nullptr; }

  /// Registers a callback invoked after every Publish with the snapshot
  /// just published. Listeners run on the publishing thread, OUTSIDE the
  /// registry lock (Current() from a listener is fine) and must be cheap
  /// and thread-safe — publishes can come from any thread. Returns an id
  /// for RemoveListener.
  uint64_t AddListener(std::function<void(const ModelSnapshot&)> listener);

  /// Unregisters; after return the listener is never invoked again by a
  /// later Publish (a concurrent in-flight Publish may still be calling
  /// it — callers tearing down must stop publishers first).
  void RemoveListener(uint64_t id);

 private:
  mutable std::mutex mu_;
  ModelSnapshot current_;
  uint64_t next_listener_id_ = 1;
  std::vector<std::pair<uint64_t, std::function<void(const ModelSnapshot&)>>>
      listeners_;
};

}  // namespace serve
}  // namespace simcard

#endif  // SIMCARD_SERVE_MODEL_REGISTRY_H_
