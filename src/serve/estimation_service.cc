#include "serve/estimation_service.h"

#include <algorithm>
#include <chrono>
#include <span>
#include <string>
#include <utility>

#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/segment_health.h"
#include "tensor/matrix.h"

namespace simcard {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// Metric objects resolved once (registry pointers are stable); every
// recording site is gated on obs::MetricsEnabled() by the caller.
struct ServeMetrics {
  obs::Counter* requests = obs::GetCounter("simcard.serve.requests");
  obs::Counter* accepted = obs::GetCounter("simcard.serve.accepted");
  obs::Counter* shed = obs::GetCounter("simcard.serve.shed");
  obs::Counter* deadline_exceeded =
      obs::GetCounter("simcard.serve.deadline_exceeded");
  obs::Counter* completed = obs::GetCounter("simcard.serve.completed");
  obs::Counter* no_model = obs::GetCounter("simcard.serve.no_model");
  obs::Counter* batch_evals = obs::GetCounter("simcard.batch.evals");
  obs::Counter* batch_coalesced = obs::GetCounter("simcard.batch.coalesced");
  obs::Counter* batch_isolated_errors =
      obs::GetCounter("simcard.batch.isolated_errors");
  obs::Counter* actual_reports =
      obs::GetCounter("simcard.serve.actual_reports");
  obs::Counter* actual_unmatched =
      obs::GetCounter("simcard.serve.actual_unmatched");
  obs::Gauge* queue_depth = obs::GetGauge("simcard.serve.queue_depth");
  obs::Histogram* queue_us =
      obs::GetHistogram("simcard.serve.latency.queue_us");
  obs::Histogram* eval_us = obs::GetHistogram("simcard.serve.latency.eval_us");
  obs::Histogram* total_us =
      obs::GetHistogram("simcard.serve.latency.total_us");
  obs::Histogram* batch_size = obs::GetHistogram(
      "simcard.serve.batch_size", obs::Histogram::LinearBuckets(1.0, 1.0, 64));
};

ServeMetrics& Metrics() {
  static ServeMetrics metrics;
  return metrics;
}

}  // namespace

SegmentCircuitBreaker::SegmentCircuitBreaker(size_t failure_threshold,
                                             size_t cooldown_requests,
                                             size_t max_segments)
    : failure_threshold_(failure_threshold > 0 ? failure_threshold : 1),
      cooldown_requests_(cooldown_requests > 0 ? cooldown_requests : 1),
      states_(max_segments) {}

void SegmentCircuitBreaker::TripOpen(SegState* st) {
  st->failures.store(0, std::memory_order_relaxed);
  st->cooldown.store(static_cast<uint32_t>(cooldown_requests_),
                     std::memory_order_relaxed);
  st->state.store(kOpen, std::memory_order_release);
  trips_.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsEnabled()) {
    obs::GetCounter("simcard.serve.breaker_open")->Increment();
    const size_t s = static_cast<size_t>(st - states_.data());
    obs::SegmentHealthRegistry::Default().RecordBreakerTrip(s);
    obs::SegmentHealthRegistry::Default().SetBreakerState(
        s, obs::BreakerHealth::kOpen);
  }
}

bool SegmentCircuitBreaker::ForceFallback(size_t s) {
  if (s >= states_.size()) return false;
  SegState& st = states_[s];
  const uint32_t cur = st.state.load(std::memory_order_acquire);
  if (cur == kClosed) return false;
  if (cur == kOpen) {
    // Burn one cooldown slot; the request that takes the last slot becomes
    // the half-open probe and evaluates the local model.
    uint32_t c = st.cooldown.load(std::memory_order_relaxed);
    while (c > 0 &&
           !st.cooldown.compare_exchange_weak(c, c - 1,
                                              std::memory_order_acq_rel)) {
    }
    if (c == 1) {
      st.state.store(kHalfOpen, std::memory_order_release);
      if (obs::MetricsEnabled()) {
        obs::SegmentHealthRegistry::Default().SetBreakerState(
            s, obs::BreakerHealth::kHalfOpen);
      }
      return false;  // this request probes
    }
  }
  // kOpen with cooldown remaining, or kHalfOpen with a probe in flight.
  if (obs::MetricsEnabled()) {
    obs::GetCounter("simcard.serve.breaker_short_circuited")->Increment();
  }
  return true;
}

void SegmentCircuitBreaker::OnLocalResult(size_t s, bool ok) {
  if (s >= states_.size()) return;
  SegState& st = states_[s];
  if (ok) {
    // Avoid spamming the health registry on the common path: only a
    // not-closed -> closed transition is worth recording.
    const bool was_open =
        st.state.load(std::memory_order_acquire) != kClosed;
    st.failures.store(0, std::memory_order_relaxed);
    st.state.store(kClosed, std::memory_order_release);
    if (was_open && obs::MetricsEnabled()) {
      obs::SegmentHealthRegistry::Default().SetBreakerState(
          s, obs::BreakerHealth::kClosed);
    }
    return;
  }
  if (st.state.load(std::memory_order_acquire) == kHalfOpen) {
    TripOpen(&st);  // probe failed: back to open for another cooldown
    return;
  }
  const uint32_t failures =
      st.failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (failures >= failure_threshold_) TripOpen(&st);
}

bool SegmentCircuitBreaker::IsOpen(size_t s) const {
  if (s >= states_.size()) return false;
  return states_[s].state.load(std::memory_order_acquire) != kClosed;
}

void SegmentCircuitBreaker::Reset() {
  const bool enabled = obs::MetricsEnabled();
  for (size_t s = 0; s < states_.size(); ++s) {
    SegState& st = states_[s];
    const bool was_open =
        st.state.load(std::memory_order_acquire) != kClosed;
    st.state.store(kClosed, std::memory_order_release);
    st.failures.store(0, std::memory_order_relaxed);
    st.cooldown.store(0, std::memory_order_relaxed);
    if (was_open && enabled) {
      obs::SegmentHealthRegistry::Default().SetBreakerState(
          s, obs::BreakerHealth::kClosed);
    }
  }
}

EstimationService::EstimationService(ModelRegistry* registry,
                                     const ServeOptions& options)
    : registry_(registry),
      options_(options),
      breaker_(options.breaker_failure_threshold,
               options.breaker_cooldown_requests,
               options.breaker_max_segments),
      accuracy_(options.accuracy) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.recent_capacity == 0) options_.track_accuracy = false;
  if (options_.track_accuracy) recent_.resize(options_.recent_capacity);
  size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  // A publish replaces the model the breaker was judging: failure history
  // against the old weights says nothing about the new ones, so start the
  // new epoch with every segment closed instead of serving fallbacks until
  // cooldowns expire.
  publish_listener_id_ = registry_->AddListener(
      [this](const ModelSnapshot&) { breaker_.Reset(); });
}

EstimationService::~EstimationService() {
  registry_->RemoveListener(publish_listener_id_);
  Drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void EstimationService::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && running_ == 0; });
}

std::future<EstimateResponse> EstimationService::Submit(
    const EstimateRequest& request) {
  return SubmitInternal(
      std::vector<float>(request.query.begin(), request.query.end()),
      request.tau, request.options.deadline_ms);
}

std::future<EstimateResponse> EstimationService::SubmitInternal(
    std::vector<float> query, float tau, double deadline_ms) {
  const bool enabled = obs::MetricsEnabled();
  ServeMetrics& m = Metrics();
  if (enabled) m.requests->Increment();

  std::promise<EstimateResponse> promise;
  std::future<EstimateResponse> future = promise.get_future();
  const uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceContext trace;
  trace.Start("serve.request");  // no-op while tracing is disabled

  // Admission control: the pending count covers queued + running requests.
  // Over capacity (or a forced serve.queue_full fault) sheds immediately —
  // a typed refusal now beats a deadline miss later.
  const size_t prev = pending_.fetch_add(1, std::memory_order_acq_rel);
  if (prev >= options_.queue_capacity ||
      fault::ShouldFail("serve.queue_full")) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    if (enabled) m.shed->Increment();
    if (trace.active()) {
      trace.AddFlag(obs::kTraceShed);
      trace.RecordInstant("serve.shed", obs::TraceContext::kRootSpan,
                          "queue_capacity",
                          static_cast<double>(options_.queue_capacity));
    }
    trace.Finish();
    EstimateResponse response;
    response.request_id = request_id;
    response.status =
        Status::Unavailable("serve: queue full, request shed (capacity " +
                            std::to_string(options_.queue_capacity) + ")");
    promise.set_value(std::move(response));
    return future;
  }
  if (enabled) {
    m.accepted->Increment();
    m.queue_depth->Set(static_cast<double>(prev + 1));
  }
  if (trace.active()) {
    trace.RecordInstant("serve.enqueue", obs::TraceContext::kRootSpan,
                        "queue_depth", static_cast<double>(prev + 1));
  }

  if (deadline_ms <= 0.0) deadline_ms = options_.default_deadline_ms;
  Pending item;
  item.query = std::move(query);
  item.tau = tau;
  item.request_id = request_id;
  item.trace = std::move(trace);
  item.submitted = Clock::now();
  item.deadline =
      item.submitted +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(deadline_ms));
  item.promise = std::move(promise);
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(item));
    depth = queue_.size();
  }
  // Notify only on the transitions that matter: empty -> non-empty (liveness
  // — workers never block on cv_ while the queue is non-empty, because the
  // wait predicate is evaluated under mu_) and reaching a full batch (cuts a
  // lingering worker's wait_for short). Enqueues in between stay silent, so
  // a worker lingering for its batch to fill is not woken once per submit.
  if (depth == 1 || depth >= options_.max_batch) cv_.notify_one();
  return future;
}

void EstimationService::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    // Micro-batching: give a burst batch_linger_us to fill the batch before
    // evaluating what we have. A full batch (or shutdown) cuts the wait
    // short, so a lone request pays at most the linger.
    if (options_.max_batch > 1 && options_.batch_linger_us > 0.0 &&
        queue_.size() < options_.max_batch && !stop_) {
      cv_.wait_for(
          lk,
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::micro>(
                  options_.batch_linger_us)),
          [this] { return stop_ || queue_.size() >= options_.max_batch; });
    }
    std::vector<Pending> batch;
    const size_t take = std::min(queue_.size(), options_.max_batch);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (batch.empty()) continue;
    ++running_;
    lk.unlock();
    ProcessBatch(&batch);
    lk.lock();
    --running_;
    if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

void EstimationService::ProcessBatch(std::vector<Pending>* batch_ptr) {
  std::vector<Pending>& batch = *batch_ptr;
  const size_t n = batch.size();
  const bool metrics_on = obs::MetricsEnabled();
  ServeMetrics& m = Metrics();
  if (metrics_on) {
    m.batch_size->Record(static_cast<double>(n));
    if (n > 1) m.batch_coalesced->Add(static_cast<int64_t>(n));
  }

  std::vector<EstimateResponse> responses(n);
  auto finish = [&](size_t i) {
    EstimateResponse& response = responses[i];
    response.batch_size = n;
    response.total_us = MicrosSince(batch[i].submitted);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    if (metrics_on) {
      m.queue_depth->Set(
          static_cast<double>(pending_.load(std::memory_order_relaxed)));
      m.queue_us->Record(response.queue_us);
      m.total_us->Record(response.total_us);
    }
    // Publish the root span (with accumulated outcome flags) before the
    // caller is unblocked, so a DumpTraceJson right after future.get()
    // always sees a complete trace.
    batch[i].trace.Finish();
    batch[i].promise.set_value(std::move(response));
  };

  // Per-request dequeue checks. A request that waited out its deadline in
  // the queue must not consume eval capacity, and a serve.batch_eval fault
  // poisons only its own request — batch mates proceed to evaluation.
  std::vector<size_t> live;
  live.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    responses[i].request_id = batch[i].request_id;
    responses[i].queue_us = MicrosSince(batch[i].submitted);
    obs::TraceContext& trace = batch[i].trace;
    if (trace.active()) {
      // Retro-span over the time the request sat in the queue: the submit
      // timestamp is already on hand, so this costs one clock read.
      const int64_t enq_us = obs::TraceTimeUs(batch[i].submitted);
      trace.RecordSpan("serve.queue", enq_us, obs::TraceNowUs(),
                       trace.NewSpanId(), obs::TraceContext::kRootSpan,
                       "batch_size", static_cast<double>(n));
    }
    if (Clock::now() > batch[i].deadline) {
      if (metrics_on) m.deadline_exceeded->Increment();
      if (trace.active()) {
        trace.AddFlag(obs::kTraceDeadlineExceeded);
        trace.RecordInstant("serve.deadline.queue");
      }
      responses[i].status =
          Status::DeadlineExceeded("serve: deadline passed in queue");
      finish(i);
      continue;
    }
    if (fault::ShouldFail("serve.batch_eval")) {
      if (metrics_on) m.batch_isolated_errors->Increment();
      if (trace.active()) {
        trace.AddFlag(obs::kTraceError);
        trace.RecordInstant("serve.fault.batch_eval");
      }
      responses[i].status = fault::InjectedError("serve.batch_eval");
      finish(i);
      continue;
    }
    live.push_back(i);
  }
  if (live.empty()) return;

  const ModelSnapshot snapshot = registry_->Current();
  if (snapshot.estimator == nullptr) {
    for (size_t i : live) {
      if (metrics_on) m.no_model->Increment();
      obs::TraceContext& trace = batch[i].trace;
      if (trace.active()) {
        trace.AddFlag(obs::kTraceNoModel);
        trace.RecordInstant("serve.no_model");
      }
      responses[i].status = Status::Unavailable("serve: no model published");
      finish(i);
    }
    return;
  }

  const size_t dim = snapshot.estimator->dim();
  std::vector<size_t> eval;
  eval.reserve(live.size());
  for (size_t i : live) {
    if (batch[i].query.size() != dim) {
      obs::TraceContext& trace = batch[i].trace;
      if (trace.active()) {
        trace.AddFlag(obs::kTraceError);
        trace.RecordInstant("serve.bad_request");
      }
      responses[i].status = Status::InvalidArgument(
          "serve: query has " + std::to_string(batch[i].query.size()) +
          " dims, model expects " + std::to_string(dim));
      finish(i);
      continue;
    }
    responses[i].model_epoch = snapshot.epoch;
    eval.push_back(i);
  }
  if (eval.empty()) return;

  // One probe per evaluated request: the estimator fills in per-segment
  // provenance (and parents its per-segment trace events under a
  // pre-allocated "serve.eval" span id — the span itself is recorded
  // retroactively after evaluation, which is legal because span ids are
  // just counters).
  std::vector<EstimateProbe> probes(eval.size());
  std::vector<EstimateProbe*> probe_ptrs(eval.size());
  for (size_t j = 0; j < eval.size(); ++j) {
    obs::TraceContext& trace = batch[eval[j]].trace;
    if (trace.active()) {
      probes[j].trace = &trace;
      probes[j].trace_parent = trace.NewSpanId();
    }
    probe_ptrs[j] = &probes[j];
  }

  const Clock::time_point eval_start = Clock::now();
  std::vector<double> estimates;
  if (eval.size() == 1) {
    // A batch of one takes the single-query path: identical estimates (the
    // batch kernel is parity-tested against it) and no Matrix staging.
    const Pending& p = batch[eval[0]];
    EstimateRequest request;
    request.query = std::span<const float>(p.query.data(), p.query.size());
    request.tau = p.tau;
    request.options.policy = &breaker_;
    request.options.probe = &probes[0];
    estimates.push_back(snapshot.estimator->Estimate(request));
  } else {
    if (metrics_on) m.batch_evals->Increment();
    Matrix queries = Matrix::Uninit(eval.size(), dim);
    std::vector<float> taus(eval.size());
    for (size_t j = 0; j < eval.size(); ++j) {
      queries.SetRow(j, batch[eval[j]].query.data());
      taus[j] = batch[eval[j]].tau;
    }
    estimates = snapshot.estimator->EstimateSearchBatch(
        queries, std::span<const float>(taus.data(), taus.size()), &breaker_,
        std::span<EstimateProbe* const>(probe_ptrs.data(),
                                        probe_ptrs.size()));
  }

  for (size_t j = 0; j < eval.size(); ++j) {
    const size_t i = eval[j];
    obs::TraceContext& trace = batch[i].trace;
    responses[i].estimate = estimates[j];
    responses[i].fallback_segments = probes[j].fallback_segments;
    if (fault::ShouldFail("serve.slow_eval")) {
      // Deterministically stall past this request's deadline so the
      // post-eval check below fires.
      std::this_thread::sleep_until(batch[i].deadline +
                                    std::chrono::milliseconds(2));
    }
    responses[i].eval_us = MicrosSince(eval_start);
    if (metrics_on) m.eval_us->Record(responses[i].eval_us);
    if (trace.active()) {
      const int64_t start_us = obs::TraceTimeUs(eval_start);
      trace.RecordSpan("serve.eval", start_us,
                       start_us + static_cast<int64_t>(responses[i].eval_us),
                       probes[j].trace_parent, obs::TraceContext::kRootSpan,
                       "segments_evaluated",
                       static_cast<double>(probes[j].evaluated));
    }
    if (Clock::now() > batch[i].deadline) {
      if (metrics_on) m.deadline_exceeded->Increment();
      if (trace.active()) {
        trace.AddFlag(obs::kTraceDeadlineExceeded);
        trace.RecordInstant("serve.deadline.eval", probes[j].trace_parent);
      }
      responses[i].status =
          Status::DeadlineExceeded("serve: evaluation exceeded deadline");
      finish(i);
      continue;
    }
    if (metrics_on) m.completed->Increment();
    RememberCompleted(batch[i], estimates[j], probes[j]);
    finish(i);
  }
}

void EstimationService::RememberCompleted(const Pending& item,
                                          double estimate,
                                          const EstimateProbe& probe) {
  if (recent_.empty()) return;
  RecentRequest entry;
  entry.id = item.request_id;
  entry.estimate = estimate;
  entry.tau = item.tau;
  entry.num_segments = probe.stored;
  for (uint16_t k = 0; k < probe.stored; ++k) {
    entry.segments[k] = probe.segments[k];
  }
  std::lock_guard<std::mutex> lk(recent_mu_);
  recent_[item.request_id % recent_.size()] = entry;
}

Status EstimationService::ReportActual(uint64_t request_id,
                                       double true_card) {
  if (!options_.track_accuracy) {
    return Status::FailedPrecondition(
        "serve: accuracy tracking disabled (ServeOptions::track_accuracy)");
  }
  if (request_id == 0) {
    return Status::InvalidArgument("serve: request id 0 is never issued");
  }
  RecentRequest entry;
  {
    std::lock_guard<std::mutex> lk(recent_mu_);
    RecentRequest& slot = recent_[request_id % recent_.size()];
    if (slot.id != request_id) {
      if (obs::MetricsEnabled()) Metrics().actual_unmatched->Increment();
      return Status::NotFound(
          "serve: request " + std::to_string(request_id) +
          " not in the recent-request ring (unknown, evicted, or already "
          "reported)");
    }
    entry = slot;
    slot.id = 0;  // consume: each ticket matches at most once
  }
  accuracy_.Record(entry.estimate, true_card, entry.tau,
                   std::span<const uint32_t>(entry.segments,
                                             entry.num_segments));
  if (obs::MetricsEnabled()) Metrics().actual_reports->Increment();
  return Status::OK();
}

}  // namespace serve
}  // namespace simcard
