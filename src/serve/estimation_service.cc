#include "serve/estimation_service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "obs/metrics.h"

namespace simcard {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// Metric objects resolved once (registry pointers are stable); every
// recording site is gated on obs::MetricsEnabled() by the caller.
struct ServeMetrics {
  obs::Counter* requests = obs::GetCounter("simcard.serve.requests");
  obs::Counter* accepted = obs::GetCounter("simcard.serve.accepted");
  obs::Counter* shed = obs::GetCounter("simcard.serve.shed");
  obs::Counter* deadline_exceeded =
      obs::GetCounter("simcard.serve.deadline_exceeded");
  obs::Counter* completed = obs::GetCounter("simcard.serve.completed");
  obs::Counter* no_model = obs::GetCounter("simcard.serve.no_model");
  obs::Gauge* queue_depth = obs::GetGauge("simcard.serve.queue_depth");
  obs::Histogram* queue_us =
      obs::GetHistogram("simcard.serve.latency.queue_us");
  obs::Histogram* eval_us = obs::GetHistogram("simcard.serve.latency.eval_us");
  obs::Histogram* total_us =
      obs::GetHistogram("simcard.serve.latency.total_us");
};

ServeMetrics& Metrics() {
  static ServeMetrics metrics;
  return metrics;
}

}  // namespace

SegmentCircuitBreaker::SegmentCircuitBreaker(size_t failure_threshold,
                                             size_t cooldown_requests,
                                             size_t max_segments)
    : failure_threshold_(failure_threshold > 0 ? failure_threshold : 1),
      cooldown_requests_(cooldown_requests > 0 ? cooldown_requests : 1),
      states_(max_segments) {}

void SegmentCircuitBreaker::TripOpen(SegState* st) {
  st->failures.store(0, std::memory_order_relaxed);
  st->cooldown.store(static_cast<uint32_t>(cooldown_requests_),
                     std::memory_order_relaxed);
  st->state.store(kOpen, std::memory_order_release);
  trips_.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsEnabled()) {
    obs::GetCounter("simcard.serve.breaker_open")->Increment();
  }
}

bool SegmentCircuitBreaker::ForceFallback(size_t s) {
  if (s >= states_.size()) return false;
  SegState& st = states_[s];
  const uint32_t cur = st.state.load(std::memory_order_acquire);
  if (cur == kClosed) return false;
  if (cur == kOpen) {
    // Burn one cooldown slot; the request that takes the last slot becomes
    // the half-open probe and evaluates the local model.
    uint32_t c = st.cooldown.load(std::memory_order_relaxed);
    while (c > 0 &&
           !st.cooldown.compare_exchange_weak(c, c - 1,
                                              std::memory_order_acq_rel)) {
    }
    if (c == 1) {
      st.state.store(kHalfOpen, std::memory_order_release);
      return false;  // this request probes
    }
  }
  // kOpen with cooldown remaining, or kHalfOpen with a probe in flight.
  if (obs::MetricsEnabled()) {
    obs::GetCounter("simcard.serve.breaker_short_circuited")->Increment();
  }
  return true;
}

void SegmentCircuitBreaker::OnLocalResult(size_t s, bool ok) {
  if (s >= states_.size()) return;
  SegState& st = states_[s];
  if (ok) {
    st.failures.store(0, std::memory_order_relaxed);
    st.state.store(kClosed, std::memory_order_release);
    return;
  }
  if (st.state.load(std::memory_order_acquire) == kHalfOpen) {
    TripOpen(&st);  // probe failed: back to open for another cooldown
    return;
  }
  const uint32_t failures =
      st.failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (failures >= failure_threshold_) TripOpen(&st);
}

bool SegmentCircuitBreaker::IsOpen(size_t s) const {
  if (s >= states_.size()) return false;
  return states_[s].state.load(std::memory_order_acquire) != kClosed;
}

void SegmentCircuitBreaker::Reset() {
  for (auto& st : states_) {
    st.state.store(kClosed, std::memory_order_release);
    st.failures.store(0, std::memory_order_relaxed);
    st.cooldown.store(0, std::memory_order_relaxed);
  }
}

EstimationService::EstimationService(ModelRegistry* registry,
                                     const ServeOptions& options)
    : registry_(registry),
      options_(options),
      breaker_(options.breaker_failure_threshold,
               options.breaker_cooldown_requests,
               options.breaker_max_segments),
      pool_(options.num_threads) {}

EstimationService::~EstimationService() { Drain(); }

void EstimationService::Drain() { pool_.Wait(); }

std::future<EstimateResponse> EstimationService::Submit(const float* query,
                                                        size_t dim,
                                                        float tau) {
  return Submit(std::vector<float>(query, query + dim), tau,
                options_.default_deadline_ms);
}

std::future<EstimateResponse> EstimationService::Submit(
    std::vector<float> query, float tau, double deadline_ms) {
  const bool enabled = obs::MetricsEnabled();
  ServeMetrics& m = Metrics();
  if (enabled) m.requests->Increment();

  // std::function requires a copyable callable, so the move-only promise
  // rides in a shared_ptr.
  auto promise = std::make_shared<std::promise<EstimateResponse>>();
  std::future<EstimateResponse> future = promise->get_future();

  // Admission control: the pending count covers queued + running requests.
  // Over capacity (or a forced serve.queue_full fault) sheds immediately —
  // a typed refusal now beats a deadline miss later.
  const size_t prev = pending_.fetch_add(1, std::memory_order_acq_rel);
  if (prev >= options_.queue_capacity ||
      fault::ShouldFail("serve.queue_full")) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    if (enabled) m.shed->Increment();
    EstimateResponse response;
    response.status =
        Status::Unavailable("serve: queue full, request shed (capacity " +
                            std::to_string(options_.queue_capacity) + ")");
    promise->set_value(std::move(response));
    return future;
  }
  if (enabled) {
    m.accepted->Increment();
    m.queue_depth->Set(static_cast<double>(prev + 1));
  }

  if (deadline_ms <= 0.0) deadline_ms = options_.default_deadline_ms;
  const Clock::time_point submitted = Clock::now();
  const Clock::time_point deadline =
      submitted + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(deadline_ms));

  pool_.Submit([this, promise, q = std::move(query), tau, submitted,
                deadline]() mutable {
    const bool metrics_on = obs::MetricsEnabled();
    ServeMetrics& sm = Metrics();
    EstimateResponse response;
    response.queue_us = MicrosSince(submitted);

    auto finish = [&]() {
      response.total_us = MicrosSince(submitted);
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      if (metrics_on) {
        sm.queue_depth->Set(
            static_cast<double>(pending_.load(std::memory_order_relaxed)));
        sm.queue_us->Record(response.queue_us);
        sm.total_us->Record(response.total_us);
      }
      promise->set_value(std::move(response));
    };

    // Deadline check at dequeue: a request that waited out its budget in
    // the queue must not consume eval capacity too.
    if (Clock::now() > deadline) {
      if (metrics_on) sm.deadline_exceeded->Increment();
      response.status =
          Status::DeadlineExceeded("serve: deadline passed in queue");
      finish();
      return;
    }

    const ModelSnapshot snapshot = registry_->Current();
    if (snapshot.estimator == nullptr) {
      if (metrics_on) sm.no_model->Increment();
      response.status = Status::Unavailable("serve: no model published");
      finish();
      return;
    }
    response.model_epoch = snapshot.epoch;

    const Clock::time_point eval_start = Clock::now();
    response.estimate =
        snapshot.estimator->EstimateSearch(q.data(), tau, &breaker_);
    if (fault::ShouldFail("serve.slow_eval")) {
      // Deterministically stall past this request's deadline so the
      // post-eval check below fires.
      std::this_thread::sleep_until(deadline + std::chrono::milliseconds(2));
    }
    response.eval_us = MicrosSince(eval_start);
    if (metrics_on) sm.eval_us->Record(response.eval_us);

    if (Clock::now() > deadline) {
      if (metrics_on) sm.deadline_exceeded->Increment();
      response.status =
          Status::DeadlineExceeded("serve: evaluation exceeded deadline");
      finish();
      return;
    }
    if (metrics_on) sm.completed->Increment();
    finish();
  });
  return future;
}

}  // namespace serve
}  // namespace simcard
