// Table 4 (Exp-1..5): Q-error of every similarity-search method on every
// dataset analog. Prints one paper-shaped summary table per dataset, methods
// ordered as in the paper.
#include "bench_common.h"

namespace simcard {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, AnalogNames(), {"methods"});
  PrintBanner("Table 4: test Q-errors for similarity search", args);

  const std::vector<std::string> methods = args.cl.GetStringList(
      "methods",
      {"GL+", "Local+", "Sampling (10%)", "GL-CNN", "GL-MLP", "QES",
       "CardNet", "MLP", "Kernel-based", "Sampling (equal)",
       "Sampling (1%)"});

  for (const auto& dataset : args.datasets) {
    ExperimentEnv env = MustBuildEnv(dataset, args);
    std::cout << "--- " << dataset << " (paper: " << env.spec.paper_name
              << ", d=" << env.dataset.dim() << ", n=" << env.dataset.size()
              << ", metric=" << MetricName(env.dataset.metric()) << ") ---\n";
    TableReporter table(SummaryColumns("Method"));

    // "Sampling (equal)" is sized to GL+'s model; train GL+ first and keep
    // its size.
    size_t gl_plus_bytes = 0;
    for (const auto& method : methods) {
      std::unique_ptr<Estimator> est;
      if (method == "Sampling (equal)") {
        if (gl_plus_bytes == 0) {
          // GL+ not in the method list; size against GL-CNN instead.
          auto sizing = MustTrain("GL-CNN", env, args);
          gl_plus_bytes = sizing->ModelSizeBytes();
        }
        est = MustTrain(method, env, args, gl_plus_bytes);
      } else {
        est = MustTrain(method, env, args);
        if (method == "GL+") gl_plus_bytes = est->ModelSizeBytes();
      }
      EvalResult result = EvaluateSearch(est.get(), env.workload);
      table.AddSummaryRow(method, result.qerror);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape (paper Table 4): GL+ <= Local+ < GL-CNN < "
               "GL-MLP < QES < {CardNet, MLP}; learned methods beat "
               "Kernel-based and small samples; GL+ ~ Sampling (10%).\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  return simcard::bench::Run(argc, argv);
}
