// Table 5: model sizes (MB) of every method, including the retained-sample
// "models" of the sampling baselines.
#include "core/model_size.h"

#include "bench_common.h"

namespace simcard {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, AnalogNames());
  PrintBanner("Table 5: model size comparison (MB)", args);

  const std::vector<std::string> methods = {
      "Sampling (1%)", "MLP", "QES", "CardNet", "GL-MLP", "GL-CNN", "GL+",
      "GLJoin+"};
  TableReporter table([&] {
    std::vector<std::string> cols = {"Model"};
    cols.insert(cols.end(), args.datasets.begin(), args.datasets.end());
    return cols;
  }());

  std::vector<std::vector<std::string>> rows(methods.size());
  for (size_t m = 0; m < methods.size(); ++m) rows[m] = {methods[m]};

  for (const auto& dataset : args.datasets) {
    ExperimentEnv env = MustBuildEnv(dataset, args);
    // Model size is an architecture property; train with the cheapest
    // budget (tiny) to materialize the towers quickly.
    BenchArgs budget = args;
    budget.scale = Scale::kTiny;
    for (size_t m = 0; m < methods.size(); ++m) {
      auto est = MustTrain(methods[m], env, budget);
      rows[m].push_back(
          FormatPaperNumber(BytesToMb(est->ModelSizeBytes())));
    }
  }
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Table 5): QES tiny; MLP/CardNet "
               "small; GL models largest among learned methods (GL-MLP > "
               "GL-CNN ~ GL+ ~ GLJoin+) but still far below a 10% sample.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  return simcard::bench::Run(argc, argv);
}
