// Shared plumbing for the bench binaries: flag parsing, environment caching,
// and method-table helpers. Every bench accepts
//   --scale=tiny|small|full   (default small)
//   --datasets=a,b,c          (default per bench)
//   --segments=N              (default 16)
//   --seed=N                  (default 2026)
//   --json=PATH               enable metrics and write a JSON run report
//                             (the "simcard.metrics.v1" schema; validate
//                             with scripts/check_metrics_json.py)
//   --trace-out=PATH          enable request tracing and write the
//                             tail-sampled "simcard.traces.v1" report
//   --telemetry-out=STEM      write a "simcard.telemetry.v1" snapshot
//                             (STEM-latest.json + STEM.prom) at exit
// Every --json report shares one schema version and one meta header block
// (timestamp_utc from the registry, plus host / compiler / build written
// here) so reports from different benches and machines diff cleanly.
#ifndef SIMCARD_BENCH_BENCH_COMMON_H_
#define SIMCARD_BENCH_BENCH_COMMON_H_

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "eval/harness.h"
#include "eval/reporter.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/telemetry.h"

namespace simcard {
namespace bench {

struct BenchArgs {
  Scale scale = Scale::kSmall;
  std::vector<std::string> datasets;
  size_t segments = 16;
  uint64_t seed = 2026;
  std::string json_out;       ///< empty = no report
  std::string trace_out;      ///< empty = no trace report
  std::string telemetry_out;  ///< empty = no telemetry snapshot
  CommandLine cl;
};

namespace internal {

// The reports are written from an atexit hook so every bench gets them
// without touching its main(); google-benchmark exits through normal
// return paths.
inline std::string& JsonOutPath() {
  static std::string path;
  return path;
}

inline std::string& TraceOutPath() {
  static std::string path;
  return path;
}

inline std::string& TelemetryOutStem() {
  static std::string stem;
  return stem;
}

inline void WriteReportAtExit() {
  const std::string& path = JsonOutPath();
  if (!path.empty()) {
    Status st = obs::DumpMetricsJson(path);
    if (!st.ok()) {
      std::fprintf(stderr, "writing metrics report: %s\n",
                   st.ToString().c_str());
    } else {
      std::fprintf(stderr, "metrics report -> %s\n", path.c_str());
    }
  }
  const std::string& trace_path = TraceOutPath();
  if (!trace_path.empty()) {
    Status st = obs::DumpTraceJson(trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "writing trace report: %s\n",
                   st.ToString().c_str());
    } else {
      std::fprintf(stderr, "trace report -> %s\n", trace_path.c_str());
    }
  }
  const std::string& stem = TelemetryOutStem();
  if (!stem.empty()) {
    obs::TelemetryOptions topts;
    const size_t slash = stem.find_last_of('/');
    topts.dir = slash == std::string::npos ? "." : stem.substr(0, slash);
    topts.basename =
        slash == std::string::npos ? stem : stem.substr(slash + 1);
    obs::TelemetryExporter exporter(topts);
    Status st = exporter.DumpNow();
    if (!st.ok()) {
      std::fprintf(stderr, "writing telemetry snapshot: %s\n",
                   st.ToString().c_str());
    } else {
      std::fprintf(stderr, "telemetry snapshot -> %s/%s-latest.json\n",
                   topts.dir.c_str(), topts.basename.c_str());
    }
  }
}

// The shared meta header every --json bench stamps: one hostname lookup,
// compiler + build mode baked in at compile time. timestamp_utc is added
// by MetricsRegistry::ToJson itself.
inline void SetCommonReportMeta(obs::MetricsRegistry& registry) {
  char host[256] = {0};
  if (gethostname(host, sizeof(host) - 1) != 0) {
    std::snprintf(host, sizeof(host), "unknown");
  }
  registry.SetMetaString("host", host);
  registry.SetMetaString("compiler", __VERSION__);
#ifdef NDEBUG
  registry.SetMetaString("build", "release");
#else
  registry.SetMetaString("build", "debug");
#endif
}

}  // namespace internal

/// Parses the common flags (plus any in `extra_flags`); exits on error.
inline BenchArgs ParseArgs(int argc, char** argv,
                           std::vector<std::string> default_datasets,
                           std::vector<std::string> extra_flags = {}) {
  std::vector<std::string> known = {"scale",     "datasets",
                                    "segments",  "seed",
                                    "json",      "trace-out",
                                    "telemetry-out"};
  known.insert(known.end(), extra_flags.begin(), extra_flags.end());
  auto cl_or = CommandLine::Parse(argc, argv, known);
  if (!cl_or.ok()) {
    std::fprintf(stderr, "%s\n", cl_or.status().ToString().c_str());
    std::exit(2);
  }
  BenchArgs args;
  args.cl = std::move(cl_or.value());
  auto scale_or = ParseScale(args.cl.GetString("scale", "small"));
  if (!scale_or.ok()) {
    std::fprintf(stderr, "%s\n", scale_or.status().ToString().c_str());
    std::exit(2);
  }
  args.scale = scale_or.value();
  args.datasets = args.cl.GetStringList("datasets", default_datasets);
  args.segments = static_cast<size_t>(args.cl.GetInt("segments", 16));
  args.seed = static_cast<uint64_t>(args.cl.GetInt("seed", 2026));
  args.json_out = args.cl.GetString("json", "");
  args.trace_out = args.cl.GetString("trace-out", "");
  args.telemetry_out = args.cl.GetString("telemetry-out", "");
  const bool any_report = !args.json_out.empty() ||
                          !args.trace_out.empty() ||
                          !args.telemetry_out.empty();
  if (!args.json_out.empty() || !args.telemetry_out.empty()) {
    obs::SetMetricsEnabled(true);
  }
  if (!args.trace_out.empty()) obs::SetTracingEnabled(true);
  if (any_report) {
    auto& registry = obs::MetricsRegistry::Default();
    internal::SetCommonReportMeta(registry);
    registry.SetMetaString("binary", argc > 0 ? argv[0] : "bench");
    registry.SetMetaString("scale", ScaleName(args.scale));
    registry.SetMetaNumber("segments", static_cast<double>(args.segments));
    registry.SetMetaNumber("seed", static_cast<double>(args.seed));
    std::string datasets;
    for (const auto& d : args.datasets) {
      if (!datasets.empty()) datasets += ",";
      datasets += d;
    }
    registry.SetMetaString("datasets", datasets);
    internal::JsonOutPath() = args.json_out;
    internal::TraceOutPath() = args.trace_out;
    internal::TelemetryOutStem() = args.telemetry_out;
    std::atexit(internal::WriteReportAtExit);
  }
  return args;
}

/// Builds an environment or exits with a message.
inline ExperimentEnv MustBuildEnv(const std::string& dataset,
                                  const BenchArgs& args) {
  EnvOptions opts;
  opts.num_segments = args.segments;
  opts.seed = args.seed;
  auto env_or = BuildEnvironment(dataset, args.scale, opts);
  if (!env_or.ok()) {
    std::fprintf(stderr, "building %s: %s\n", dataset.c_str(),
                 env_or.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(env_or).value();
}

/// Trains an estimator by name or exits; logs training time to stderr.
inline std::unique_ptr<Estimator> MustTrain(const std::string& name,
                                            const ExperimentEnv& env,
                                            const BenchArgs& args,
                                            size_t equal_target_bytes = 0) {
  auto est_or = MakeEstimatorByName(name, args.scale, equal_target_bytes);
  if (!est_or.ok()) {
    std::fprintf(stderr, "%s\n", est_or.status().ToString().c_str());
    std::exit(1);
  }
  auto est = std::move(est_or).value();
  TrainContext ctx = MakeTrainContext(env);
  Stopwatch watch;
  Status st = est->Train(ctx);
  if (!st.ok()) {
    std::fprintf(stderr, "training %s: %s\n", name.c_str(),
                 st.ToString().c_str());
    std::exit(1);
  }
  SIMCARD_LOG(INFO) << env.spec.name << " / " << name << ": trained in "
                    << watch.ElapsedSeconds() << "s";
  if (obs::MetricsEnabled()) {
    obs::GetGauge("bench.train_seconds." + env.spec.name + "." + name)
        ->Set(watch.ElapsedSeconds());
  }
  return est;
}

/// \brief Runs `count` throwaway queries before measurement so first-query
/// allocation noise (lazy buffer growth, page faults, branch-predictor
/// cold start) does not pollute steady-state latency numbers.
///
/// The very first query is timed into the "latency.cold_first_query_us"
/// histogram and the remaining warm-up queries into "latency.warmup_us",
/// so cold vs. warm behavior is reported separately instead of averaged
/// together.
inline void WarmUpEstimator(Estimator* est, const SearchWorkload& workload,
                            size_t count = 8) {
  if (workload.test.empty()) return;
  obs::Histogram* cold = obs::GetHistogram("latency.cold_first_query_us");
  obs::Histogram* warm = obs::GetHistogram("latency.warmup_us");
  const bool record = obs::MetricsEnabled();
  size_t done = 0;
  Stopwatch watch;
  const size_t dim = workload.test_queries.cols();
  for (const auto& lq : workload.test) {
    EstimateRequest request;
    request.query =
        std::span<const float>(workload.test_queries.Row(lq.row), dim);
    for (const auto& t : lq.thresholds) {
      request.tau = t.tau;
      watch.Restart();
      volatile double sink = est->Estimate(request);
      (void)sink;
      if (record) {
        (done == 0 ? cold : warm)->Record(
            static_cast<double>(watch.ElapsedMicros()));
      }
      if (++done >= count) return;
    }
  }
}

/// Prints the standard experiment banner.
inline void PrintBanner(const std::string& title, const BenchArgs& args) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "scale=" << ScaleName(args.scale)
            << " segments=" << args.segments << " seed=" << args.seed
            << "\n";
  std::cout << "(synthetic paper-analog datasets; compare method ordering "
               "and ratios, not absolute values)\n\n";
  if (!args.json_out.empty()) {
    obs::MetricsRegistry::Default().SetMetaString("experiment", title);
  }
}

}  // namespace bench
}  // namespace simcard

#endif  // SIMCARD_BENCH_BENCH_COMMON_H_
