// Shared plumbing for the bench binaries: flag parsing, environment caching,
// and method-table helpers. Every bench accepts
//   --scale=tiny|small|full   (default small)
//   --datasets=a,b,c          (default per bench)
//   --segments=N              (default 16)
//   --seed=N                  (default 2026)
#ifndef SIMCARD_BENCH_BENCH_COMMON_H_
#define SIMCARD_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "eval/harness.h"
#include "eval/reporter.h"

namespace simcard {
namespace bench {

struct BenchArgs {
  Scale scale = Scale::kSmall;
  std::vector<std::string> datasets;
  size_t segments = 16;
  uint64_t seed = 2026;
  CommandLine cl;
};

/// Parses the common flags (plus any in `extra_flags`); exits on error.
inline BenchArgs ParseArgs(int argc, char** argv,
                           std::vector<std::string> default_datasets,
                           std::vector<std::string> extra_flags = {}) {
  std::vector<std::string> known = {"scale", "datasets", "segments", "seed"};
  known.insert(known.end(), extra_flags.begin(), extra_flags.end());
  auto cl_or = CommandLine::Parse(argc, argv, known);
  if (!cl_or.ok()) {
    std::fprintf(stderr, "%s\n", cl_or.status().ToString().c_str());
    std::exit(2);
  }
  BenchArgs args;
  args.cl = std::move(cl_or.value());
  auto scale_or = ParseScale(args.cl.GetString("scale", "small"));
  if (!scale_or.ok()) {
    std::fprintf(stderr, "%s\n", scale_or.status().ToString().c_str());
    std::exit(2);
  }
  args.scale = scale_or.value();
  args.datasets = args.cl.GetStringList("datasets", default_datasets);
  args.segments = static_cast<size_t>(args.cl.GetInt("segments", 16));
  args.seed = static_cast<uint64_t>(args.cl.GetInt("seed", 2026));
  return args;
}

/// Builds an environment or exits with a message.
inline ExperimentEnv MustBuildEnv(const std::string& dataset,
                                  const BenchArgs& args) {
  EnvOptions opts;
  opts.num_segments = args.segments;
  opts.seed = args.seed;
  auto env_or = BuildEnvironment(dataset, args.scale, opts);
  if (!env_or.ok()) {
    std::fprintf(stderr, "building %s: %s\n", dataset.c_str(),
                 env_or.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(env_or).value();
}

/// Trains an estimator by name or exits; logs training time to stderr.
inline std::unique_ptr<Estimator> MustTrain(const std::string& name,
                                            const ExperimentEnv& env,
                                            const BenchArgs& args,
                                            size_t equal_target_bytes = 0) {
  auto est_or = MakeEstimatorByName(name, args.scale, equal_target_bytes);
  if (!est_or.ok()) {
    std::fprintf(stderr, "%s\n", est_or.status().ToString().c_str());
    std::exit(1);
  }
  auto est = std::move(est_or).value();
  TrainContext ctx = MakeTrainContext(env);
  Stopwatch watch;
  Status st = est->Train(ctx);
  if (!st.ok()) {
    std::fprintf(stderr, "training %s: %s\n", name.c_str(),
                 st.ToString().c_str());
    std::exit(1);
  }
  SIMCARD_LOG(INFO) << env.spec.name << " / " << name << ": trained in "
                    << watch.ElapsedSeconds() << "s";
  return est;
}

/// Prints the standard experiment banner.
inline void PrintBanner(const std::string& title, const BenchArgs& args) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "scale=" << ScaleName(args.scale)
            << " segments=" << args.segments << " seed=" << args.seed
            << "\n";
  std::cout << "(synthetic paper-analog datasets; compare method ordering "
               "and ratios, not absolute values)\n\n";
}

}  // namespace bench
}  // namespace simcard

#endif  // SIMCARD_BENCH_BENCH_COMMON_H_
