// Serving-layer throughput: concurrent clients submitting through the
// EstimationService vs. the same model called synchronously from one
// thread. The interesting outputs are items_per_second (QPS) as the client
// count grows and the simcard.serve.latency.* histograms in the --json
// report (queue wait vs. eval time under load).
//
// Extra flags on top of the bench_common set:
//   --serve-threads=N     worker threads in the service (default 4)
//   --clients=a,b,c      client-thread sweep (default 1,2,4,8)
//   --deadline-ms=D      per-request deadline (default 1000)
//   --queue-capacity=N   admission-control bound (default 1024)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/estimation_service.h"
#include "serve/model_registry.h"

namespace simcard {
namespace bench {
namespace {

// Registry + service kept alive for the whole benchmark run; the service's
// worker count is fixed while the client count sweeps.
struct ServeFixture {
  std::shared_ptr<ExperimentEnv> env;
  std::shared_ptr<const GlEstimator> model;
  serve::ModelRegistry registry;
  std::unique_ptr<serve::EstimationService> service;
  double deadline_ms = 1000.0;
};

// Cycles through test queries/thresholds so each iteration is a fresh query.
struct QueryCycle {
  const SearchWorkload* workload;
  size_t index = 0;

  std::pair<const float*, float> Next() {
    const auto& lq = workload->test[index % workload->test.size()];
    const auto& t =
        lq.thresholds[(index / workload->test.size()) % lq.thresholds.size()];
    ++index;
    return {workload->test_queries.Row(lq.row), t.tau};
  }
};

void RegisterServeBenchmarks(const std::string& dataset,
                             const std::vector<int>& client_counts,
                             std::shared_ptr<ServeFixture> fix) {
  // Baseline: the raw const inference path, no queue, one thread.
  ::benchmark::RegisterBenchmark(
      (dataset + "/direct_1thread").c_str(),
      [fix](::benchmark::State& state) {
        QueryCycle cycle{&fix->env->workload};
        const size_t dim = fix->env->workload.test_queries.cols();
        for (auto _ : state) {
          auto [q, tau] = cycle.Next();
          EstimateRequest request;
          request.query = std::span<const float>(q, dim);
          request.tau = tau;
          ::benchmark::DoNotOptimize(fix->model->Estimate(request));
        }
        state.SetItemsProcessed(state.iterations());
      })
      ->Unit(::benchmark::kMicrosecond);

  // Served round trip: every client thread submits one request and blocks
  // on its future; items_per_second is the aggregate QPS across clients.
  for (int clients : client_counts) {
    ::benchmark::RegisterBenchmark(
        (dataset + "/served_rtt").c_str(),
        [fix](::benchmark::State& state) {
          const Matrix& queries = fix->env->workload.test_queries;
          QueryCycle cycle{&fix->env->workload};
          // Offset each client so threads do not submit identical queries.
          cycle.index = static_cast<size_t>(state.thread_index()) * 13;
          size_t shed = 0;
          for (auto _ : state) {
            auto [q, tau] = cycle.Next();
            EstimateRequest request;
            request.query = std::span<const float>(q, queries.cols());
            request.tau = tau;
            request.options.deadline_ms = fix->deadline_ms;
            serve::EstimateResponse response =
                fix->service->Submit(request).get();
            if (!response.status.ok()) ++shed;
            ::benchmark::DoNotOptimize(response.estimate);
          }
          state.SetItemsProcessed(state.iterations());
          state.counters["shed_or_missed"] = static_cast<double>(shed);
        })
        ->Threads(clients)
        ->Unit(::benchmark::kMicrosecond)
        ->UseRealTime();
  }

  // Burst mode: one thread submits a whole batch, then drains. Measures the
  // pipeline's capacity when callers do not wait per request.
  ::benchmark::RegisterBenchmark(
      (dataset + "/served_burst64").c_str(),
      [fix](::benchmark::State& state) {
        const Matrix& queries = fix->env->workload.test_queries;
        QueryCycle cycle{&fix->env->workload};
        constexpr size_t kBurst = 64;
        std::vector<std::future<serve::EstimateResponse>> inflight;
        inflight.reserve(kBurst);
        for (auto _ : state) {
          inflight.clear();
          for (size_t i = 0; i < kBurst; ++i) {
            auto [q, tau] = cycle.Next();
            EstimateRequest request;
            request.query = std::span<const float>(q, queries.cols());
            request.tau = tau;
            request.options.deadline_ms = fix->deadline_ms;
            inflight.push_back(fix->service->Submit(request));
          }
          for (auto& f : inflight) {
            serve::EstimateResponse response = f.get();
            ::benchmark::DoNotOptimize(response.estimate);
          }
        }
        state.SetItemsProcessed(state.iterations() *
                                static_cast<int64_t>(kBurst));
      })
      ->Unit(::benchmark::kMicrosecond)
      ->UseRealTime();

  // Exporter overhead A/B: the same burst pipeline with the background
  // TelemetryExporter running at its production-default cadence (1 s) for
  // the whole measurement. Compare items_per_second against served_burst64
  // — the budget (DESIGN.md §13) is <= 1% QPS lost; use a multi-second
  // --benchmark_min_time so the window spans several snapshots. Snapshots
  // rotate in the working directory.
  ::benchmark::RegisterBenchmark(
      (dataset + "/served_burst64_exporter").c_str(),
      [fix](::benchmark::State& state) {
        obs::TelemetryOptions topts;
        topts.basename = "bench_serve_telemetry";
        topts.max_snapshots = 2;
        obs::TelemetryExporter exporter(topts);
        if (Status st = exporter.Start(); !st.ok()) {
          state.SkipWithError(st.ToString().c_str());
          return;
        }
        const Matrix& queries = fix->env->workload.test_queries;
        QueryCycle cycle{&fix->env->workload};
        constexpr size_t kBurst = 64;
        std::vector<std::future<serve::EstimateResponse>> inflight;
        inflight.reserve(kBurst);
        for (auto _ : state) {
          inflight.clear();
          for (size_t i = 0; i < kBurst; ++i) {
            auto [q, tau] = cycle.Next();
            EstimateRequest request;
            request.query = std::span<const float>(q, queries.cols());
            request.tau = tau;
            request.options.deadline_ms = fix->deadline_ms;
            inflight.push_back(fix->service->Submit(request));
          }
          for (auto& f : inflight) {
            serve::EstimateResponse response = f.get();
            ::benchmark::DoNotOptimize(response.estimate);
          }
        }
        exporter.Stop();
        state.SetItemsProcessed(state.iterations() *
                                static_cast<int64_t>(kBurst));
        state.counters["snapshots"] =
            static_cast<double>(exporter.snapshots_written());
      })
      ->Unit(::benchmark::kMicrosecond)
      ->UseRealTime();
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  using namespace simcard;
  using namespace simcard::bench;
  BenchArgs args =
      ParseArgs(argc, argv, {"glove-sim"},
                {"serve-threads", "clients", "deadline-ms", "queue-capacity"});
  PrintBanner("Serve: concurrent estimation throughput", args);

  serve::ServeOptions options;
  options.num_threads =
      static_cast<size_t>(args.cl.GetInt("serve-threads", 4));
  options.queue_capacity =
      static_cast<size_t>(args.cl.GetInt("queue-capacity", 1024));
  const double deadline_ms = args.cl.GetDouble("deadline-ms", 1000.0);
  options.default_deadline_ms = deadline_ms;

  std::vector<int> client_counts;
  for (const auto& c : args.cl.GetStringList("clients", {"1", "2", "4", "8"})) {
    client_counts.push_back(std::max(1, std::atoi(c.c_str())));
  }

  std::vector<std::shared_ptr<ServeFixture>> fixtures;
  for (const auto& dataset : args.datasets) {
    auto fix = std::make_shared<ServeFixture>();
    fix->env = std::make_shared<ExperimentEnv>(MustBuildEnv(dataset, args));
    fix->deadline_ms = deadline_ms;

    auto est = std::make_shared<GlEstimator>(GlEstimatorConfig::GlCnn());
    TrainContext ctx = MakeTrainContext(*fix->env);
    Stopwatch watch;
    Status st = est->Train(ctx);
    if (!st.ok()) {
      std::fprintf(stderr, "training GL-CNN on %s: %s\n", dataset.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    SIMCARD_LOG(INFO) << dataset << " / GL-CNN: trained in "
                      << watch.ElapsedSeconds() << "s";
    fix->model = std::shared_ptr<const GlEstimator>(std::move(est));
    fix->registry.Publish(fix->model);
    fix->service =
        std::make_unique<serve::EstimationService>(&fix->registry, options);

    RegisterServeBenchmarks(dataset, client_counts, fix);
    fixtures.push_back(std::move(fix));
  }

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
