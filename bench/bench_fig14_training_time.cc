// Figure 14 (Exp-10): offline costs — label-construction time and per-method
// training time.
#include "bench_common.h"

namespace simcard {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, AnalogNames());
  PrintBanner("Figure 14: training time and label-construction time (s)",
              args);

  const std::vector<std::string> methods = {"MLP", "QES", "CardNet", "GL-MLP",
                                            "GL-CNN", "GL+"};
  TableReporter table([&] {
    std::vector<std::string> cols = {"Dataset", "Label time"};
    cols.insert(cols.end(), methods.begin(), methods.end());
    return cols;
  }());

  for (const auto& dataset : args.datasets) {
    ExperimentEnv env = MustBuildEnv(dataset, args);
    std::vector<std::string> row = {
        dataset, FormatPaperNumber(env.workload.label_build_seconds)};
    for (const auto& method : methods) {
      auto est = MustTrain(method, env, args);
      row.push_back(FormatPaperNumber(est->training_seconds()));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Fig 14): label construction is "
               "non-negligible; GL+ trains ~2x longer than CardNet-level "
               "methods (many light local models + tuning); MLP/QES train "
               "fastest.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  return simcard::bench::Run(argc, argv);
}
