// Segmentation ablation (Section 3.3): the paper states it compared LSH,
// DBSCAN and PCA+K-means and chose PCA+K-means for accuracy and efficiency.
// This bench reproduces that comparison: cluster cohesion, segmentation
// time, and the downstream GL-CNN accuracy per method.
#include "cluster/segmentation.h"
#include "core/gl_estimator.h"

#include "bench_common.h"

namespace simcard {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, {"glove-sim", "imagenet-sim"});
  PrintBanner("Ablation: segmentation strategy (PCA+K-means vs LSH vs "
              "DBSCAN)",
              args);

  TableReporter table({"Dataset", "Method", "#segments", "Cohesion",
                       "Seg time (s)", "GL-CNN mean Q-error"});
  for (const auto& dataset : args.datasets) {
    for (SegmentationMethod method :
         {SegmentationMethod::kPcaKMeans, SegmentationMethod::kLsh,
          SegmentationMethod::kDbscan}) {
      EnvOptions opts;
      opts.num_segments = args.segments;
      opts.seed = args.seed;
      opts.segmentation_method = method;
      Stopwatch watch;
      auto env_or = BuildEnvironment(dataset, args.scale, opts);
      if (!env_or.ok()) {
        std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
        return 1;
      }
      ExperimentEnv env = std::move(env_or).value();
      // Isolate segmentation time (environment build includes labeling).
      watch.Restart();
      SegmentationOptions seg_opts;
      seg_opts.target_segments = args.segments;
      seg_opts.method = method;
      seg_opts.seed = args.seed + 1;
      (void)SegmentData(env.dataset, seg_opts);
      const double seg_seconds = watch.ElapsedSeconds();

      const double cohesion =
          SegmentationCohesion(env.dataset, env.segmentation, 500, args.seed);
      auto est = MustTrain("GL-CNN", env, args);
      EvalResult result = EvaluateSearch(est.get(), env.workload);
      table.AddRow({dataset, SegmentationMethodName(method),
                    std::to_string(env.segmentation.num_segments()),
                    FormatPaperNumber(cohesion),
                    FormatPaperNumber(seg_seconds),
                    FormatPaperNumber(result.qerror.mean)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Sec 3.3): PCA+K-means yields the "
               "best cohesion and downstream accuracy at comparable cost, "
               "which is why the paper adopts it.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  return simcard::bench::Run(argc, argv);
}
