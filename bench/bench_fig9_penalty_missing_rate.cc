// Figure 9 (Exp-6): missing rate of the global model with and without the
// (1+eps) cardinality penalty in the BCE loss.
#include "core/gl_estimator.h"

#include "bench_common.h"

namespace simcard {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, AnalogNames());
  PrintBanner("Figure 9: missing rate of global model (penalty ablation)",
              args);

  TableReporter table(
      {"Dataset", "No penalty", "With penalty", "Reduction"});
  for (const auto& dataset : args.datasets) {
    ExperimentEnv env = MustBuildEnv(dataset, args);
    double missing[2] = {0.0, 0.0};
    for (int use_penalty = 0; use_penalty <= 1; ++use_penalty) {
      GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
      config.use_penalty = use_penalty != 0;
      // Match the harness's scale budget.
      auto scaled = MakeEstimatorByName("GL-CNN", args.scale).value();
      config.local_train =
          static_cast<GlEstimator*>(scaled.get())->config().local_train;
      config.global_train =
          static_cast<GlEstimator*>(scaled.get())->config().global_train;
      config.use_penalty = use_penalty != 0;
      GlEstimator est(config);
      TrainContext ctx = MakeTrainContext(env);
      Status st = est.Train(ctx);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      missing[use_penalty] = est.MissingRate(env.workload);
    }
    const double reduction =
        missing[1] > 0 ? missing[0] / missing[1]
                       : (missing[0] > 0 ? 99.0 : 1.0);
    table.AddRow({dataset, FormatPaperNumber(missing[0]),
                  FormatPaperNumber(missing[1]),
                  FormatPaperNumber(reduction) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Fig 9): the penalty reduces the "
               "missing rate by large factors on every dataset.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  return simcard::bench::Run(argc, argv);
}
