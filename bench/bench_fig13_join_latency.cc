// Figure 13 (Exp-13): latency of estimating one join set with 200 queries —
// batch (sum-pooled) GLJoin+ vs per-query GL+ vs sampling.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "core/join_estimator.h"
#include "workload/join_sets.h"

namespace simcard {
namespace bench {
namespace {

struct JoinBenchEnv {
  std::shared_ptr<ExperimentEnv> env;
  JoinSet big_set;  // ~200 members from the test queries
};

JoinBenchEnv MakeJoinBenchEnv(const std::string& dataset,
                              const BenchArgs& args) {
  JoinBenchEnv out;
  out.env = std::make_shared<ExperimentEnv>(MustBuildEnv(dataset, args));
  Rng rng(args.seed + 11);
  const size_t n_test = out.env->workload.test.size();
  out.big_set.from_test_queries = true;
  out.big_set.query_rows.resize(200);
  for (auto& row : out.big_set.query_rows) {
    row = static_cast<uint32_t>(rng.NextBounded(n_test));
  }
  out.big_set.tau = out.env->workload.test[0].thresholds[5].tau;
  return out;
}

void RegisterJoinBenchmarks(const std::string& dataset,
                            const BenchArgs& args) {
  JoinBenchEnv jbe = MakeJoinBenchEnv(dataset, args);
  for (const char* method :
       {"GLJoin+", "GLJoin", "CNNJoin", "GL+", "Sampling (10%)"}) {
    std::shared_ptr<Estimator> est = MustTrain(method, *jbe.env, args);
    ::benchmark::RegisterBenchmark(
        (dataset + "/" + method).c_str(),
        [est, jbe](::benchmark::State& state) {
          for (auto _ : state) {
            ::benchmark::DoNotOptimize(est->EstimateJoin(
                jbe.env->workload.test_queries, jbe.big_set.query_rows,
                jbe.big_set.tau));
          }
        })
        ->Unit(::benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  using namespace simcard;
  using namespace simcard::bench;
  BenchArgs args = ParseArgs(argc, argv, {"glove-sim", "dblp-sim"});
  PrintBanner("Figure 13: avg latency for one 200-query similarity join",
              args);
  for (const auto& dataset : args.datasets) {
    RegisterJoinBenchmarks(dataset, args);
  }
  std::cout << "Expected shape (paper Fig 13): batch GLJoin+/GLJoin beat "
               "per-query GL+; Sampling (10%) is slowest (|sample| x |Q| "
               "distance computations).\n\n";
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
