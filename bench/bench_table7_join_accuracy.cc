// Table 7 (Exp-12): Q-errors of similarity-join estimation for query-set
// sizes in [50, 100). Join models are transfer-trained from the search
// models and fine-tuned on pooled join sets.
#include "core/join_estimator.h"
#include "workload/join_sets.h"

#include "bench_common.h"

namespace simcard {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(
      argc, argv, {"bms-sim", "glove-sim", "imagenet-sim", "dblp-sim"},
      {"methods"});
  PrintBanner("Table 7: test Q-errors for similarity join, |Q| in [50,100)",
              args);

  const std::vector<std::string> methods = args.cl.GetStringList(
      "methods", {"GLJoin+", "GL+", "Sampling (10%)", "GLJoin", "CNNJoin",
                  "CardNet", "Sampling (1%)"});

  for (const auto& dataset : args.datasets) {
    ExperimentEnv env = MustBuildEnv(dataset, args);
    JoinWorkloadOptions join_opts;
    join_opts.seed = args.seed + 5;
    auto joins_or = BuildJoinWorkload(
        env.workload, env.segmentation.num_segments(), join_opts);
    if (!joins_or.ok()) {
      std::fprintf(stderr, "%s\n", joins_or.status().ToString().c_str());
      return 1;
    }
    const JoinWorkload joins = std::move(joins_or).value();

    std::cout << "--- " << dataset << " ---\n";
    TableReporter table(SummaryColumns("Method"));
    for (const auto& method : methods) {
      auto est = MustTrain(method, env, args);
      TrainContext ctx = MakeTrainContext(env);
      // Join-specific phase 2 (the paper's "2-3 iterations" transfer).
      if (auto* cnn_join = dynamic_cast<CnnJoinEstimator*>(est.get())) {
        Status st = cnn_join->FineTuneOnJoins(ctx, joins);
        if (!st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          return 1;
        }
      } else if (auto* gl_join = dynamic_cast<GlJoinEstimator*>(est.get())) {
        Status st = gl_join->FineTuneOnJoins(ctx, joins);
        if (!st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          return 1;
        }
      }
      EvalResult result =
          EvaluateJoin(est.get(), env.workload, joins.test_buckets[0]);
      table.AddSummaryRow(method, result.qerror);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape (paper Table 7): segmented join models "
               "(GLJoin/GLJoin+) beat CNNJoin; learned methods beat "
               "Sampling (1%) by 1-2 orders of magnitude in the tail; "
               "Sampling (10%) is strong on joins (set aggregation averages "
               "its noise — the paper shows the same). At this reduced "
               "join-training scale per-query GL+ can edge out batch "
               "GLJoin+ on accuracy; Fig 13 shows GLJoin+'s latency win.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  return simcard::bench::Run(argc, argv);
}
