// Durability tax of the write-ahead delta journal: served QPS and delta
// ingestion throughput with (a) the journal off (in-memory staging only),
// (b) group-commit fsync (the default: write(2) per ack, fsync every
// `group_commit` records), and (c) fsync-per-record (group_commit=1).
// Expected shape: group commit keeps the served-QPS cost under ~5% of the
// journal-off baseline — the serve path never touches the journal, so the
// only coupling is the buffer mutex held across the append — while
// fsync-per-record pays the full device-sync latency on every ack.
#include <atomic>
#include <filesystem>
#include <thread>

#include "core/gl_estimator.h"
#include "serve/estimation_service.h"
#include "serve/model_registry.h"
#include "update/update_manager.h"

#include "bench_common.h"

namespace simcard {
namespace bench {
namespace {

struct ModeResult {
  std::string name;
  double ingest_per_sec = 0.0;
  double serve_qps = 0.0;
};

// One journal mode end to end: builds a fresh manager over `env`, acks
// `num_deltas` deltas solo (ingestion throughput), then serves
// `num_requests` across `clients` threads while a background writer keeps
// acking deltas (served QPS under concurrent durable ingestion).
ModeResult RunMode(const std::string& name, ExperimentEnv env,
                   const GlEstimator& trained, const update::UpdateOptions& opts,
                   const Matrix& pool, size_t num_deltas, size_t num_requests,
                   size_t clients, size_t serve_threads, float tau) {
  ModeResult result;
  result.name = name;
  const size_t base_rows = env.dataset.size();
  const size_t dim = env.dataset.dim();
  const Matrix probe = env.workload.test_queries;

  serve::ModelRegistry registry;
  update::UpdateManager manager(std::move(env.dataset),
                                std::move(env.workload), &registry, opts);
  Status st = manager.Start(trained);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    std::exit(1);
  }

  // Phase 1: solo ingestion. Alternate insert/erase (the two journal
  // payload shapes); the erase cursor is monotone so every ack succeeds.
  size_t insert_cursor = 0;
  uint32_t erase_cursor = 0;
  auto ack_one = [&](size_t k) {
    if (k % 2 == 0 || erase_cursor + 1 >= base_rows) {
      const float* row = pool.Row(insert_cursor % pool.rows());
      ++insert_cursor;
      return manager.Insert(std::span<const float>(row, dim));
    }
    return manager.Erase(erase_cursor++);
  };
  Stopwatch ingest_watch;
  for (size_t k = 0; k < num_deltas; ++k) {
    st = ack_one(k);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      std::exit(1);
    }
  }
  result.ingest_per_sec =
      static_cast<double>(num_deltas) / ingest_watch.ElapsedSeconds();

  // Phase 2: served QPS while the writer acks at a fixed, mode-independent
  // rate in the background. The pacing matters: an unthrottled writer
  // measures CPU contention between the spinning ingestion loop and the
  // serve pool (worst with the cheapest journal mode), not the journal's
  // cost on the serve path — which is only the buffer mutex held across
  // the append/fsync.
  serve::ServeOptions sopts;
  sopts.num_threads = serve_threads;
  sopts.max_batch = 4;
  serve::EstimationService service(&registry, sopts);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (size_t k = 0; !stop.load(std::memory_order_relaxed); ++k) {
      (void)ack_one(k);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  const size_t per_client = num_requests / clients;
  Stopwatch serve_watch;
  std::vector<std::thread> workers;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (size_t i = 0; i < per_client; ++i) {
        const size_t q = (c * per_client + i) % probe.rows();
        EstimateRequest request;
        request.query = std::span<const float>(probe.Row(q), dim);
        request.tau = tau;
        (void)service.Submit(request).get();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  result.serve_qps = static_cast<double>(per_client * clients) /
                     serve_watch.ElapsedSeconds();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  service.Drain();
  return result;
}

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, {"glove-sim"},
                             {"deltas", "requests", "clients",
                              "serve-threads", "group-commit", "tau"});
  PrintBanner("Journal overhead: served QPS + ingestion vs durability mode",
              args);
  const size_t num_deltas =
      static_cast<size_t>(args.cl.GetInt("deltas", 400));
  const size_t num_requests =
      static_cast<size_t>(args.cl.GetInt("requests", 400));
  const size_t clients = static_cast<size_t>(args.cl.GetInt("clients", 2));
  const size_t serve_threads =
      static_cast<size_t>(args.cl.GetInt("serve-threads", 2));
  const size_t group_commit =
      static_cast<size_t>(args.cl.GetInt("group-commit", 16));
  const float tau = static_cast<float>(args.cl.GetDouble("tau", 0.1));

  char tmpl[] = "/tmp/simcard_journal_bench_XXXXXX";
  const char* tmp = ::mkdtemp(tmpl);
  if (tmp == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string tmp_dir = tmp;

  for (const auto& dataset_name : args.datasets) {
    // Train once; every mode rebuilds the identical environment (same
    // seed) and Start() clones the estimator, so the modes are isolated.
    ExperimentEnv train_env = MustBuildEnv(dataset_name, args);
    auto base = MakeEstimatorByName("GL-CNN", args.scale).value();
    auto* gl = static_cast<GlEstimator*>(base.get());
    TrainContext ctx = MakeTrainContext(train_env);
    if (Status st = gl->Train(ctx); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    const Matrix pool =
        MakeAnalogUpdates(dataset_name, args.scale, 256, args.seed + 21)
            .value();

    update::UpdateOptions off;
    off.allow_full_reseg = false;
    off.seed = args.seed + 17;
    update::UpdateOptions grouped = off;
    grouped.journal_dir = tmp_dir + "/" + dataset_name + "-grouped";
    grouped.journal.group_commit = group_commit;
    update::UpdateOptions fsync_each = off;
    fsync_each.journal_dir = tmp_dir + "/" + dataset_name + "-fsync";
    fsync_each.journal.group_commit = 1;

    std::vector<ModeResult> results;
    results.push_back(RunMode("journal off", std::move(train_env), *gl, off,
                              pool, num_deltas, num_requests, clients,
                              serve_threads, tau));
    results.push_back(RunMode(
        "group-commit=" + std::to_string(group_commit),
        MustBuildEnv(dataset_name, args), *gl, grouped, pool, num_deltas,
        num_requests, clients, serve_threads, tau));
    results.push_back(RunMode("fsync-per-record",
                              MustBuildEnv(dataset_name, args), *gl,
                              fsync_each, pool, num_deltas, num_requests,
                              clients, serve_threads, tau));

    const double base_qps = results[0].serve_qps;
    const double base_ingest = results[0].ingest_per_sec;
    TableReporter table(
        {"Mode", "Ingest acks/s", "Served QPS", "QPS vs off"});
    for (const ModeResult& r : results) {
      table.AddRow({r.name, FormatPaperNumber(r.ingest_per_sec),
                    FormatPaperNumber(r.serve_qps),
                    FormatPaperNumber(r.serve_qps / base_qps)});
    }
    std::cout << "--- " << dataset_name << " (" << num_deltas
              << " solo acks, then " << num_requests << " requests x "
              << clients << " clients over live ingestion) ---\n";
    table.Print(std::cout);
    const double grouped_cost = 1.0 - results[1].serve_qps / base_qps;
    std::cout << "group-commit served-QPS cost vs journal off: "
              << FormatPaperNumber(grouped_cost * 100.0)
              << "% (want < 5%); ingestion slowdown "
              << FormatPaperNumber(base_ingest / results[1].ingest_per_sec)
              << "x grouped, "
              << FormatPaperNumber(base_ingest / results[2].ingest_per_sec)
              << "x fsync-per-record\n\n";

    if (obs::MetricsEnabled()) {
      const std::string prefix = "bench.journal_overhead." + dataset_name;
      const char* keys[] = {"off", "grouped", "fsync_each"};
      for (size_t i = 0; i < results.size(); ++i) {
        obs::GetGauge(prefix + "." + keys[i] + ".ingest_per_sec")
            ->Set(results[i].ingest_per_sec);
        obs::GetGauge(prefix + "." + keys[i] + ".serve_qps")
            ->Set(results[i].serve_qps);
      }
      obs::GetGauge(prefix + ".grouped_qps_cost")->Set(grouped_cost);
    }
  }
  std::filesystem::remove_all(tmp_dir);
  std::cout << "Expected shape: group commit amortizes the fsync so the "
               "served path keeps (nearly) the journal-off QPS; "
               "fsync-per-record bounds the worst-case durability tax.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  return simcard::bench::Run(argc, argv);
}
