// Exp-11 trade-off for the online-update subsystem: after a delta of
// inserts + deletes, how does the drift-aware incremental refresh compare
// to (a) serving the stale pre-delta model and (b) a full re-segment +
// retrain? Expected shape: refreshed strictly better than stale on the
// relabeled workload, within a small factor of the full retrain, at a
// fraction of its cost.
#include "core/gl_estimator.h"

#include "common/rng.h"
#include "serve/model_registry.h"
#include "update/update_manager.h"

#include "bench_common.h"

namespace simcard {
namespace bench {
namespace {

// Clones `src` into a mutable estimator (EvaluateSearch wants Estimator*).
std::unique_ptr<GlEstimator> CloneEstimator(const GlEstimator& src) {
  auto clone = std::make_unique<GlEstimator>(src.config());
  Status st = clone->LoadFromBytes(src.SaveToBytes());
  if (!st.ok()) {
    std::fprintf(stderr, "cloning estimator: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return clone;
}

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, {"glove-sim"},
                             {"delta_fraction", "refresh_epochs"});
  PrintBanner("Update staleness: stale vs refreshed vs full retrain", args);
  const double delta_fraction = args.cl.GetDouble("delta_fraction", 0.2);
  const size_t refresh_epochs =
      static_cast<size_t>(args.cl.GetInt("refresh_epochs", 3));

  for (const auto& dataset_name : args.datasets) {
    ExperimentEnv env = MustBuildEnv(dataset_name, args);
    const size_t base_rows = env.dataset.size();
    const size_t num_inserts =
        static_cast<size_t>(base_rows * delta_fraction / 2.0);
    const size_t num_erases = num_inserts;

    auto base = MakeEstimatorByName("GL-CNN", args.scale).value();
    auto* gl = static_cast<GlEstimator*>(base.get());
    TrainContext ctx = MakeTrainContext(env);
    Status st = gl->Train(ctx);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }

    // The stale contender: the pre-delta model, frozen now.
    std::unique_ptr<GlEstimator> stale = CloneEstimator(*gl);

    serve::ModelRegistry registry;
    update::UpdateOptions opts;
    opts.fine_tune_epochs = refresh_epochs;
    opts.seed = args.seed;
    // This bench measures the incremental path; the escalation ceiling is
    // covered by tests/update/ and stays out of the way here.
    opts.allow_full_reseg = false;
    update::UpdateManager manager(std::move(env.dataset),
                                  std::move(env.workload), &registry, opts);
    st = manager.Start(*gl);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }

    // Stage the delta: new rows from the dataset's analog generator,
    // erases sampled uniformly without replacement.
    Matrix inserts =
        MakeAnalogUpdates(dataset_name, args.scale, num_inserts,
                          args.seed + 1)
            .value();
    for (size_t i = 0; i < inserts.rows(); ++i) {
      st = manager.Insert(
          std::span<const float>(inserts.Row(i), inserts.cols()));
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    Rng rng(args.seed + 2);
    for (size_t row : rng.SampleWithoutReplacement(base_rows, num_erases)) {
      st = manager.Erase(static_cast<uint32_t>(row));
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }

    Stopwatch refresh_watch;
    auto outcome_or = manager.Refresh();
    if (!outcome_or.ok()) {
      std::fprintf(stderr, "%s\n", outcome_or.status().ToString().c_str());
      return 1;
    }
    const update::RefreshOutcome outcome = outcome_or.value();
    const double refresh_seconds = refresh_watch.ElapsedSeconds();

    // Full-retrain contender: fresh PCA + K-means on the updated dataset,
    // trained from scratch on the relabeled workload.
    SegmentationOptions sopts;
    sopts.target_segments = args.segments;
    sopts.seed = args.seed + 3;
    auto seg_or = SegmentData(manager.dataset(), sopts);
    if (!seg_or.ok()) {
      std::fprintf(stderr, "%s\n", seg_or.status().ToString().c_str());
      return 1;
    }
    auto retrain = MakeEstimatorByName("GL-CNN", args.scale).value();
    auto* retrain_gl = static_cast<GlEstimator*>(retrain.get());
    TrainContext rctx;
    rctx.dataset = &manager.dataset();
    rctx.workload = &manager.workload();
    rctx.segmentation = &seg_or.value();
    rctx.seed = args.seed + 4;
    Stopwatch retrain_watch;
    st = retrain_gl->Train(rctx);
    const double retrain_seconds = retrain_watch.ElapsedSeconds();
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }

    // All three answer the same post-delta workload. The refreshed model is
    // re-cloned mutable because EvaluateSearch takes Estimator*.
    std::unique_ptr<GlEstimator> refreshed =
        CloneEstimator(*registry.Current().estimator);
    const EvalResult stale_eval =
        EvaluateSearch(stale.get(), manager.workload());
    const EvalResult refreshed_eval =
        EvaluateSearch(refreshed.get(), manager.workload());
    const EvalResult retrain_eval =
        EvaluateSearch(retrain_gl, manager.workload());

    TableReporter table({"Model", "Mean Q-error", "Median Q-error",
                         "Build time (s)"});
    table.AddRow({"stale (pre-delta)",
                  FormatPaperNumber(stale_eval.qerror.mean),
                  FormatPaperNumber(stale_eval.qerror.median), "-"});
    table.AddRow({"refreshed (incremental)",
                  FormatPaperNumber(refreshed_eval.qerror.mean),
                  FormatPaperNumber(refreshed_eval.qerror.median),
                  FormatPaperNumber(refresh_seconds)});
    table.AddRow({"full retrain",
                  FormatPaperNumber(retrain_eval.qerror.mean),
                  FormatPaperNumber(retrain_eval.qerror.median),
                  FormatPaperNumber(retrain_seconds)});
    std::cout << "--- " << dataset_name << " (" << outcome.applied_inserts
              << " inserts + " << outcome.applied_erases << " erases = "
              << (delta_fraction * 100.0) << "% delta; "
              << outcome.stale_segments.size()
              << " stale segments fine-tuned, epoch " << outcome.epoch
              << ") ---\n";
    table.Print(std::cout);

    const double vs_stale =
        stale_eval.qerror.mean / refreshed_eval.qerror.mean;
    const double vs_retrain =
        refreshed_eval.qerror.mean / retrain_eval.qerror.mean;
    std::cout << "refreshed improves on stale by "
              << FormatPaperNumber(vs_stale) << "x; refreshed / retrain = "
              << FormatPaperNumber(vs_retrain) << " (want <= 1.2); refresh "
              << FormatPaperNumber(refresh_seconds) << "s vs retrain "
              << FormatPaperNumber(retrain_seconds) << "s\n\n";

    if (obs::MetricsEnabled()) {
      const std::string prefix = "bench.update_staleness." + dataset_name;
      obs::GetGauge(prefix + ".stale_qerror")->Set(stale_eval.qerror.mean);
      obs::GetGauge(prefix + ".refreshed_qerror")
          ->Set(refreshed_eval.qerror.mean);
      obs::GetGauge(prefix + ".retrain_qerror")
          ->Set(retrain_eval.qerror.mean);
      obs::GetGauge(prefix + ".refreshed_vs_stale")->Set(vs_stale);
      obs::GetGauge(prefix + ".refreshed_vs_retrain")->Set(vs_retrain);
      obs::GetGauge(prefix + ".refresh_seconds")->Set(refresh_seconds);
      obs::GetGauge(prefix + ".retrain_seconds")->Set(retrain_seconds);
    }
  }
  std::cout << "Expected shape (Exp-11): the drift-aware refresh recovers "
               "most of the stale model's lost accuracy at a fraction of "
               "the full-retrain cost.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  return simcard::bench::Run(argc, argv);
}
