// Design-choice ablations called out in DESIGN.md:
//   (a) hybrid loss (Section 3.1): pure MAPE vs pure Q-error vs hybrid —
//       MAPE-only underestimates, Q-error-only ignores small errors;
//   (b) Algorithm 3 (Section 5.2): untuned GL-CNN vs per-segment-tuned GL+.
#include "core/gl_estimator.h"

#include "core/qes_estimator.h"
#include "bench_common.h"

namespace simcard {
namespace bench {
namespace {

// Fraction of test samples the estimator underestimates.
double UnderestimateRate(Estimator* est, const SearchWorkload& workload) {
  size_t under = 0;
  size_t total = 0;
  const size_t dim = workload.test_queries.cols();
  for (const auto& lq : workload.test) {
    EstimateRequest request;
    request.query =
        std::span<const float>(workload.test_queries.Row(lq.row), dim);
    for (const auto& t : lq.thresholds) {
      if (t.card <= 0.0f) continue;
      request.tau = t.tau;
      under += est->Estimate(request) < t.card;
      ++total;
    }
  }
  return total > 0 ? static_cast<double>(under) / total : 0.0;
}

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, {"glove-sim"});
  PrintBanner("Ablation: hybrid loss and hyperparameter tuning", args);

  for (const auto& dataset : args.datasets) {
    ExperimentEnv env = MustBuildEnv(dataset, args);

    // (a) Loss ablation on QES: lambda=0 is pure MAPE; a large lambda
    // approximates pure Q-error; the default is the paper's hybrid.
    std::cout << "--- " << dataset << ": loss ablation (QES) ---\n";
    TableReporter loss_table({"Loss", "Mean Q-error", "Median Q-error",
                              "Mean MAPE", "Underestimate rate"});
    struct LossCase {
      const char* name;
      float lambda;
    };
    for (const LossCase& c : {LossCase{"MAPE only (lambda=0)", 0.0f},
                              LossCase{"Hybrid (lambda=0.2)", 0.2f},
                              LossCase{"Q-error heavy (lambda=2)", 2.0f}}) {
      FlatCardEstimatorConfig config = FlatCardEstimatorConfig::Qes();
      config.train.lambda = c.lambda;
      config.train.epochs = args.scale == Scale::kTiny ? 20 : 40;
      FlatCardEstimator est(config);
      TrainContext ctx = MakeTrainContext(env);
      Status st = est.Train(ctx);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      EvalResult result = EvaluateSearch(&est, env.workload);
      loss_table.AddRow({c.name, FormatPaperNumber(result.qerror.mean),
                         FormatPaperNumber(result.qerror.median),
                         FormatPaperNumber(result.mape.mean),
                         FormatPaperNumber(
                             UnderestimateRate(&est, env.workload))});
    }
    loss_table.Print(std::cout);
    std::cout << "Expected: MAPE-only shows the highest underestimate rate "
                 "(Section 2); the hybrid balances both metrics.\n\n";

    // (b) Tuning ablation: GL-CNN (fixed config) vs GL+ (Algorithm 3).
    std::cout << "--- " << dataset << ": tuning ablation ---\n";
    TableReporter tune_table({"Method", "Mean Q-error", "Median Q-error",
                              "95th", "Train time (s)"});
    for (const char* method : {"GL-CNN", "GL+"}) {
      auto est = MustTrain(method, env, args);
      EvalResult result = EvaluateSearch(est.get(), env.workload);
      tune_table.AddRow({method, FormatPaperNumber(result.qerror.mean),
                         FormatPaperNumber(result.qerror.median),
                         FormatPaperNumber(result.qerror.p95),
                         FormatPaperNumber(est->training_seconds())});
    }
    tune_table.Print(std::cout);
    std::cout << "Expected (paper Exp-5): GL+ matches or beats GL-CNN at "
                 "the cost of extra offline tuning time.\n\n";
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  return simcard::bench::Run(argc, argv);
}
