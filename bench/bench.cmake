# One binary per paper table/figure (see DESIGN.md section 4). Included from
# the top-level CMakeLists (not add_subdirectory) so ${CMAKE_BINARY_DIR}/bench
# holds ONLY the bench executables and `for b in build/bench/*` runs cleanly.
function(simcard_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} simcard benchmark::benchmark)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

simcard_bench(bench_table4_search_accuracy)
simcard_bench(bench_fig8_search_mape)
simcard_bench(bench_fig9_penalty_missing_rate)
simcard_bench(bench_fig10_training_size)
simcard_bench(bench_fig11_num_segments)
simcard_bench(bench_table5_model_size)
simcard_bench(bench_table6_search_latency)
simcard_bench(bench_fig14_training_time)
simcard_bench(bench_fig15_incremental)
simcard_bench(bench_table7_join_accuracy)
simcard_bench(bench_fig12_join_setsize)
simcard_bench(bench_fig13_join_latency)
simcard_bench(bench_ablation_segmentation)
simcard_bench(bench_ablation_tuning)
simcard_bench(bench_serve_throughput)
simcard_bench(bench_batch_throughput)
simcard_bench(bench_update_staleness)
simcard_bench(bench_obs_overhead)
