// Figure 15 (Exp-11): incremental training under data updates. Batches of
// new records are inserted; after each batch the model is incrementally
// fine-tuned (Section 5.3) and the test Q-error re-measured.
#include "core/gl_estimator.h"

#include "bench_common.h"

namespace simcard {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args =
      ParseArgs(argc, argv, {"glove-sim"}, {"batches", "batch_size"});
  PrintBanner("Figure 15: incremental training under updates", args);
  const size_t batches = static_cast<size_t>(args.cl.GetInt("batches", 10));
  const size_t batch_size =
      static_cast<size_t>(args.cl.GetInt("batch_size", 50));

  for (const auto& dataset : args.datasets) {
    ExperimentEnv env = MustBuildEnv(dataset, args);
    auto base = MakeEstimatorByName("GL-CNN", args.scale).value();
    auto* gl = static_cast<GlEstimator*>(base.get());
    TrainContext ctx = MakeTrainContext(env);
    Status st = gl->Train(ctx);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    const EvalResult before = EvaluateSearch(gl, env.workload);
    std::cout << "--- " << dataset << " (before updates: mean Q-error "
              << FormatPaperNumber(before.qerror.mean) << ", median "
              << FormatPaperNumber(before.qerror.median) << ") ---\n";

    TableReporter table({"Update batch", "#points", "Mean Q-error",
                         "Median Q-error", "Update time (s)"});
    Matrix all_updates =
        MakeAnalogUpdates(dataset, args.scale, batches * batch_size,
                          args.seed)
            .value();
    for (size_t b = 0; b < batches; ++b) {
      Matrix batch = all_updates.SliceRows(b * batch_size,
                                           (b + 1) * batch_size);
      const uint32_t first_new = static_cast<uint32_t>(env.dataset.size());
      env.dataset.Append(batch);
      std::vector<uint32_t> new_rows(batch_size);
      for (size_t i = 0; i < batch_size; ++i) {
        new_rows[i] = first_new + static_cast<uint32_t>(i);
      }
      Stopwatch watch;
      st = gl->ApplyUpdates(env.dataset, &env.workload, new_rows,
                            args.seed + b, /*fine_tune_epochs=*/3);
      const double update_seconds = watch.ElapsedSeconds();
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      EvalResult result = EvaluateSearch(gl, env.workload);
      table.AddRow({std::to_string(b + 1),
                    std::to_string(env.dataset.size()),
                    FormatPaperNumber(result.qerror.mean),
                    FormatPaperNumber(result.qerror.median),
                    FormatPaperNumber(update_seconds)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape (paper Fig 15): incremental fine-tuning keeps "
               "the Q-error near its pre-update level across update batches, "
               "at a tiny fraction of full-retraining cost.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  return simcard::bench::Run(argc, argv);
}
