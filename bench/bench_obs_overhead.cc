// Observability overhead microbench: the disabled fast path of every obs
// timing primitive (ScopedTimer, TraceSpan, TraceContext) against its
// enabled cost, plus the raw TraceSink publish. The disabled numbers are
// the ones that matter — these primitives sit on the serving hot path, so
// "off" must mean a branch, not a clock read (the clock_reads_per_iter
// counter must print 0.000; tests/obs/trace_fastpath_test.cc pins the same
// invariant as a hard assertion).
//
// Run: build/bench/bench_obs_overhead [--json=PATH]
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"

namespace simcard {
namespace bench {
namespace {

// Attaches clock reads/iteration to the benchmark's counters; 0 on every
// *_disabled benchmark is the invariant this binary exists to watch.
struct ClockReadProbe {
  uint64_t start = obs::internal::ClockReadsThisThread();

  void Report(::benchmark::State& state) {
    const uint64_t reads = obs::internal::ClockReadsThisThread() - start;
    state.counters["clock_reads_per_iter"] =
        ::benchmark::Counter(static_cast<double>(reads),
                             ::benchmark::Counter::kAvgIterations);
  }
};

void BM_ScopedTimerDisabled(::benchmark::State& state) {
  obs::SetMetricsEnabled(false);
  obs::Histogram* hist = obs::GetHistogram("bench.obs.scoped_us");
  ClockReadProbe probe;
  for (auto _ : state) {
    obs::ScopedTimer timer(hist);
    ::benchmark::DoNotOptimize(&timer);
  }
  probe.Report(state);
}
BENCHMARK(BM_ScopedTimerDisabled);

void BM_ScopedTimerEnabled(::benchmark::State& state) {
  obs::SetMetricsEnabled(true);
  obs::Histogram* hist = obs::GetHistogram("bench.obs.scoped_us");
  ClockReadProbe probe;
  for (auto _ : state) {
    obs::ScopedTimer timer(hist);
    ::benchmark::DoNotOptimize(&timer);
  }
  probe.Report(state);
  obs::SetMetricsEnabled(false);
}
BENCHMARK(BM_ScopedTimerEnabled);

void BM_TraceSpanDisabled(::benchmark::State& state) {
  obs::SetMetricsEnabled(false);
  ClockReadProbe probe;
  for (auto _ : state) {
    obs::TraceSpan span("bench.obs.span");
    ::benchmark::DoNotOptimize(&span);
  }
  probe.Report(state);
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(::benchmark::State& state) {
  obs::SetMetricsEnabled(true);
  ClockReadProbe probe;
  for (auto _ : state) {
    obs::TraceSpan span("bench.obs.span");
    ::benchmark::DoNotOptimize(&span);
  }
  probe.Report(state);
  obs::SetMetricsEnabled(false);
}
BENCHMARK(BM_TraceSpanEnabled);

// The per-request shape the service runs when tracing is off: Start, one
// would-be instant, Finish. Must cost a few branches and nothing else.
void BM_TraceContextDisabled(::benchmark::State& state) {
  obs::SetTracingEnabled(false);
  ClockReadProbe probe;
  for (auto _ : state) {
    obs::TraceContext ctx;
    ctx.Start("bench.request");
    ctx.RecordInstant("bench.instant");
    ctx.Finish();
    ::benchmark::DoNotOptimize(&ctx);
  }
  probe.Report(state);
}
BENCHMARK(BM_TraceContextDisabled);

void BM_TraceContextEnabled(::benchmark::State& state) {
  obs::SetTracingEnabled(true);
  ClockReadProbe probe;
  for (auto _ : state) {
    obs::TraceContext ctx;
    ctx.Start("bench.request");
    ctx.RecordInstant("bench.instant");
    ctx.Finish();
    ::benchmark::DoNotOptimize(&ctx);
  }
  probe.Report(state);
  obs::SetTracingEnabled(false);
}
BENCHMARK(BM_TraceContextEnabled);

// Raw sink cost: one seqlock-guarded slot write, no clock involved.
void BM_TraceSinkPublish(::benchmark::State& state) {
  obs::TraceSink sink(/*thread_ordinal=*/0);
  obs::TraceEvent event;
  event.trace_id = 1;
  event.span_id = 2;
  event.parent_id = 1;
  event.name = "bench.publish";
  event.dur_us = -1;
  for (auto _ : state) {
    sink.Publish(event);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSinkPublish);

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  using namespace simcard;
  using namespace simcard::bench;
  // No dataset work here; ParseArgs still gives --json the shared header.
  BenchArgs args = ParseArgs(argc, argv, {});
  PrintBanner("Obs: disabled-path overhead", args);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
