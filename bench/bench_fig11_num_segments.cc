// Figure 11 (Exp-8): mean Q-error of GL+ as the number of data segments
// grows (shared tuning to bound cost; 1 segment degenerates to a single
// local model).
#include "core/gl_estimator.h"

#include "bench_common.h"

namespace simcard {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(
      argc, argv, {"bms-sim", "glove-sim", "youtube-sim"}, {"counts"});
  PrintBanner("Figure 11: mean Q-error of GL+ vs #data segments", args);

  std::vector<size_t> counts;
  for (const auto& s : args.cl.GetStringList("counts", {"1", "4", "16", "48"})) {
    counts.push_back(static_cast<size_t>(std::strtoull(s.c_str(), nullptr, 10)));
  }

  TableReporter table([&] {
    std::vector<std::string> cols = {"Dataset"};
    for (size_t c : counts) cols.push_back(std::to_string(c) + " segs");
    return cols;
  }());

  for (const auto& dataset : args.datasets) {
    std::vector<std::string> row = {dataset};
    for (size_t n_seg : counts) {
      EnvOptions opts;
      opts.num_segments = n_seg;
      opts.seed = args.seed;
      // The benefit of many segments needs enough per-segment training
      // data (the paper trains on 8000 queries); run this sweep at 3x the
      // default query budget.
      auto spec = GetAnalogSpec(dataset, args.scale).value();
      opts.train_queries_override = std::min(spec.train_queries * 3,
                                             spec.num_points / 4);
      auto env_or = BuildEnvironment(dataset, args.scale, opts);
      if (!env_or.ok()) {
        std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
        return 1;
      }
      ExperimentEnv env = std::move(env_or).value();
      auto base = MakeEstimatorByName("GL+", args.scale).value();
      GlEstimatorConfig config =
          static_cast<GlEstimator*>(base.get())->config();
      config.tune_per_segment = false;  // bound the sweep's cost
      GlEstimator est(config);
      TrainContext ctx = MakeTrainContext(env);
      Status st = est.Train(ctx);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      EvalResult result = EvaluateSearch(&est, env.workload);
      row.push_back(FormatPaperNumber(result.qerror.mean));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Fig 11): with sufficient training "
               "queries, mean Q-error falls as segments grow, then "
               "flattens. With too few queries per segment the trend "
               "reverses (each local model underfits) — this sweep runs at "
               "3x the default query budget for that reason.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  return simcard::bench::Run(argc, argv);
}
