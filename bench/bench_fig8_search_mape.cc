// Figure 8 (Exp-3..5): MAPE of the learned methods on every dataset analog.
#include "bench_common.h"

namespace simcard {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, AnalogNames(), {"methods"});
  PrintBanner("Figure 8: MAPE of different methods", args);

  const std::vector<std::string> methods = args.cl.GetStringList(
      "methods", {"MLP", "CardNet", "QES", "GL-MLP", "GL-CNN", "GL+"});

  TableReporter table([&] {
    std::vector<std::string> cols = {"Dataset"};
    cols.insert(cols.end(), methods.begin(), methods.end());
    return cols;
  }());

  for (const auto& dataset : args.datasets) {
    ExperimentEnv env = MustBuildEnv(dataset, args);
    std::vector<std::string> row = {dataset};
    for (const auto& method : methods) {
      auto est = MustTrain(method, env, args);
      EvalResult result = EvaluateSearch(est.get(), env.workload);
      row.push_back(FormatPaperNumber(result.mape.mean));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Fig 8): GL+ lowest, then GL-CNN < "
               "GL-MLP < QES < CardNet/MLP on most datasets.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  return simcard::bench::Run(argc, argv);
}
