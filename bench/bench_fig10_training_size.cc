// Figure 10 (Exp-7): mean Q-error vs number of training queries, for QES,
// GL-MLP, GL-CNN and GL+ (shared tuning here to bound the sweep's cost; the
// per-segment tuner is exercised in bench_table4).
#include "core/gl_estimator.h"

#include "bench_common.h"

namespace simcard {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args =
      ParseArgs(argc, argv, {"bms-sim", "imagenet-sim"}, {"sizes"});
  PrintBanner("Figure 10: mean Q-error vs #training queries", args);

  std::vector<size_t> sizes;
  for (const auto& s : args.cl.GetStringList("sizes", {"100", "200", "400"})) {
    sizes.push_back(static_cast<size_t>(std::strtoull(s.c_str(), nullptr, 10)));
  }
  const std::vector<std::string> methods = {"QES", "GL-MLP", "GL-CNN", "GL+"};

  for (const auto& dataset : args.datasets) {
    std::cout << "--- " << dataset << " ---\n";
    TableReporter table([&] {
      std::vector<std::string> cols = {"#train queries"};
      cols.insert(cols.end(), methods.begin(), methods.end());
      return cols;
    }());
    for (size_t n_train : sizes) {
      EnvOptions opts;
      opts.num_segments = args.segments;
      opts.seed = args.seed;
      opts.train_queries_override = n_train;
      auto env_or = BuildEnvironment(dataset, args.scale, opts);
      if (!env_or.ok()) {
        std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
        return 1;
      }
      ExperimentEnv env = std::move(env_or).value();
      std::vector<std::string> row = {std::to_string(n_train)};
      for (const auto& method : methods) {
        auto est_or = MakeEstimatorByName(method, args.scale);
        auto est = std::move(est_or).value();
        if (method == "GL+") {
          // Cheaper shared tuning for the sweep.
          static_cast<GlEstimator*>(est.get());
        }
        TrainContext ctx = MakeTrainContext(env);
        if (auto* gl = dynamic_cast<GlEstimator*>(est.get());
            gl != nullptr && method == "GL+") {
          GlEstimatorConfig config = gl->config();
          config.tune_per_segment = false;
          est = std::make_unique<GlEstimator>(config);
        }
        Status st = est->Train(ctx);
        if (!st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          return 1;
        }
        EvalResult result = EvaluateSearch(est.get(), env.workload);
        row.push_back(FormatPaperNumber(result.qerror.mean));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape (paper Fig 10): GL-family error falls "
               "steeply as training size grows. Note: on these synthetic "
               "analogs (lower-dimensional than the paper's corpora) QES is "
               "already competitive at small training sizes; the paper's "
               "regime where GL dominates early needs its very "
               "high-dimensional datasets.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  return simcard::bench::Run(argc, argv);
}
