// Batched estimation throughput (the PR's acceptance experiment): the same
// GL-CNN model driven (a) query-at-a-time vs. EstimateSearchBatch at several
// batch sizes, and (b) through the serving layer with micro-batching off
// (max_batch=1) vs. on. The --json report records
//   simcard.bench.batch_qps.served_batch1 / served_batchN  (gauges, QPS)
//   simcard.bench.batch_qps.served_speedup                 (batchN / batch1)
// (direct single-vs-batch numbers print on the google-benchmark console),
// so `bench_batch_throughput --json=...` is the machine-checkable evidence
// that micro-batching at batch >= 16 clears the 2x served-QPS bar on the
// Table 6 workload.
//
// Extra flags on top of the bench_common set:
//   --serve-threads=N  service workers for the served A/B (default 2)
//   --max-batch=N      batched side of the served A/B (default 128)
//   --linger-us=U      linger window for the batched service (default 200)
//   --requests=N       requests per served measurement (default 2000)
#include <benchmark/benchmark.h>

#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/estimation_service.h"
#include "serve/model_registry.h"

namespace simcard {
namespace bench {
namespace {

// Batch staged from the workload's test queries: row i cycles queries, taus
// cycle a small threshold ladder.
struct StagedBatch {
  Matrix queries;
  std::vector<float> taus;
};

StagedBatch Stage(const SearchWorkload& workload, size_t rows) {
  StagedBatch out;
  const size_t dim = workload.test_queries.cols();
  out.queries = Matrix(rows, dim);
  out.taus.resize(rows);
  for (size_t i = 0; i < rows; ++i) {
    const auto& lq = workload.test[i % workload.test.size()];
    out.queries.SetRow(i, workload.test_queries.Row(lq.row));
    out.taus[i] = lq.thresholds[i % lq.thresholds.size()].tau;
  }
  return out;
}

void RegisterDirectBenchmarks(const std::string& dataset,
                              std::shared_ptr<const GlEstimator> model,
                              std::shared_ptr<ExperimentEnv> env) {
  ::benchmark::RegisterBenchmark(
      (dataset + "/direct_single").c_str(),
      [model, env](::benchmark::State& state) {
        StagedBatch staged = Stage(env->workload, 64);
        const size_t dim = staged.queries.cols();
        size_t i = 0;
        for (auto _ : state) {
          EstimateRequest request;
          request.query = std::span<const float>(
              staged.queries.Row(i % staged.queries.rows()), dim);
          request.tau = staged.taus[i % staged.taus.size()];
          ::benchmark::DoNotOptimize(model->Estimate(request));
          ++i;
        }
        state.SetItemsProcessed(state.iterations());
      })
      ->Unit(::benchmark::kMicrosecond);

  for (size_t batch : {4u, 16u, 64u}) {
    ::benchmark::RegisterBenchmark(
        (dataset + "/direct_batch" + std::to_string(batch)).c_str(),
        [model, env, batch](::benchmark::State& state) {
          StagedBatch staged = Stage(env->workload, batch);
          const std::span<const float> taus(staged.taus.data(),
                                            staged.taus.size());
          for (auto _ : state) {
            ::benchmark::DoNotOptimize(
                model->EstimateSearchBatch(staged.queries, taus));
          }
          state.SetItemsProcessed(state.iterations() *
                                  static_cast<int64_t>(batch));
        })
        ->Unit(::benchmark::kMicrosecond);
  }
}

// Serves `total` requests through a fresh service (burst submission with a
// bounded in-flight window) and returns the aggregate QPS.
double MeasureServedQps(serve::ModelRegistry* registry,
                        const ExperimentEnv& env, size_t num_threads,
                        size_t max_batch, double linger_us, size_t total) {
  serve::ServeOptions options;
  options.num_threads = num_threads;
  options.queue_capacity = 4096;
  options.default_deadline_ms = 60000.0;
  options.max_batch = max_batch;
  options.batch_linger_us = linger_us;
  serve::EstimationService service(registry, options);

  StagedBatch staged = Stage(env.workload, 256);
  const size_t dim = staged.queries.cols();
  // Keep enough requests in flight that every worker can fill a batch.
  const size_t kWindow = std::max<size_t>(128, 2 * max_batch);

  // Warm-up pass (thread pool spin-up, first-touch allocations).
  for (size_t i = 0; i < 32; ++i) {
    EstimateRequest request;
    request.query = std::span<const float>(staged.queries.Row(i % 256), dim);
    request.tau = staged.taus[i % 256];
    service.Submit(request).get();
  }

  Stopwatch wall;
  std::vector<std::future<serve::EstimateResponse>> inflight;
  inflight.reserve(kWindow);
  size_t submitted = 0;
  size_t ok = 0;
  while (submitted < total) {
    inflight.clear();
    const size_t burst = std::min(kWindow, total - submitted);
    for (size_t i = 0; i < burst; ++i) {
      EstimateRequest request;
      request.query = std::span<const float>(
          staged.queries.Row((submitted + i) % 256), dim);
      request.tau = staged.taus[(submitted + i) % 256];
      inflight.push_back(service.Submit(request));
    }
    for (auto& f : inflight) ok += f.get().status.ok();
    submitted += burst;
  }
  service.Drain();
  const double seconds = wall.ElapsedSeconds();
  if (ok < total) {
    std::fprintf(stderr, "served A/B: %zu/%zu requests failed\n", total - ok,
                 total);
  }
  return static_cast<double>(total) / seconds;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  using namespace simcard;
  using namespace simcard::bench;
  BenchArgs args =
      ParseArgs(argc, argv, {"glove-sim"},
                {"serve-threads", "max-batch", "linger-us", "requests"});
  PrintBanner("Batched estimation throughput (single vs batch vs served)",
              args);

  const size_t serve_threads =
      static_cast<size_t>(args.cl.GetInt("serve-threads", 2));
  const size_t max_batch =
      static_cast<size_t>(
          std::max<int64_t>(2, args.cl.GetInt("max-batch", 128)));
  const double linger_us = args.cl.GetDouble("linger-us", 200.0);
  const size_t requests =
      static_cast<size_t>(std::max<int64_t>(64, args.cl.GetInt("requests", 2000)));

  std::vector<std::shared_ptr<ExperimentEnv>> envs;
  std::vector<std::shared_ptr<const GlEstimator>> models;
  for (const auto& dataset : args.datasets) {
    auto env = std::make_shared<ExperimentEnv>(MustBuildEnv(dataset, args));
    auto est = std::make_shared<GlEstimator>(GlEstimatorConfig::GlCnn());
    TrainContext ctx = MakeTrainContext(*env);
    Stopwatch watch;
    Status st = est->Train(ctx);
    if (!st.ok()) {
      std::fprintf(stderr, "training GL-CNN on %s: %s\n", dataset.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    SIMCARD_LOG(INFO) << dataset << " / GL-CNN: trained in "
                      << watch.ElapsedSeconds() << "s";
    std::shared_ptr<const GlEstimator> model = est;
    RegisterDirectBenchmarks(dataset, model, env);
    envs.push_back(std::move(env));
    models.push_back(std::move(model));
  }

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  // Served A/B: identical request stream, micro-batching off vs on. The two
  // configurations are measured as PAIRS inside each round (order swapped
  // every other round) and the speedup is the median of the per-round
  // paired ratios: drift in the host's available CPU (shared box) is mostly
  // constant within one ~100ms round, so it divides out of each pair, and
  // the median discards rounds where it was not.
  constexpr size_t kRounds = 5;
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  for (size_t i = 0; i < envs.size(); ++i) {
    serve::ModelRegistry registry;
    registry.Publish(models[i]);
    std::vector<double> qps1_rounds;
    std::vector<double> qpsN_rounds;
    std::vector<double> ratio_rounds;
    for (size_t round = 0; round < kRounds; ++round) {
      double a = 0.0;  // max_batch=1
      double b = 0.0;  // max_batch=N
      if (round % 2 == 0) {
        a = MeasureServedQps(&registry, *envs[i], serve_threads,
                             /*max_batch=*/1, 0.0, requests);
        b = MeasureServedQps(&registry, *envs[i], serve_threads, max_batch,
                             linger_us, requests);
      } else {
        b = MeasureServedQps(&registry, *envs[i], serve_threads, max_batch,
                             linger_us, requests);
        a = MeasureServedQps(&registry, *envs[i], serve_threads,
                             /*max_batch=*/1, 0.0, requests);
      }
      qps1_rounds.push_back(a);
      qpsN_rounds.push_back(b);
      if (a > 0.0) ratio_rounds.push_back(b / a);
    }
    const double qps1 = median(qps1_rounds);
    const double qpsN = median(qpsN_rounds);
    const double speedup = ratio_rounds.empty() ? 0.0 : median(ratio_rounds);
    std::printf(
        "%s served QPS: max_batch=1 %.0f, max_batch=%zu %.0f  (%.2fx)\n",
        envs[i]->spec.name.c_str(), qps1, max_batch, qpsN, speedup);
    if (obs::MetricsEnabled()) {
      obs::GetGauge("simcard.bench.batch_qps.served_batch1")->Set(qps1);
      obs::GetGauge("simcard.bench.batch_qps.served_batch" +
                    std::to_string(max_batch))
          ->Set(qpsN);
      obs::GetGauge("simcard.bench.batch_qps.served_speedup")->Set(speedup);
    }
  }
  return 0;
}
