// Table 6 (Exp-9): average per-query estimation latency. Learned methods
// run a fixed-size forward pass; sampling/kernel/SimSelect scan retained
// data, so they slow down with dataset size.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "index/pivot_index.h"

namespace simcard {
namespace bench {
namespace {

// Cycles through test queries/thresholds so each iteration is a fresh query.
struct QueryCycle {
  const SearchWorkload* workload;
  size_t index = 0;

  std::pair<const float*, float> Next() {
    const auto& lq = workload->test[index % workload->test.size()];
    const auto& t =
        lq.thresholds[(index / workload->test.size()) % lq.thresholds.size()];
    ++index;
    return {workload->test_queries.Row(lq.row), t.tau};
  }
};

void RegisterEstimatorBenchmarks(const std::string& dataset,
                                 const BenchArgs& args,
                                 std::shared_ptr<ExperimentEnv> env) {
  const std::vector<std::string> methods = {
      "Kernel-based",  "Sampling (10%)", "Sampling (1%)", "CardNet",
      "Local+",        "GL-MLP",         "GL-CNN",        "GL+",
      "MLP",           "QES"};
  for (const auto& method : methods) {
    std::shared_ptr<Estimator> est = MustTrain(method, *env, args);
    // First-query allocation noise (lazy forward-pass buffers) used to leak
    // into the measured distribution; warm up each estimator before the
    // benchmark loop and report cold vs. warm separately in the run report.
    WarmUpEstimator(est.get(), env->workload);
    ::benchmark::RegisterBenchmark(
        (dataset + "/" + method).c_str(),
        [est, env](::benchmark::State& state) {
          QueryCycle cycle{&env->workload};
          const size_t dim = env->workload.test_queries.cols();
          for (auto _ : state) {
            auto [q, tau] = cycle.Next();
            EstimateRequest request;
            request.query = std::span<const float>(q, dim);
            request.tau = tau;
            ::benchmark::DoNotOptimize(est->Estimate(request));
          }
        })
        ->Unit(::benchmark::kMicrosecond);
  }
  // SimSelect stand-in: exact counting with a pivot index.
  ExactPivotIndex::Options pivot_opts;
  auto index = std::make_shared<ExactPivotIndex>(
      std::move(ExactPivotIndex::Build(&env->dataset, pivot_opts).value()));
  ::benchmark::RegisterBenchmark(
      (dataset + "/SimSelect (exact)").c_str(),
      [index, env](::benchmark::State& state) {
        QueryCycle cycle{&env->workload};
        for (auto _ : state) {
          auto [q, tau] = cycle.Next();
          ::benchmark::DoNotOptimize(index->Count(q, tau));
        }
      })
      ->Unit(::benchmark::kMicrosecond);
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  using namespace simcard;
  using namespace simcard::bench;
  BenchArgs args = ParseArgs(argc, argv, {"glove-sim", "dblp-sim"});
  PrintBanner("Table 6: avg estimation latency for similarity search", args);
  // Environments live for the whole benchmark run.
  for (const auto& dataset : args.datasets) {
    auto env = std::make_shared<ExperimentEnv>(MustBuildEnv(dataset, args));
    RegisterEstimatorBenchmarks(dataset, args, env);
  }
  std::cout << "Expected shape (paper Table 6): QES < MLP < GL+/GL-CNN < "
               "GL-MLP < Local+ << Sampling/Kernel; SimSelect scales with "
               "data size.\n\n";
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
