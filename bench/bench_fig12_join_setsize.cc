// Figure 12 (Exp-12): join Q-error and MAPE of GLJoin+ across the three
// query-set-size buckets [50,100), [100,150), [150,200).
//
// Two pooling modes are compared: the paper's sum pooling, and this repo's
// mean-scaled extension (pool / |Q|, output x |Q|) which fixes sum pooling's
// extrapolation beyond the training set-size range (training sets have
// 1-99 members; the largest test bucket has up to 199).
#include "core/join_estimator.h"
#include "workload/join_sets.h"

#include "bench_common.h"

namespace simcard {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, {"glove-sim", "imagenet-sim"});
  PrintBanner("Figure 12: join errors vs query-set size (GLJoin+)", args);

  const char* bucket_names[3] = {"[50,100)", "[100,150)", "[150,200)"};
  TableReporter table({"Dataset", "Pooling", "Bucket", "Mean Q-error",
                       "Median Q-error", "Mean MAPE"});
  for (const auto& dataset : args.datasets) {
    ExperimentEnv env = MustBuildEnv(dataset, args);
    JoinWorkloadOptions join_opts;
    join_opts.seed = args.seed + 5;
    auto joins = BuildJoinWorkload(env.workload,
                                   env.segmentation.num_segments(),
                                   join_opts)
                     .value();
    for (auto mode : {CardModel::PooledMode::kSum,
                      CardModel::PooledMode::kMeanScaled}) {
      GlJoinEstimator::Config config = GlJoinEstimator::Config::GlJoinPlus();
      config.base.local_train.epochs = args.scale == Scale::kTiny ? 20 : 40;
      config.base.global_train.epochs = config.base.local_train.epochs;
      config.base.auto_tune = false;  // geometry is not what Fig 12 studies
      config.pooled.mode = mode;
      GlJoinEstimator est(config);
      TrainContext ctx = MakeTrainContext(env);
      Status st = est.Train(ctx);
      if (st.ok()) st = est.FineTuneOnJoins(ctx, joins);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      const char* mode_name =
          mode == CardModel::PooledMode::kSum ? "sum (paper)" : "mean-scaled";
      for (size_t b = 0; b < 3; ++b) {
        EvalResult result =
            EvaluateJoin(&est, env.workload, joins.test_buckets[b]);
        table.AddRow({dataset, mode_name, bucket_names[b],
                      FormatPaperNumber(result.qerror.mean),
                      FormatPaperNumber(result.qerror.median),
                      FormatPaperNumber(result.mape.mean)});
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Fig 12): errors grow only "
               "moderately with set size. Sum pooling (paper) decays "
               "toward [150,200); the mean-scaled extension stays flat "
               "across buckets.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace simcard

int main(int argc, char** argv) {
  return simcard::bench::Run(argc, argv);
}
