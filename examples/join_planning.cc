// Join-size estimation scenario (Section 4 of the paper).
//
// A deduplication pipeline joins an incoming batch of records Q against the
// master table D under a similarity threshold. Allocating resources for the
// join (hash-table sizing, partitioning fan-out) needs the join's output
// cardinality in advance. This example trains GLJoin+ (mask-based routing +
// sum-pooled set embeddings) and compares its one-shot set estimates with
// exact join sizes and with the naive per-query loop.
//
// Run:  ./build/examples/join_planning [--scale=tiny|small]
#include <cstdio>
#include <span>

#include "common/cli.h"
#include "common/stopwatch.h"
#include "core/join_estimator.h"
#include "eval/harness.h"
#include "workload/join_sets.h"

using namespace simcard;

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv, {"scale"});
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    return 2;
  }
  Scale scale = ParseScale(cl.value().GetString("scale", "tiny")).value();

  EnvOptions options;
  options.num_segments = 8;
  auto env_or = BuildEnvironment("bms-sim", scale, options);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  ExperimentEnv env = std::move(env_or).value();
  std::printf("master table: %zu records (%s)\n", env.dataset.size(),
              MetricName(env.dataset.metric()));

  // Join workload: training sets + three size buckets of test sets.
  JoinWorkloadOptions join_options;
  auto joins_or = BuildJoinWorkload(
      env.workload, env.segmentation.num_segments(), join_options);
  if (!joins_or.ok()) {
    std::fprintf(stderr, "%s\n", joins_or.status().ToString().c_str());
    return 1;
  }
  JoinWorkload joins = std::move(joins_or).value();

  // Train the search stack, then transfer to joins ("2-3 iterations").
  GlJoinEstimator::Config config = GlJoinEstimator::Config::GlJoinPlus();
  config.base.auto_tune = false;  // keep the example snappy
  GlJoinEstimator estimator(config);
  TrainContext ctx = MakeTrainContext(env);
  if (Status st = estimator.Train(ctx); !st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = estimator.FineTuneOnJoins(ctx, joins); !st.ok()) {
    std::fprintf(stderr, "join fine-tune failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("GLJoin+ ready (%.2f MB)\n\n",
              estimator.ModelSizeBytes() / 1e6);

  std::printf("%6s %8s %12s %12s %9s %12s\n", "|Q|", "tau", "batch est",
              "exact join", "q-error", "per-query est");
  Stopwatch watch;
  double batch_ms = 0.0;
  double loop_ms = 0.0;
  for (size_t i = 0; i < 6 && i < joins.test_buckets[0].size(); ++i) {
    const JoinSet& js = joins.test_buckets[0][i];
    watch.Restart();
    const double batch_est = estimator.EstimateJoin(
        env.workload.test_queries, js.query_rows, js.tau);
    batch_ms += watch.ElapsedMillis();

    watch.Restart();
    double loop_est = 0.0;
    for (uint32_t row : js.query_rows) {
      EstimateRequest request;
      request.query = std::span<const float>(
          env.workload.test_queries.Row(row),
          env.workload.test_queries.cols());
      request.tau = js.tau;
      loop_est += estimator.Estimate(request);
    }
    loop_ms += watch.ElapsedMillis();

    std::printf("%6zu %8.3f %12.0f %12.0f %9.2f %12.0f\n",
                js.query_rows.size(), js.tau, batch_est, js.card,
                QError(batch_est, js.card), loop_est);
  }
  std::printf(
      "\nbatch (sum-pooled) estimation: %.2f ms total; per-query loop: "
      "%.2f ms total (%.1fx slower)\n",
      batch_ms, loop_ms, loop_ms / std::max(1e-9, batch_ms));
  return 0;
}
