// Quickstart: the minimal end-to-end use of simcard's public API.
//
//   1. obtain a dataset (here: a synthetic analog of GloVe word vectors);
//   2. segment it (PCA + mini-batch K-means, Section 3.3 of the paper);
//   3. label a training workload with exact cardinalities;
//   4. train the paper's GL-CNN estimator;
//   5. ask it for card(q, tau) estimates and compare with the exact count.
//
// Run:  ./build/examples/quickstart [--scale=tiny|small]
#include <cstdio>
#include <span>

#include "common/cli.h"
#include "core/gl_estimator.h"
#include "data/generators.h"
#include "eval/harness.h"
#include "index/ground_truth.h"

using namespace simcard;

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv, {"scale"});
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    return 2;
  }
  Scale scale =
      ParseScale(cl.value().GetString("scale", "tiny")).value();

  // Steps 1-3 in one call: dataset + segmentation + labeled workload.
  EnvOptions options;
  options.num_segments = 8;
  auto env_or = BuildEnvironment("glove-sim", scale, options);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  ExperimentEnv env = std::move(env_or).value();
  std::printf("dataset: %zu points, %zu dims, metric %s, %zu segments\n",
              env.dataset.size(), env.dataset.dim(),
              MetricName(env.dataset.metric()),
              env.segmentation.num_segments());

  // Step 4: train the global-local estimator.
  GlEstimator estimator(GlEstimatorConfig::GlCnn());
  TrainContext ctx = MakeTrainContext(env);
  if (Status st = estimator.Train(ctx); !st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("trained GL-CNN in %.1fs (%zu local models, %.2f MB)\n\n",
              estimator.training_seconds(), estimator.num_local_models(),
              estimator.ModelSizeBytes() / 1e6);

  // Step 5: estimate vs exact for a few held-out queries.
  GroundTruth exact(&env.dataset);
  std::printf("%8s %10s %10s %8s\n", "tau", "estimate", "exact", "q-error");
  for (size_t i = 0; i < 3; ++i) {
    const auto& lq = env.workload.test[i];
    const float* q = env.workload.test_queries.Row(lq.row);
    simcard::EstimateRequest request;
    request.query = std::span<const float>(
        q, env.workload.test_queries.cols());
    for (size_t t = 2; t < lq.thresholds.size(); t += 3) {
      const float tau = lq.thresholds[t].tau;
      request.tau = tau;
      const double est = estimator.Estimate(request);
      const size_t truth = exact.Count(q, tau);
      std::printf("%8.3f %10.1f %10zu %8.2f\n", tau, est, truth,
                  QError(est, static_cast<double>(truth)));
    }
  }
  return 0;
}
