// Incremental maintenance scenario (Section 5.3 / Exp-11 of the paper).
//
// A production estimator must survive inserts without hours-long retraining.
// This example trains GL-CNN once, streams batches of new records in, routes
// each batch to its nearest segments, fine-tunes only the touched local
// models plus the global model, and tracks the test error after every batch.
//
// Run:  ./build/examples/data_updates [--scale=tiny|small] [--batches=N]
#include <cstdio>

#include "common/cli.h"
#include "common/stopwatch.h"
#include "core/gl_estimator.h"
#include "eval/harness.h"

using namespace simcard;

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv, {"scale", "batches"});
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    return 2;
  }
  Scale scale = ParseScale(cl.value().GetString("scale", "tiny")).value();
  const size_t batches =
      static_cast<size_t>(cl.value().GetInt("batches", 5));
  const size_t batch_size = 40;

  EnvOptions options;
  options.num_segments = 6;
  auto env_or = BuildEnvironment("glove-sim", scale, options);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  ExperimentEnv env = std::move(env_or).value();

  GlEstimator estimator(GlEstimatorConfig::GlCnn());
  TrainContext ctx = MakeTrainContext(env);
  Stopwatch watch;
  if (Status st = estimator.Train(ctx); !st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const double full_train_seconds = watch.ElapsedSeconds();
  EvalResult before = EvaluateSearch(&estimator, env.workload);
  std::printf("initial training: %.1fs, median q-error %.2f\n\n",
              full_train_seconds, before.qerror.median);

  Matrix stream =
      MakeAnalogUpdates("glove-sim", scale, batches * batch_size, env.seed)
          .value();

  std::printf("%6s %10s %14s %14s %12s\n", "batch", "#points",
              "median q-err", "mean q-err", "update (s)");
  for (size_t b = 0; b < batches; ++b) {
    Matrix batch = stream.SliceRows(b * batch_size, (b + 1) * batch_size);
    const uint32_t first_new = static_cast<uint32_t>(env.dataset.size());
    env.dataset.Append(batch);
    std::vector<uint32_t> new_rows(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      new_rows[i] = first_new + static_cast<uint32_t>(i);
    }
    watch.Restart();
    Status st = estimator.ApplyUpdates(env.dataset, &env.workload, new_rows,
                                       env.seed + b);
    if (!st.ok()) {
      std::fprintf(stderr, "update failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const double update_seconds = watch.ElapsedSeconds();
    EvalResult after = EvaluateSearch(&estimator, env.workload);
    std::printf("%6zu %10zu %14.2f %14.2f %12.2f\n", b + 1,
                env.dataset.size(), after.qerror.median, after.qerror.mean,
                update_seconds);
  }
  std::printf(
      "\nEach incremental update costs a small fraction of the %.1fs full "
      "retraining while keeping the error near its pre-update level.\n",
      full_train_seconds);
  return 0;
}
