// Radius tuning: pick the similarity threshold that returns roughly K
// results — the classic downstream use of the estimator's monotonicity
// (Section 2's third desired property).
//
// A recommendation service wants "about 25 similar products" per query, but
// the right radius varies wildly per query (dense vs sparse neighborhoods).
// Scanning to find it costs a full search per candidate radius; the learned
// estimator inverts card(q, tau) = K with a handful of microsecond forward
// passes instead.
//
// Run:  ./build/examples/radius_tuning [--scale=tiny|small] [--target=K]
#include <cstdio>
#include <cmath>
#include <span>

#include "common/cli.h"
#include "core/gl_estimator.h"
#include "eval/harness.h"
#include "index/ground_truth.h"

using namespace simcard;

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv, {"scale", "target"});
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    return 2;
  }
  Scale scale = ParseScale(cl.value().GetString("scale", "tiny")).value();
  const double target = cl.value().GetDouble("target", 25.0);

  EnvOptions options;
  options.num_segments = 8;
  auto env_or = BuildEnvironment("glove-sim", scale, options);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  ExperimentEnv env = std::move(env_or).value();

  GlEstimator estimator(GlEstimatorConfig::GlCnn());
  TrainContext ctx = MakeTrainContext(env);
  if (Status st = estimator.Train(ctx); !st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  GroundTruth exact(&env.dataset);

  std::printf("target: ~%.0f similar items per query\n\n", target);
  std::printf("%6s %12s %12s %14s\n", "query", "tuned tau", "est @ tau",
              "true count");
  double abs_log_err = 0.0;
  const size_t n_queries = std::min<size_t>(10, env.workload.test.size());
  for (size_t i = 0; i < n_queries; ++i) {
    const float* q = env.workload.test_queries.Row(i);
    const float tau = InvertCardinality(&estimator, q, target, 0.0f, 1.0f);
    EstimateRequest request;
    request.query =
        std::span<const float>(q, env.workload.test_queries.cols());
    request.tau = tau;
    const double est = estimator.Estimate(request);
    const size_t truth = exact.Count(q, tau);
    std::printf("%6zu %12.4f %12.1f %14zu\n", i, tau, est, truth);
    abs_log_err += std::fabs(std::log(std::max<double>(1.0, truth) / target));
  }
  std::printf(
      "\ngeometric-mean deviation from target: %.2fx (1.0x = exact)\n",
      std::exp(abs_log_err / static_cast<double>(n_queries)));
  std::printf("note how the tuned tau differs per query: a single global "
              "radius could not hit the target everywhere.\n");
  return 0;
}
