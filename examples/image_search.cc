// Image-search scenario: cardinality-aware query planning over binary hash
// codes (the paper's ImageNET/HashNet setting).
//
// An image platform stores 64-bit perceptual hash codes and answers
// "find images within Hamming radius tau of this photo". The query planner
// must decide, BEFORE executing, whether the result set is small enough for
// an exact index probe (cheap when few candidates) or so large that a batch
// scan + downstream filter is the better plan. A learned estimator answers
// in microseconds; this example shows the plan decisions it drives and how
// often they match the decisions an oracle would make.
//
// Run:  ./build/examples/image_search [--scale=tiny|small]
#include <cstdio>
#include <span>

#include "common/cli.h"
#include "core/gl_estimator.h"
#include "eval/harness.h"
#include "index/pivot_index.h"

using namespace simcard;

namespace {

const char* PlanFor(double cardinality, double threshold) {
  return cardinality <= threshold ? "index-probe" : "batch-scan";
}

}  // namespace

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv, {"scale"});
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    return 2;
  }
  Scale scale = ParseScale(cl.value().GetString("scale", "tiny")).value();

  EnvOptions options;
  options.num_segments = 8;
  auto env_or = BuildEnvironment("imagenet-sim", scale, options);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  ExperimentEnv env = std::move(env_or).value();
  std::printf("image corpus: %zu hash codes of %zu bits (Hamming)\n",
              env.dataset.size(), env.dataset.dim());

  GlEstimator estimator(GlEstimatorConfig::GlCnn());
  TrainContext ctx = MakeTrainContext(env);
  if (Status st = estimator.Train(ctx); !st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // The planner switches to a batch scan above 0.5% of the corpus.
  const double plan_threshold = 0.005 * static_cast<double>(env.dataset.size());
  std::printf("plan threshold: %.0f matches\n\n", plan_threshold);

  // Exact counter in the role of the (expensive) oracle.
  auto oracle =
      ExactPivotIndex::Build(&env.dataset, ExactPivotIndex::Options()).value();

  std::printf("%8s %10s %12s %12s %8s\n", "radius", "estimate",
              "plan(est)", "plan(oracle)", "agree");
  size_t agreements = 0;
  size_t decisions = 0;
  for (size_t i = 0; i < env.workload.test.size(); ++i) {
    const auto& lq = env.workload.test[i];
    const float* q = env.workload.test_queries.Row(lq.row);
    EstimateRequest request;
    request.query =
        std::span<const float>(q, env.workload.test_queries.cols());
    for (size_t t = 0; t < lq.thresholds.size(); t += 4) {
      const float tau = lq.thresholds[t].tau;
      request.tau = tau;
      const double est = estimator.Estimate(request);
      const double truth = static_cast<double>(oracle.Count(q, tau));
      const char* plan_est = PlanFor(est, plan_threshold);
      const char* plan_true = PlanFor(truth, plan_threshold);
      const bool agree = plan_est == plan_true;
      agreements += agree;
      ++decisions;
      if (i < 4) {
        std::printf("%8.3f %10.1f %12s %12s %8s\n", tau, est, plan_est,
                    plan_true, agree ? "yes" : "NO");
      }
    }
  }
  std::printf("\nplanner agreement with oracle: %zu/%zu (%.1f%%)\n",
              agreements, decisions,
              100.0 * static_cast<double>(agreements) /
                  static_cast<double>(decisions));
  return 0;
}
