// Command-line front end; all logic lives in src/app/cli_app.cc.
#include <iostream>

#include "app/cli_app.h"

int main(int argc, char** argv) {
  return simcard::RunCliApp(argc, argv, std::cout, std::cerr);
}
