#include "tensor/ops.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace simcard {
namespace {

Matrix FromRows(std::vector<std::vector<float>> rows) {
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) m.SetRow(r, rows[r].data());
  return m;
}

TEST(OpsTest, MatMulKnownValues) {
  Matrix a = FromRows({{1, 2}, {3, 4}});
  Matrix b = FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0f);
  EXPECT_EQ(c.at(0, 1), 22.0f);
  EXPECT_EQ(c.at(1, 0), 43.0f);
  EXPECT_EQ(c.at(1, 1), 50.0f);
}

TEST(OpsTest, MatMulRectangular) {
  Matrix a(2, 3);
  a.Fill(1.0f);
  Matrix b(3, 4);
  b.Fill(2.0f);
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 6.0f);
}

TEST(OpsTest, MatMulTransposeBMatchesExplicit) {
  Rng rng(3);
  Matrix a = Matrix::Gaussian(4, 6, 1.0f, &rng);
  Matrix b = Matrix::Gaussian(5, 6, 1.0f, &rng);
  Matrix expected = MatMul(a, Transpose(b));
  EXPECT_TRUE(MatMulTransposeB(a, b).AllClose(expected, 1e-4f));
}

TEST(OpsTest, MatMulTransposeAMatchesExplicit) {
  Rng rng(4);
  Matrix a = Matrix::Gaussian(6, 4, 1.0f, &rng);
  Matrix b = Matrix::Gaussian(6, 5, 1.0f, &rng);
  Matrix expected = MatMul(Transpose(a), b);
  EXPECT_TRUE(MatMulTransposeA(a, b).AllClose(expected, 1e-4f));
}

TEST(OpsTest, TransposeInvolution) {
  Rng rng(5);
  Matrix a = Matrix::Gaussian(3, 7, 1.0f, &rng);
  EXPECT_TRUE(Transpose(Transpose(a)).AllClose(a, 0.0f));
}

TEST(OpsTest, ElementwiseOps) {
  Matrix a = FromRows({{1, 2}, {3, 4}});
  Matrix b = FromRows({{10, 20}, {30, 40}});
  EXPECT_EQ(Add(a, b).at(1, 1), 44.0f);
  EXPECT_EQ(Sub(b, a).at(0, 0), 9.0f);
  EXPECT_EQ(Mul(a, b).at(0, 1), 40.0f);
  EXPECT_EQ(Scale(a, -2.0f).at(1, 0), -6.0f);
}

TEST(OpsTest, AddRowBroadcast) {
  Matrix a = FromRows({{1, 2}, {3, 4}});
  Matrix bias = Matrix::RowVector({10, 100});
  Matrix out = AddRowBroadcast(a, bias);
  EXPECT_EQ(out.at(0, 0), 11.0f);
  EXPECT_EQ(out.at(0, 1), 102.0f);
  EXPECT_EQ(out.at(1, 0), 13.0f);
  EXPECT_EQ(out.at(1, 1), 104.0f);
}

TEST(OpsTest, SumRows) {
  Matrix a = FromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix s = SumRows(a);
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_EQ(s.at(0, 0), 9.0f);
  EXPECT_EQ(s.at(0, 1), 12.0f);
}

TEST(OpsTest, ConcatCols) {
  Matrix a = FromRows({{1}, {2}});
  Matrix b = FromRows({{3, 4}, {5, 6}});
  Matrix c = ConcatCols({a, b});
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_EQ(c.at(0, 0), 1.0f);
  EXPECT_EQ(c.at(0, 2), 4.0f);
  EXPECT_EQ(c.at(1, 1), 5.0f);
}

TEST(OpsTest, ConcatColsSingle) {
  Matrix a = FromRows({{1, 2}});
  Matrix c = ConcatCols({a});
  EXPECT_TRUE(c.AllClose(a, 0.0f));
}

TEST(OpsTest, AddScaledInPlace) {
  Matrix a = FromRows({{1, 1}});
  Matrix b = FromRows({{2, 4}});
  AddScaledInPlace(&a, b, 0.5f);
  EXPECT_EQ(a.at(0, 0), 2.0f);
  EXPECT_EQ(a.at(0, 1), 3.0f);
}

TEST(OpsTest, ClampInPlace) {
  Matrix a = FromRows({{-5, 0.5, 5}});
  ClampInPlace(&a, -1.0f, 1.0f);
  EXPECT_EQ(a.at(0, 0), -1.0f);
  EXPECT_EQ(a.at(0, 1), 0.5f);
  EXPECT_EQ(a.at(0, 2), 1.0f);
}

TEST(OpsTest, MatMulAssociativityProperty) {
  Rng rng(6);
  Matrix a = Matrix::Gaussian(3, 4, 1.0f, &rng);
  Matrix b = Matrix::Gaussian(4, 5, 1.0f, &rng);
  Matrix c = Matrix::Gaussian(5, 2, 1.0f, &rng);
  Matrix left = MatMul(MatMul(a, b), c);
  Matrix right = MatMul(a, MatMul(b, c));
  EXPECT_TRUE(left.AllClose(right, 1e-3f));
}

}  // namespace
}  // namespace simcard
