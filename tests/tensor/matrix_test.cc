#include "tensor/matrix.h"

#include <gtest/gtest.h>

namespace simcard {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZerosAndShape) {
  Matrix m = Matrix::Zeros(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) EXPECT_EQ(m.at(r, c), 0.0f);
  }
}

TEST(MatrixTest, FullAndFill) {
  Matrix m = Matrix::Full(2, 2, 3.0f);
  EXPECT_EQ(m.at(1, 1), 3.0f);
  m.Fill(-1.0f);
  EXPECT_EQ(m.at(0, 0), -1.0f);
  EXPECT_EQ(m.Sum(), -4.0);
}

TEST(MatrixTest, RowVectorAndAccess) {
  Matrix m = Matrix::RowVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.Row(0)[2], 3.0f);
}

TEST(MatrixTest, SetRowCopies) {
  Matrix m(2, 3);
  std::vector<float> row{4.0f, 5.0f, 6.0f};
  m.SetRow(1, row.data());
  EXPECT_EQ(m.at(1, 0), 4.0f);
  EXPECT_EQ(m.at(1, 2), 6.0f);
  EXPECT_EQ(m.at(0, 0), 0.0f);
}

TEST(MatrixTest, GaussianIsDeterministicPerSeed) {
  Rng a(5);
  Rng b(5);
  Matrix ma = Matrix::Gaussian(4, 4, 1.0f, &a);
  Matrix mb = Matrix::Gaussian(4, 4, 1.0f, &b);
  EXPECT_TRUE(ma.AllClose(mb, 0.0f));
}

TEST(MatrixTest, GaussianStddevScales) {
  Rng rng(5);
  Matrix m = Matrix::Gaussian(100, 100, 2.0f, &rng);
  double sq = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    sq += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  EXPECT_NEAR(sq / m.size(), 4.0, 0.2);
}

TEST(MatrixTest, SliceRows) {
  Matrix m(4, 2);
  for (size_t r = 0; r < 4; ++r) m.at(r, 0) = static_cast<float>(r);
  Matrix s = m.SliceRows(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.at(0, 0), 1.0f);
  EXPECT_EQ(s.at(1, 0), 2.0f);
}

TEST(MatrixTest, SliceCols) {
  Matrix m(2, 4);
  for (size_t c = 0; c < 4; ++c) m.at(1, c) = static_cast<float>(c);
  Matrix s = m.SliceCols(2, 4);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_EQ(s.at(1, 0), 2.0f);
  EXPECT_EQ(s.at(1, 1), 3.0f);
}

TEST(MatrixTest, NormAndMaxAbs) {
  Matrix m = Matrix::RowVector({3.0f, -4.0f});
  EXPECT_DOUBLE_EQ(m.Norm(), 5.0);
  EXPECT_EQ(m.MaxAbs(), 4.0f);
}

TEST(MatrixTest, AllCloseTolerance) {
  Matrix a = Matrix::RowVector({1.0f, 2.0f});
  Matrix b = Matrix::RowVector({1.0f + 1e-6f, 2.0f});
  Matrix c = Matrix::RowVector({1.1f, 2.0f});
  Matrix d(2, 1);
  EXPECT_TRUE(a.AllClose(b));
  EXPECT_FALSE(a.AllClose(c));
  EXPECT_FALSE(a.AllClose(d));  // shape mismatch
}

TEST(MatrixTest, SerializationRoundTrip) {
  Rng rng(9);
  Matrix m = Matrix::Gaussian(5, 7, 1.0f, &rng);
  Serializer out;
  m.Serialize(&out);
  Deserializer in(out.bytes());
  Matrix restored;
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_TRUE(m.AllClose(restored, 0.0f));
}

TEST(MatrixTest, ToStringShowsShape) {
  Matrix m(2, 3);
  EXPECT_NE(m.ToString().find("2x3"), std::string::npos);
}

}  // namespace
}  // namespace simcard
