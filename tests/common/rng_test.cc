#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace simcard {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64();
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BoundedRespectsBound) {
  Rng rng(13);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(17);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.NextBounded(bound)]++;
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / bound, n / bound * 0.1);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(19);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02);
  }
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(31);
  const double p = 0.5;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextGeometric(p);
  // Mean of failures-before-success is (1-p)/p = 1.
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(RngTest, GeometricWithPOneIsZero) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextGeometric(1.0), 0);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += parent.NextU64() == child.NextU64();
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(47);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleWithoutReplacementAllWhenKGeN) {
  Rng rng(53);
  auto sample = rng.SampleWithoutReplacement(10, 25);
  EXPECT_EQ(sample.size(), 10u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementUniform) {
  // Each index should appear in a k-of-n sample with probability k/n.
  const size_t n = 20;
  const size_t k = 5;
  std::vector<int> counts(n, 0);
  Rng rng(59);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (size_t idx : rng.SampleWithoutReplacement(n, k)) counts[idx]++;
  }
  const double expected = trials * static_cast<double>(k) / n;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], expected, expected * 0.1);
  }
}

}  // namespace
}  // namespace simcard
