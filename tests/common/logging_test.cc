#include "common/logging.h"

#include <gtest/gtest.h>

namespace simcard {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kWarn);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(saved);
}

TEST(LoggingTest, MacroCompilesForAllSeverities) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kOff);  // suppress output during the test
  SIMCARD_LOG(DEBUG) << "debug " << 1;
  SIMCARD_LOG(INFO) << "info " << 2;
  SIMCARD_LOG(WARN) << "warn " << 3;
  SIMCARD_LOG(ERROR) << "error " << 4;
  SetLogLevel(saved);
  SUCCEED();
}

TEST(LoggingTest, BelowThresholdStreamNotEvaluated) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return 42;
  };
  SIMCARD_LOG(DEBUG) << count();
  EXPECT_EQ(evaluations, 0);  // the whole statement is guarded by the level
  SIMCARD_LOG(ERROR) << count();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(saved);
}

}  // namespace
}  // namespace simcard
