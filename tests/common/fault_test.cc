#include "common/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace simcard {
namespace fault {
namespace {

// Every test leaves the harness disarmed so no other test is affected.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { Disable(); }
};

TEST_F(FaultTest, DisarmedByDefault) {
  Disable();
  EXPECT_FALSE(Enabled());
  EXPECT_FALSE(ShouldFail("io.load"));
  EXPECT_EQ(InjectionCount(), 0u);
}

TEST_F(FaultTest, ArmedSiteFires) {
  FaultConfig config;
  config.sites = "io.load";
  Configure(config);
  EXPECT_TRUE(Enabled());
  EXPECT_TRUE(ShouldFail("io.load"));
  EXPECT_FALSE(ShouldFail("io.save"));  // not armed
  EXPECT_EQ(InjectionCount(), 1u);
}

TEST_F(FaultTest, WildcardArmsEverySite) {
  FaultConfig config;
  config.sites = "*";
  Configure(config);
  EXPECT_TRUE(ShouldFail("io.load"));
  EXPECT_TRUE(ShouldFail("gl.local_eval"));
  EXPECT_EQ(InjectionCount(), 2u);
}

TEST_F(FaultTest, DecisionsAreDeterministic) {
  FaultConfig config;
  config.sites = "deserialize.alloc";
  config.probability = 0.5;
  config.seed = 1234;
  auto run = [&] {
    Configure(config);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(ShouldFail("deserialize.alloc"));
    }
    return fired;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  // With prob 0.5 over 64 hits both outcomes must occur.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);

  config.seed = 99;  // a different seed gives a different pattern
  EXPECT_NE(run(), a);
}

TEST_F(FaultTest, MaxInjectionsBoundsFiring) {
  FaultConfig config;
  config.sites = "io.save";
  config.max_injections = 2;
  Configure(config);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (ShouldFail("io.save")) ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(InjectionCount(), 2u);
}

TEST_F(FaultTest, SkipFirstDelaysFiring) {
  FaultConfig config;
  config.sites = "io.save";
  config.skip_first = 3;
  Configure(config);
  EXPECT_FALSE(ShouldFail("io.save"));
  EXPECT_FALSE(ShouldFail("io.save"));
  EXPECT_FALSE(ShouldFail("io.save"));
  EXPECT_TRUE(ShouldFail("io.save"));
}

TEST_F(FaultTest, SpecParsing) {
  ASSERT_TRUE(
      ConfigureFromSpec("points=io.load,io.save;prob=1.0;seed=7;max=1").ok());
  EXPECT_TRUE(ShouldFail("io.load"));
  EXPECT_FALSE(ShouldFail("io.save"));  // max=1 already consumed

  EXPECT_FALSE(ConfigureFromSpec("prob=0.5").ok());  // no points
  EXPECT_FALSE(ConfigureFromSpec("points=a;bogus=1").ok());
  EXPECT_FALSE(ConfigureFromSpec("nonsense").ok());
}

TEST_F(FaultTest, InjectedErrorIsTagged) {
  Status st = InjectedError("io.load");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("injected"), std::string::npos);
  EXPECT_NE(st.ToString().find("io.load"), std::string::npos);
}

}  // namespace
}  // namespace fault
}  // namespace simcard
