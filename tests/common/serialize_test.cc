#include "common/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/fault.h"

namespace simcard {
namespace {

TEST(SerializeTest, PrimitivesRoundTrip) {
  Serializer out;
  out.WriteU32(7);
  out.WriteU64(1ULL << 40);
  out.WriteI64(-12345);
  out.WriteF32(3.5f);
  out.WriteF64(-2.25);
  out.WriteString("hello world");

  Deserializer in(out.bytes());
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  float f32 = 0;
  double f64 = 0;
  std::string s;
  ASSERT_TRUE(in.ReadU32(&u32).ok());
  ASSERT_TRUE(in.ReadU64(&u64).ok());
  ASSERT_TRUE(in.ReadI64(&i64).ok());
  ASSERT_TRUE(in.ReadF32(&f32).ok());
  ASSERT_TRUE(in.ReadF64(&f64).ok());
  ASSERT_TRUE(in.ReadString(&s).ok());
  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(u64, 1ULL << 40);
  EXPECT_EQ(i64, -12345);
  EXPECT_EQ(f32, 3.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_EQ(s, "hello world");
  EXPECT_TRUE(in.AtEnd());
}

TEST(SerializeTest, VectorsRoundTrip) {
  Serializer out;
  std::vector<float> floats{1.0f, -2.0f, 0.5f};
  std::vector<uint64_t> ints{9, 8, 7, 6};
  out.WriteFloatVector(floats);
  out.WriteU64Vector(ints);

  Deserializer in(out.bytes());
  std::vector<float> f2;
  std::vector<uint64_t> i2;
  ASSERT_TRUE(in.ReadFloatVector(&f2).ok());
  ASSERT_TRUE(in.ReadU64Vector(&i2).ok());
  EXPECT_EQ(f2, floats);
  EXPECT_EQ(i2, ints);
}

TEST(SerializeTest, EmptyVectorAndStringRoundTrip) {
  Serializer out;
  out.WriteString("");
  out.WriteFloatVector({});
  Deserializer in(out.bytes());
  std::string s = "junk";
  std::vector<float> v{1.0f};
  ASSERT_TRUE(in.ReadString(&s).ok());
  ASSERT_TRUE(in.ReadFloatVector(&v).ok());
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(v.empty());
}

TEST(SerializeTest, ReadPastEndFails) {
  Serializer out;
  out.WriteU32(1);
  Deserializer in(out.bytes());
  uint64_t v = 0;
  Status s = in.ReadU64(&v);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, TruncatedVectorFails) {
  Serializer out;
  out.WriteU64(1000);  // claims 1000 floats but provides none
  Deserializer in(out.bytes());
  std::vector<float> v;
  EXPECT_FALSE(in.ReadFloatVector(&v).ok());
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/simcard_serialize_test.bin";
  Serializer out;
  out.WriteString("file payload");
  out.WriteF64(1.125);
  ASSERT_TRUE(out.SaveToFile(path).ok());

  auto in_or = Deserializer::FromFile(path);
  ASSERT_TRUE(in_or.ok()) << in_or.status().ToString();
  Deserializer in = std::move(in_or).value();
  std::string s;
  double d = 0;
  ASSERT_TRUE(in.ReadString(&s).ok());
  ASSERT_TRUE(in.ReadF64(&d).ok());
  EXPECT_EQ(s, "file payload");
  EXPECT_EQ(d, 1.125);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  auto in_or = Deserializer::FromFile("/nonexistent/simcard.bin");
  EXPECT_FALSE(in_or.ok());
  EXPECT_EQ(in_or.status().code(), StatusCode::kIoError);
}

TEST(SerializeTest, HugeClaimedLengthsRejectedWithoutAllocating) {
  // A corrupt 64-bit length must be validated against the bytes actually
  // present before resize(); otherwise a flipped bit means a multi-GB
  // allocation (or std::bad_alloc) instead of a Status.
  Serializer out;
  out.WriteU64(0xFFFFFFFFFFFFFFFFull);
  out.WriteU32(0);  // a little trailing data so remaining() > 0

  {
    Deserializer in(out.bytes());
    std::string s;
    EXPECT_EQ(in.ReadString(&s).code(), StatusCode::kOutOfRange);
  }
  {
    Deserializer in(out.bytes());
    std::vector<float> v;
    EXPECT_EQ(in.ReadFloatVector(&v).code(), StatusCode::kOutOfRange);
  }
  {
    Deserializer in(out.bytes());
    std::vector<uint64_t> v;
    EXPECT_EQ(in.ReadU64Vector(&v).code(), StatusCode::kOutOfRange);
  }
}

TEST(SerializeTest, ElementCountOverflowRejected) {
  // count * sizeof(elem) would wrap; the guard must compare in units that
  // cannot overflow.
  Serializer out;
  out.WriteU64(0x2000000000000001ull);  // * 8 wraps to 8
  out.WriteU64(0);
  Deserializer in(out.bytes());
  std::vector<uint64_t> v;
  EXPECT_EQ(in.ReadU64Vector(&v).code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, SaveIsAtomic) {
  // A failed write must leave the previous file contents intact and no
  // .tmp file behind: SaveToFile writes <path>.tmp then renames.
  const std::string path = testing::TempDir() + "/simcard_atomic_test.bin";
  Serializer first;
  first.WriteString("original");
  ASSERT_TRUE(first.SaveToFile(path).ok());

  fault::FaultConfig config;
  config.sites = "io.save";
  fault::Configure(config);
  Serializer second;
  second.WriteString("replacement");
  Status st = second.SaveToFile(path);
  fault::Disable();
  EXPECT_FALSE(st.ok());

  // Original survives; no temp file is left behind.
  auto in_or = Deserializer::FromFile(path);
  ASSERT_TRUE(in_or.ok());
  std::string s;
  Deserializer in = std::move(in_or).value();
  ASSERT_TRUE(in.ReadString(&s).ok());
  EXPECT_EQ(s, "original");
  FILE* tmp = fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) fclose(tmp);
  std::remove(path.c_str());
}

TEST(SerializeTest, InjectedLoadFaultSurfacesAsStatus) {
  const std::string path = testing::TempDir() + "/simcard_load_fault.bin";
  Serializer out;
  out.WriteU32(42);
  ASSERT_TRUE(out.SaveToFile(path).ok());

  fault::FaultConfig config;
  config.sites = "io.load";
  fault::Configure(config);
  auto in_or = Deserializer::FromFile(path);
  fault::Disable();
  EXPECT_FALSE(in_or.ok());
  EXPECT_EQ(in_or.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace simcard
