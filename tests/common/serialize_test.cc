#include "common/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace simcard {
namespace {

TEST(SerializeTest, PrimitivesRoundTrip) {
  Serializer out;
  out.WriteU32(7);
  out.WriteU64(1ULL << 40);
  out.WriteI64(-12345);
  out.WriteF32(3.5f);
  out.WriteF64(-2.25);
  out.WriteString("hello world");

  Deserializer in(out.bytes());
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  float f32 = 0;
  double f64 = 0;
  std::string s;
  ASSERT_TRUE(in.ReadU32(&u32).ok());
  ASSERT_TRUE(in.ReadU64(&u64).ok());
  ASSERT_TRUE(in.ReadI64(&i64).ok());
  ASSERT_TRUE(in.ReadF32(&f32).ok());
  ASSERT_TRUE(in.ReadF64(&f64).ok());
  ASSERT_TRUE(in.ReadString(&s).ok());
  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(u64, 1ULL << 40);
  EXPECT_EQ(i64, -12345);
  EXPECT_EQ(f32, 3.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_EQ(s, "hello world");
  EXPECT_TRUE(in.AtEnd());
}

TEST(SerializeTest, VectorsRoundTrip) {
  Serializer out;
  std::vector<float> floats{1.0f, -2.0f, 0.5f};
  std::vector<uint64_t> ints{9, 8, 7, 6};
  out.WriteFloatVector(floats);
  out.WriteU64Vector(ints);

  Deserializer in(out.bytes());
  std::vector<float> f2;
  std::vector<uint64_t> i2;
  ASSERT_TRUE(in.ReadFloatVector(&f2).ok());
  ASSERT_TRUE(in.ReadU64Vector(&i2).ok());
  EXPECT_EQ(f2, floats);
  EXPECT_EQ(i2, ints);
}

TEST(SerializeTest, EmptyVectorAndStringRoundTrip) {
  Serializer out;
  out.WriteString("");
  out.WriteFloatVector({});
  Deserializer in(out.bytes());
  std::string s = "junk";
  std::vector<float> v{1.0f};
  ASSERT_TRUE(in.ReadString(&s).ok());
  ASSERT_TRUE(in.ReadFloatVector(&v).ok());
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(v.empty());
}

TEST(SerializeTest, ReadPastEndFails) {
  Serializer out;
  out.WriteU32(1);
  Deserializer in(out.bytes());
  uint64_t v = 0;
  Status s = in.ReadU64(&v);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, TruncatedVectorFails) {
  Serializer out;
  out.WriteU64(1000);  // claims 1000 floats but provides none
  Deserializer in(out.bytes());
  std::vector<float> v;
  EXPECT_FALSE(in.ReadFloatVector(&v).ok());
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/simcard_serialize_test.bin";
  Serializer out;
  out.WriteString("file payload");
  out.WriteF64(1.125);
  ASSERT_TRUE(out.SaveToFile(path).ok());

  auto in_or = Deserializer::FromFile(path);
  ASSERT_TRUE(in_or.ok()) << in_or.status().ToString();
  Deserializer in = std::move(in_or).value();
  std::string s;
  double d = 0;
  ASSERT_TRUE(in.ReadString(&s).ok());
  ASSERT_TRUE(in.ReadF64(&d).ok());
  EXPECT_EQ(s, "file payload");
  EXPECT_EQ(d, 1.125);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  auto in_or = Deserializer::FromFile("/nonexistent/simcard.bin");
  EXPECT_FALSE(in_or.ok());
  EXPECT_EQ(in_or.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace simcard
