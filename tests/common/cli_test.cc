#include "common/cli.h"

#include <gtest/gtest.h>

#include <vector>

namespace simcard {
namespace {

CommandLine MustParse(std::vector<const char*> argv,
                      std::vector<std::string> known) {
  auto result = CommandLine::Parse(static_cast<int>(argv.size()),
                                   const_cast<char**>(argv.data()), known);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

TEST(CliTest, ParsesEqualsForm) {
  auto cl = MustParse({"prog", "--scale=small", "--segments=32"},
                      {"scale", "segments"});
  EXPECT_EQ(cl.GetString("scale", ""), "small");
  EXPECT_EQ(cl.GetInt("segments", 0), 32);
}

TEST(CliTest, ParsesSpaceForm) {
  auto cl = MustParse({"prog", "--scale", "tiny"}, {"scale"});
  EXPECT_EQ(cl.GetString("scale", ""), "tiny");
}

TEST(CliTest, BareFlagIsTrue) {
  auto cl = MustParse({"prog", "--verbose"}, {"verbose"});
  EXPECT_TRUE(cl.GetBool("verbose", false));
}

TEST(CliTest, UnknownFlagFails) {
  const char* argv[] = {"prog", "--nope=1"};
  auto result = CommandLine::Parse(2, const_cast<char**>(argv), {"scale"});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CliTest, FallbacksWhenAbsent) {
  auto cl = MustParse({"prog"}, {"scale", "n", "x", "flag"});
  EXPECT_EQ(cl.GetString("scale", "small"), "small");
  EXPECT_EQ(cl.GetInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(cl.GetDouble("x", 2.5), 2.5);
  EXPECT_TRUE(cl.GetBool("flag", true));
  EXPECT_FALSE(cl.Has("scale"));
}

TEST(CliTest, ParsesDouble) {
  auto cl = MustParse({"prog", "--sigma=0.25"}, {"sigma"});
  EXPECT_DOUBLE_EQ(cl.GetDouble("sigma", 0.0), 0.25);
}

TEST(CliTest, ParsesStringList) {
  auto cl = MustParse({"prog", "--datasets=a,b,c"}, {"datasets"});
  auto list = cl.GetStringList("datasets", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "a");
  EXPECT_EQ(list[2], "c");
}

TEST(CliTest, StringListFallback) {
  auto cl = MustParse({"prog"}, {"datasets"});
  auto list = cl.GetStringList("datasets", {"x", "y"});
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[1], "y");
}

TEST(CliTest, BenchmarkFlagsArePassedThrough) {
  auto cl = MustParse({"prog", "--benchmark_filter=abc", "--scale=tiny"},
                      {"scale"});
  EXPECT_EQ(cl.GetString("scale", ""), "tiny");
}

TEST(CliTest, BoolParsesVariants) {
  auto cl = MustParse({"prog", "--a=true", "--b=1", "--c=yes", "--d=false"},
                      {"a", "b", "c", "d"});
  EXPECT_TRUE(cl.GetBool("a", false));
  EXPECT_TRUE(cl.GetBool("b", false));
  EXPECT_TRUE(cl.GetBool("c", false));
  EXPECT_FALSE(cl.GetBool("d", true));
}

}  // namespace
}  // namespace simcard
