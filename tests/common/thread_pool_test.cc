#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace simcard {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter(0);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter(0);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter(0);
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelForTest, CoversEntireRange) {
  std::vector<int> hits(10000, 0);
  ParallelFor(0, hits.size(), [&](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, RespectsOffsets) {
  std::vector<int> hits(100, 0);
  ParallelFor(10, 20, [&](size_t i) { hits[i]++; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], (i >= 10 && i < 20) ? 1 : 0) << "index " << i;
  }
}

TEST(ParallelForTest, NestedCallsDoNotDeadlock) {
  std::atomic<int> counter(0);
  ParallelFor(
      0, 2000,
      [&](size_t) {
        // Nested ParallelFor must fall back to inline execution on pool
        // workers rather than deadlocking on Wait().
        ParallelFor(0, 4, [&](size_t) { counter.fetch_add(1); }, 1);
      },
      1);
  EXPECT_EQ(counter.load(), 8000);
}

TEST(ParallelForTest, SmallRangeRunsInline) {
  // With min_chunk larger than the range the body runs on this thread.
  std::thread::id main_id = std::this_thread::get_id();
  std::vector<std::thread::id> ids(8);
  ParallelFor(0, ids.size(),
              [&](size_t i) { ids[i] = std::this_thread::get_id(); }, 256);
  for (const auto& id : ids) EXPECT_EQ(id, main_id);
}

}  // namespace
}  // namespace simcard
