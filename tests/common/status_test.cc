#include "common/status.h"

#include <gtest/gtest.h>

namespace simcard {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Internal("e"), StatusCode::kInternal, "Internal"},
      {Status::IoError("f"), StatusCode::kIoError, "IoError"},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented,
       "Unimplemented"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeName(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::InvalidArgument("bad dimension");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dimension");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, NonDefaultConstructibleValueWorks) {
  struct NoDefault {
    explicit NoDefault(int x) : x(x) {}
    int x;
  };
  Result<NoDefault> ok_result(NoDefault(3));
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value().x, 3);
  Result<NoDefault> err_result(Status::Internal("boom"));
  EXPECT_FALSE(err_result.ok());
}

Status FailingHelper() { return Status::Internal("inner"); }

Status UsesReturnIfError() {
  SIMCARD_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = UsesReturnIfError();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace simcard
