#include "common/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace simcard {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const int64_t micros = watch.ElapsedMicros();
  EXPECT_GE(micros, 15000);
  EXPECT_LT(micros, 2000000);  // generous upper bound for loaded machines
}

TEST(StopwatchTest, UnitsAgree) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const int64_t micros = watch.ElapsedMicros();
  const double millis = watch.ElapsedMillis();
  const double seconds = watch.ElapsedSeconds();
  EXPECT_NEAR(millis, micros / 1000.0, 2.0);
  EXPECT_NEAR(seconds, micros / 1e6, 0.002);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watch.Restart();
  EXPECT_LT(watch.ElapsedMicros(), 8000);
}

TEST(StopwatchTest, MonotoneNonDecreasing) {
  Stopwatch watch;
  int64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const int64_t now = watch.ElapsedMicros();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace simcard
