#include "common/checked_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace simcard {
namespace {

std::vector<uint8_t> TwoSectionContainer() {
  CheckedFileWriter writer;
  Serializer* alpha = writer.AddSection("alpha");
  alpha->WriteString("alpha payload");
  alpha->WriteU64(17);
  Serializer* beta = writer.AddSection("beta");
  beta->WriteFloatVector({1.0f, 2.0f, 3.0f});
  return writer.Assemble();
}

TEST(CheckedFileTest, RoundTrip) {
  auto reader_or = CheckedFileReader::FromBytes(TwoSectionContainer());
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  const CheckedFileReader& reader = reader_or.value();
  ASSERT_EQ(reader.sections().size(), 2u);
  EXPECT_TRUE(reader.HasSection("alpha"));
  EXPECT_TRUE(reader.HasSection("beta"));
  EXPECT_FALSE(reader.HasSection("gamma"));
  EXPECT_TRUE(reader.VerifyAll().ok());

  auto alpha_or = reader.OpenSection("alpha");
  ASSERT_TRUE(alpha_or.ok());
  Deserializer alpha = std::move(alpha_or).value();
  std::string s;
  uint64_t v = 0;
  ASSERT_TRUE(alpha.ReadString(&s).ok());
  ASSERT_TRUE(alpha.ReadU64(&v).ok());
  EXPECT_EQ(s, "alpha payload");
  EXPECT_EQ(v, 17u);
  EXPECT_TRUE(alpha.AtEnd());

  EXPECT_EQ(reader.OpenSection("gamma").status().code(),
            StatusCode::kNotFound);
}

TEST(CheckedFileTest, EmptyContainerAndEmptySectionRoundTrip) {
  {
    CheckedFileWriter writer;
    auto reader_or = CheckedFileReader::FromBytes(writer.Assemble());
    ASSERT_TRUE(reader_or.ok());
    EXPECT_TRUE(reader_or.value().sections().empty());
  }
  {
    CheckedFileWriter writer;
    writer.AddSection("empty");
    auto reader_or = CheckedFileReader::FromBytes(writer.Assemble());
    ASSERT_TRUE(reader_or.ok());
    auto sec_or = reader_or.value().OpenSection("empty");
    ASSERT_TRUE(sec_or.ok());
    EXPECT_TRUE(sec_or.value().AtEnd());
  }
}

TEST(CheckedFileTest, PayloadBitFlipIsDetected) {
  const auto clean = TwoSectionContainer();
  auto reader_or = CheckedFileReader::FromBytes(clean);
  ASSERT_TRUE(reader_or.ok());
  // Flip one bit in every payload byte of every section; OpenSection must
  // report a checksum mismatch each time (the header still parses).
  for (const auto& info : reader_or.value().sections()) {
    for (size_t off = info.offset; off < info.offset + info.size; ++off) {
      auto bytes = clean;
      bytes[off] ^= 0x01;
      auto flipped_or = CheckedFileReader::FromBytes(bytes);
      ASSERT_TRUE(flipped_or.ok());  // header untouched
      Status st = flipped_or.value().OpenSection(info.name).status();
      EXPECT_FALSE(st.ok()) << info.name << " offset " << off;
      EXPECT_NE(st.ToString().find("checksum"), std::string::npos);
      EXPECT_FALSE(flipped_or.value().VerifyAll().ok());
    }
  }
}

TEST(CheckedFileTest, HeaderBitFlipIsDetected) {
  const auto clean = TwoSectionContainer();
  const size_t payload_start = CheckedFileReader::FromBytes(clean)
                                   .value()
                                   .sections()[0]
                                   .offset;
  // Bytes 0..7 are the magic (flips there read as "not a checked file");
  // every other header byte must trip the version check or the header CRC.
  for (size_t off = sizeof("SIMCKV2"); off < payload_start; ++off) {
    auto bytes = clean;
    bytes[off] ^= 0x80;
    EXPECT_FALSE(CheckedFileReader::FromBytes(bytes).ok()) << "offset " << off;
  }
}

TEST(CheckedFileTest, TruncationIsDetected) {
  const auto clean = TwoSectionContainer();
  for (size_t keep = 0; keep < clean.size(); ++keep) {
    std::vector<uint8_t> cut(clean.begin(), clean.begin() + keep);
    auto reader_or = CheckedFileReader::FromBytes(cut);
    if (!reader_or.ok()) continue;  // header already rejected it
    // Header may survive if the cut only removed payload bytes — but then
    // no section past the cut may verify.
    EXPECT_FALSE(reader_or.value().VerifyAll().ok()) << "kept " << keep;
  }
}

TEST(CheckedFileTest, TrailingBytesAreIgnored) {
  auto bytes = TwoSectionContainer();
  bytes.push_back(0xEE);
  bytes.push_back(0xFF);
  auto reader_or = CheckedFileReader::FromBytes(bytes);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  EXPECT_TRUE(reader_or.value().VerifyAll().ok());
}

TEST(CheckedFileTest, LooksCheckedProbe) {
  EXPECT_TRUE(CheckedFileReader::LooksChecked(TwoSectionContainer()));
  EXPECT_FALSE(CheckedFileReader::LooksChecked({}));
  Serializer legacy;
  legacy.WriteString("simcard.gl.v1");
  EXPECT_FALSE(CheckedFileReader::LooksChecked(legacy.bytes()));
}

TEST(CheckedFileTest, SaveAndOpen) {
  const std::string path = testing::TempDir() + "/simcard_checked_test.bin";
  CheckedFileWriter writer;
  writer.AddSection("payload")->WriteString("on disk");
  ASSERT_TRUE(writer.Save(path).ok());
  auto reader_or = CheckedFileReader::Open(path);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  auto sec_or = reader_or.value().OpenSection("payload");
  ASSERT_TRUE(sec_or.ok());
  std::string s;
  Deserializer sec = std::move(sec_or).value();
  ASSERT_TRUE(sec.ReadString(&s).ok());
  EXPECT_EQ(s, "on disk");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace simcard
