#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace simcard {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The standard CRC-32 (IEEE 802.3) check value.
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check.data(), check.size()), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  const std::string a = "a";
  EXPECT_EQ(Crc32(a.data(), a.size()), 0xE8B7BE43u);
}

TEST(Crc32Test, ChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{10}, data.size()}) {
    const uint32_t first = Crc32(data.data(), split);
    const uint32_t chained =
        Crc32(data.data() + split, data.size() - split, first);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(256);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7 + 3);
  }
  const uint32_t clean = Crc32(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); byte += 13) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<uint8_t>(1 << bit);
      EXPECT_NE(Crc32(data.data(), data.size()), clean)
          << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<uint8_t>(1 << bit);
    }
  }
}

}  // namespace
}  // namespace simcard
