#include "eval/reporter.h"

#include <gtest/gtest.h>

#include <sstream>

namespace simcard {
namespace {

TEST(FormatPaperNumberTest, SignificantDigitsByMagnitude) {
  EXPECT_EQ(FormatPaperNumber(2.3456), "2.35");
  EXPECT_EQ(FormatPaperNumber(19.73), "19.7");
  EXPECT_EQ(FormatPaperNumber(111.4), "111");
  EXPECT_EQ(FormatPaperNumber(3526.0), "3526");
  EXPECT_EQ(FormatPaperNumber(0.25), "0.25");
}

TEST(TableReporterTest, AlignedOutput) {
  TableReporter table({"Method", "Mean"});
  table.AddRow({"GL+", "2.34"});
  table.AddRow({"Sampling (1%)", "19.6"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Method"), std::string::npos);
  EXPECT_NE(text.find("Sampling (1%)"), std::string::npos);
  // All lines share the same width.
  std::istringstream lines(text);
  std::string line;
  size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TableReporterTest, SummaryRowUsesPaperColumns) {
  auto cols = SummaryColumns("Method");
  ASSERT_EQ(cols.size(), 7u);
  EXPECT_EQ(cols[0], "Method");
  EXPECT_EQ(cols[1], "Mean");
  EXPECT_EQ(cols[6], "Max");

  TableReporter table(cols);
  ErrorSummary s;
  s.mean = 2.34;
  s.median = 1.09;
  s.p90 = 2.47;
  s.p95 = 4.32;
  s.p99 = 19.7;
  s.max = 111;
  table.AddSummaryRow("GL+", s);
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("2.34"), std::string::npos);
  EXPECT_NE(out.str().find("111"), std::string::npos);
}

TEST(TableReporterTest, ShortRowsPadded) {
  TableReporter table({"A", "B", "C"});
  table.AddRow({"x"});  // missing cells become empty
  std::ostringstream out;
  table.Print(out);
  SUCCEED();  // must not crash
}

}  // namespace
}  // namespace simcard
