#include "eval/harness.h"

#include <gtest/gtest.h>

namespace simcard {
namespace {

TEST(HarnessTest, BuildEnvironmentWiresEverything) {
  EnvOptions opts;
  opts.num_segments = 5;
  auto env_or = BuildEnvironment("imagenet-sim", Scale::kTiny, opts);
  ASSERT_TRUE(env_or.ok());
  const ExperimentEnv& env = env_or.value();
  EXPECT_EQ(env.spec.name, "imagenet-sim");
  EXPECT_EQ(env.dataset.size(), env.spec.num_points);
  EXPECT_LE(env.segmentation.num_segments(), 5u);
  EXPECT_EQ(env.workload.train.size(), env.spec.train_queries);
  EXPECT_EQ(env.workload.test.size(), env.spec.test_queries);
}

TEST(HarnessTest, BuildEnvironmentUnknownDatasetFails) {
  EXPECT_FALSE(BuildEnvironment("nope", Scale::kTiny, EnvOptions()).ok());
}

TEST(HarnessTest, QueryOverridesRespected) {
  EnvOptions opts;
  opts.num_segments = 4;
  opts.train_queries_override = 30;
  opts.test_queries_override = 8;
  auto env = std::move(
      BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  EXPECT_EQ(env.workload.train.size(), 30u);
  EXPECT_EQ(env.workload.test.size(), 8u);
}

TEST(HarnessTest, MakeEstimatorByNameCoversTable2) {
  for (const char* name :
       {"GL+", "Local+", "GL-CNN", "GL-MLP", "QES", "MLP", "CardNet",
        "Kernel-based", "Sampling (1%)", "Sampling (10%)", "CNNJoin",
        "GLJoin", "GLJoin+"}) {
    auto est = MakeEstimatorByName(name, Scale::kTiny);
    ASSERT_TRUE(est.ok()) << name;
    EXPECT_EQ(est.value()->Name(), name);
  }
  EXPECT_FALSE(MakeEstimatorByName("DoesNotExist", Scale::kTiny).ok());
}

TEST(HarnessTest, SamplingEqualRequiresTargetBytes) {
  EXPECT_FALSE(MakeEstimatorByName("Sampling (equal)", Scale::kTiny).ok());
  auto est = MakeEstimatorByName("Sampling (equal)", Scale::kTiny, 1 << 16);
  ASSERT_TRUE(est.ok());
}

TEST(HarnessTest, EvaluateSearchProducesConsistentSummaries) {
  EnvOptions opts;
  opts.num_segments = 4;
  auto env = std::move(
      BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  auto est = std::move(
      MakeEstimatorByName("Sampling (10%)", Scale::kTiny).value());
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est->Train(ctx).ok());
  EvalResult result = EvaluateSearch(est.get(), env.workload);
  const size_t expected_samples =
      env.workload.test.size() * env.workload.test[0].thresholds.size();
  EXPECT_EQ(result.qerrors.size(), expected_samples);
  EXPECT_EQ(result.mapes.size(), expected_samples);
  EXPECT_EQ(result.qerror.count, expected_samples);
  EXPECT_GE(result.qerror.max, result.qerror.median);
  EXPECT_GE(result.qerror.median, 1.0);
  EXPECT_GE(result.mean_latency_ms, 0.0);
}

TEST(HarnessTest, TrainContextBorrowsEnvironment) {
  EnvOptions opts;
  opts.num_segments = 4;
  auto env = std::move(
      BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  TrainContext ctx = MakeTrainContext(env);
  EXPECT_EQ(ctx.dataset, &env.dataset);
  EXPECT_EQ(ctx.workload, &env.workload);
  EXPECT_EQ(ctx.segmentation, &env.segmentation);
}

}  // namespace
}  // namespace simcard
