// EvaluateJoin-specific harness coverage (EvaluateSearch is covered in
// harness_test.cc).
#include <gtest/gtest.h>

#include "eval/harness.h"

namespace simcard {
namespace {

struct SharedJoinEval {
  ExperimentEnv env;
  JoinWorkload joins;
  std::unique_ptr<Estimator> estimator;
};

const SharedJoinEval& Shared() {
  static const SharedJoinEval* shared = [] {
    auto* out = new SharedJoinEval;
    EnvOptions opts;
    opts.num_segments = 4;
    out->env = std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
    JoinWorkloadOptions jopts;
    jopts.num_train_sets = 4;
    jopts.num_test_sets = 2;
    jopts.thresholds_per_set = 3;
    out->joins = BuildJoinWorkload(out->env.workload,
                                   out->env.segmentation.num_segments(),
                                   jopts)
                     .value();
    out->estimator = std::move(
        MakeEstimatorByName("Sampling (10%)", Scale::kTiny).value());
    TrainContext ctx = MakeTrainContext(out->env);
    EXPECT_TRUE(out->estimator->Train(ctx).ok());
    return out;
  }();
  return *shared;
}

TEST(EvaluateJoinTest, CountsMatchSets) {
  const auto& s = Shared();
  EvalResult result = EvaluateJoin(s.estimator.get(), s.env.workload,
                                   s.joins.test_buckets[0]);
  EXPECT_EQ(result.qerrors.size(), s.joins.test_buckets[0].size());
  EXPECT_EQ(result.qerror.count, s.joins.test_buckets[0].size());
  EXPECT_GE(result.qerror.median, 1.0);
}

TEST(EvaluateJoinTest, EmptySetListYieldsEmptySummary) {
  const auto& s = Shared();
  EvalResult result = EvaluateJoin(s.estimator.get(), s.env.workload, {});
  EXPECT_EQ(result.qerror.count, 0u);
  EXPECT_EQ(result.mean_latency_ms, 0.0);
}

TEST(EvaluateJoinTest, TrainSetsResolveAgainstTrainQueries) {
  // Train-side join sets index the train query matrix; evaluating them must
  // not touch the (smaller) test matrix.
  const auto& s = Shared();
  EvalResult result =
      EvaluateJoin(s.estimator.get(), s.env.workload, s.joins.train);
  EXPECT_EQ(result.qerrors.size(), s.joins.train.size());
  for (double q : result.qerrors) EXPECT_GE(q, 1.0);
}

TEST(EvaluateJoinTest, SamplingJoinIsAccurateOnAggregates) {
  // The Table 7 observation: aggregating ~50-100 member estimates averages
  // sampling noise. At tiny scale (200-point sample, single-digit member
  // cards) the effect is muted, so the bound is loose; bench_table7 shows
  // the sharp version at small scale.
  const auto& s = Shared();
  EvalResult result = EvaluateJoin(s.estimator.get(), s.env.workload,
                                   s.joins.test_buckets[0]);
  EXPECT_LT(result.qerror.median, 8.0);
}

}  // namespace
}  // namespace simcard
