#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace simcard {
namespace {

TEST(QErrorTest, SymmetricRatio) {
  EXPECT_DOUBLE_EQ(QError(200, 100), 2.0);
  EXPECT_DOUBLE_EQ(QError(50, 100), 2.0);
  EXPECT_DOUBLE_EQ(QError(100, 100), 1.0);
}

TEST(QErrorTest, AlwaysAtLeastOne) {
  EXPECT_GE(QError(0.0, 0.0), 1.0);
  EXPECT_GE(QError(1e-9, 100), 1.0);
}

TEST(QErrorTest, ZeroFloorMatchesPaperConvention) {
  // Paper: "If min(est, card) = 0, we set it with a small value, e.g. 0.1".
  EXPECT_DOUBLE_EQ(QError(0.0, 10.0), 100.0);
  EXPECT_DOUBLE_EQ(QError(10.0, 0.0), 100.0);
}

TEST(MapeTest, RelativeError) {
  EXPECT_DOUBLE_EQ(Mape(150, 100), 0.5);
  EXPECT_DOUBLE_EQ(Mape(50, 100), 0.5);
  EXPECT_DOUBLE_EQ(Mape(100, 100), 0.0);
}

TEST(MapeTest, ZeroTruthUsesFloor) {
  EXPECT_DOUBLE_EQ(Mape(1.0, 0.0), 10.0);
}

TEST(SummarizeTest, EmptyInput) {
  ErrorSummary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  ErrorSummary s = Summarize({3.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 3.0);
  EXPECT_EQ(s.median, 3.0);
  EXPECT_EQ(s.max, 3.0);
}

TEST(SummarizeTest, KnownDistribution) {
  std::vector<double> errors;
  for (int i = 1; i <= 100; ++i) errors.push_back(i);
  ErrorSummary s = Summarize(errors);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.median, 50.5, 0.01);
  EXPECT_NEAR(s.p90, 90.1, 0.5);
  EXPECT_NEAR(s.p95, 95.05, 0.5);
  EXPECT_NEAR(s.p99, 99.01, 0.5);
  EXPECT_EQ(s.max, 100.0);
}

TEST(SummarizeTest, OrderIndependent) {
  ErrorSummary a = Summarize({5, 1, 3, 2, 4});
  ErrorSummary b = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.mean, b.mean);
}

}  // namespace
}  // namespace simcard
