#include "cluster/dbscan.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace simcard {
namespace {

Matrix TwoBlobs(size_t per_blob, Rng* rng) {
  Matrix m(per_blob * 2, 2);
  for (size_t b = 0; b < 2; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      const size_t r = b * per_blob + i;
      m.at(r, 0) = (b == 0 ? 0.0f : 20.0f) +
                   0.3f * static_cast<float>(rng->NextGaussian());
      m.at(r, 1) = 0.3f * static_cast<float>(rng->NextGaussian());
    }
  }
  return m;
}

TEST(DbscanTest, RejectsBadInputs) {
  DbscanOptions opts;
  size_t n = 0;
  EXPECT_FALSE(DbscanSegment(Matrix(), opts, &n).ok());
  Matrix data(5, 2);
  opts.eps = 0.0f;
  EXPECT_FALSE(DbscanSegment(data, opts, &n).ok());
}

TEST(DbscanTest, SeparatesTwoBlobs) {
  Rng rng(1);
  Matrix data = TwoBlobs(150, &rng);
  DbscanOptions opts;
  opts.eps = 1.0f;
  opts.min_pts = 5;
  size_t num_segments = 0;
  auto assignment = DbscanSegment(data, opts, &num_segments).value();
  EXPECT_EQ(num_segments, 2u);
  std::set<uint32_t> first(assignment.begin(), assignment.begin() + 150);
  std::set<uint32_t> second(assignment.begin() + 150, assignment.end());
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(second.size(), 1u);
  EXPECT_NE(*first.begin(), *second.begin());
}

TEST(DbscanTest, AllNoiseFallsBackToOneSegment) {
  // Points too sparse for any core point.
  Rng rng(2);
  Matrix data = Matrix::Gaussian(60, 2, 100.0f, &rng);
  DbscanOptions opts;
  opts.eps = 0.01f;
  opts.min_pts = 5;
  size_t num_segments = 0;
  auto assignment = DbscanSegment(data, opts, &num_segments).value();
  EXPECT_EQ(num_segments, 1u);
  for (uint32_t a : assignment) EXPECT_EQ(a, 0u);
}

TEST(DbscanTest, NoiseAssignedToNearestCluster) {
  Rng rng(3);
  Matrix data = TwoBlobs(100, &rng);
  // Add two isolated outliers near each blob.
  Matrix with_outliers(202, 2);
  for (size_t r = 0; r < 200; ++r) {
    with_outliers.at(r, 0) = data.at(r, 0);
    with_outliers.at(r, 1) = data.at(r, 1);
  }
  with_outliers.at(200, 0) = 3.0f;   // nearer blob 0
  with_outliers.at(201, 0) = 17.0f;  // nearer blob 1
  DbscanOptions opts;
  opts.eps = 1.0f;
  opts.min_pts = 5;
  size_t num_segments = 0;
  auto assignment = DbscanSegment(with_outliers, opts, &num_segments).value();
  ASSERT_EQ(num_segments, 2u);
  EXPECT_EQ(assignment[200], assignment[0]);
  EXPECT_EQ(assignment[201], assignment[150]);
}

TEST(DbscanTest, SubsamplingStillCoversAllRows) {
  Rng rng(4);
  Matrix data = TwoBlobs(2000, &rng);  // above max_core_rows
  DbscanOptions opts;
  opts.eps = 1.0f;
  opts.min_pts = 5;
  opts.max_core_rows = 500;
  size_t num_segments = 0;
  auto assignment = DbscanSegment(data, opts, &num_segments).value();
  EXPECT_EQ(assignment.size(), 4000u);
  EXPECT_EQ(num_segments, 2u);
}

}  // namespace
}  // namespace simcard
