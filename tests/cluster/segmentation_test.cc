#include "cluster/segmentation.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace simcard {
namespace {

Dataset TinyClustered(uint64_t seed = 5) {
  return MakeAnalogDataset("glove-sim", Scale::kTiny, seed).value();
}

TEST(SegmentationMethodTest, NamesRoundTrip) {
  for (SegmentationMethod m :
       {SegmentationMethod::kPcaKMeans, SegmentationMethod::kLsh,
        SegmentationMethod::kDbscan}) {
    auto parsed = ParseSegmentationMethod(SegmentationMethodName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), m);
  }
  EXPECT_FALSE(ParseSegmentationMethod("foo").ok());
}

TEST(SegmentationTest, RejectsBadInputs) {
  SegmentationOptions opts;
  EXPECT_FALSE(SegmentData(Dataset(), opts).ok());
  Dataset d = TinyClustered();
  opts.target_segments = 0;
  EXPECT_FALSE(SegmentData(d, opts).ok());
}

TEST(SegmentationTest, PartitionIsComplete) {
  Dataset d = TinyClustered();
  SegmentationOptions opts;
  opts.target_segments = 8;
  auto seg = SegmentData(d, opts).value();
  EXPECT_LE(seg.num_segments(), 8u);
  EXPECT_GE(seg.num_segments(), 2u);
  EXPECT_EQ(seg.assignment.size(), d.size());
  size_t total = 0;
  for (size_t s = 0; s < seg.num_segments(); ++s) {
    EXPECT_FALSE(seg.members[s].empty()) << "empty segment " << s;
    total += seg.members[s].size();
    for (uint32_t idx : seg.members[s]) {
      EXPECT_EQ(seg.assignment[idx], s);
    }
  }
  EXPECT_EQ(total, d.size());
}

TEST(SegmentationTest, SingleSegmentTrivial) {
  Dataset d = TinyClustered();
  SegmentationOptions opts;
  opts.target_segments = 1;
  auto seg = SegmentData(d, opts).value();
  EXPECT_EQ(seg.num_segments(), 1u);
  EXPECT_EQ(seg.members[0].size(), d.size());
}

TEST(SegmentationTest, RadiusCoversMembers) {
  Dataset d = TinyClustered();
  SegmentationOptions opts;
  opts.target_segments = 6;
  auto seg = SegmentData(d, opts).value();
  for (size_t s = 0; s < seg.num_segments(); ++s) {
    for (uint32_t idx : seg.members[s]) {
      const float dist = Distance(d.Point(idx), seg.centroids.Row(s), d.dim(),
                                  d.metric());
      EXPECT_LE(dist, seg.radius[s] + 1e-5f);
    }
  }
}

TEST(SegmentationTest, CentroidDistancesWidth) {
  Dataset d = TinyClustered();
  SegmentationOptions opts;
  opts.target_segments = 5;
  auto seg = SegmentData(d, opts).value();
  auto xc = seg.CentroidDistances(d.Point(0), d.dim(), d.metric());
  EXPECT_EQ(xc.size(), seg.num_segments());
  for (float v : xc) EXPECT_GE(v, 0.0f);
}

TEST(SegmentationTest, NearestSegmentAgreesWithOwnAssignmentMostly) {
  Dataset d = TinyClustered();
  SegmentationOptions opts;
  opts.target_segments = 8;
  auto seg = SegmentData(d, opts).value();
  size_t agree = 0;
  const size_t probes = 200;
  for (size_t i = 0; i < probes; ++i) {
    if (seg.NearestSegment(d.Point(i), d.dim(), d.metric()) ==
        seg.assignment[i]) {
      ++agree;
    }
  }
  // K-means in PCA space vs centroid distance in original space mostly
  // agree on clustered data.
  EXPECT_GT(agree, probes * 6 / 10);
}

TEST(SegmentationTest, AddPointUpdatesState) {
  Dataset d = TinyClustered();
  SegmentationOptions opts;
  opts.target_segments = 4;
  auto seg = SegmentData(d, opts).value();
  const size_t target = 2;
  const size_t before = seg.members[target].size();
  std::vector<float> point(seg.centroids.Row(target),
                           seg.centroids.Row(target) + d.dim());
  const uint32_t new_index = static_cast<uint32_t>(d.size());
  seg.AddPoint(target, new_index, point.data(), d.dim(), d.metric());
  EXPECT_EQ(seg.members[target].size(), before + 1);
  EXPECT_EQ(seg.assignment[new_index], target);
}

TEST(SegmentationTest, AllMethodsProducePartitions) {
  Dataset d = TinyClustered();
  for (SegmentationMethod m :
       {SegmentationMethod::kPcaKMeans, SegmentationMethod::kLsh,
        SegmentationMethod::kDbscan}) {
    SegmentationOptions opts;
    opts.target_segments = 8;
    opts.method = m;
    auto seg_or = SegmentData(d, opts);
    ASSERT_TRUE(seg_or.ok()) << SegmentationMethodName(m);
    const auto& seg = seg_or.value();
    size_t total = 0;
    for (const auto& members : seg.members) total += members.size();
    EXPECT_EQ(total, d.size()) << SegmentationMethodName(m);
  }
}

TEST(SegmentationTest, PcaKMeansCohesionBeatsLsh) {
  // The paper's stated reason for choosing PCA+K-means (Section 3.3).
  Dataset d = TinyClustered();
  SegmentationOptions opts;
  opts.target_segments = 8;
  auto km = SegmentData(d, opts).value();
  opts.method = SegmentationMethod::kLsh;
  auto lsh = SegmentData(d, opts).value();
  const double km_score = SegmentationCohesion(d, km, 300, 1);
  const double lsh_score = SegmentationCohesion(d, lsh, 300, 1);
  EXPECT_GT(km_score, lsh_score);
}

}  // namespace
}  // namespace simcard
