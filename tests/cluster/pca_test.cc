#include "cluster/pca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/metric.h"

namespace simcard {
namespace {

// Data with variance concentrated along a known direction.
Matrix AnisotropicData(size_t n, size_t d, Rng* rng) {
  Matrix m(n, d);
  for (size_t r = 0; r < n; ++r) {
    const float main_axis = 10.0f * static_cast<float>(rng->NextGaussian());
    for (size_t c = 0; c < d; ++c) {
      m.at(r, c) = 0.1f * static_cast<float>(rng->NextGaussian());
    }
    m.at(r, 0) += main_axis;        // dominant direction e0
    m.at(r, 1) += 0.5f * main_axis; // correlated
  }
  return m;
}

TEST(PcaTest, RejectsEmptyData) {
  PcaOptions opts;
  EXPECT_FALSE(FitPca(Matrix(), opts).ok());
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  Rng rng(1);
  Matrix data = AnisotropicData(500, 10, &rng);
  PcaOptions opts;
  opts.num_components = 4;
  auto model = FitPca(data, opts).value();
  const Matrix& c = model.components;
  for (size_t i = 0; i < c.cols(); ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double dot = 0;
      for (size_t r = 0; r < c.rows(); ++r) {
        dot += static_cast<double>(c.at(r, i)) * c.at(r, j);
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-3) << i << "," << j;
    }
  }
}

TEST(PcaTest, FirstComponentAlignsWithDominantDirection) {
  Rng rng(2);
  Matrix data = AnisotropicData(1000, 8, &rng);
  PcaOptions opts;
  opts.num_components = 2;
  auto model = FitPca(data, opts).value();
  // The dominant direction is (1, 0.5, 0, ...)/norm.
  float expected[8] = {0};
  expected[0] = 1.0f;
  expected[1] = 0.5f;
  NormalizeRow(expected, 8);
  double dot = 0;
  for (size_t r = 0; r < 8; ++r) {
    dot += static_cast<double>(model.components.at(r, 0)) * expected[r];
  }
  EXPECT_GT(std::fabs(dot), 0.99);
}

TEST(PcaTest, EigenvaluesDescending) {
  Rng rng(3);
  Matrix data = AnisotropicData(800, 6, &rng);
  PcaOptions opts;
  opts.num_components = 3;
  auto model = FitPca(data, opts).value();
  EXPECT_GE(model.explained_variance[0], model.explained_variance[1]);
  EXPECT_GE(model.explained_variance[1], model.explained_variance[2]);
  EXPECT_GT(model.explained_variance[0], 10.0f);  // dominant axis var ~100
}

TEST(PcaTest, ProjectReducesDimension) {
  Rng rng(4);
  Matrix data = AnisotropicData(200, 12, &rng);
  PcaOptions opts;
  opts.num_components = 5;
  auto model = FitPca(data, opts).value();
  Matrix projected = model.Project(data);
  EXPECT_EQ(projected.rows(), 200u);
  EXPECT_EQ(projected.cols(), 5u);
}

TEST(PcaTest, ProjectRowMatchesBatchProject) {
  Rng rng(5);
  Matrix data = AnisotropicData(100, 7, &rng);
  PcaOptions opts;
  opts.num_components = 3;
  auto model = FitPca(data, opts).value();
  Matrix batch = model.Project(data);
  std::vector<float> row(3);
  for (size_t r = 0; r < 10; ++r) {
    model.ProjectRow(data.Row(r), row.data());
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(row[c], batch.at(r, c), 1e-4f);
    }
  }
}

TEST(PcaTest, ComponentCountClampedToDim) {
  Rng rng(6);
  Matrix data = AnisotropicData(100, 4, &rng);
  PcaOptions opts;
  opts.num_components = 99;
  auto model = FitPca(data, opts).value();
  EXPECT_EQ(model.output_dim(), 4u);
}

TEST(PcaTest, DeterministicForSeed) {
  Rng rng(7);
  Matrix data = AnisotropicData(300, 6, &rng);
  PcaOptions opts;
  opts.num_components = 2;
  opts.seed = 42;
  auto a = FitPca(data, opts).value();
  auto b = FitPca(data, opts).value();
  EXPECT_TRUE(a.components.AllClose(b.components, 0.0f));
}

}  // namespace
}  // namespace simcard
