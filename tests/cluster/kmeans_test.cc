#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include <set>

#include "dist/metric.h"

namespace simcard {
namespace {

// Four well-separated blobs in 2-D.
Matrix FourBlobs(size_t per_blob, Rng* rng) {
  const float centers[4][2] = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
  Matrix m(per_blob * 4, 2);
  for (size_t b = 0; b < 4; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      const size_t r = b * per_blob + i;
      m.at(r, 0) = centers[b][0] + 0.3f * static_cast<float>(rng->NextGaussian());
      m.at(r, 1) = centers[b][1] + 0.3f * static_cast<float>(rng->NextGaussian());
    }
  }
  return m;
}

TEST(KMeansTest, RejectsBadInputs) {
  KMeansOptions opts;
  EXPECT_FALSE(MiniBatchKMeans(Matrix(), opts).ok());
  opts.k = 0;
  Matrix data(10, 2);
  EXPECT_FALSE(MiniBatchKMeans(data, opts).ok());
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Rng rng(1);
  Matrix data = FourBlobs(100, &rng);
  KMeansOptions opts;
  opts.k = 4;
  opts.seed = 3;
  auto result = MiniBatchKMeans(data, opts).value();
  // Points from the same blob share a cluster; different blobs differ.
  for (size_t b = 0; b < 4; ++b) {
    std::set<uint32_t> labels;
    for (size_t i = 0; i < 100; ++i) {
      labels.insert(result.assignment[b * 100 + i]);
    }
    EXPECT_EQ(labels.size(), 1u) << "blob " << b << " split across clusters";
  }
  std::set<uint32_t> blob_labels;
  for (size_t b = 0; b < 4; ++b) blob_labels.insert(result.assignment[b * 100]);
  EXPECT_EQ(blob_labels.size(), 4u);
}

TEST(KMeansTest, InertiaSmallOnTightBlobs) {
  Rng rng(2);
  Matrix data = FourBlobs(80, &rng);
  KMeansOptions opts;
  opts.k = 4;
  auto result = MiniBatchKMeans(data, opts).value();
  EXPECT_LT(result.inertia, 1.0);  // within-blob variance ~0.18
}

TEST(KMeansTest, AssignmentMatchesNearestCentroid) {
  Rng rng(3);
  Matrix data = FourBlobs(50, &rng);
  KMeansOptions opts;
  opts.k = 4;
  auto result = MiniBatchKMeans(data, opts).value();
  for (size_t i = 0; i < data.rows(); ++i) {
    EXPECT_EQ(result.assignment[i],
              NearestCentroid(result.centroids, data.Row(i)));
  }
}

TEST(KMeansTest, KClampedToDataSize) {
  Matrix data(3, 2);
  data.at(0, 0) = 1;
  data.at(1, 0) = 2;
  data.at(2, 0) = 3;
  KMeansOptions opts;
  opts.k = 10;
  auto result = MiniBatchKMeans(data, opts).value();
  EXPECT_EQ(result.centroids.rows(), 3u);
}

TEST(KMeansTest, DeterministicForSeed) {
  Rng rng(4);
  Matrix data = FourBlobs(60, &rng);
  KMeansOptions opts;
  opts.k = 4;
  opts.seed = 77;
  auto a = MiniBatchKMeans(data, opts).value();
  auto b = MiniBatchKMeans(data, opts).value();
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_TRUE(a.centroids.AllClose(b.centroids, 0.0f));
}

TEST(KMeansTest, DegenerateIdenticalPoints) {
  Matrix data = Matrix::Full(20, 3, 1.0f);
  KMeansOptions opts;
  opts.k = 4;
  auto result_or = MiniBatchKMeans(data, opts);
  ASSERT_TRUE(result_or.ok());
  EXPECT_NEAR(result_or.value().inertia, 0.0, 1e-9);
}

TEST(NearestCentroidTest, PicksClosest) {
  Matrix centroids(3, 1);
  centroids.at(0, 0) = 0.0f;
  centroids.at(1, 0) = 5.0f;
  centroids.at(2, 0) = 10.0f;
  const float q1 = 1.0f;
  const float q2 = 6.0f;
  const float q3 = 100.0f;
  EXPECT_EQ(NearestCentroid(centroids, &q1), 0u);
  EXPECT_EQ(NearestCentroid(centroids, &q2), 1u);
  EXPECT_EQ(NearestCentroid(centroids, &q3), 2u);
}

}  // namespace
}  // namespace simcard
