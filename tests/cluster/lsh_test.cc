#include "cluster/lsh.h"

#include <gtest/gtest.h>

#include <set>

namespace simcard {
namespace {

TEST(LshTest, RejectsBadInputs) {
  LshOptions opts;
  size_t n = 0;
  EXPECT_FALSE(LshSegment(Matrix(), opts, &n).ok());
  Matrix data(10, 2);
  opts.bits = 0;
  EXPECT_FALSE(LshSegment(data, opts, &n).ok());
}

TEST(LshTest, AssignsEveryRow) {
  Rng rng(1);
  Matrix data = Matrix::Gaussian(500, 8, 1.0f, &rng);
  LshOptions opts;
  opts.bits = 5;
  opts.target_segments = 8;
  size_t num_segments = 0;
  auto assignment = LshSegment(data, opts, &num_segments).value();
  EXPECT_EQ(assignment.size(), 500u);
  EXPECT_LE(num_segments, 8u);
  EXPECT_GE(num_segments, 2u);
  for (uint32_t a : assignment) EXPECT_LT(a, num_segments);
}

TEST(LshTest, IdenticalVectorsShareSegment) {
  Rng rng(2);
  Matrix data(100, 4);
  // Two groups of identical rows.
  for (size_t r = 0; r < 100; ++r) {
    data.at(r, 0) = r < 50 ? 1.0f : -1.0f;
    data.at(r, 1) = r < 50 ? 2.0f : -2.0f;
  }
  LshOptions opts;
  opts.bits = 4;
  opts.target_segments = 4;
  size_t num_segments = 0;
  auto assignment = LshSegment(data, opts, &num_segments).value();
  std::set<uint32_t> first(assignment.begin(), assignment.begin() + 50);
  std::set<uint32_t> second(assignment.begin() + 50, assignment.end());
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(second.size(), 1u);
  EXPECT_NE(*first.begin(), *second.begin());
}

TEST(LshTest, DeterministicForSeed) {
  Rng rng(3);
  Matrix data = Matrix::Gaussian(200, 6, 1.0f, &rng);
  LshOptions opts;
  opts.seed = 9;
  size_t n1 = 0;
  size_t n2 = 0;
  auto a = LshSegment(data, opts, &n1).value();
  auto b = LshSegment(data, opts, &n2).value();
  EXPECT_EQ(a, b);
  EXPECT_EQ(n1, n2);
}

TEST(LshModelTest, HashIsSignPattern) {
  LshModel model;
  model.hyperplanes = Matrix(2, 2);
  model.hyperplanes.at(0, 0) = 1.0f;  // bit0: sign of x
  model.hyperplanes.at(1, 1) = 1.0f;  // bit1: sign of y
  const float pp[] = {1.0f, 1.0f};
  const float pn[] = {1.0f, -1.0f};
  const float nn[] = {-1.0f, -1.0f};
  EXPECT_EQ(model.Hash(pp), 0b11u);
  EXPECT_EQ(model.Hash(pn), 0b01u);
  EXPECT_EQ(model.Hash(nn), 0b00u);
}

}  // namespace
}  // namespace simcard
