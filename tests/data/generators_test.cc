#include "data/generators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace simcard {
namespace {

TEST(ScaleTest, ParseAndName) {
  for (Scale s : {Scale::kTiny, Scale::kSmall, Scale::kFull}) {
    auto parsed = ParseScale(ScaleName(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), s);
  }
  EXPECT_FALSE(ParseScale("huge").ok());
}

TEST(GeneratorsTest, AnalogNamesMatchPaperOrder) {
  auto names = AnalogNames();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "bms-sim");
  EXPECT_EQ(names[1], "glove-sim");
  EXPECT_EQ(names[2], "imagenet-sim");
  EXPECT_EQ(names[3], "aminer-sim");
  EXPECT_EQ(names[4], "youtube-sim");
  EXPECT_EQ(names[5], "dblp-sim");
}

TEST(GeneratorsTest, SpecsHaveSaneShapes) {
  for (const auto& name : AnalogNames()) {
    auto spec_or = GetAnalogSpec(name, Scale::kSmall);
    ASSERT_TRUE(spec_or.ok()) << name;
    const AnalogSpec& spec = spec_or.value();
    EXPECT_GT(spec.dim, 0u);
    EXPECT_GT(spec.num_points, 1000u);
    EXPECT_GT(spec.num_clusters, 4u);
    EXPECT_GT(spec.train_queries, 0u);
    EXPECT_GT(spec.test_queries, 0u);
    EXPECT_GT(spec.tau_max, 0.0f);
  }
  EXPECT_FALSE(GetAnalogSpec("unknown", Scale::kSmall).ok());
}

TEST(GeneratorsTest, ScalingShrinksAndGrows) {
  auto tiny = GetAnalogSpec("glove-sim", Scale::kTiny).value();
  auto small = GetAnalogSpec("glove-sim", Scale::kSmall).value();
  auto full = GetAnalogSpec("glove-sim", Scale::kFull).value();
  EXPECT_LT(tiny.num_points, small.num_points);
  EXPECT_LT(small.num_points, full.num_points);
  EXPECT_LE(tiny.dim, small.dim);
  EXPECT_LT(small.dim, full.dim);
}

TEST(GeneratorsTest, DatasetIsDeterministic) {
  auto a = MakeAnalogDataset("imagenet-sim", Scale::kTiny, 99).value();
  auto b = MakeAnalogDataset("imagenet-sim", Scale::kTiny, 99).value();
  EXPECT_TRUE(a.points().AllClose(b.points(), 0.0f));
  auto c = MakeAnalogDataset("imagenet-sim", Scale::kTiny, 100).value();
  EXPECT_FALSE(a.points().AllClose(c.points(), 0.0f));
}

TEST(GeneratorsTest, HammingAnalogsAreBinary) {
  for (const char* name : {"bms-sim", "imagenet-sim", "aminer-sim"}) {
    auto d = MakeAnalogDataset(name, Scale::kTiny, 1).value();
    EXPECT_EQ(d.metric(), Metric::kHamming);
    for (size_t i = 0; i < d.points().size(); ++i) {
      const float v = d.points().data()[i];
      EXPECT_TRUE(v == 0.0f || v == 1.0f) << name;
    }
  }
}

TEST(GeneratorsTest, AngularAnalogIsUnitNorm) {
  auto d = MakeAnalogDataset("glove-sim", Scale::kTiny, 2).value();
  EXPECT_EQ(d.metric(), Metric::kAngular);
  for (size_t r = 0; r < d.size(); ++r) {
    EXPECT_NEAR(DotProduct(d.Point(r), d.Point(r), d.dim()), 1.0f, 1e-4f);
  }
}

TEST(GeneratorsTest, SparseAnalogsAreSparse) {
  auto d = MakeAnalogDataset("bms-sim", Scale::kTiny, 3).value();
  double ones = 0;
  for (size_t i = 0; i < d.points().size(); ++i) ones += d.points().data()[i];
  const double density = ones / d.points().size();
  EXPECT_LT(density, 0.35);
  EXPECT_GT(density, 0.005);
}

TEST(GeneratorsTest, DenseAnalogHasClusterStructure) {
  // Average pairwise distance should clearly exceed average distance to the
  // nearest of a handful of sampled neighbors, i.e. data is not uniform.
  auto d = MakeAnalogDataset("youtube-sim", Scale::kTiny, 4).value();
  Rng rng(5);
  double nn_sum = 0;
  double rand_sum = 0;
  const int probes = 30;
  for (int p = 0; p < probes; ++p) {
    size_t i = rng.NextBounded(d.size());
    float best = 1e30f;
    for (int j = 0; j < 200; ++j) {
      size_t k = rng.NextBounded(d.size());
      if (k == i) continue;
      best = std::min(best, d.DistanceTo(d.Point(i), k));
    }
    nn_sum += best;
    rand_sum += d.DistanceTo(d.Point(i), rng.NextBounded(d.size()));
  }
  EXPECT_LT(nn_sum, 0.7 * rand_sum);
}

TEST(GeneratorsTest, UpdatesComeFromSameDistribution) {
  const uint64_t seed = 11;
  auto d = MakeAnalogDataset("glove-sim", Scale::kTiny, seed).value();
  auto updates_or = MakeAnalogUpdates("glove-sim", Scale::kTiny, 50, seed);
  ASSERT_TRUE(updates_or.ok());
  const Matrix& updates = updates_or.value();
  EXPECT_EQ(updates.rows(), 50u);
  EXPECT_EQ(updates.cols(), d.dim());
  // Update rows are unit-norm like the base data.
  for (size_t r = 0; r < updates.rows(); ++r) {
    EXPECT_NEAR(DotProduct(updates.Row(r), updates.Row(r), updates.cols()),
                1.0f, 1e-4f);
  }
  // And deterministic.
  auto again = MakeAnalogUpdates("glove-sim", Scale::kTiny, 50, seed).value();
  EXPECT_TRUE(updates.AllClose(again, 0.0f));
}

TEST(GeneratorsTest, PowerLawDensityExpectedOnes) {
  Rng rng(13);
  auto density = PowerLawBitDensity(256, 1.2f, 20.0f, &rng);
  double total = 0;
  for (float p : density) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 0.95f);
    total += p;
  }
  EXPECT_NEAR(total, 20.0, 2.0);
}

TEST(GeneratorsTest, GaussianMixtureShapes) {
  Rng rng(17);
  Matrix m = GenerateGaussianMixture(100, 8, 4, 1.0f, 0.1f, 0.0f, false, &rng);
  EXPECT_EQ(m.rows(), 100u);
  EXPECT_EQ(m.cols(), 8u);
}

}  // namespace
}  // namespace simcard
