#include "data/sampling.h"

#include <gtest/gtest.h>

#include <set>

namespace simcard {
namespace {

Dataset MakeDataset(size_t n, size_t d) {
  Matrix points(n, d);
  for (size_t r = 0; r < n; ++r) {
    points.at(r, 0) = static_cast<float>(r);
  }
  return Dataset("s", std::move(points), Metric::kL2, 1.0f);
}

TEST(SamplingTest, SampleIndicesDistinctAndInRange) {
  Dataset d = MakeDataset(50, 3);
  Rng rng(1);
  auto idx = SampleIndices(d, 20, &rng);
  EXPECT_EQ(idx.size(), 20u);
  std::set<size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t i : idx) EXPECT_LT(i, 50u);
}

TEST(SamplingTest, GatherRowsPreservesOrder) {
  Dataset d = MakeDataset(10, 3);
  Matrix rows = GatherRows(d.points(), {7, 2, 9});
  EXPECT_EQ(rows.rows(), 3u);
  EXPECT_FLOAT_EQ(rows.at(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(rows.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(rows.at(2, 0), 9.0f);
}

TEST(SamplingTest, SampleLargerThanDatasetReturnsAll) {
  Dataset d = MakeDataset(5, 2);
  Rng rng(2);
  auto idx = SampleIndices(d, 100, &rng);
  EXPECT_EQ(idx.size(), 5u);
}

}  // namespace
}  // namespace simcard
