#include "data/dataset.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace simcard {
namespace {

Dataset MakeSmall() {
  Matrix points(3, 2);
  points.at(0, 0) = 0.0f;
  points.at(1, 0) = 3.0f;
  points.at(1, 1) = 4.0f;
  points.at(2, 0) = 1.0f;
  return Dataset("tiny", std::move(points), Metric::kL2, 10.0f);
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = MakeSmall();
  EXPECT_EQ(d.name(), "tiny");
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.dim(), 2u);
  EXPECT_EQ(d.metric(), Metric::kL2);
  EXPECT_FLOAT_EQ(d.tau_max(), 10.0f);
  EXPECT_FLOAT_EQ(d.Point(1)[1], 4.0f);
}

TEST(DatasetTest, DistanceTo) {
  Dataset d = MakeSmall();
  const float origin[] = {0.0f, 0.0f};
  EXPECT_FLOAT_EQ(d.DistanceTo(origin, 0), 0.0f);
  EXPECT_FLOAT_EQ(d.DistanceTo(origin, 1), 5.0f);
}

TEST(DatasetTest, AppendGrowsAndKeepsData) {
  Dataset d = MakeSmall();
  Matrix extra(2, 2);
  extra.at(0, 0) = 9.0f;
  d.Append(extra);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_FLOAT_EQ(d.Point(3)[0], 9.0f);
  EXPECT_FLOAT_EQ(d.Point(1)[1], 4.0f);  // original rows intact
}

TEST(DatasetTest, TruncateRemovesTail) {
  Dataset d = MakeSmall();
  d.Truncate(2);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_FLOAT_EQ(d.Point(0)[0], 0.0f);
}

TEST(DatasetTest, BitsCacheInvalidatedByAppend) {
  Rng rng(1);
  Matrix points(4, 8);
  for (size_t i = 0; i < points.size(); ++i) {
    points.data()[i] = rng.NextBernoulli(0.5) ? 1.0f : 0.0f;
  }
  Dataset d("bits", std::move(points), Metric::kHamming, 1.0f);
  EXPECT_EQ(d.bits().rows(), 4u);
  Matrix extra(1, 8);
  extra.Fill(1.0f);
  d.Append(extra);
  EXPECT_EQ(d.bits().rows(), 5u);
}

TEST(DatasetTest, SerializationRoundTrip) {
  Dataset d = MakeSmall();
  Serializer out;
  d.Serialize(&out);
  Deserializer in(out.bytes());
  auto restored_or = Dataset::Deserialize(&in);
  ASSERT_TRUE(restored_or.ok());
  const Dataset& r = restored_or.value();
  EXPECT_EQ(r.name(), "tiny");
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.metric(), Metric::kL2);
  EXPECT_TRUE(r.points().AllClose(d.points(), 0.0f));
}

}  // namespace
}  // namespace simcard
