// Smoke test for the example binaries: each must run to completion at tiny
// scale and print its headline output. Paths are injected by CMake.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace simcard {
namespace {

// Runs a command, captures stdout, returns the exit code.
int RunCapture(const std::string& command, std::string* output) {
  output->clear();
  FILE* pipe = popen((command + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return -1;
  std::array<char, 4096> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output->append(buffer.data());
  }
  return pclose(pipe);
}

TEST(ExamplesSmokeTest, Quickstart) {
  std::string out;
  ASSERT_EQ(RunCapture(std::string(SIMCARD_QUICKSTART_BIN) + " --scale=tiny",
                       &out),
            0)
      << out;
  EXPECT_NE(out.find("trained GL-CNN"), std::string::npos);
  EXPECT_NE(out.find("q-error"), std::string::npos);
}

TEST(ExamplesSmokeTest, ImageSearch) {
  std::string out;
  ASSERT_EQ(RunCapture(std::string(SIMCARD_IMAGE_SEARCH_BIN) +
                           " --scale=tiny",
                       &out),
            0)
      << out;
  EXPECT_NE(out.find("planner agreement with oracle"), std::string::npos);
}

TEST(ExamplesSmokeTest, JoinPlanning) {
  std::string out;
  ASSERT_EQ(RunCapture(std::string(SIMCARD_JOIN_PLANNING_BIN) +
                           " --scale=tiny",
                       &out),
            0)
      << out;
  EXPECT_NE(out.find("batch (sum-pooled) estimation"), std::string::npos);
}

TEST(ExamplesSmokeTest, DataUpdates) {
  std::string out;
  ASSERT_EQ(RunCapture(std::string(SIMCARD_DATA_UPDATES_BIN) +
                           " --scale=tiny --batches=2",
                       &out),
            0)
      << out;
  EXPECT_NE(out.find("incremental update"), std::string::npos);
}

TEST(ExamplesSmokeTest, RadiusTuning) {
  std::string out;
  ASSERT_EQ(RunCapture(std::string(SIMCARD_RADIUS_TUNING_BIN) +
                           " --scale=tiny --target=10",
                       &out),
            0)
      << out;
  EXPECT_NE(out.find("geometric-mean deviation"), std::string::npos);
}

}  // namespace
}  // namespace simcard
